# Empty compiler generated dependencies file for tman_edge_test.
# This may be replaced when dependencies are built.
