file(REMOVE_RECURSE
  "CMakeFiles/tman_edge_test.dir/tman_edge_test.cc.o"
  "CMakeFiles/tman_edge_test.dir/tman_edge_test.cc.o.d"
  "tman_edge_test"
  "tman_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
