# Empty compiler generated dependencies file for tman_test.
# This may be replaced when dependencies are built.
