file(REMOVE_RECURSE
  "CMakeFiles/tman_test.dir/tman_test.cc.o"
  "CMakeFiles/tman_test.dir/tman_test.cc.o.d"
  "tman_test"
  "tman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
