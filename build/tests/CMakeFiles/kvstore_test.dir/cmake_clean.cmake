file(REMOVE_RECURSE
  "CMakeFiles/kvstore_test.dir/kvstore_test.cc.o"
  "CMakeFiles/kvstore_test.dir/kvstore_test.cc.o.d"
  "kvstore_test"
  "kvstore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
