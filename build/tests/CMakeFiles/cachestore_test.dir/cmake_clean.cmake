file(REMOVE_RECURSE
  "CMakeFiles/cachestore_test.dir/cachestore_test.cc.o"
  "CMakeFiles/cachestore_test.dir/cachestore_test.cc.o.d"
  "cachestore_test"
  "cachestore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
