# Empty dependencies file for cachestore_test.
# This may be replaced when dependencies are built.
