file(REMOVE_RECURSE
  "CMakeFiles/similarity_edge_test.dir/similarity_edge_test.cc.o"
  "CMakeFiles/similarity_edge_test.dir/similarity_edge_test.cc.o.d"
  "similarity_edge_test"
  "similarity_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
