# Empty compiler generated dependencies file for similarity_edge_test.
# This may be replaced when dependencies are built.
