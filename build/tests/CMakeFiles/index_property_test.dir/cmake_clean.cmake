file(REMOVE_RECURSE
  "CMakeFiles/index_property_test.dir/index_property_test.cc.o"
  "CMakeFiles/index_property_test.dir/index_property_test.cc.o.d"
  "index_property_test"
  "index_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
