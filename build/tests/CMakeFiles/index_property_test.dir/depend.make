# Empty dependencies file for index_property_test.
# This may be replaced when dependencies are built.
