file(REMOVE_RECURSE
  "CMakeFiles/kvstore_edge_test.dir/kvstore_edge_test.cc.o"
  "CMakeFiles/kvstore_edge_test.dir/kvstore_edge_test.cc.o.d"
  "kvstore_edge_test"
  "kvstore_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
