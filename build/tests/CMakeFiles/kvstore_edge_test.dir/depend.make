# Empty dependencies file for kvstore_edge_test.
# This may be replaced when dependencies are built.
