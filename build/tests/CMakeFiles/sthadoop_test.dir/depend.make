# Empty dependencies file for sthadoop_test.
# This may be replaced when dependencies are built.
