file(REMOVE_RECURSE
  "CMakeFiles/sthadoop_test.dir/sthadoop_test.cc.o"
  "CMakeFiles/sthadoop_test.dir/sthadoop_test.cc.o.d"
  "sthadoop_test"
  "sthadoop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sthadoop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
