file(REMOVE_RECURSE
  "CMakeFiles/tr_index_test.dir/tr_index_test.cc.o"
  "CMakeFiles/tr_index_test.dir/tr_index_test.cc.o.d"
  "tr_index_test"
  "tr_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tr_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
