# Empty dependencies file for tr_index_test.
# This may be replaced when dependencies are built.
