file(REMOVE_RECURSE
  "CMakeFiles/spatial_index_test.dir/spatial_index_test.cc.o"
  "CMakeFiles/spatial_index_test.dir/spatial_index_test.cc.o.d"
  "spatial_index_test"
  "spatial_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatial_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
