# Empty dependencies file for spatial_index_test.
# This may be replaced when dependencies are built.
