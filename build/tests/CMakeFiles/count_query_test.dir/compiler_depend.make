# Empty compiler generated dependencies file for count_query_test.
# This may be replaced when dependencies are built.
