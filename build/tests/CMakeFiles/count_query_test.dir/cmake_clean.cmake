file(REMOVE_RECURSE
  "CMakeFiles/count_query_test.dir/count_query_test.cc.o"
  "CMakeFiles/count_query_test.dir/count_query_test.cc.o.d"
  "count_query_test"
  "count_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/count_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
