# Empty compiler generated dependencies file for core_components_test.
# This may be replaced when dependencies are built.
