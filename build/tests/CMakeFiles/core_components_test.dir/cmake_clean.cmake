file(REMOVE_RECURSE
  "CMakeFiles/core_components_test.dir/core_components_test.cc.o"
  "CMakeFiles/core_components_test.dir/core_components_test.cc.o.d"
  "core_components_test"
  "core_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
