file(REMOVE_RECURSE
  "libtman_kvstore.a"
)
