
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/block.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/block.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/block.cc.o.d"
  "/root/repo/src/kvstore/block_builder.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/block_builder.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/block_builder.cc.o.d"
  "/root/repo/src/kvstore/bloom.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/bloom.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/bloom.cc.o.d"
  "/root/repo/src/kvstore/db.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/db.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/db.cc.o.d"
  "/root/repo/src/kvstore/env.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/env.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/env.cc.o.d"
  "/root/repo/src/kvstore/log.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/log.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/log.cc.o.d"
  "/root/repo/src/kvstore/memtable.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/memtable.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/memtable.cc.o.d"
  "/root/repo/src/kvstore/merge_iterator.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/merge_iterator.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/merge_iterator.cc.o.d"
  "/root/repo/src/kvstore/table.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/table.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/table.cc.o.d"
  "/root/repo/src/kvstore/version.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/version.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/version.cc.o.d"
  "/root/repo/src/kvstore/write_batch.cc" "src/kvstore/CMakeFiles/tman_kvstore.dir/write_batch.cc.o" "gcc" "src/kvstore/CMakeFiles/tman_kvstore.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
