# Empty compiler generated dependencies file for tman_kvstore.
# This may be replaced when dependencies are built.
