file(REMOVE_RECURSE
  "CMakeFiles/tman_kvstore.dir/block.cc.o"
  "CMakeFiles/tman_kvstore.dir/block.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/block_builder.cc.o"
  "CMakeFiles/tman_kvstore.dir/block_builder.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/bloom.cc.o"
  "CMakeFiles/tman_kvstore.dir/bloom.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/db.cc.o"
  "CMakeFiles/tman_kvstore.dir/db.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/env.cc.o"
  "CMakeFiles/tman_kvstore.dir/env.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/log.cc.o"
  "CMakeFiles/tman_kvstore.dir/log.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/memtable.cc.o"
  "CMakeFiles/tman_kvstore.dir/memtable.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/merge_iterator.cc.o"
  "CMakeFiles/tman_kvstore.dir/merge_iterator.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/table.cc.o"
  "CMakeFiles/tman_kvstore.dir/table.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/version.cc.o"
  "CMakeFiles/tman_kvstore.dir/version.cc.o.d"
  "CMakeFiles/tman_kvstore.dir/write_batch.cc.o"
  "CMakeFiles/tman_kvstore.dir/write_batch.cc.o.d"
  "libtman_kvstore.a"
  "libtman_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
