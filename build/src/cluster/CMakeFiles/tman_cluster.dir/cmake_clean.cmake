file(REMOVE_RECURSE
  "CMakeFiles/tman_cluster.dir/cluster.cc.o"
  "CMakeFiles/tman_cluster.dir/cluster.cc.o.d"
  "libtman_cluster.a"
  "libtman_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
