file(REMOVE_RECURSE
  "libtman_cluster.a"
)
