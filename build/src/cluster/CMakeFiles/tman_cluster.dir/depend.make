# Empty dependencies file for tman_cluster.
# This may be replaced when dependencies are built.
