# Empty dependencies file for tman_common.
# This may be replaced when dependencies are built.
