file(REMOVE_RECURSE
  "libtman_common.a"
)
