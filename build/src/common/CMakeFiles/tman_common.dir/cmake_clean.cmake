file(REMOVE_RECURSE
  "CMakeFiles/tman_common.dir/coding.cc.o"
  "CMakeFiles/tman_common.dir/coding.cc.o.d"
  "CMakeFiles/tman_common.dir/hash.cc.o"
  "CMakeFiles/tman_common.dir/hash.cc.o.d"
  "CMakeFiles/tman_common.dir/status.cc.o"
  "CMakeFiles/tman_common.dir/status.cc.o.d"
  "CMakeFiles/tman_common.dir/thread_pool.cc.o"
  "CMakeFiles/tman_common.dir/thread_pool.cc.o.d"
  "libtman_common.a"
  "libtman_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
