file(REMOVE_RECURSE
  "CMakeFiles/tman_cachestore.dir/redis_like.cc.o"
  "CMakeFiles/tman_cachestore.dir/redis_like.cc.o.d"
  "libtman_cachestore.a"
  "libtman_cachestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_cachestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
