# Empty compiler generated dependencies file for tman_cachestore.
# This may be replaced when dependencies are built.
