file(REMOVE_RECURSE
  "libtman_cachestore.a"
)
