# CMake generated Testfile for 
# Source directory: /root/repo/src/cachestore
# Build directory: /root/repo/build/src/cachestore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
