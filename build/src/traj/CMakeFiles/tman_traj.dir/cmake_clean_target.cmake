file(REMOVE_RECURSE
  "libtman_traj.a"
)
