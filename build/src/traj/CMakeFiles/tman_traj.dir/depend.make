# Empty dependencies file for tman_traj.
# This may be replaced when dependencies are built.
