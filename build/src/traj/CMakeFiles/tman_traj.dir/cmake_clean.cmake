file(REMOVE_RECURSE
  "CMakeFiles/tman_traj.dir/generator.cc.o"
  "CMakeFiles/tman_traj.dir/generator.cc.o.d"
  "CMakeFiles/tman_traj.dir/io.cc.o"
  "CMakeFiles/tman_traj.dir/io.cc.o.d"
  "libtman_traj.a"
  "libtman_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
