# Empty dependencies file for tman_baselines.
# This may be replaced when dependencies are built.
