file(REMOVE_RECURSE
  "CMakeFiles/tman_baselines.dir/similarity_baselines.cc.o"
  "CMakeFiles/tman_baselines.dir/similarity_baselines.cc.o.d"
  "CMakeFiles/tman_baselines.dir/sthadoop.cc.o"
  "CMakeFiles/tman_baselines.dir/sthadoop.cc.o.d"
  "CMakeFiles/tman_baselines.dir/trajmesa.cc.o"
  "CMakeFiles/tman_baselines.dir/trajmesa.cc.o.d"
  "libtman_baselines.a"
  "libtman_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
