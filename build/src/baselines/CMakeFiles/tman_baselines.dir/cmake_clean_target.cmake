file(REMOVE_RECURSE
  "libtman_baselines.a"
)
