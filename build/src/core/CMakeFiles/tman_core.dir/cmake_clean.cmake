file(REMOVE_RECURSE
  "CMakeFiles/tman_core.dir/filters.cc.o"
  "CMakeFiles/tman_core.dir/filters.cc.o.d"
  "CMakeFiles/tman_core.dir/index_cache.cc.o"
  "CMakeFiles/tman_core.dir/index_cache.cc.o.d"
  "CMakeFiles/tman_core.dir/record.cc.o"
  "CMakeFiles/tman_core.dir/record.cc.o.d"
  "CMakeFiles/tman_core.dir/rowkey.cc.o"
  "CMakeFiles/tman_core.dir/rowkey.cc.o.d"
  "CMakeFiles/tman_core.dir/tman.cc.o"
  "CMakeFiles/tman_core.dir/tman.cc.o.d"
  "libtman_core.a"
  "libtman_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
