file(REMOVE_RECURSE
  "libtman_core.a"
)
