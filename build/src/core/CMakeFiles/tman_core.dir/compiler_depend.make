# Empty compiler generated dependencies file for tman_core.
# This may be replaced when dependencies are built.
