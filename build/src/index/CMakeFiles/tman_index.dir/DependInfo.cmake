
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/quadkey.cc" "src/index/CMakeFiles/tman_index.dir/quadkey.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/quadkey.cc.o.d"
  "/root/repo/src/index/shape_encoding.cc" "src/index/CMakeFiles/tman_index.dir/shape_encoding.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/shape_encoding.cc.o.d"
  "/root/repo/src/index/tr_index.cc" "src/index/CMakeFiles/tman_index.dir/tr_index.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/tr_index.cc.o.d"
  "/root/repo/src/index/tshape_index.cc" "src/index/CMakeFiles/tman_index.dir/tshape_index.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/tshape_index.cc.o.d"
  "/root/repo/src/index/value_range.cc" "src/index/CMakeFiles/tman_index.dir/value_range.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/value_range.cc.o.d"
  "/root/repo/src/index/xz2_index.cc" "src/index/CMakeFiles/tman_index.dir/xz2_index.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/xz2_index.cc.o.d"
  "/root/repo/src/index/xzt_index.cc" "src/index/CMakeFiles/tman_index.dir/xzt_index.cc.o" "gcc" "src/index/CMakeFiles/tman_index.dir/xzt_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tman_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tman_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
