# Empty dependencies file for tman_index.
# This may be replaced when dependencies are built.
