file(REMOVE_RECURSE
  "CMakeFiles/tman_index.dir/quadkey.cc.o"
  "CMakeFiles/tman_index.dir/quadkey.cc.o.d"
  "CMakeFiles/tman_index.dir/shape_encoding.cc.o"
  "CMakeFiles/tman_index.dir/shape_encoding.cc.o.d"
  "CMakeFiles/tman_index.dir/tr_index.cc.o"
  "CMakeFiles/tman_index.dir/tr_index.cc.o.d"
  "CMakeFiles/tman_index.dir/tshape_index.cc.o"
  "CMakeFiles/tman_index.dir/tshape_index.cc.o.d"
  "CMakeFiles/tman_index.dir/value_range.cc.o"
  "CMakeFiles/tman_index.dir/value_range.cc.o.d"
  "CMakeFiles/tman_index.dir/xz2_index.cc.o"
  "CMakeFiles/tman_index.dir/xz2_index.cc.o.d"
  "CMakeFiles/tman_index.dir/xzt_index.cc.o"
  "CMakeFiles/tman_index.dir/xzt_index.cc.o.d"
  "libtman_index.a"
  "libtman_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
