file(REMOVE_RECURSE
  "libtman_index.a"
)
