# Empty dependencies file for tman_geo.
# This may be replaced when dependencies are built.
