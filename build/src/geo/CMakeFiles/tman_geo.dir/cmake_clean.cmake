file(REMOVE_RECURSE
  "CMakeFiles/tman_geo.dir/douglas_peucker.cc.o"
  "CMakeFiles/tman_geo.dir/douglas_peucker.cc.o.d"
  "CMakeFiles/tman_geo.dir/geometry.cc.o"
  "CMakeFiles/tman_geo.dir/geometry.cc.o.d"
  "CMakeFiles/tman_geo.dir/similarity.cc.o"
  "CMakeFiles/tman_geo.dir/similarity.cc.o.d"
  "libtman_geo.a"
  "libtman_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
