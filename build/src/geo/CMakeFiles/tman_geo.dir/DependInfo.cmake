
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/douglas_peucker.cc" "src/geo/CMakeFiles/tman_geo.dir/douglas_peucker.cc.o" "gcc" "src/geo/CMakeFiles/tman_geo.dir/douglas_peucker.cc.o.d"
  "/root/repo/src/geo/geometry.cc" "src/geo/CMakeFiles/tman_geo.dir/geometry.cc.o" "gcc" "src/geo/CMakeFiles/tman_geo.dir/geometry.cc.o.d"
  "/root/repo/src/geo/similarity.cc" "src/geo/CMakeFiles/tman_geo.dir/similarity.cc.o" "gcc" "src/geo/CMakeFiles/tman_geo.dir/similarity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
