file(REMOVE_RECURSE
  "libtman_geo.a"
)
