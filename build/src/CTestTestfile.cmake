# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("kvstore")
subdirs("cachestore")
subdirs("cluster")
subdirs("compress")
subdirs("geo")
subdirs("traj")
subdirs("index")
subdirs("core")
subdirs("baselines")
