file(REMOVE_RECURSE
  "libtman_compress.a"
)
