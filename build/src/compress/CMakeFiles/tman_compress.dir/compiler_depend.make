# Empty compiler generated dependencies file for tman_compress.
# This may be replaced when dependencies are built.
