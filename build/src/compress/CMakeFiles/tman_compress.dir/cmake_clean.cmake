file(REMOVE_RECURSE
  "CMakeFiles/tman_compress.dir/gorilla.cc.o"
  "CMakeFiles/tman_compress.dir/gorilla.cc.o.d"
  "CMakeFiles/tman_compress.dir/simple8b.cc.o"
  "CMakeFiles/tman_compress.dir/simple8b.cc.o.d"
  "CMakeFiles/tman_compress.dir/traj_codec.cc.o"
  "CMakeFiles/tman_compress.dir/traj_codec.cc.o.d"
  "libtman_compress.a"
  "libtman_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tman_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
