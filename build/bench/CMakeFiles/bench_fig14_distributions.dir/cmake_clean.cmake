file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_distributions.dir/bench_fig14_distributions.cc.o"
  "CMakeFiles/bench_fig14_distributions.dir/bench_fig14_distributions.cc.o.d"
  "bench_fig14_distributions"
  "bench_fig14_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
