# Empty dependencies file for bench_fig14_distributions.
# This may be replaced when dependencies are built.
