file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_alphabeta.dir/bench_fig15_alphabeta.cc.o"
  "CMakeFiles/bench_fig15_alphabeta.dir/bench_fig15_alphabeta.cc.o.d"
  "bench_fig15_alphabeta"
  "bench_fig15_alphabeta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_alphabeta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
