# Empty compiler generated dependencies file for bench_fig19_idt_strq.
# This may be replaced when dependencies are built.
