file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_idt_strq.dir/bench_fig19_idt_strq.cc.o"
  "CMakeFiles/bench_fig19_idt_strq.dir/bench_fig19_idt_strq.cc.o.d"
  "bench_fig19_idt_strq"
  "bench_fig19_idt_strq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_idt_strq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
