file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_temporal_indexes.dir/bench_table1_temporal_indexes.cc.o"
  "CMakeFiles/bench_table1_temporal_indexes.dir/bench_table1_temporal_indexes.cc.o.d"
  "bench_table1_temporal_indexes"
  "bench_table1_temporal_indexes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_temporal_indexes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
