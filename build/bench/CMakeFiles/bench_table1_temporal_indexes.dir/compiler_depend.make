# Empty compiler generated dependencies file for bench_table1_temporal_indexes.
# This may be replaced when dependencies are built.
