# Empty compiler generated dependencies file for bench_fig20_threshold_sim.
# This may be replaced when dependencies are built.
