file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_threshold_sim.dir/bench_fig20_threshold_sim.cc.o"
  "CMakeFiles/bench_fig20_threshold_sim.dir/bench_fig20_threshold_sim.cc.o.d"
  "bench_fig20_threshold_sim"
  "bench_fig20_threshold_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_threshold_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
