# Empty dependencies file for bench_fig22_scalability.
# This may be replaced when dependencies are built.
