file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_trq.dir/bench_fig17_trq.cc.o"
  "CMakeFiles/bench_fig17_trq.dir/bench_fig17_trq.cc.o.d"
  "bench_fig17_trq"
  "bench_fig17_trq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_trq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
