# Empty dependencies file for bench_fig17_trq.
# This may be replaced when dependencies are built.
