# Empty dependencies file for bench_fig21_topk.
# This may be replaced when dependencies are built.
