file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_topk.dir/bench_fig21_topk.cc.o"
  "CMakeFiles/bench_fig21_topk.dir/bench_fig21_topk.cc.o.d"
  "bench_fig21_topk"
  "bench_fig21_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
