file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_codecs.dir/bench_micro_codecs.cc.o"
  "CMakeFiles/bench_micro_codecs.dir/bench_micro_codecs.cc.o.d"
  "bench_micro_codecs"
  "bench_micro_codecs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
