# Empty dependencies file for bench_micro_codecs.
# This may be replaced when dependencies are built.
