# Empty compiler generated dependencies file for bench_micro_kvstore.
# This may be replaced when dependencies are built.
