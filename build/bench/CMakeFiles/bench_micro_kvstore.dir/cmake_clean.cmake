file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_kvstore.dir/bench_micro_kvstore.cc.o"
  "CMakeFiles/bench_micro_kvstore.dir/bench_micro_kvstore.cc.o.d"
  "bench_micro_kvstore"
  "bench_micro_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
