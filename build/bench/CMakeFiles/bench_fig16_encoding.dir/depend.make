# Empty dependencies file for bench_fig16_encoding.
# This may be replaced when dependencies are built.
