file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_encoding.dir/bench_fig16_encoding.cc.o"
  "CMakeFiles/bench_fig16_encoding.dir/bench_fig16_encoding.cc.o.d"
  "bench_fig16_encoding"
  "bench_fig16_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
