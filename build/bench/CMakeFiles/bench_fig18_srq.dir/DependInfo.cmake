
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig18_srq.cc" "bench/CMakeFiles/bench_fig18_srq.dir/bench_fig18_srq.cc.o" "gcc" "bench/CMakeFiles/bench_fig18_srq.dir/bench_fig18_srq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tman_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tman_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/traj/CMakeFiles/tman_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/tman_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/tman_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/cachestore/CMakeFiles/tman_cachestore.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/tman_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/tman_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/tman_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tman_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
