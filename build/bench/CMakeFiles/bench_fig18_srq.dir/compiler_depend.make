# Empty compiler generated dependencies file for bench_fig18_srq.
# This may be replaced when dependencies are built.
