file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_srq.dir/bench_fig18_srq.cc.o"
  "CMakeFiles/bench_fig18_srq.dir/bench_fig18_srq.cc.o.d"
  "bench_fig18_srq"
  "bench_fig18_srq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_srq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
