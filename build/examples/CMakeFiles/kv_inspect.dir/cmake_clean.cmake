file(REMOVE_RECURSE
  "CMakeFiles/kv_inspect.dir/kv_inspect.cpp.o"
  "CMakeFiles/kv_inspect.dir/kv_inspect.cpp.o.d"
  "kv_inspect"
  "kv_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
