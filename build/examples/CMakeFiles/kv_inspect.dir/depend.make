# Empty dependencies file for kv_inspect.
# This may be replaced when dependencies are built.
