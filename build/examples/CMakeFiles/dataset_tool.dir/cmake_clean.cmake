file(REMOVE_RECURSE
  "CMakeFiles/dataset_tool.dir/dataset_tool.cpp.o"
  "CMakeFiles/dataset_tool.dir/dataset_tool.cpp.o.d"
  "dataset_tool"
  "dataset_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
