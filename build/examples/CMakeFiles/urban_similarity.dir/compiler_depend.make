# Empty compiler generated dependencies file for urban_similarity.
# This may be replaced when dependencies are built.
