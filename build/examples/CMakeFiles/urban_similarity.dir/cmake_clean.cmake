file(REMOVE_RECURSE
  "CMakeFiles/urban_similarity.dir/urban_similarity.cpp.o"
  "CMakeFiles/urban_similarity.dir/urban_similarity.cpp.o.d"
  "urban_similarity"
  "urban_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urban_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
