#include <gtest/gtest.h>

#include <algorithm>

#include "traj/generator.h"
#include "traj/trajectory.h"

namespace tman::traj {
namespace {

TEST(TrajectoryTest, TimeRangeAndMBR) {
  Trajectory t;
  t.points = {{116.1, 39.5, 100}, {116.3, 39.7, 200}, {116.2, 39.9, 300}};
  EXPECT_EQ(t.start_time(), 100);
  EXPECT_EQ(t.end_time(), 300);
  EXPECT_EQ(t.duration(), 200);
  const geo::MBR mbr = t.ComputeMBR();
  EXPECT_DOUBLE_EQ(mbr.min_x, 116.1);
  EXPECT_DOUBLE_EQ(mbr.max_y, 39.9);
  EXPECT_TRUE(t.IntersectsTimeRange(250, 400));
  EXPECT_FALSE(t.IntersectsTimeRange(301, 400));
}

TEST(SpatialBoundsTest, NormalizeMapsToUnitSquare) {
  SpatialBounds bounds{100, 30, 120, 40};
  const geo::Point p = bounds.Normalize(geo::Point{110, 35});
  EXPECT_DOUBLE_EQ(p.x, 0.5);
  EXPECT_DOUBLE_EQ(p.y, 0.5);
  const geo::MBR m = bounds.Normalize(geo::MBR{100, 30, 120, 40});
  EXPECT_DOUBLE_EQ(m.min_x, 0.0);
  EXPECT_DOUBLE_EQ(m.max_x, 1.0);
}

TEST(GeneratorTest, DeterministicAndWellFormed) {
  const DatasetSpec spec = TDriveLikeSpec();
  const auto a = Generate(spec, 50, 42);
  const auto b = Generate(spec, 50, 42);
  ASSERT_EQ(a.size(), 50u);
  for (size_t i = 0; i < a.size(); i++) {
    EXPECT_EQ(a[i].tid, b[i].tid);
    ASSERT_FALSE(a[i].points.empty());
    EXPECT_EQ(a[i].points.size(), b[i].points.size());
    EXPECT_EQ(a[i].points[0].t, b[i].points[0].t);
    // Points inside the dataset boundary, timestamps monotone.
    for (size_t j = 0; j < a[i].points.size(); j++) {
      const auto& p = a[i].points[j];
      EXPECT_GE(p.x, spec.bounds.min_lon);
      EXPECT_LE(p.x, spec.bounds.max_lon);
      EXPECT_GE(p.y, spec.bounds.min_lat);
      EXPECT_LE(p.y, spec.bounds.max_lat);
      if (j > 0) EXPECT_GT(p.t, a[i].points[j - 1].t);
    }
  }
}

TEST(GeneratorTest, DurationDistributionMatchesSpec) {
  const DatasetSpec spec = LorryLikeSpec();
  const auto data = Generate(spec, 2000, 7);
  int below_2h = 0;
  int below_14h = 0;
  for (const auto& t : data) {
    if (t.duration() <= 2 * 3600) below_2h++;
    if (t.duration() <= 14 * 3600) below_14h++;
  }
  // Paper Fig 14(b): ~88% below 2h, ~99% below 14h.
  EXPECT_NEAR(below_2h / 2000.0, 0.88, 0.05);
  EXPECT_GT(below_14h / 2000.0, 0.97);
}

TEST(GeneratorTest, ObjectsProduceMultipleTrajectories) {
  const DatasetSpec spec = TDriveLikeSpec();
  const auto data = Generate(spec, 500, 3);
  std::map<std::string, int> per_object;
  for (const auto& t : data) per_object[t.oid]++;
  EXPECT_LT(per_object.size(), data.size());
  int max_count = 0;
  for (const auto& [oid, n] : per_object) max_count = std::max(max_count, n);
  EXPECT_GT(max_count, 1);
}

TEST(GeneratorTest, ReplicateOffsetsTimeAndKeepsCount) {
  const DatasetSpec spec = LorryLikeSpec();
  const auto base = Generate(spec, 20, 5);
  const auto replicated = Replicate(spec, base, 3, 5);
  ASSERT_EQ(replicated.size(), 60u);
  // Copy 2's trajectories start two horizons later.
  EXPECT_EQ(replicated[40].points[0].t,
            base[0].points[0].t + 2 * spec.horizon_seconds);
  // tids stay unique.
  std::set<std::string> tids;
  for (const auto& t : replicated) {
    EXPECT_TRUE(tids.insert(t.tid).second);
  }
}

TEST(GeneratorTest, QueryWindowsInsideDataset) {
  const DatasetSpec spec = TDriveLikeSpec();
  const auto tw = RandomTimeWindows(spec, 20, 3600, 1);
  ASSERT_EQ(tw.size(), 20u);
  for (const auto& w : tw) {
    EXPECT_GE(w.ts, spec.t0);
    EXPECT_LE(w.te, spec.t0 + spec.horizon_seconds);
    EXPECT_EQ(w.te - w.ts, 3600);
  }
  const auto sw = RandomSpaceWindows(spec, 20, 1500, 1);
  for (const auto& w : sw) {
    EXPECT_GT(w.rect.width(), 0);
    // ~1.5km in degrees at Beijing latitude.
    EXPECT_NEAR(w.rect.height(), 1500.0 / 111320.0, 1e-6);
  }
}

}  // namespace
}  // namespace tman::traj
