// Count-only (push-down aggregation) queries: results must equal the
// materializing queries' result sizes, with no rows shipped.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/tman.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_count_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class CountQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new traj::DatasetSpec(traj::TDriveLikeSpec());
    data_ = new std::vector<traj::Trajectory>(traj::Generate(*spec_, 250, 88));
    tman_ = new std::unique_ptr<TMan>;
    TManOptions options;
    options.bounds = spec_->bounds;
    options.tr.period_seconds = 3600;
    options.tr.max_periods = 24;
    options.num_shards = 4;
    options.num_servers = 2;
    options.genetic.generations = 5;
    ASSERT_TRUE(TMan::Open(options, TestDir("main"), tman_).ok());
    ASSERT_TRUE((*tman_)->BulkLoad(*data_).ok());
  }

  static void TearDownTestSuite() {
    delete tman_;
    delete data_;
    delete spec_;
  }

  static traj::DatasetSpec* spec_;
  static std::vector<traj::Trajectory>* data_;
  static std::unique_ptr<TMan>* tman_;
};

traj::DatasetSpec* CountQueryTest::spec_ = nullptr;
std::vector<traj::Trajectory>* CountQueryTest::data_ = nullptr;
std::unique_ptr<TMan>* CountQueryTest::tman_ = nullptr;

TEST_F(CountQueryTest, TemporalCountMatchesQuery) {
  for (const auto& w : traj::RandomTimeWindows(*spec_, 8, 8 * 3600, 4)) {
    uint64_t count = 0;
    QueryStats stats;
    ASSERT_TRUE((*tman_)->TemporalRangeCount(w.ts, w.te, &count, &stats).ok());
    std::vector<traj::Trajectory> out;
    ASSERT_TRUE((*tman_)->TemporalRangeQuery(w.ts, w.te, &out, nullptr).ok());
    EXPECT_EQ(count, out.size());
  }
}

TEST_F(CountQueryTest, SpatialCountMatchesQuery) {
  for (const auto& w : traj::RandomSpaceWindows(*spec_, 8, 3000, 4)) {
    uint64_t count = 0;
    QueryStats stats;
    ASSERT_TRUE((*tman_)->SpatialRangeCount(w.rect, &count, &stats).ok());
    std::vector<traj::Trajectory> out;
    ASSERT_TRUE((*tman_)->SpatialRangeQuery(w.rect, &out, nullptr).ok());
    EXPECT_EQ(count, out.size());
    EXPECT_EQ(stats.results, count);
  }
}

TEST_F(CountQueryTest, SpatioTemporalCountMatchesQuery) {
  const auto tws = traj::RandomTimeWindows(*spec_, 5, 12 * 3600, 5);
  const auto sws = traj::RandomSpaceWindows(*spec_, 5, 5000, 5);
  for (size_t i = 0; i < tws.size(); i++) {
    uint64_t count = 0;
    ASSERT_TRUE((*tman_)
                    ->SpatioTemporalRangeCount(sws[i].rect, tws[i].ts,
                                               tws[i].te, &count, nullptr)
                    .ok());
    std::vector<traj::Trajectory> out;
    ASSERT_TRUE((*tman_)
                    ->SpatioTemporalRangeQuery(sws[i].rect, tws[i].ts,
                                               tws[i].te, &out, nullptr)
                    .ok());
    EXPECT_EQ(count, out.size());
  }
}

TEST_F(CountQueryTest, CountTouchesSameCandidates) {
  const auto w = traj::RandomSpaceWindows(*spec_, 1, 3000, 6)[0];
  QueryStats count_stats, query_stats;
  uint64_t count = 0;
  ASSERT_TRUE((*tman_)->SpatialRangeCount(w.rect, &count, &count_stats).ok());
  std::vector<traj::Trajectory> out;
  ASSERT_TRUE((*tman_)->SpatialRangeQuery(w.rect, &out, &query_stats).ok());
  // Identical index usage, identical storage touch.
  EXPECT_EQ(count_stats.candidates, query_stats.candidates);
  EXPECT_EQ(count_stats.windows, query_stats.windows);
}

}  // namespace
}  // namespace tman::core
