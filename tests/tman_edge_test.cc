// Edge-case and planner tests for the TMan facade: RBO/CBO decisions,
// boundary queries, unsupported combinations, and metadata.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/tman.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_edge_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TManOptions SmallOptions(const traj::DatasetSpec& spec) {
  TManOptions options;
  options.bounds = spec.bounds;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.num_shards = 4;
  options.num_servers = 2;
  options.genetic.generations = 5;
  return options;
}

TEST(TManEdgeTest, RejectsDegenerateBounds) {
  TManOptions options;
  options.bounds = traj::SpatialBounds{10, 10, 10, 20};  // zero width
  std::unique_ptr<TMan> tman;
  EXPECT_FALSE(TMan::Open(options, TestDir("degenerate"), &tman).ok());
}

TEST(TManEdgeTest, SpatialQueryNeedsSpatialPrimary) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  TManOptions options = SmallOptions(spec);
  options.primary = PrimaryIndexKind::kTemporal;
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("needsspatial"), &tman).ok());
  std::vector<traj::Trajectory> out;
  const Status s =
      tman->SpatialRangeQuery(geo::MBR{116, 39, 117, 40}, &out, nullptr);
  EXPECT_FALSE(s.ok());
  const Status sim = tman->ThresholdSimilarityQuery(
      traj::Trajectory{}, geo::SimilarityMeasure::kFrechet, 0.1, &out,
      nullptr);
  EXPECT_FALSE(sim.ok());
}

TEST(TManEdgeTest, EmptyResultQueriesAreCleanly) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(SmallOptions(spec), TestDir("empty"), &tman).ok());
  const auto data = traj::Generate(spec, 50, 5);
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  std::vector<traj::Trajectory> out;
  // Window far in the future.
  ASSERT_TRUE(tman->TemporalRangeQuery(spec.t0 + 100 * 86400,
                                       spec.t0 + 101 * 86400, &out, nullptr)
                  .ok());
  EXPECT_TRUE(out.empty());
  // Window outside the populated core (but inside bounds).
  ASSERT_TRUE(tman->SpatialRangeQuery(geo::MBR{110.1, 35.1, 110.2, 35.2},
                                      &out, nullptr)
                  .ok());
  EXPECT_TRUE(out.empty());
  // Unknown object.
  ASSERT_TRUE(tman->IDTemporalQuery("ghost", spec.t0, spec.t0 + 86400, &out,
                                    nullptr)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(TManEdgeTest, QueryWindowLargerThanBoundsIsClipped) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(SmallOptions(spec), TestDir("clip"), &tman).ok());
  const auto data = traj::Generate(spec, 80, 6);
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  // A window exceeding the dataset boundary on all sides returns all data.
  std::vector<traj::Trajectory> out;
  ASSERT_TRUE(
      tman->SpatialRangeQuery(geo::MBR{-180, -90, 180, 90}, &out, nullptr)
          .ok());
  EXPECT_EQ(out.size(), data.size());
}

TEST(TManEdgeTest, TopKWithKLargerThanDataset) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(SmallOptions(spec), TestDir("bigk"), &tman).ok());
  const auto data = traj::Generate(spec, 20, 7);
  ASSERT_TRUE(tman->BulkLoad(data).ok());
  std::vector<traj::Trajectory> out;
  ASSERT_TRUE(tman->TopKSimilarityQuery(data[0],
                                        geo::SimilarityMeasure::kHausdorff,
                                        100, &out, nullptr)
                  .ok());
  // Everything except the query itself.
  EXPECT_EQ(out.size(), data.size() - 1);

  out.clear();
  ASSERT_TRUE(tman->TopKSimilarityQuery(data[0],
                                        geo::SimilarityMeasure::kHausdorff, 0,
                                        &out, nullptr)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST(TManEdgeTest, STPrimaryUsesCBOPlans) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  TManOptions options = SmallOptions(spec);
  options.primary = PrimaryIndexKind::kST;
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("cbo"), &tman).ok());
  const auto data = traj::Generate(spec, 150, 8);
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  // A tiny time range with a tiny spatial window should allow the fine
  // plan; a huge one must fall back to coarse. Either way results are
  // correct (checked in the config matrix); here we check the planner's
  // decision is recorded.
  std::vector<traj::Trajectory> out;
  QueryStats fine_stats;
  ASSERT_TRUE(tman->SpatioTemporalRangeQuery(
                      geo::MBR{116.40, 39.90, 116.41, 39.91}, spec.t0,
                      spec.t0 + 1800, &out, &fine_stats)
                  .ok());
  EXPECT_TRUE(fine_stats.plan == "primary:st-fine" ||
              fine_stats.plan == "primary:st-coarse");

  out.clear();
  QueryStats coarse_stats;
  ASSERT_TRUE(tman->SpatioTemporalRangeQuery(
                      geo::MBR{110, 35, 125, 45}, spec.t0,
                      spec.t0 + spec.horizon_seconds, &out, &coarse_stats)
                  .ok());
  EXPECT_EQ(coarse_stats.plan, "primary:st-coarse");
}

TEST(TManEdgeTest, TemporalPlanStringsReflectRBO) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  const auto data = traj::Generate(spec, 60, 9);

  // Spatial primary -> TRQ runs through the TR secondary table.
  std::unique_ptr<TMan> spatial;
  ASSERT_TRUE(
      TMan::Open(SmallOptions(spec), TestDir("rbo_spatial"), &spatial).ok());
  ASSERT_TRUE(spatial->BulkLoad(data).ok());
  std::vector<traj::Trajectory> out;
  QueryStats stats;
  ASSERT_TRUE(spatial->TemporalRangeQuery(spec.t0, spec.t0 + 3600, &out,
                                          &stats)
                  .ok());
  EXPECT_EQ(stats.plan, "secondary:tr");

  // Temporal primary -> direct.
  TManOptions topt = SmallOptions(spec);
  topt.primary = PrimaryIndexKind::kTemporal;
  std::unique_ptr<TMan> temporal;
  ASSERT_TRUE(TMan::Open(topt, TestDir("rbo_temporal"), &temporal).ok());
  ASSERT_TRUE(temporal->BulkLoad(data).ok());
  out.clear();
  QueryStats tstats;
  ASSERT_TRUE(temporal->TemporalRangeQuery(spec.t0, spec.t0 + 3600, &out,
                                           &tstats)
                  .ok());
  EXPECT_EQ(tstats.plan, "primary:temporal");

  // ST primary -> the tr prefix is scanned directly.
  TManOptions sopt = SmallOptions(spec);
  sopt.primary = PrimaryIndexKind::kST;
  std::unique_ptr<TMan> st;
  ASSERT_TRUE(TMan::Open(sopt, TestDir("rbo_st"), &st).ok());
  ASSERT_TRUE(st->BulkLoad(data).ok());
  out.clear();
  QueryStats ststats;
  ASSERT_TRUE(
      st->TemporalRangeQuery(spec.t0, spec.t0 + 3600, &out, &ststats).ok());
  EXPECT_EQ(ststats.plan, "primary:st-prefix");
}

TEST(TManEdgeTest, MetadataTableHoldsConfig) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  TManOptions options = SmallOptions(spec);
  options.tshape = index::TShapeConfig{4, 4, 14};
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("meta"), &tman).ok());
  // The metadata row is written during Init; the redis-backed index cache
  // is empty until shapes register.
  EXPECT_EQ(tman->redis()->KeyCount(), 0u);
  const auto data = traj::Generate(spec, 30, 10);
  ASSERT_TRUE(tman->BulkLoad(data).ok());
  EXPECT_GT(tman->redis()->KeyCount(), 0u);
}

TEST(TManEdgeTest, PushdownAndClientSideAgreeOnCandidates) {
  const traj::DatasetSpec spec = traj::LorryLikeSpec();
  const auto data = traj::Generate(spec, 200, 11);
  const auto window = traj::RandomSpaceWindows(spec, 1, 3000, 3)[0];

  TManOptions push = SmallOptions(spec);
  std::unique_ptr<TMan> with_push;
  ASSERT_TRUE(TMan::Open(push, TestDir("pd_on"), &with_push).ok());
  ASSERT_TRUE(with_push->BulkLoad(data).ok());

  TManOptions nopush = SmallOptions(spec);
  nopush.push_down = false;
  std::unique_ptr<TMan> without_push;
  ASSERT_TRUE(TMan::Open(nopush, TestDir("pd_off"), &without_push).ok());
  ASSERT_TRUE(without_push->BulkLoad(data).ok());

  std::vector<traj::Trajectory> a, b;
  QueryStats sa, sb;
  ASSERT_TRUE(with_push->SpatialRangeQuery(window.rect, &a, &sa).ok());
  ASSERT_TRUE(without_push->SpatialRangeQuery(window.rect, &b, &sb).ok());
  // Identical result sets and identical storage-touch counts; push-down
  // only changes where the filter runs.
  std::set<std::string> ta, tb;
  for (const auto& t : a) ta.insert(t.tid);
  for (const auto& t : b) tb.insert(t.tid);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(sa.candidates, sb.candidates);
}

TEST(TManEdgeTest, DeleteTrajectoryRemovesAllIndexRows) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(SmallOptions(spec), TestDir("delete"), &tman).ok());
  const auto data = traj::Generate(spec, 80, 13);
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  const traj::Trajectory& victim = data[5];
  ASSERT_TRUE(tman->DeleteTrajectory(victim.oid, victim.tid).ok());
  // Deleting again reports NotFound.
  EXPECT_TRUE(
      tman->DeleteTrajectory(victim.oid, victim.tid).IsNotFound());
  EXPECT_TRUE(tman->DeleteTrajectory("ghost", "ghost-t").IsNotFound());

  // The trajectory is gone from every query path.
  std::vector<traj::Trajectory> out;
  ASSERT_TRUE(tman->SpatialRangeQuery(spec.bounds.ToGeo(), &out, nullptr).ok());
  for (const auto& t : out) EXPECT_NE(t.tid, victim.tid);
  EXPECT_EQ(out.size(), data.size() - 1);

  out.clear();
  ASSERT_TRUE(tman->TemporalRangeQuery(victim.start_time(), victim.end_time(),
                                       &out, nullptr)
                  .ok());
  for (const auto& t : out) EXPECT_NE(t.tid, victim.tid);

  out.clear();
  ASSERT_TRUE(tman->IDTemporalQuery(victim.oid, spec.t0,
                                    spec.t0 + spec.horizon_seconds, &out,
                                    nullptr)
                  .ok());
  for (const auto& t : out) EXPECT_NE(t.tid, victim.tid);
}

TEST(TManEdgeTest, ZeroLengthTimeRange) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(SmallOptions(spec), TestDir("instant"), &tman).ok());
  const auto data = traj::Generate(spec, 60, 12);
  ASSERT_TRUE(tman->BulkLoad(data).ok());
  // A point-in-time query (ts == te) returns trajectories active then.
  const int64_t instant = data[0].start_time() + data[0].duration() / 2;
  std::vector<traj::Trajectory> out;
  ASSERT_TRUE(tman->TemporalRangeQuery(instant, instant, &out, nullptr).ok());
  std::set<std::string> tids;
  for (const auto& t : out) tids.insert(t.tid);
  EXPECT_TRUE(tids.count(data[0].tid) > 0);
  for (const auto& t : data) {
    const bool expected = t.start_time() <= instant && t.end_time() >= instant;
    EXPECT_EQ(tids.count(t.tid) > 0, expected) << t.tid;
  }
}

}  // namespace
}  // namespace tman::core
