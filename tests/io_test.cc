#include <gtest/gtest.h>

#include <filesystem>

#include "traj/generator.h"
#include "traj/io.h"

namespace tman::traj {
namespace {

std::string TestFile(const std::string& name) {
  return std::string(::testing::TempDir()) + "tman_io_" + name;
}

TEST(CsvIoTest, RoundTrip) {
  const DatasetSpec spec = TDriveLikeSpec();
  const auto data = Generate(spec, 20, 44);
  const std::string path = TestFile("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, data).ok());

  std::vector<Trajectory> loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), data.size());

  std::map<std::string, const Trajectory*> by_tid;
  for (const auto& t : data) by_tid[t.tid] = &t;
  for (const auto& t : loaded) {
    ASSERT_TRUE(by_tid.count(t.tid)) << t.tid;
    const Trajectory& original = *by_tid[t.tid];
    EXPECT_EQ(t.oid, original.oid);
    ASSERT_EQ(t.points.size(), original.points.size());
    for (size_t i = 0; i < t.points.size(); i++) {
      EXPECT_NEAR(t.points[i].x, original.points[i].x, 1e-6);
      EXPECT_NEAR(t.points[i].y, original.points[i].y, 1e-6);
      EXPECT_EQ(t.points[i].t, original.points[i].t);
    }
  }
}

TEST(CsvIoTest, SortsOutOfOrderPoints) {
  const std::string path = TestFile("unsorted.csv");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("oid,tid,lon,lat,timestamp\n", f);
  fputs("o1,t1,116.30,39.90,300\n", f);
  fputs("o1,t1,116.10,39.90,100\n", f);
  fputs("o1,t1,116.20,39.90,200\n", f);
  fclose(f);

  std::vector<Trajectory> loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), 1u);
  ASSERT_EQ(loaded[0].points.size(), 3u);
  EXPECT_EQ(loaded[0].points[0].t, 100);
  EXPECT_DOUBLE_EQ(loaded[0].points[0].x, 116.10);
  EXPECT_EQ(loaded[0].points[2].t, 300);
}

TEST(CsvIoTest, RejectsMalformedLines) {
  const std::string path = TestFile("bad.csv");
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("o1,t1,notanumber\n", f);
  fclose(f);
  std::vector<Trajectory> loaded;
  EXPECT_FALSE(ReadCsv(path, &loaded).ok());
}

TEST(CsvIoTest, MissingFileIsIOError) {
  std::vector<Trajectory> loaded;
  EXPECT_TRUE(ReadCsv("/nonexistent/nope.csv", &loaded).IsIOError());
}

TEST(BinaryIoTest, RoundTripBitExact) {
  const DatasetSpec spec = LorryLikeSpec();
  const auto data = Generate(spec, 30, 45);
  const std::string path = TestFile("roundtrip.bin");
  ASSERT_TRUE(WriteBinary(path, data).ok());

  std::vector<Trajectory> loaded;
  ASSERT_TRUE(ReadBinary(path, &loaded).ok());
  ASSERT_EQ(loaded.size(), data.size());
  for (size_t i = 0; i < data.size(); i++) {
    EXPECT_EQ(loaded[i].oid, data[i].oid);
    EXPECT_EQ(loaded[i].tid, data[i].tid);
    ASSERT_EQ(loaded[i].points.size(), data[i].points.size());
    for (size_t j = 0; j < data[i].points.size(); j++) {
      // The binary format is lossless (Gorilla), so bit-exact.
      EXPECT_EQ(loaded[i].points[j].x, data[i].points[j].x);
      EXPECT_EQ(loaded[i].points[j].y, data[i].points[j].y);
      EXPECT_EQ(loaded[i].points[j].t, data[i].points[j].t);
    }
  }
}

TEST(BinaryIoTest, SmallerThanCsv) {
  const DatasetSpec spec = LorryLikeSpec();
  const auto data = Generate(spec, 50, 46);
  const std::string csv = TestFile("size.csv");
  const std::string bin = TestFile("size.bin");
  ASSERT_TRUE(WriteCsv(csv, data).ok());
  ASSERT_TRUE(WriteBinary(bin, data).ok());
  EXPECT_LT(std::filesystem::file_size(bin),
            std::filesystem::file_size(csv) / 3);
}

TEST(BinaryIoTest, DetectsCorruption) {
  const DatasetSpec spec = LorryLikeSpec();
  const auto data = Generate(spec, 5, 47);
  const std::string path = TestFile("corrupt.bin");
  ASSERT_TRUE(WriteBinary(path, data).ok());
  // Truncate the file.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  std::vector<Trajectory> loaded;
  EXPECT_TRUE(ReadBinary(path, &loaded).IsCorruption());

  // Bad magic.
  FILE* f = fopen(path.c_str(), "r+b");
  fputs("XXXX", f);
  fclose(f);
  EXPECT_TRUE(ReadBinary(path, &loaded).IsCorruption());
}

}  // namespace
}  // namespace tman::traj
