// Fault-injection and crash-recovery harness.
//
// Unlike the other test binaries this one links gtest without gtest_main:
// its main() accepts --seed=N (also used by CI to run extra seeds under the
// sanitizers), which offsets the per-iteration seeds of the randomized
// crash-recovery test so different CI legs explore different fault
// schedules while any single run stays exactly reproducible.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/coding.h"
#include "common/random.h"
#include "common/retry.h"
#include "core/tman.h"
#include "kvstore/db.h"
#include "kvstore/fault_env.h"
#include "kvstore/filename.h"
#include "kvstore/log.h"
#include "kvstore/compaction_filter.h"
#include "kvstore/sst_file_writer.h"
#include "kvstore/write_batch.h"
#include "traj/generator.h"

namespace tman::kv {
namespace {

// Seed base, shifted by --seed on the command line (see main below).
uint64_t g_seed_base = 20260806;

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_fault_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(int i) {
  char buf[16];
  snprintf(buf, sizeof(buf), "key%05d", i);
  return buf;
}

std::string Value(int i) { return "value-" + std::to_string(i); }

// ---------------------------------------------------------------------------
// LogReader end-of-log classification (satellite: recovery must know WHY the
// log ended, not just that it did).

// Writes `payloads` as consecutive records into `path`.
void WriteLog(const std::string& path, const std::vector<std::string>& payloads) {
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(Env::Default()->NewWritableFile(path, &file).ok());
  LogWriter writer(std::move(file));
  for (const auto& p : payloads) {
    ASSERT_TRUE(writer.AddRecord(p).ok());
  }
  ASSERT_TRUE(writer.file()->Sync().ok());
  ASSERT_TRUE(writer.Close().ok());
}

// Reads records until the log ends; returns the payloads seen.
std::vector<std::string> DrainLog(LogReader* reader) {
  std::vector<std::string> out;
  Slice record;
  std::string scratch;
  while (reader->ReadRecord(&record, &scratch)) {
    out.push_back(record.ToString());
  }
  return out;
}

TEST(LogReaderEndTest, CleanEof) {
  const std::string dir = TestDir("log_eof");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  WriteLog(path, {"alpha", "beta", "gamma"});

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_EQ(DrainLog(&reader).size(), 3u);
  EXPECT_EQ(reader.end(), LogReader::End::kEof);
  EXPECT_EQ(reader.records_read(), 3u);
  EXPECT_EQ(reader.bytes_consumed(), std::filesystem::file_size(path));
}

TEST(LogReaderEndTest, TornTailTruncatedPayload) {
  const std::string dir = TestDir("log_torn");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  WriteLog(path, {"alpha", "beta", "gamma"});
  // Cut into the last record's payload: a crash mid-append.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 3);

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_EQ(DrainLog(&reader).size(), 2u);
  EXPECT_EQ(reader.end(), LogReader::End::kTornTail);
}

TEST(LogReaderEndTest, TornTailTruncatedHeader) {
  const std::string dir = TestDir("log_torn_hdr");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  WriteLog(path, {"alpha", "beta"});
  // Leave 3 bytes of the second record's 8-byte header.
  std::filesystem::resize_file(path, 8 + 5 + 3);

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_EQ(DrainLog(&reader).size(), 1u);
  EXPECT_EQ(reader.end(), LogReader::End::kTornTail);
  EXPECT_EQ(reader.bytes_consumed(), 8u + 5u);
}

TEST(LogReaderEndTest, BadCrcMidLogIsBadRecord) {
  const std::string dir = TestDir("log_crc");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  WriteLog(path, {"alpha", "beta", "gamma"});
  {
    // Flip one payload byte of the middle record (offset: rec1 + header).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8 + 5 + 8 + 1);
    char c = 'X';
    f.write(&c, 1);
  }

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_EQ(DrainLog(&reader).size(), 1u);
  EXPECT_EQ(reader.end(), LogReader::End::kBadRecord);
}

TEST(LogReaderEndTest, ImplausibleLengthIsBadRecord) {
  const std::string dir = TestDir("log_len");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  // Hand-build a header claiming a 2 GiB payload.
  std::string raw;
  PutFixed32(&raw, 0xdeadbeef);             // crc (never checked: length wins)
  PutFixed32(&raw, 2u * 1024 * 1024 * 1024);  // implausible length
  raw += "junk";
  std::ofstream(path, std::ios::binary) << raw;

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(Env::Default()->NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_TRUE(DrainLog(&reader).empty());
  EXPECT_EQ(reader.end(), LogReader::End::kBadRecord);
}

TEST(LogReaderEndTest, ReadErrorIsReported) {
  const std::string dir = TestDir("log_readerr");
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/test.log";
  WriteLog(path, {"alpha"});

  FaultInjectionEnv fenv(Env::Default());
  fenv.FailReads("test.log", -1);
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(fenv.NewSequentialFile(path, &file).ok());
  LogReader reader(std::move(file));
  EXPECT_TRUE(DrainLog(&reader).empty());
  EXPECT_EQ(reader.end(), LogReader::End::kReadError);
  EXPECT_FALSE(reader.status().ok());
}

// ---------------------------------------------------------------------------
// WAL recovery: torn tail vs mid-log corruption.

// Opens (and closes) an empty DB at `dir`, then rewrites its (empty) WAL
// with `batches`. Returns the WAL path.
std::string CraftWal(const std::string& dir,
                     const std::vector<WriteBatch>& batches) {
  {
    std::unique_ptr<DB> db;
    Options options;
    EXPECT_TRUE(DB::Open(options, dir, &db).ok());
  }
  std::string wal_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".wal") wal_path = entry.path().string();
  }
  EXPECT_FALSE(wal_path.empty());
  std::unique_ptr<WritableFile> file;
  EXPECT_TRUE(Env::Default()->NewWritableFile(wal_path, &file).ok());
  LogWriter writer(std::move(file));
  for (const auto& b : batches) {
    EXPECT_TRUE(writer.AddRecord(b.rep()).ok());
  }
  EXPECT_TRUE(writer.file()->Sync().ok());
  EXPECT_TRUE(writer.Close().ok());
  return wal_path;
}

std::vector<WriteBatch> ThreeBatches() {
  std::vector<WriteBatch> batches(3);
  for (int i = 0; i < 3; i++) {
    batches[i].Put(Key(i), Value(i));
    batches[i].SetSequence(static_cast<uint64_t>(i) + 1);
  }
  return batches;
}

TEST(WalRecoveryTest, TornTailToleratedInBothModes) {
  for (bool paranoid : {false, true}) {
    const std::string dir =
        TestDir(paranoid ? "wal_torn_paranoid" : "wal_torn");
    const std::string wal = CraftWal(dir, ThreeBatches());
    // Truncate into the third record's payload.
    std::filesystem::resize_file(wal, std::filesystem::file_size(wal) - 2);

    Options options;
    options.paranoid_checks = paranoid;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok()) << "paranoid=" << paranoid;
    std::string value;
    EXPECT_TRUE(db->Get(ReadOptions(), Key(0), &value).ok());
    EXPECT_TRUE(db->Get(ReadOptions(), Key(1), &value).ok());
    EXPECT_TRUE(db->Get(ReadOptions(), Key(2), &value).IsNotFound());
    DB::Stats stats = db->GetStats();
    EXPECT_EQ(stats.wal_torn_tails, 1u);
    EXPECT_EQ(stats.wal_records_recovered, 2u);
    EXPECT_GT(stats.wal_bytes_dropped, 0u);
  }
}

TEST(WalRecoveryTest, MidLogCorruptionParanoidRefuses) {
  const std::string dir = TestDir("wal_midlog_paranoid");
  const std::string wal = CraftWal(dir, ThreeBatches());
  {
    // Flip a payload byte of the SECOND record: corruption mid-log, with a
    // valid record after it.
    std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
    uint64_t rec1 = 8 + ThreeBatches()[0].rep().size();
    f.seekp(static_cast<std::streamoff>(rec1 + 8 + 3));
    char c = 0x7f;
    f.write(&c, 1);
  }
  Options options;
  options.paranoid_checks = true;
  std::unique_ptr<DB> db;
  Status s = DB::Open(options, dir, &db);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(WalRecoveryTest, MidLogCorruptionDefaultDropsTailAndCounts) {
  const std::string dir = TestDir("wal_midlog_default");
  const std::string wal = CraftWal(dir, ThreeBatches());
  {
    std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
    uint64_t rec1 = 8 + ThreeBatches()[0].rep().size();
    f.seekp(static_cast<std::streamoff>(rec1 + 8 + 3));
    char c = 0x7f;
    f.write(&c, 1);
  }
  Options options;  // paranoid_checks = false
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), Key(0), &value).ok());
  // Everything at and after the corrupt record is dropped (consistent
  // prefix), and the drop is accounted.
  EXPECT_TRUE(db->Get(ReadOptions(), Key(1), &value).IsNotFound());
  EXPECT_TRUE(db->Get(ReadOptions(), Key(2), &value).IsNotFound());
  DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.wal_records_recovered, 1u);
  EXPECT_GT(stats.wal_bytes_dropped, 0u);
}

// ---------------------------------------------------------------------------
// MANIFEST recovery edge cases (satellite c): a damaged directory must
// surface Corruption from Open — never crash, never silently open empty.

TEST(ManifestRecoveryTest, TruncatedManifestIsCorruption) {
  const std::string dir = TestDir("manifest_trunc");
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), Key(1), Value(1)).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  std::filesystem::resize_file(ManifestFileName(dir), 3);
  std::unique_ptr<DB> db;
  Status s = DB::Open(Options(), dir, &db);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(ManifestRecoveryTest, BadLevelCountIsCorruption) {
  const std::string dir = TestDir("manifest_levels");
  std::filesystem::create_directories(dir);
  // A structurally valid record (good CRC) with an absurd level count.
  std::string record;
  PutVarint64(&record, 10);  // next_file
  PutVarint64(&record, 0);   // last_sequence
  PutVarint64(&record, 0);   // wal_number
  PutVarint32(&record, 4096);  // num_levels: implausible
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(
      Env::Default()->NewWritableFile(ManifestFileName(dir), &file).ok());
  LogWriter writer(std::move(file));
  ASSERT_TRUE(writer.AddRecord(record).ok());
  ASSERT_TRUE(writer.Close().ok());

  std::unique_ptr<DB> db;
  Status s = DB::Open(Options(), dir, &db);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("level count"), std::string::npos);
}

TEST(ManifestRecoveryTest, MissingReferencedTableIsCorruption) {
  const std::string dir = TestDir("manifest_missing_sst");
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
    for (int i = 0; i < 10; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(i), Value(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Remove the table the MANIFEST references.
  bool removed = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") {
      std::filesystem::remove(entry.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);
  std::unique_ptr<DB> db;
  Status s = DB::Open(Options(), dir, &db);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_NE(s.ToString().find("missing table file"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SSTable integrity verification.

TEST(VerifyIntegrityTest, CleanStorePassesAndCountsBlocks) {
  const std::string dir = TestDir("verify_clean");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  DB::IntegrityReport report;
  ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
  EXPECT_GE(report.files_checked, 1u);
  EXPECT_GE(report.blocks_checked, 1u);
  EXPECT_EQ(report.files_corrupt, 0u);
}

TEST(VerifyIntegrityTest, DetectsOnDiskBitFlip) {
  const std::string dir = TestDir("verify_flip");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  // Flip a byte inside the first data block of the (open) SSTable. The
  // verifier bypasses the block cache, so the damage is visible.
  std::string sst;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") sst = entry.path().string();
  }
  ASSERT_FALSE(sst.empty());
  {
    std::fstream f(sst, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(17);
    char c = 0x55;
    f.write(&c, 1);
  }
  DB::IntegrityReport report;
  Status s = db->VerifyIntegrity(&report);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  EXPECT_EQ(report.files_corrupt, 1u);
}

// ---------------------------------------------------------------------------
// ENOSPC during flush -> Resume() restores service (tentpole headline #2).

TEST(ResumeTest, EnospcDuringFlushThenResume) {
  const std::string dir = TestDir("resume_enospc");
  FaultInjectionEnv fenv(Env::Default(), g_seed_base);
  Options options;
  options.env = &fenv;
  options.write_buffer_size = 4 * 1024;  // freeze early
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  // Every SSTable build hits ENOSPC: the background flush fails and the
  // error sticks.
  fenv.NoSpaceAppends(".sst", -1);
  int acked = 0;
  Status s;
  for (int i = 0; i < 20000; i++) {
    s = db->Put(WriteOptions(), Key(i), Value(i));
    if (!s.ok()) break;
    acked++;
  }
  ASSERT_FALSE(s.ok()) << "writes never hit the sticky flush error";
  EXPECT_NE(s.ToString().find("No space left"), std::string::npos)
      << s.ToString();

  // "Disk space freed": the same flush now succeeds and service resumes.
  fenv.ClearFaults();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_EQ(db->GetStats().resume_count, 1u);

  // Every acknowledged write survived the outage.
  for (int i = 0; i < acked; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok()) << Key(i);
    EXPECT_EQ(value, Value(i));
  }
  ASSERT_TRUE(db->Put(WriteOptions(), Key(acked), Value(acked)).ok());
  ASSERT_TRUE(db->Flush().ok());

  // Resume() on a healthy store is a no-op that reports OK.
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_EQ(db->GetStats().resume_count, 1u);
}

TEST(ResumeTest, CorruptionIsNotResumable) {
  const std::string dir = TestDir("resume_corrupt");
  FaultInjectionEnv fenv(Env::Default(), g_seed_base);
  Options options;
  options.env = &fenv;
  options.write_buffer_size = 4 * 1024;
  options.l0_compaction_trigger = 1;  // compact (and so read) eagerly
  options.block_cache_bytes = 512;    // force disk reads
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // A compaction read that returns corrupt data must stick as Corruption,
  // and Resume() must refuse to clear it.
  fenv.CorruptReads(".sst", -1);
  Status s = db->CompactAll();
  if (s.ok()) {
    // Nothing to compact at this shape; force a reopen-time corruption
    // instead via VerifyIntegrity to keep the invariant covered.
    DB::IntegrityReport report;
    s = db->VerifyIntegrity(&report);
  }
  ASSERT_FALSE(s.ok());
  fenv.ClearFaults();
}

// ---------------------------------------------------------------------------
// Randomized crash-recovery harness (tentpole headline #1).
//
// Each iteration: seeded write workload with a mix of sync and async
// acknowledged writes (and occasional explicit flushes), a simulated power
// loss at a random point (un-synced bytes dropped, possibly leaving a torn
// WAL tail), reopen with paranoid checks on, then verify the durability
// contract:
//
//   1. every write acknowledged with sync=true is present;
//   2. the surviving writes form a contiguous PREFIX of the issued
//      sequence (no holes: a lost write implies everything after it is
//      lost too);
//   3. no spurious keys exist;
//   4. the reopened store passes VerifyIntegrity and accepts writes.
//
// CI runs this with 100 iterations per seed (kCrashIterations), and the
// sanitizer legs repeat it under --seed=1/2/3.

constexpr int kCrashIterations = 100;

TEST(CrashRecoveryTest, RandomizedCrashesKeepDurabilityContract) {
  const std::string base = TestDir("crash_harness");
  std::filesystem::create_directories(base);

  for (int iter = 0; iter < kCrashIterations; iter++) {
    SCOPED_TRACE("iteration " + std::to_string(iter) + " seed base " +
                 std::to_string(g_seed_base));
    const uint64_t seed = g_seed_base * 1000 + static_cast<uint64_t>(iter);
    Random rng(seed);
    const std::string dir = base + "/iter" + std::to_string(iter);
    std::filesystem::remove_all(dir);

    FaultInjectionEnv fenv(Env::Default(), seed);
    Options options;
    options.env = &fenv;
    options.paranoid_checks = true;
    options.write_buffer_size = 2 * 1024;  // rotate WALs often
    options.block_cache_bytes = 4 * 1024;

    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());

    const int num_ops = 30 + static_cast<int>(rng.Uniform(120));
    const int crash_at = static_cast<int>(rng.Uniform(num_ops + 1));
    int last_synced = -1;  // highest index acknowledged with sync=true
    int issued = 0;
    for (int i = 0; i < num_ops; i++) {
      if (i == crash_at) {
        fenv.Crash();
        break;
      }
      WriteOptions wo;
      wo.sync = rng.Bernoulli(0.3);
      Status s = db->Put(wo, Key(i), Value(i));
      ASSERT_TRUE(s.ok()) << "pre-crash write failed: " << s.ToString();
      issued = i + 1;
      if (wo.sync) last_synced = i;
      if (rng.Bernoulli(0.05)) {
        ASSERT_TRUE(db->Flush().ok());
        last_synced = i;  // flush persists everything written so far
      }
    }
    if (!fenv.crashed()) fenv.Crash();

    // Power loss: the process dies (destructor I/O fails harmlessly), then
    // the disk keeps only what was synced, plus a torn tail.
    db.reset();
    ASSERT_TRUE(fenv.DropUnsyncedAndReset().ok());

    // Reopen must succeed even in paranoid mode: crashes tear tails, they
    // do not corrupt the middle of logs.
    Status open_s = DB::Open(options, dir, &db);
    ASSERT_TRUE(open_s.ok()) << open_s.ToString();

    // Durability contract.
    int present_prefix = 0;
    bool in_prefix = true;
    for (int i = 0; i < issued; i++) {
      std::string value;
      Status s = db->Get(ReadOptions(), Key(i), &value);
      if (s.ok()) {
        ASSERT_TRUE(in_prefix) << "hole before surviving key " << Key(i);
        EXPECT_EQ(value, Value(i));
        present_prefix = i + 1;
      } else {
        ASSERT_TRUE(s.IsNotFound()) << s.ToString();
        in_prefix = false;
      }
    }
    EXPECT_GT(present_prefix, last_synced)
        << "a sync-acknowledged write was lost";

    // No spurious keys: the store holds exactly the surviving prefix.
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    int count = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) count++;
    ASSERT_TRUE(it->status().ok());
    EXPECT_EQ(count, present_prefix);

    // The survivor is a fully serviceable store.
    DB::IntegrityReport report;
    ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
    ASSERT_TRUE(db->Put(WriteOptions(), Key(issued), Value(issued)).ok());
    ASSERT_TRUE(db->Flush().ok());
    db.reset();
    std::filesystem::remove_all(dir);
  }
}

TEST(CrashRecoveryTest, CrashMidBulkIngestLeavesConsistentVersion) {
  const std::string dir = TestDir("crash_ingest");
  FaultInjectionEnv fenv(Env::Default(), g_seed_base);
  Options options;
  options.env = &fenv;
  options.paranoid_checks = true;

  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), Value(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());  // durable baseline

  // Build the external file (disjoint range), fully synced by Finish.
  const std::string ext = dir + "/bulk-7.tmp";
  {
    SstFileWriter writer(options);
    ASSERT_TRUE(writer.Open(ext).ok());
    for (int i = 1000; i < 1100; i++) {
      ASSERT_TRUE(writer.Put(Key(i), Value(i)).ok());
    }
    ExternalSstFileInfo info;
    ASSERT_TRUE(writer.Finish(&info).ok());
  }

  // Power loss strikes before the ingest can copy + install the file: the
  // ingest fails, the un-installed temp stays behind on disk.
  fenv.Crash();
  DB::IngestOptions io;
  EXPECT_FALSE(db->IngestExternalFile(io, ext).ok());
  db.reset();
  ASSERT_TRUE(fenv.DropUnsyncedAndReset().ok());

  // Model the worst torn install: the copy reached its final numbered name
  // (and even a number ABOVE the persisted next-file counter) but the
  // MANIFEST commit never happened.
  const std::string orphan = TableFileName(dir, 424242);
  std::filesystem::copy_file(ext, orphan);
  ASSERT_TRUE(fenv.FileExists(ext));
  ASSERT_TRUE(fenv.FileExists(orphan));

  // Reopen: the version must be exactly the pre-ingest state, the temp
  // swept, and the orphan numbered file collected (EnsureFileNumberFloor
  // pushes the GC horizon above it, so it can never collide with a future
  // allocation either).
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  EXPECT_FALSE(fenv.FileExists(ext)) << "leftover bulk temp not swept";
  EXPECT_FALSE(fenv.FileExists(orphan)) << "orphan ingest copy not GC-ed";
  for (int i = 0; i < 50; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok());
    EXPECT_EQ(value, Value(i));
  }
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), Key(1000), &value).IsNotFound());
  DB::IntegrityReport report;
  ASSERT_TRUE(db->VerifyIntegrity(&report).ok());

  // The store keeps working: a retried bulk build + ingest now succeeds
  // and survives a clean reopen.
  {
    SstFileWriter writer(options);
    ASSERT_TRUE(writer.Open(ext).ok());
    for (int i = 1000; i < 1100; i++) {
      ASSERT_TRUE(writer.Put(Key(i), Value(i)).ok());
    }
    ExternalSstFileInfo info;
    ASSERT_TRUE(writer.Finish(&info).ok());
  }
  io.move_file = true;
  ASSERT_TRUE(db->IngestExternalFile(io, ext).ok());
  ASSERT_TRUE(db->Get(ReadOptions(), Key(1050), &value).ok());
  db.reset();
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  ASSERT_TRUE(db->Get(ReadOptions(), Key(1050), &value).ok());
  EXPECT_EQ(value, Value(1050));
}

TEST(CrashRecoveryTest, RandomizedCrashesWithIngestAndTtl) {
  // The randomized harness again, now with bulk ingests mixed into the
  // write stream and a TTL-style compaction filter armed (it never matches
  // these values, so it must never change observable state — it exercises
  // the filter path under compaction during recovery-heavy workloads).
  const std::string base = TestDir("crash_ingest_rand");
  std::filesystem::create_directories(base);

  class NeverDrop : public CompactionFilter {
   public:
    const char* Name() const override { return "test.never"; }
    bool ShouldDrop(int, const Slice&, const Slice& value) const override {
      return value == Slice("expired-marker-never-written");
    }
  };
  NeverDrop filter;

  for (int iter = 0; iter < 6; iter++) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const uint64_t seed = g_seed_base * 77 + static_cast<uint64_t>(iter);
    Random rng(seed);
    const std::string dir = base + "/iter" + std::to_string(iter);
    std::filesystem::remove_all(dir);

    FaultInjectionEnv fenv(Env::Default(), seed);
    Options options;
    options.env = &fenv;
    options.write_buffer_size = 2 * 1024;
    options.compaction_filter = &filter;

    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());

    // Interleave normal synced writes with bulk ingests of disjoint high key
    // ranges, then crash at a random point.
    int ingests_done = 0;
    const int num_rounds = 3 + static_cast<int>(rng.Uniform(4));
    const int crash_round = static_cast<int>(rng.Uniform(num_rounds + 1));
    int synced_rows = 0;
    for (int r = 0; r < num_rounds; r++) {
      if (r == crash_round) {
        fenv.Crash();
        break;
      }
      for (int i = synced_rows; i < synced_rows + 20; i++) {
        WriteOptions wo;
        wo.sync = true;
        ASSERT_TRUE(db->Put(wo, Key(i), Value(i)).ok());
      }
      synced_rows += 20;
      const std::string ext =
          dir + "/bulk-" + std::to_string(r) + ".tmp";
      SstFileWriter writer(options);
      ASSERT_TRUE(writer.Open(ext).ok());
      for (int i = 0; i < 30; i++) {
        const int k = 10000 + r * 100 + i;
        ASSERT_TRUE(writer.Put(Key(k), Value(k)).ok());
      }
      ExternalSstFileInfo info;
      ASSERT_TRUE(writer.Finish(&info).ok());
      DB::IngestOptions io;
      io.move_file = true;
      ASSERT_TRUE(db->IngestExternalFile(io, ext).ok());
      ingests_done = r + 1;
      if (rng.Bernoulli(0.3)) ASSERT_TRUE(db->CompactAll().ok());
    }
    if (!fenv.crashed()) fenv.Crash();
    db.reset();
    ASSERT_TRUE(fenv.DropUnsyncedAndReset().ok());

    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    // Every acknowledged synced write and every completed ingest survives.
    for (int i = 0; i < synced_rows; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), Key(i), &value).ok())
          << "lost synced row " << Key(i);
      EXPECT_EQ(value, Value(i));
    }
    for (int r = 0; r < ingests_done; r++) {
      for (int i = 0; i < 30; i++) {
        const int k = 10000 + r * 100 + i;
        std::string value;
        ASSERT_TRUE(db->Get(ReadOptions(), Key(k), &value).ok())
            << "lost ingested row " << Key(k);
        EXPECT_EQ(value, Value(k));
      }
    }
    DB::IntegrityReport report;
    ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
    db.reset();
    std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace tman::kv

// ---------------------------------------------------------------------------
// Cluster-level degradation and retry.

namespace tman::cluster {
namespace {

std::string ClusterDir(const std::string& name) {
  std::string dir =
      std::string(::testing::TempDir()) + "tman_fault_cluster_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ShardKey(uint8_t shard, uint64_t value) {
  std::string key(1, static_cast<char>(shard));
  PutBigEndian64(&key, value);
  return key;
}

class CountingSink : public kv::RowSink {
 public:
  bool Accept(const Slice& key, const Slice& value) override {
    (void)key;
    (void)value;
    rows_++;
    return true;
  }
  uint64_t rows() const { return rows_; }

 private:
  uint64_t rows_ = 0;
};

constexpr int kShards = 4;
constexpr uint64_t kRowsPerShard = 100;

// Builds a 4-shard table on a FaultInjectionEnv with all rows flushed to
// SSTables (reads must touch disk for injected read faults to fire).
void LoadTable(Cluster* cluster, ClusterTable** table) {
  ASSERT_TRUE(cluster->CreateTable("t", kShards).ok());
  *table = cluster->GetTable("t");
  std::vector<Row> rows;
  for (uint8_t shard = 0; shard < kShards; shard++) {
    for (uint64_t v = 0; v < kRowsPerShard; v++) {
      rows.push_back(Row{ShardKey(shard, v), "payload"});
    }
  }
  ASSERT_TRUE((*table)->BatchPut(rows).ok());
  ASSERT_TRUE((*table)->Flush().ok());
}

TEST(ClusterDegradedTest, StrictScanReportsFailedRegion) {
  kv::FaultInjectionEnv fenv(kv::Env::Default());
  kv::Options options;
  options.env = &fenv;
  options.block_cache_bytes = 1024;  // keep reads on disk
  Cluster cluster(ClusterDir("strict"), 2, options);
  ClusterTable* table = nullptr;
  ASSERT_NO_FATAL_FAILURE(LoadTable(&cluster, &table));

  fenv.FailReads("/t/shard2/", -1);
  CountingSink sink;
  kv::ScanStats stats;
  ScanOutcome outcome;
  Status s = table->ParallelScan({KeyRange{"", ""}}, nullptr, 0, &sink, &stats,
                                 nullptr, &outcome);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(outcome.regions_attempted, 4u);
  EXPECT_EQ(outcome.regions_failed, 1u);
  ASSERT_EQ(outcome.region_errors.size(), 1u);
  EXPECT_EQ(outcome.region_errors[0].first, 2);
  EXPECT_EQ(outcome.retries, 0u);
  // The three healthy regions still delivered their rows.
  EXPECT_EQ(sink.rows(), 3 * kRowsPerShard);
  fenv.ClearFaults();
}

TEST(ClusterDegradedTest, RetryPolicyHealsTransientFault) {
  kv::FaultInjectionEnv fenv(kv::Env::Default());
  kv::Options options;
  options.env = &fenv;
  options.block_cache_bytes = 1024;
  Cluster cluster(ClusterDir("retry"), 2, options);
  ClusterTable* table = nullptr;
  ASSERT_NO_FATAL_FAILURE(LoadTable(&cluster, &table));

  RetryPolicy policy;
  policy.max_retries = 3;
  policy.initial_backoff_micros = 100;
  table->set_retry_policy(policy);

  // One read on shard1 fails, then the fault disarms: a retry succeeds.
  fenv.FailReads("/t/shard1/", 1);
  CountingSink sink;
  kv::ScanStats stats;
  ScanOutcome outcome;
  Status s = table->ParallelScan({KeyRange{"", ""}}, nullptr, 0, &sink, &stats,
                                 nullptr, &outcome);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(outcome.retries, 1u);
  EXPECT_EQ(outcome.regions_failed, 0u);
  EXPECT_EQ(sink.rows(), static_cast<uint64_t>(kShards) * kRowsPerShard);

  // MultiScan path, same contract.
  fenv.FailReads("/t/shard3/", 1);
  CountingSink msink;
  kv::ScanStats mstats;
  ScanOutcome moutcome;
  s = table->MultiScan({KeyRange{"", ""}}, nullptr, 0, &msink, &mstats,
                       nullptr, nullptr, &moutcome);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(moutcome.retries, 1u);
  EXPECT_EQ(moutcome.regions_failed, 0u);
  EXPECT_EQ(msink.rows(), static_cast<uint64_t>(kShards) * kRowsPerShard);
  fenv.ClearFaults();
}

TEST(ClusterDegradedTest, FlushAttemptsEveryRegionAndAnnotatesError) {
  kv::FaultInjectionEnv fenv(kv::Env::Default());
  kv::Options options;
  options.env = &fenv;
  Cluster cluster(ClusterDir("flushall"), 2, options);
  ASSERT_TRUE(cluster.CreateTable("t", kShards).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint8_t shard = 0; shard < kShards; shard++) {
    ASSERT_TRUE(table->Put(ShardKey(shard, 1), "v").ok());
  }

  // Shard 3's SSTable build hits ENOSPC; the other regions must still
  // flush, and the error must say how far the operation got.
  fenv.NoSpaceAppends("/t/shard3/", -1);
  Status s = table->Flush();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("3 of 4 regions succeeded"), std::string::npos)
      << s.ToString();

  fenv.ClearFaults();
  ASSERT_TRUE(table->Flush().ok());
  ASSERT_TRUE(table->CompactAll().ok());
}

}  // namespace
}  // namespace tman::cluster

// ---------------------------------------------------------------------------
// End-to-end: degraded-mode queries through TMan (tentpole part 3).

namespace tman::core {
namespace {

std::string CoreDir(const std::string& name) {
  std::string dir =
      std::string(::testing::TempDir()) + "tman_fault_core_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TManOptions FaultOptions(const traj::DatasetSpec& spec,
                         kv::FaultInjectionEnv* fenv) {
  TManOptions options;
  options.bounds = spec.bounds;
  options.primary = PrimaryIndexKind::kTemporal;  // direct primary scans
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.xzt.origin = 0;
  options.num_shards = 4;
  options.num_servers = 2;
  options.genetic.generations = 5;
  options.kv.env = fenv;
  options.kv.write_buffer_size = 64 * 1024;
  options.kv.block_cache_bytes = 1024;  // query reads must touch disk
  return options;
}

class TManDegradedTest : public ::testing::Test {
 protected:
  void Load(const std::string& dir, const TManOptions& options) {
    spec_ = traj::TDriveLikeSpec();
    data_ = traj::Generate(spec_, 120, 7);
    ASSERT_TRUE(TMan::Open(options, dir, &tman_).ok());
    ASSERT_TRUE(tman_->BulkLoad(data_).ok());
    ASSERT_TRUE(tman_->Flush().ok());
    // Quiesce maintenance so injected faults only hit the query path.
    ASSERT_TRUE(tman_->CompactAll().ok());
  }

  // Declared before tman_: members destroy in reverse order, so the TMan
  // instance (whose close path still performs I/O through the env) goes
  // away first.
  kv::FaultInjectionEnv fenv_{kv::Env::Default()};
  traj::DatasetSpec spec_;
  std::vector<traj::Trajectory> data_;
  std::unique_ptr<TMan> tman_;
};

TEST_F(TManDegradedTest, StrictFailsDegradedReturnsPartial) {
  kv::FaultInjectionEnv& fenv = fenv_;
  ASSERT_NO_FATAL_FAILURE(
      Load(CoreDir("degraded"), FaultOptions(traj::TDriveLikeSpec(), &fenv)));

  const int64_t ts = spec_.t0;
  const int64_t te = spec_.t0 + spec_.horizon_seconds;

  // Baseline (no faults): the full answer, and it must read storage.
  std::vector<traj::Trajectory> baseline;
  ASSERT_TRUE(tman_->TemporalRangeQuery(ts, te, &baseline).ok());
  ASSERT_GT(baseline.size(), 0u);

  // One primary region dies (unbounded read faults).
  fenv.FailReads("primary/shard1/", -1);

  // Strict mode (default): the query surfaces the region error.
  std::vector<traj::Trajectory> out;
  QueryStats stats;
  Status s = tman_->TemporalRangeQuery(ts, te, &out, &stats);
  ASSERT_FALSE(s.ok());
  EXPECT_FALSE(stats.degraded);

  // Degraded mode: partial results, loss accounted.
  out.clear();
  QueryStats dstats;
  QueryOptions qopts;
  qopts.allow_degraded = true;
  qopts.trace = true;
  s = tman_->TemporalRangeQuery(ts, te, &out, &dstats, qopts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(dstats.degraded);
  EXPECT_EQ(dstats.regions_failed, 1u);
  EXPECT_LT(out.size(), baseline.size());
  // EXPLAIN ANALYZE carries the failure annotations.
  ASSERT_NE(dstats.trace, nullptr);
  const std::string rendered = dstats.trace->Render();
  EXPECT_NE(rendered.find("regions_failed"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("degraded"), std::string::npos) << rendered;

  fenv.ClearFaults();
}

TEST_F(TManDegradedTest, RegionRetryHealsTransientFaultWithoutDegrading) {
  kv::FaultInjectionEnv& fenv = fenv_;
  TManOptions options = FaultOptions(traj::TDriveLikeSpec(), &fenv);
  options.region_retry.max_retries = 3;
  options.region_retry.initial_backoff_micros = 100;
  ASSERT_NO_FATAL_FAILURE(Load(CoreDir("retryheal"), options));

  const int64_t ts = spec_.t0;
  const int64_t te = spec_.t0 + spec_.horizon_seconds;

  // A transient fault: the first read of primary/shard1 fails, then heals.
  fenv.FailReads("primary/shard1/", 1);
  std::vector<traj::Trajectory> out;
  QueryStats stats;
  Status s = tman_->TemporalRangeQuery(ts, te, &out, &stats);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.regions_failed, 0u);

  // Same answer as the fault-free run.
  fenv.ClearFaults();
  std::vector<traj::Trajectory> baseline;
  ASSERT_TRUE(tman_->TemporalRangeQuery(ts, te, &baseline).ok());
  EXPECT_EQ(out.size(), baseline.size());
}

}  // namespace
}  // namespace tman::core

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      tman::kv::g_seed_base = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      tman::kv::g_seed_base = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  printf("fault_injection_test seed base: %llu\n",
         static_cast<unsigned long long>(tman::kv::g_seed_base));
  return RUN_ALL_TESTS();
}
