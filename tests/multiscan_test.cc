#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "kvstore/db.h"
#include "kvstore/scan_filter.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_mscan_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(uint32_t n) {
  char buf[16];
  snprintf(buf, sizeof(buf), "k%08u", n);
  return buf;
}

// Accepts rows whose value ends in an even digit (exercises push-down on
// both paths identically).
class EvenValueFilter : public ScanFilter {
 public:
  bool Matches(const Slice& key, const Slice& value) const override {
    (void)key;
    if (value.empty()) return false;
    return (value[value.size() - 1] - '0') % 2 == 0;
  }
};

// Collects rows and optionally stops after `stop_after` accepts (0 = never).
class RecordingSink : public RowSink {
 public:
  explicit RecordingSink(size_t stop_after = 0) : stop_after_(stop_after) {}

  bool Accept(const Slice& key, const Slice& value) override {
    if (stopped_) return false;  // "stopped" is sticky, like a stopped batch
    rows.emplace_back(key.ToString(), value.ToString());
    if (stop_after_ != 0 && rows.size() >= stop_after_) {
      stopped_ = true;
      return false;
    }
    return true;
  }

  bool stopped() const { return stopped_; }

  std::vector<std::pair<std::string, std::string>> rows;

 private:
  size_t stop_after_;
  bool stopped_ = false;
};

// The reference semantics MultiScan must reproduce byte for byte: one
// DB::Scan per window, in order, sharing one sink; a sink stop ends the
// whole sequence.
void SequentialScans(DB* db, const std::vector<ScanWindow>& windows,
                     const ScanFilter* filter, size_t limit,
                     RecordingSink* sink, ScanStats* stats) {
  for (const ScanWindow& w : windows) {
    if (sink->stopped()) break;
    ASSERT_TRUE(
        db->Scan(ReadOptions(), w.start, w.end, filter, limit, sink, stats)
            .ok());
  }
}

// Loads a DB whose snapshot spans every storage tier: compacted levels,
// L0 tables, and the live memtable (plus overwrites and tombstones so the
// version-collapsing logic is on the differential path too).
void LoadTieredDB(DB* db, uint32_t n, Random* rng) {
  auto put_range = [&](uint32_t lo, uint32_t hi) {
    for (uint32_t i = lo; i < hi; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), Key(i),
                          "v" + std::to_string(rng->Uniform(1000)))
                      .ok());
    }
  };
  // Tier 1: compacted down.
  put_range(0, n / 2);
  ASSERT_TRUE(db->CompactAll().ok());
  // Tier 2: L0 only, overwriting a slice of tier 1.
  put_range(n / 3, (n * 3) / 4);
  ASSERT_TRUE(db->Flush().ok());
  // Tier 3: memtable, with deletions punched into the older tiers.
  put_range((n * 2) / 3, n);
  for (uint32_t i = 0; i < n; i += 17) {
    ASSERT_TRUE(db->Delete(WriteOptions(), Key(i)).ok());
  }
}

std::vector<std::string> MakeWindowKeys(uint32_t n, size_t num_windows,
                                        Random* rng) {
  std::vector<std::string> keys;
  keys.reserve(num_windows * 2);
  for (size_t i = 0; i < num_windows * 2; i++) {
    keys.push_back(Key(static_cast<uint32_t>(rng->Uniform(n + n / 10))));
  }
  return keys;
}

TEST(MultiScanTest, RandomizedDifferentialAgainstSequentialScans) {
  const std::string dir = TestDir("diff");
  Options options;
  options.write_buffer_size = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  Random rng(20260806);
  LoadTieredDB(db.get(), 4000, &rng);

  EvenValueFilter filter;
  for (int round = 0; round < 12; round++) {
    const size_t num_windows = 1 + rng.Uniform(96);
    std::vector<std::string> keys = MakeWindowKeys(4000, num_windows, &rng);
    std::vector<ScanWindow> windows;
    const bool sorted = round % 2 == 0;
    if (sorted) std::sort(keys.begin(), keys.end());
    for (size_t i = 0; i + 1 < keys.size(); i += 2) {
      Slice a(keys[i]), b(keys[i + 1]);
      if (sorted || a.compare(b) <= 0) {
        windows.push_back(ScanWindow{a, b});
      } else {
        windows.push_back(ScanWindow{b, a});
      }
    }
    if (round % 3 == 0 && !windows.empty()) {
      windows.back().end = Slice();  // one unbounded window per third round
    }
    const ScanFilter* f = round % 2 == 0 ? &filter : nullptr;
    const size_t limit = rng.Uniform(3) == 0 ? 1 + rng.Uniform(20) : 0;

    RecordingSink expected;
    ScanStats expected_stats;
    SequentialScans(db.get(), windows, f, limit, &expected, &expected_stats);

    RecordingSink actual;
    ScanStats actual_stats;
    MultiScanPerf perf;
    ASSERT_TRUE(db->MultiScan(ReadOptions(), windows, f, limit, &actual,
                              &actual_stats, &perf)
                    .ok());

    ASSERT_EQ(expected.rows, actual.rows) << "round " << round;
    EXPECT_EQ(expected_stats.scanned, actual_stats.scanned);
    EXPECT_EQ(expected_stats.matched, actual_stats.matched);
    EXPECT_EQ(perf.windows, windows.size());
    EXPECT_EQ(perf.seeks_issued + perf.seeks_saved, windows.size());
  }
}

TEST(MultiScanTest, SortedWindowsSaveSeeks) {
  const std::string dir = TestDir("seeksave");
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (uint32_t i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "v").ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  // Sorted, non-overlapping, back-to-back windows: after the first Seek the
  // cursor is always inside the next window already.
  std::vector<std::string> keys;
  for (uint32_t i = 0; i < 3000; i += 100) keys.push_back(Key(i));
  std::vector<ScanWindow> windows;
  for (size_t i = 0; i + 1 < keys.size(); i++) {
    windows.push_back(ScanWindow{Slice(keys[i]), Slice(keys[i + 1])});
  }

  RecordingSink sink;
  MultiScanPerf perf;
  ASSERT_TRUE(db->MultiScan(ReadOptions(), windows, nullptr, 0, &sink,
                            nullptr, &perf)
                  .ok());
  EXPECT_EQ(sink.rows.size(), 2900u);  // [0, 2900) contiguous
  EXPECT_EQ(perf.seeks_issued, 1u);  // only the very first window seeks
  EXPECT_EQ(perf.seeks_saved, windows.size() - 1);
  EXPECT_GT(perf.block_reuse + perf.blocks_readahead, 0u);

  // An exhausted cursor proves later in-order windows empty with no seeks.
  std::string past1 = Key(5000), past2 = Key(6000), past3 = Key(7000);
  std::vector<ScanWindow> past = {{Slice(keys.back()), Slice(past1)},
                                  {Slice(past1), Slice(past2)},
                                  {Slice(past2), Slice(past3)}};
  RecordingSink tail_sink;
  MultiScanPerf tail_perf;
  ASSERT_TRUE(db->MultiScan(ReadOptions(), past, nullptr, 0, &tail_sink,
                            nullptr, &tail_perf)
                  .ok());
  EXPECT_EQ(tail_sink.rows.size(), 100u);  // [2900, 3000)
  EXPECT_EQ(tail_perf.seeks_issued, 1u);
  EXPECT_EQ(tail_perf.seeks_saved, 2u);
}

TEST(MultiScanTest, MidScanFlushDoesNotPerturbSnapshot) {
  const std::string dir = TestDir("midflush");
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  Random rng(7);
  LoadTieredDB(db.get(), 2000, &rng);

  std::string lo = Key(0), hi = Key(2000);
  std::vector<ScanWindow> windows = {{Slice(lo), Slice(hi)}};
  RecordingSink expected;
  SequentialScans(db.get(), windows, nullptr, 0, &expected, nullptr);
  ASSERT_FALSE(expected.rows.empty());

  // Sink that mutates and flushes the DB mid-scan: the running MultiScan
  // reads its own snapshot, so the result must be unchanged.
  class FlushingSink : public RowSink {
   public:
    FlushingSink(DB* db, size_t flush_at) : db_(db), flush_at_(flush_at) {}
    bool Accept(const Slice& key, const Slice& value) override {
      rows.emplace_back(key.ToString(), value.ToString());
      if (rows.size() == flush_at_) {
        EXPECT_TRUE(db_->Put(WriteOptions(), "k00000500", "mutated").ok());
        EXPECT_TRUE(db_->Delete(WriteOptions(), "k00001500").ok());
        EXPECT_TRUE(db_->Flush().ok());
      }
      return true;
    }
    std::vector<std::pair<std::string, std::string>> rows;

   private:
    DB* db_;
    size_t flush_at_;
  };

  FlushingSink actual(db.get(), expected.rows.size() / 2);
  ASSERT_TRUE(
      db->MultiScan(ReadOptions(), windows, nullptr, 0, &actual, nullptr)
          .ok());
  ASSERT_EQ(expected.rows, actual.rows);
}

TEST(MultiScanTest, DifferentialUnderConcurrentBackgroundWork) {
  const std::string dir = TestDir("concurrent");
  Options options;
  options.write_buffer_size = 32 * 1024;  // frequent flush/compaction churn
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (uint32_t i = 0; i < 1500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), Key(i), "stable" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  // Reference result over the stable "k........" keyspace, computed before
  // any concurrent writer starts.
  std::vector<std::string> keys;
  for (uint32_t i = 0; i < 1500; i += 50) keys.push_back(Key(i));
  std::vector<ScanWindow> windows;
  for (size_t i = 0; i + 1 < keys.size(); i++) {
    windows.push_back(ScanWindow{Slice(keys[i]), Slice(keys[i + 1])});
  }
  RecordingSink expected;
  SequentialScans(db.get(), windows, nullptr, 0, &expected, nullptr);

  // Writers churn a disjoint prefix ("z...") hard enough to keep background
  // flushes and compactions running while the scans execute.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; t++) {
    writers.emplace_back([&db, &stop, t] {
      Random wrng(100 + t);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string key = "z" + std::to_string(t) + "-" +
                          std::to_string(wrng.Uniform(4096));
        EXPECT_TRUE(db->Put(WriteOptions(), key,
                            std::string(256, 'x') + std::to_string(i++))
                        .ok());
      }
    });
  }

  for (int round = 0; round < 25; round++) {
    RecordingSink actual;
    MultiScanPerf perf;
    ASSERT_TRUE(db->MultiScan(ReadOptions(), windows, nullptr, 0, &actual,
                              nullptr, &perf)
                    .ok());
    ASSERT_EQ(expected.rows, actual.rows) << "round " << round;
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// ---------------------------------------------------------------------------
// Cluster layer

TEST(ClusterMultiScanTest, MatchesParallelScan) {
  const std::string dir = TestDir("cluster");
  kv::Options kv_options;
  cluster::Cluster cluster_inst(dir, 3, kv_options);
  ASSERT_TRUE(cluster_inst.CreateTable("t", 4).ok());
  cluster::ClusterTable* table = cluster_inst.GetTable("t");
  Random rng(99);
  std::vector<cluster::Row> rows;
  for (int i = 0; i < 3000; i++) {
    // First byte spreads across all shards.
    std::string key;
    key.push_back(static_cast<char>(rng.Uniform(256)));
    key += Key(static_cast<uint32_t>(i));
    rows.push_back(cluster::Row{key, "v" + std::to_string(i)});
  }
  ASSERT_TRUE(table->BatchPut(rows).ok());
  ASSERT_TRUE(table->Flush().ok());

  EvenValueFilter filter;
  for (int round = 0; round < 6; round++) {
    std::vector<cluster::KeyRange> ranges;
    for (int i = 0; i < 8; i++) {
      std::string a, b;
      a.push_back(static_cast<char>(rng.Uniform(256)));
      b = a;
      b.push_back(static_cast<char>(rng.Uniform(256)));
      ranges.push_back(cluster::KeyRange{a, b});
    }
    std::sort(ranges.begin(), ranges.end(),
              [](const cluster::KeyRange& x, const cluster::KeyRange& y) {
                return x.start < y.start;
              });

    std::vector<cluster::Row> via_scan, via_multi;
    kv::ScanStats scan_stats, multi_stats;
    ASSERT_TRUE(
        table->ParallelScan(ranges, &filter, 0, &via_scan, &scan_stats).ok());
    RecordingSink sink;
    MultiScanPerf perf;
    std::vector<cluster::ClusterTable::RegionScanStat> breakdown;
    ASSERT_TRUE(table
                    ->MultiScan(ranges, &filter, 0, &sink, &multi_stats,
                                &breakdown, &perf)
                    .ok());

    // Arrival order across regions is unspecified on both paths: compare as
    // sorted sets.
    auto row_less = [](const cluster::Row& a, const cluster::Row& b) {
      return a.key < b.key;
    };
    std::sort(via_scan.begin(), via_scan.end(), row_less);
    std::sort(sink.rows.begin(), sink.rows.end());
    ASSERT_EQ(via_scan.size(), sink.rows.size()) << "round " << round;
    for (size_t i = 0; i < via_scan.size(); i++) {
      EXPECT_EQ(via_scan[i].key, sink.rows[i].first);
      EXPECT_EQ(via_scan[i].value, sink.rows[i].second);
    }
    EXPECT_EQ(scan_stats.scanned, multi_stats.scanned);
    EXPECT_EQ(scan_stats.matched, multi_stats.matched);
    // One task per region, never one per (region, window).
    EXPECT_LE(breakdown.size(), 4u);
    EXPECT_EQ(perf.seeks_issued + perf.seeks_saved, perf.windows);
  }
  ASSERT_TRUE(cluster_inst.DropTable("t").ok());
}

}  // namespace
}  // namespace tman::kv
