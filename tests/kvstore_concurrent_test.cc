// Tests for the multicore write path: ConcurrentArena, CAS-based
// SkipList::InsertConcurrently, and the parallel group-commit apply in
// DB::WriteImpl (Options::allow_concurrent_memtable_write). The DB stress
// tests run mixed writers/readers with a mid-run flush and differential-
// check the final state against a single-threaded replay of the same
// operations. Built with -fsanitize=thread in the CI tsan job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/arena.h"
#include "kvstore/db.h"
#include "kvstore/options.h"
#include "kvstore/scan_filter.h"
#include "kvstore/skiplist.h"
#include "kvstore/write_batch.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_kv_conc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(int thread, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "k%02d-%06d", thread, i);
  return buf;
}

std::string Value(int thread, int i) {
  return "v" + std::to_string(thread) + "-" + std::to_string(i);
}

// ---------------------------------------------------------------------------
// ConcurrentArena

TEST(ConcurrentArenaTest, SerialAllocationsDistinctAndUsable) {
  ConcurrentArena arena;
  std::vector<std::pair<char*, size_t>> allocs;
  size_t total = 0;
  for (int i = 0; i < 1000; i++) {
    const size_t n = 1 + (i * 37) % 300;
    char* p = (i % 2 == 0) ? arena.Allocate(n) : arena.AllocateAligned(n);
    ASSERT_NE(p, nullptr);
    memset(p, i % 251, n);
    allocs.emplace_back(p, n);
    total += n;
  }
  // Nothing was clobbered by a later allocation (i.e. no overlap).
  for (int i = 0; i < 1000; i++) {
    auto [p, n] = allocs[i];
    for (size_t j = 0; j < n; j++) {
      ASSERT_EQ(static_cast<unsigned char>(p[j]), i % 251) << i << ":" << j;
    }
  }
  EXPECT_GE(arena.MemoryUsage(), total);
}

TEST(ConcurrentArenaTest, AlignedAllocationsAreAligned) {
  ConcurrentArena arena;
  for (int i = 0; i < 500; i++) {
    char* p = arena.AllocateAligned(1 + i % 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

TEST(ConcurrentArenaTest, LargeAllocationsBypassShards) {
  ConcurrentArena arena;
  char* big = arena.Allocate(256 * 1024);
  ASSERT_NE(big, nullptr);
  memset(big, 0xAB, 256 * 1024);
  char* small = arena.Allocate(16);
  memset(small, 0xCD, 16);
  EXPECT_EQ(static_cast<unsigned char>(big[0]), 0xAB);
  EXPECT_EQ(static_cast<unsigned char>(big[256 * 1024 - 1]), 0xAB);
  EXPECT_GE(arena.MemoryUsage(), 256u * 1024u + 16u);
}

TEST(ConcurrentArenaTest, ParallelAllocationsDoNotOverlap) {
  ConcurrentArena arena;
  constexpr int kThreads = 8;
  constexpr int kAllocs = 4000;
  std::vector<std::vector<std::pair<char*, size_t>>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto& mine = per_thread[t];
      mine.reserve(kAllocs);
      for (int i = 0; i < kAllocs; i++) {
        const size_t n = 1 + (i * 13 + t) % 120;
        char* p = arena.Allocate(n);
        // Stamp with a thread-unique byte; verified after the join, so a
        // racing overlap with another thread's buffer shows up as a
        // corrupted pattern.
        memset(p, 'a' + t, n);
        mine.emplace_back(p, n);
      }
    });
  }
  for (auto& th : threads) th.join();

  size_t total = 0;
  for (int t = 0; t < kThreads; t++) {
    for (auto [p, n] : per_thread[t]) {
      total += n;
      for (size_t j = 0; j < n; j++) {
        ASSERT_EQ(p[j], 'a' + t);
      }
    }
  }
  EXPECT_GE(arena.MemoryUsage(), total);
  // Striped blocks waste at most the unfilled block tails; usage must stay
  // within an order of magnitude of the payload.
  EXPECT_LT(arena.MemoryUsage(), total * 4 + 8 * 64 * 1024);
}

// ---------------------------------------------------------------------------
// SkipList::InsertConcurrently

struct IntComparator {
  int operator()(uint64_t a, uint64_t b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListConcurrentTest, ParallelDisjointInserts) {
  ConcurrentArena arena;
  using List = SkipList<uint64_t, IntComparator, ConcurrentArena>;
  List list(IntComparator(), &arena);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Interleaved key space: thread t owns keys ≡ t (mod kThreads), so
      // concurrent splices constantly touch adjacent nodes from other
      // threads — the worst case for the CAS retry path.
      for (int i = 0; i < kPerThread; i++) {
        list.InsertConcurrently(static_cast<uint64_t>(i) * kThreads + t);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every key present, iteration strictly sorted, count exact.
  uint64_t expected = 0;
  List::Iterator iter(&list);
  iter.SeekToFirst();
  while (iter.Valid()) {
    ASSERT_EQ(iter.key(), expected);
    expected++;
    iter.Next();
  }
  EXPECT_EQ(expected, static_cast<uint64_t>(kThreads) * kPerThread);
  for (uint64_t k = 0; k < expected; k += 97) {
    EXPECT_TRUE(list.Contains(k));
  }
  EXPECT_FALSE(list.Contains(expected + 1));
}

TEST(SkipListConcurrentTest, ConcurrentInsertWithConcurrentReaders) {
  ConcurrentArena arena;
  using List = SkipList<uint64_t, IntComparator, ConcurrentArena>;
  List list(IntComparator(), &arena);

  constexpr int kWriters = 4;
  constexpr int kPerThread = 4000;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> reader_observations{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; i++) {
        list.InsertConcurrently(static_cast<uint64_t>(i) * kWriters + t);
      }
    });
  }
  // Readers iterate while inserts race: whatever is visible must be
  // strictly sorted (a torn splice would show as an inversion).
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        List::Iterator iter(&list);
        iter.SeekToFirst();
        uint64_t prev = 0;
        bool first = true;
        uint64_t seen = 0;
        while (iter.Valid()) {
          if (!first) {
            ASSERT_LT(prev, iter.key());
          }
          prev = iter.key();
          first = false;
          seen++;
          iter.Next();
        }
        reader_observations.fetch_add(seen, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kWriters; t++) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); t++) threads[t].join();

  uint64_t count = 0;
  List::Iterator iter(&list);
  for (iter.SeekToFirst(); iter.Valid(); iter.Next()) count++;
  EXPECT_EQ(count, static_cast<uint64_t>(kWriters) * kPerThread);
}

// ---------------------------------------------------------------------------
// DB parallel group-commit apply

// Deterministic per-thread workload so the final DB state is computable by
// a single-threaded replay: thread t writes Key(t, i) = Value(t, i) in
// batches of kBatch, and deletes every 7th of its own earlier keys.
struct Workload {
  int threads;
  int writes_per_thread;
  int batch;

  void Run(DB* db, int t, std::atomic<int>* failures) const {
    WriteOptions wo;
    for (int i = 0; i < writes_per_thread; i += batch) {
      WriteBatch wb;
      for (int j = i; j < i + batch && j < writes_per_thread; j++) {
        wb.Put(Key(t, j), Value(t, j));
        if (j % 7 == 0 && j >= batch) {
          wb.Delete(Key(t, j - batch));
        }
      }
      if (!db->Write(wo, &wb).ok()) failures->fetch_add(1);
    }
  }

  // Single-threaded replay of thread t's operations into `expected`.
  void Replay(int t, std::map<std::string, std::string>* expected) const {
    for (int i = 0; i < writes_per_thread; i += batch) {
      for (int j = i; j < i + batch && j < writes_per_thread; j++) {
        (*expected)[Key(t, j)] = Value(t, j);
        if (j % 7 == 0 && j >= batch) {
          expected->erase(Key(t, j - batch));
        }
      }
    }
  }

  std::map<std::string, std::string> Expected() const {
    std::map<std::string, std::string> expected;
    for (int t = 0; t < threads; t++) Replay(t, &expected);
    return expected;
  }
};

class CollectingSink : public RowSink {
 public:
  bool Accept(const Slice& key, const Slice& value) override {
    rows.emplace_back(key.ToString(), value.ToString());
    return true;
  }
  std::vector<std::pair<std::string, std::string>> rows;
};

void VerifyAgainstExpected(DB* db,
                           const std::map<std::string, std::string>& expected) {
  // Point lookups for every live key.
  for (const auto& [k, v] : expected) {
    std::string got;
    ASSERT_TRUE(db->Get(ReadOptions(), k, &got).ok()) << k;
    EXPECT_EQ(got, v) << k;
  }
  // Full scan must reproduce the expected map exactly (catches phantom or
  // resurrected entries a per-key Get loop would miss).
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(
      db->Scan(ReadOptions(), "", "\xff", nullptr, 0, &rows, nullptr).ok());
  ASSERT_EQ(rows.size(), expected.size());
  auto it = expected.begin();
  for (size_t i = 0; i < rows.size(); i++, ++it) {
    EXPECT_EQ(rows[i].first, it->first);
    EXPECT_EQ(rows[i].second, it->second);
  }
}

TEST(DBConcurrentTest, StressWritersReadersFlushDifferential) {
  std::string dir = TestDir("stress");
  Options options;
  options.write_buffer_size = 256 * 1024;  // force flushes mid-run
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  const Workload wl{/*threads=*/4, /*writes_per_thread=*/3000, /*batch=*/8};
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < wl.threads; t++) {
    threads.emplace_back([&, t] { wl.Run(db.get(), t, &failures); });
  }
  // Readers race the writers: a Get must return either NotFound or the
  // exact deterministic value; scans and MultiScans must come back sorted
  // with correct per-key values (each key is only ever written with one
  // value, so torn visibility would surface here).
  for (int r = 0; r < 2; r++) {
    threads.emplace_back([&, r] {
      uint64_t round = 0;
      while (!done.load(std::memory_order_acquire)) {
        const int t = static_cast<int>(round % wl.threads);
        const int i = static_cast<int>((round * 131) % wl.writes_per_thread);
        std::string got;
        Status s = db->Get(ReadOptions(), Key(t, i), &got);
        if (s.ok()) {
          ASSERT_EQ(got, Value(t, i));
        } else {
          ASSERT_TRUE(s.IsNotFound()) << s.ToString();
        }
        if (r == 0) {
          std::vector<std::pair<std::string, std::string>> rows;
          ASSERT_TRUE(db->Scan(ReadOptions(), Key(t, 0), Key(t, 200), nullptr,
                               0, &rows, nullptr)
                          .ok());
          for (size_t n = 1; n < rows.size(); n++) {
            ASSERT_LT(rows[n - 1].first, rows[n].first);
          }
        } else {
          std::vector<ScanWindow> windows;
          for (int w = 0; w < wl.threads; w++) {
            windows.push_back(ScanWindow{Key(w, 0), Key(w, 50)});
          }
          CollectingSink sink;
          ASSERT_TRUE(db->MultiScan(ReadOptions(), windows, nullptr, 0, &sink,
                                    nullptr)
                          .ok());
          for (const auto& [k, v] : sink.rows) {
            int t2 = 0, i2 = 0;
            ASSERT_EQ(sscanf(k.c_str(), "k%d-%d", &t2, &i2), 2);
            ASSERT_EQ(v, Value(t2, i2));
          }
        }
        round++;
      }
    });
  }
  // Mid-run explicit flush: exercises the memtable handoff fence while
  // parallel appliers are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(db->Flush().ok());

  for (int t = 0; t < wl.threads; t++) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = wl.threads; t < threads.size(); t++) threads[t].join();
  EXPECT_EQ(failures.load(), 0);

  VerifyAgainstExpected(db.get(), wl.Expected());

  DB::Stats stats = db->GetStats();
  // With 4 writers contending, the leader must have folded followers and
  // dispatched parallel appliers at least once.
  EXPECT_GT(stats.concurrent_apply_groups, 0u);
  EXPECT_GE(stats.concurrent_apply_batches, 2 * stats.concurrent_apply_groups);
}

TEST(DBConcurrentTest, ReopenReplaysConcurrentWrites) {
  std::string dir = TestDir("reopen");
  const Workload wl{/*threads=*/4, /*writes_per_thread=*/600, /*batch=*/4};
  {
    Options options;
    // Large buffer: everything stays in the memtable/WAL, so reopen
    // exercises WAL replay of records that were applied concurrently.
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < wl.threads; t++) {
      threads.emplace_back([&, t] { wl.Run(db.get(), t, &failures); });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0);
  }
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  VerifyAgainstExpected(db.get(), wl.Expected());
}

TEST(DBConcurrentTest, SerialApplyParityWhenDisabled) {
  std::string dir = TestDir("serial_parity");
  Options options;
  options.allow_concurrent_memtable_write = false;
  options.write_buffer_size = 256 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  const Workload wl{/*threads=*/4, /*writes_per_thread=*/1500, /*batch=*/8};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < wl.threads; t++) {
    threads.emplace_back([&, t] { wl.Run(db.get(), t, &failures); });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  VerifyAgainstExpected(db.get(), wl.Expected());
  DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.concurrent_apply_groups, 0u);
  EXPECT_EQ(stats.concurrent_apply_batches, 0u);
}

TEST(DBConcurrentTest, SyncWritesWithConcurrentApply) {
  std::string dir = TestDir("sync");
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  constexpr int kThreads = 4;
  constexpr int kWrites = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      wo.sync = (t % 2 == 0);  // mix sync and async writers in one group
      for (int i = 0; i < kWrites; i++) {
        if (!db->Put(wo, Key(t, i), Value(t, i)).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kWrites; i++) {
      std::string got;
      ASSERT_TRUE(db->Get(ReadOptions(), Key(t, i), &got).ok());
      EXPECT_EQ(got, Value(t, i));
    }
  }
}

}  // namespace
}  // namespace tman::kv
