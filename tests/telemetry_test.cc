// Telemetry-plane tests: the embedded HTTP server (endpoint contracts,
// malformed-request robustness, connection churn, port collisions), the
// maintenance-event listener delivery contract (exactly-once, outside
// locks, including the sticky background-error path via fault injection),
// the event ring, and an end-to-end TMan scrape of all five endpoints
// under a live workload. The whole suite also runs under TSan in CI.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tman.h"
#include "kvstore/db.h"
#include "kvstore/db_telemetry.h"
#include "kvstore/event_listener.h"
#include "kvstore/fault_env.h"
#include "kvstore/sst_file_writer.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/telemetry_server.h"
#include "obs/trace.h"
#include "traj/generator.h"

namespace tman {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_telem_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Minimal HTTP client: one request per connection (the server always closes).

struct HttpResponse {
  int code = 0;
  std::string body;
  std::string raw;
};

int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends `request` verbatim and reads until the server closes.
HttpResponse RawRequest(int port, const std::string& request) {
  HttpResponse resp;
  int fd = ConnectTo(port);
  if (fd < 0) return resp;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (resp.raw.compare(0, 9, "HTTP/1.1 ") == 0 && resp.raw.size() > 12) {
    resp.code = std::atoi(resp.raw.c_str() + 9);
  }
  const size_t header_end = resp.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    resp.body = resp.raw.substr(header_end + 4);
  }
  return resp;
}

HttpResponse HttpGet(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

// ---------------------------------------------------------------------------
// Event-listener delivery (bare kv::DB)

// Counts every callback and remembers the last payloads; all methods take
// the mutex so TSan validates the "delivered outside DB locks" contract.
class CountingListener : public kv::EventListener {
 public:
  void OnFlushCompleted(const kv::FlushJobInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    flushes++;
    last_flush = info;
  }
  void OnCompactionCompleted(const kv::CompactionJobInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    compactions++;
    last_compaction = info;
  }
  void OnWriteStallBegin(const kv::WriteStallInfo&) override {
    std::lock_guard<std::mutex> lock(mu_);
    stall_begins++;
  }
  void OnWriteStallEnd(const kv::WriteStallInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    stall_ends++;
    stall_micros += info.micros;
  }
  void OnBackgroundError(const kv::BackgroundErrorInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    bg_errors++;
    last_error = info.status;
  }
  void OnIngestCompleted(const kv::IngestJobInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    ingests++;
    last_ingest = info;
  }
  void OnMemtableSealed(const kv::MemtableSealInfo& info) override {
    std::lock_guard<std::mutex> lock(mu_);
    seals++;
    last_seal = info;
  }

  mutable std::mutex mu_;
  int flushes = 0;
  int compactions = 0;
  int stall_begins = 0;
  int stall_ends = 0;
  int bg_errors = 0;
  int ingests = 0;
  int seals = 0;
  uint64_t stall_micros = 0;
  kv::FlushJobInfo last_flush;
  kv::CompactionJobInfo last_compaction;
  kv::IngestJobInfo last_ingest;
  kv::MemtableSealInfo last_seal;
  Status last_error;
};

std::string Key(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

TEST(EventListenerTest, FlushAndSealDeliveredExactlyOnce) {
  const std::string dir = TestDir("ev_flush");
  CountingListener listener;
  kv::Options options;
  options.listeners.push_back(&listener);
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());

  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  {
    std::lock_guard<std::mutex> lock(listener.mu_);
    EXPECT_EQ(listener.flushes, 1);
    EXPECT_EQ(listener.seals, 1);
    EXPECT_EQ(listener.last_flush.entries, 100u);
    EXPECT_GT(listener.last_flush.file_size, 0u);
    EXPECT_EQ(listener.last_flush.db_name, dir);
    EXPECT_EQ(listener.last_seal.entries, 100u);
  }

  // An empty memtable has nothing to flush: no duplicate events.
  ASSERT_TRUE(db->Flush().ok());
  {
    std::lock_guard<std::mutex> lock(listener.mu_);
    EXPECT_EQ(listener.flushes, 1);
    EXPECT_EQ(listener.seals, 1);
  }
}

TEST(EventListenerTest, CompactionDelivered) {
  const std::string dir = TestDir("ev_compact");
  CountingListener listener;
  kv::Options options;
  options.listeners.push_back(&listener);
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());

  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 200; i++) {
      ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(i), "v").ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  std::lock_guard<std::mutex> lock(listener.mu_);
  EXPECT_EQ(listener.flushes, 2);
  EXPECT_GE(listener.compactions, 1);
  EXPECT_GT(listener.last_compaction.input_files, 0u);
  EXPECT_GT(listener.last_compaction.bytes_written, 0u);
  EXPECT_EQ(listener.last_compaction.output_level,
            listener.last_compaction.level + 1);
}

TEST(EventListenerTest, WriteStallEpisodesArePaired) {
  const std::string dir = TestDir("ev_stall");
  CountingListener listener;
  kv::Options options;
  options.listeners.push_back(&listener);
  options.write_buffer_size = 4 * 1024;  // flush constantly
  options.l0_slowdown_trigger = 2;       // L0 backlog throttles quickly
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());

  const std::string value(512, 'x');
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(i), value).ok());
    if (db->GetStats().stall_count > 4) break;
  }
  db.reset();  // final drain

  std::lock_guard<std::mutex> lock(listener.mu_);
  EXPECT_GT(listener.stall_begins, 0);
  EXPECT_EQ(listener.stall_begins, listener.stall_ends);
}

TEST(EventListenerTest, IngestDelivered) {
  const std::string dir = TestDir("ev_ingest");
  CountingListener listener;
  kv::Options options;
  options.listeners.push_back(&listener);
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());

  const std::string ext = dir + "/bulk-0.tmp";
  kv::SstFileWriter writer(options);
  ASSERT_TRUE(writer.Open(ext).ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(writer.Put(Key(i), "v").ok());
  }
  kv::ExternalSstFileInfo info;
  ASSERT_TRUE(writer.Finish(&info).ok());
  kv::DB::IngestOptions io;
  io.move_file = true;
  ASSERT_TRUE(db->IngestExternalFile(io, ext).ok());

  std::lock_guard<std::mutex> lock(listener.mu_);
  EXPECT_EQ(listener.ingests, 1);
  EXPECT_EQ(listener.last_ingest.entries, 500u);
  EXPECT_EQ(listener.last_ingest.file_path, ext);
}

TEST(EventListenerTest, BackgroundErrorDeliveredOnceAndStops) {
  const std::string dir = TestDir("ev_bgerr");
  CountingListener listener;
  kv::FaultInjectionEnv fenv(kv::Env::Default());
  kv::Options options;
  options.env = &fenv;
  options.listeners.push_back(&listener);
  options.write_buffer_size = 4 * 1024;
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());

  fenv.NoSpaceAppends(".sst", -1);  // every SSTable build fails
  Status s;
  for (int i = 0; i < 20000; i++) {
    s = db->Put(kv::WriteOptions(), Key(i), std::string(128, 'x'));
    if (!s.ok()) break;
  }
  ASSERT_FALSE(s.ok());
  {
    std::lock_guard<std::mutex> lock(listener.mu_);
    EXPECT_EQ(listener.bg_errors, 1);  // sticky error emitted exactly once
    EXPECT_FALSE(listener.last_error.ok());
  }

  fenv.ClearFaults();
  ASSERT_TRUE(db->Resume().ok());
  ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(0), "v").ok());
  std::lock_guard<std::mutex> lock(listener.mu_);
  EXPECT_EQ(listener.bg_errors, 1);  // recovery emits no further errors
}

TEST(EventListenerTest, MultipleListenersEachSeeEveryEvent) {
  const std::string dir = TestDir("ev_multi");
  CountingListener a;
  CountingListener b;
  obs::EventLog log(16);
  kv::EventLogListener ring(&log);
  kv::Options options;
  options.listeners = {&a, &b, &ring};
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  std::lock_guard<std::mutex> la(a.mu_);
  std::lock_guard<std::mutex> lb(b.mu_);
  EXPECT_EQ(a.flushes, 1);
  EXPECT_EQ(b.flushes, 1);
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"memtable_seal\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Event ring

TEST(EventLogTest, BoundedRingEvictsOldest) {
  obs::EventLog log(4);
  for (int i = 0; i < 10; i++) {
    obs::Event e;
    e.type = "t" + std::to_string(i);
    log.Append(std::move(e));
  }
  EXPECT_EQ(log.total_appended(), 10u);
  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().type, "t6");  // oldest retained
  EXPECT_EQ(events.back().type, "t9");
  EXPECT_GT(events.back().id, events.front().id);
}

TEST(EventLogTest, RenderJsonEscapes) {
  obs::EventLog log(4);
  obs::Event e;
  e.type = "quote";
  e.source = "a\"b\\c\n";
  log.Append(std::move(e));
  const std::string json = log.RenderJson();
  EXPECT_NE(json.find("a\\\"b\\\\c\\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryServer endpoint contracts

TEST(TelemetryServerTest, StartsOnEphemeralPortAndStops) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_TRUE(server.running());
  EXPECT_GT(server.port(), 0);

  const HttpResponse index = HttpGet(server.port(), "/");
  EXPECT_EQ(index.code, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
  EXPECT_LT(ConnectTo(server.port()), 0);  // no longer listening
}

TEST(TelemetryServerTest, PortInUseSurfacesError) {
  obs::TelemetryServer first;
  ASSERT_TRUE(first.Start(0).ok());
  obs::TelemetryServer second;
  const Status s = second.Start(first.port());
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(second.running());
  first.Stop();
}

TEST(TelemetryServerTest, ServesMetricsHealthEventsTraces) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tman_test_requests_total")->Inc(7);
  obs::EventLog log(8);
  obs::Event ev;
  ev.type = "flush";
  ev.source = "test";
  log.Append(std::move(ev));
  obs::TraceRing ring(4);
  obs::TraceSpan span("TestQuery");
  span.End();
  ring.Capture(span);

  std::atomic<int> refreshes{0};
  obs::TelemetryServer server;
  server.set_metrics(&registry);
  server.set_event_log(&log);
  server.set_trace_ring(&ring);
  server.set_status_source([] { return std::string("{\"ok\":true}\n"); });
  server.set_health_source([](std::string*) { return true; });
  server.set_refresh_hook([&refreshes] { refreshes++; });
  ASSERT_TRUE(server.Start(0).ok());

  HttpResponse r = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("tman_test_requests_total 7"), std::string::npos);
  EXPECT_GE(refreshes.load(), 1);

  r = HttpGet(server.port(), "/metrics.json");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("\"tman_test_requests_total\""), std::string::npos);

  r = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(r.code, 200);
  EXPECT_EQ(r.body, "ok\n");

  r = HttpGet(server.port(), "/statusz");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("\"ok\":true"), std::string::npos);

  r = HttpGet(server.port(), "/eventz");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("\"flush\""), std::string::npos);

  r = HttpGet(server.port(), "/tracez");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("TestQuery"), std::string::npos);

  // Query strings are ignored for routing.
  r = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_EQ(r.code, 200);

  r = HttpGet(server.port(), "/nope");
  EXPECT_EQ(r.code, 404);
  EXPECT_GE(server.requests_served(), 8u);
  server.Stop();
}

TEST(TelemetryServerTest, UnhealthyReports503WithDetail) {
  obs::TelemetryServer server;
  server.set_health_source([](std::string* detail) {
    *detail = "background_error: IO error: disk full";
    return false;
  });
  ASSERT_TRUE(server.Start(0).ok());
  const HttpResponse r = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(r.code, 503);
  EXPECT_NE(r.body.find("disk full"), std::string::npos);
  server.Stop();
}

TEST(TelemetryServerTest, EndpointsWithoutSourcesReturn404) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_EQ(HttpGet(server.port(), "/metrics").code, 404);
  EXPECT_EQ(HttpGet(server.port(), "/statusz").code, 404);
  EXPECT_EQ(HttpGet(server.port(), "/eventz").code, 404);
  EXPECT_EQ(HttpGet(server.port(), "/tracez").code, 404);
  // /healthz without a source still answers: liveness needs no wiring.
  EXPECT_EQ(HttpGet(server.port(), "/healthz").code, 200);
  server.Stop();
}

TEST(TelemetryServerTest, MalformedRequestsAreRejectedNotFatal) {
  obs::TelemetryServer server;
  server.set_health_source([](std::string*) { return true; });
  obs::TelemetryServer::ServerOptions opts;
  opts.port = 0;
  opts.max_request_bytes = 512;
  ASSERT_TRUE(server.Start(opts).ok());

  EXPECT_EQ(RawRequest(server.port(), "garbage\r\n\r\n").code, 400);
  EXPECT_EQ(RawRequest(server.port(), "\r\n\r\n").code, 400);
  EXPECT_EQ(RawRequest(server.port(),
                       "POST /healthz HTTP/1.1\r\n\r\n")
                .code,
            405);
  // A request larger than the configured bound is refused.
  const std::string huge =
      "GET /" + std::string(4096, 'a') + " HTTP/1.1\r\n\r\n";
  EXPECT_EQ(RawRequest(server.port(), huge).code, 413);

  // The server is still healthy afterwards.
  EXPECT_EQ(HttpGet(server.port(), "/healthz").code, 200);
  server.Stop();
}

TEST(TelemetryServerTest, SurvivesConnectionChurn) {
  obs::TelemetryServer server;
  server.set_health_source([](std::string*) { return true; });
  ASSERT_TRUE(server.Start(0).ok());

  // Clients that connect and vanish without sending anything, plus clients
  // that send half a request and hang up.
  for (int i = 0; i < 20; i++) {
    int fd = ConnectTo(server.port());
    ASSERT_GE(fd, 0);
    if (i % 2 == 0) {
      const char partial[] = "GET /health";
      (void)::send(fd, partial, sizeof(partial) - 1, 0);
    }
    ::close(fd);
  }

  // Concurrent well-formed scrapes still succeed.
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; i++) {
    threads.emplace_back([&server, &ok] {
      for (int j = 0; j < 8; j++) {
        if (HttpGet(server.port(), "/healthz").code == 200) ok++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 32);
  server.Stop();
}

TEST(TelemetryServerTest, AttachBareDbServesStatusAndHealth) {
  const std::string dir = TestDir("attach_db");
  kv::Options options;
  std::unique_ptr<kv::DB> db;
  ASSERT_TRUE(kv::DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db->Put(kv::WriteOptions(), Key(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());

  obs::TelemetryServer server;
  kv::AttachDbTelemetry(&server, db.get());
  ASSERT_TRUE(server.Start(0).ok());

  EXPECT_EQ(HttpGet(server.port(), "/healthz").code, 200);
  const HttpResponse r = HttpGet(server.port(), "/statusz");
  EXPECT_EQ(r.code, 200);
  EXPECT_NE(r.body.find("\"flush_count\":1"), std::string::npos);
  EXPECT_NE(r.body.find("\"healthy\":true"), std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------------
// End-to-end: TMan with the telemetry plane on, scraped under live load.

TEST(TManTelemetryTest, AllEndpointsServeUnderLiveWorkload) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  core::TManOptions options;
  options.bounds = spec.bounds;
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.xzt.origin = 0;
  options.tshape.max_resolution = 15;
  options.num_shards = 2;
  options.num_servers = 2;
  options.genetic.generations = 5;
  options.kv.write_buffer_size = 64 * 1024;
  options.kv.metrics = new obs::MetricsRegistry();  // leaked into handles
  options.telemetry_port = 0;       // ephemeral
  options.slow_query_micros = 1;    // capture every query as "slow"
  options.event_log_capacity = 64;

  std::unique_ptr<core::TMan> tman;
  ASSERT_TRUE(core::TMan::Open(options, TestDir("e2e"), &tman).ok());
  const int port = tman->telemetry_port();
  ASSERT_GT(port, 0);

  const auto data = traj::Generate(spec, 60, 7);
  ASSERT_TRUE(tman->BulkLoad(data).ok());
  ASSERT_TRUE(tman->Flush().ok());

  // A scraping thread hammers the endpoints while queries run.
  std::atomic<bool> stop{false};
  std::atomic<int> scrape_errors{0};
  std::thread scraper([port, &stop, &scrape_errors] {
    while (!stop.load()) {
      for (const char* path :
           {"/metrics", "/healthz", "/statusz", "/eventz", "/tracez"}) {
        if (HttpGet(port, path).code != 200) scrape_errors++;
      }
    }
  });

  for (int i = 0; i < 5; i++) {
    std::vector<traj::Trajectory> out;
    core::QueryStats stats;
    ASSERT_TRUE(
        tman->TemporalRangeQuery(0, 3600 * 24, &out, &stats).ok());
  }
  stop.store(true);
  scraper.join();
  EXPECT_EQ(scrape_errors.load(), 0);

  // /healthz: live and no background errors.
  EXPECT_EQ(HttpGet(port, "/healthz").body, "ok\n");

  // /metrics: kv + per-region cluster series are exposed.
  const std::string metrics = HttpGet(port, "/metrics").body;
  EXPECT_NE(metrics.find("tman_kv_get_micros"), std::string::npos);
  EXPECT_NE(metrics.find("tman_cluster_region_writes_total{table=\"primary\""),
            std::string::npos);
  EXPECT_NE(metrics.find("tman_core_slow_queries_total"), std::string::npos);

  // Windowed view: after a manual rotation the _window_rate gauges render.
  options.kv.metrics->RotateWindow();
  const std::string windowed = HttpGet(port, "/metrics").body;
  EXPECT_NE(windowed.find("tman_cluster_region_writes_window_rate"),
            std::string::npos);

  // /statusz: per-table, per-region stats nested under "tables".
  const std::string status = HttpGet(port, "/statusz").body;
  EXPECT_NE(status.find("\"tables\""), std::string::npos);
  EXPECT_NE(status.find("\"name\":\"primary\""), std::string::npos);
  EXPECT_NE(status.find("\"uptime_seconds\""), std::string::npos);

  // /eventz: the bulk load flushed every region, so flush events exist.
  const std::string events = HttpGet(port, "/eventz").body;
  EXPECT_NE(events.find("\"flush\""), std::string::npos);

  // /tracez: with slow_query_micros=1 every query was captured.
  const std::string traces = HttpGet(port, "/tracez").body;
  EXPECT_NE(traces.find("TemporalRangeQuery"), std::string::npos);
  EXPECT_NE(traces.find("planning"), std::string::npos);

  EXPECT_EQ(tman->trace_ring()->total_captured(), 5u);

  // PublishMetrics stays safe under concurrent callers (satellite a).
  std::vector<std::thread> publishers;
  for (int i = 0; i < 4; i++) {
    publishers.emplace_back([&tman] {
      for (int j = 0; j < 16; j++) tman->PublishMetrics();
    });
  }
  for (auto& t : publishers) t.join();

  const int stale_port = port;
  tman.reset();  // clean shutdown joins the reporter + server threads
  EXPECT_LT(ConnectTo(stale_port), 0);
  delete options.kv.metrics;
}

TEST(TManTelemetryTest, SlowQueryThresholdFiltersFastQueries) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  core::TManOptions options;
  options.bounds = spec.bounds;
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.xzt.origin = 0;
  options.tshape.max_resolution = 15;
  options.num_shards = 2;
  options.num_servers = 2;
  options.genetic.generations = 5;
  options.slow_query_micros = 60LL * 1000 * 1000;  // nothing is this slow
  options.telemetry_port = 0;

  std::unique_ptr<core::TMan> tman;
  ASSERT_TRUE(core::TMan::Open(options, TestDir("slow"), &tman).ok());
  const auto data = traj::Generate(spec, 20, 11);
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  std::vector<traj::Trajectory> out;
  ASSERT_TRUE(tman->TemporalRangeQuery(0, 3600, &out).ok());
  EXPECT_EQ(tman->trace_ring()->total_captured(), 0u);

  // An explicit trace request still flows to the caller's stats.
  core::QueryStats stats;
  core::QueryOptions qopts;
  qopts.trace = true;
  out.clear();
  ASSERT_TRUE(tman->TemporalRangeQuery(0, 3600, &out, &stats, qopts).ok());
  ASSERT_NE(stats.trace, nullptr);
  EXPECT_NE(stats.trace->Render().find("TemporalRangeQuery"),
            std::string::npos);
}

}  // namespace
}  // namespace tman
