#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cachestore/redis_like.h"
#include "common/random.h"
#include "core/filters.h"
#include "core/index_cache.h"
#include "core/record.h"
#include "core/rowkey.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

traj::Trajectory MakeTrajectory(const std::string& oid, const std::string& tid,
                                double x0, double y0, int64_t t0, int n) {
  traj::Trajectory t;
  t.oid = oid;
  t.tid = tid;
  for (int i = 0; i < n; i++) {
    t.points.push_back(
        geo::TimedPoint{x0 + i * 0.001, y0 + i * 0.0005, t0 + i * 30});
  }
  return t;
}

// ---------------------------------------------------------------------------
// Record

TEST(RecordTest, HeaderFieldsWithoutDecompression) {
  const traj::Trajectory t = MakeTrajectory("o1", "t1", 116.3, 39.9,
                                            1400000000, 50);
  std::string value;
  ASSERT_TRUE(EncodeRecord(t, 4, &value));
  RecordHeader header;
  ASSERT_TRUE(DecodeRecordHeader(value, &header));
  EXPECT_EQ(header.oid.ToString(), "o1");
  EXPECT_EQ(header.tid.ToString(), "t1");
  EXPECT_EQ(header.ts, 1400000000);
  EXPECT_EQ(header.te, 1400000000 + 49 * 30);
  EXPECT_DOUBLE_EQ(header.mbr.min_x, 116.3);
  EXPECT_DOUBLE_EQ(header.mbr.max_x, 116.3 + 49 * 0.001);
}

TEST(RecordTest, FeaturesDecode) {
  const traj::Trajectory t = MakeTrajectory("o", "t", 113.0, 23.0,
                                            1393632000, 80);
  std::string value;
  ASSERT_TRUE(EncodeRecord(t, 6, &value));
  RecordHeader header;
  ASSERT_TRUE(DecodeRecordHeader(value, &header));
  geo::DPFeatures features;
  ASSERT_TRUE(DecodeRecordFeatures(header, &features));
  EXPECT_GE(features.features.size(), 1u);
  EXPECT_LE(features.features.size(), 6u);
  EXPECT_DOUBLE_EQ(features.mbr.min_x, header.mbr.min_x);
}

TEST(RecordTest, RejectsEmptyTrajectory) {
  traj::Trajectory empty;
  std::string value;
  EXPECT_FALSE(EncodeRecord(empty, 4, &value));
}

TEST(RecordTest, RejectsTruncatedValue) {
  const traj::Trajectory t = MakeTrajectory("o", "t", 116, 39, 1, 10);
  std::string value;
  ASSERT_TRUE(EncodeRecord(t, 4, &value));
  for (size_t cut : {size_t{0}, size_t{3}, value.size() / 2}) {
    RecordHeader header;
    EXPECT_FALSE(
        DecodeRecordHeader(Slice(value.data(), cut), &header))
        << "cut=" << cut;
  }
}

TEST(RecordTest, CompressionBeatsRawLayout) {
  const traj::Trajectory t = MakeTrajectory("o", "t", 116, 39, 1400000000,
                                            500);
  std::string value;
  ASSERT_TRUE(EncodeRecord(t, 8, &value));
  EXPECT_LT(value.size(), 500u * 24) << "points column must compress";
}

// ---------------------------------------------------------------------------
// Rowkey

TEST(RowkeyTest, PrimaryKeyOrdersByValueWithinShard) {
  const std::string a = PrimaryKey(2, 100, "tid-a");
  const std::string b = PrimaryKey(2, 101, "tid-a");
  const std::string c = PrimaryKey(2, 100, "tid-b");
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, b);  // same value sorts before the next value
}

TEST(RowkeyTest, TidRecovery) {
  const std::string key = PrimaryKey(1, 42, "lorry-t-7");
  EXPECT_EQ(TidOfPrimaryKey(key, 8).ToString(), "lorry-t-7");
  const std::string st_key = PrimaryKeyST(1, 42, 43, "lorry-t-7");
  EXPECT_EQ(TidOfPrimaryKey(st_key, 16).ToString(), "lorry-t-7");
}

TEST(RowkeyTest, ShardsAreStableAndInRange) {
  for (int shards : {1, 4, 8, 16}) {
    for (int i = 0; i < 100; i++) {
      const std::string tid = "t" + std::to_string(i);
      const uint8_t s1 = ShardOfTid(tid, shards);
      const uint8_t s2 = ShardOfTid(tid, shards);
      EXPECT_EQ(s1, s2);
      EXPECT_LT(s1, shards);
    }
  }
}

TEST(RowkeyTest, WindowsCoverExactlyTheRange) {
  const auto windows =
      WindowsForRanges({index::ValueRange{10, 20}}, /*num_shards=*/4);
  ASSERT_EQ(windows.size(), 4u);
  for (const auto& w : windows) {
    // Keys for values 10 and 20 are inside; 9 and 21 are not.
    const uint8_t shard = static_cast<uint8_t>(w.start[0]);
    EXPECT_GE(PrimaryKey(shard, 10, "x"), w.start);
    EXPECT_LT(PrimaryKey(shard, 20, "x"), w.end);
    EXPECT_LT(PrimaryKey(shard, 9, "zzz"), w.start);
    EXPECT_GE(PrimaryKey(shard, 21, ""), w.end);
  }
}

TEST(RowkeyTest, IDTWindowsTargetSingleShard) {
  const auto windows =
      WindowsForIDT("courier-9", {index::ValueRange{5, 9}}, 8);
  ASSERT_EQ(windows.size(), 1u);
  const uint8_t shard = ShardOfOid("courier-9", 8);
  EXPECT_EQ(static_cast<uint8_t>(windows[0].start[0]), shard);
  const std::string inside = IDTKey(shard, "courier-9", 7, "t");
  EXPECT_GE(inside, windows[0].start);
  EXPECT_LT(inside, windows[0].end);
  // A different object in the same shard never falls in the window.
  const std::string other = IDTKey(shard, "courier-Z", 7, "t");
  EXPECT_TRUE(other < windows[0].start || other >= windows[0].end);
}

TEST(RowkeyTest, STWindowsPinTemporalPrefix) {
  const auto windows =
      WindowsForSTRanges(99, {index::ValueRange{4, 6}}, 2);
  ASSERT_EQ(windows.size(), 2u);
  for (const auto& w : windows) {
    const uint8_t shard = static_cast<uint8_t>(w.start[0]);
    EXPECT_GE(PrimaryKeyST(shard, 99, 5, "t"), w.start);
    EXPECT_LT(PrimaryKeyST(shard, 99, 5, "t"), w.end);
    // Same spatial value under a different tr value is excluded.
    const std::string other_tr = PrimaryKeyST(shard, 98, 5, "t");
    EXPECT_TRUE(other_tr < w.start || other_tr >= w.end);
  }
}

// ---------------------------------------------------------------------------
// Filters

std::string EncodeFor(const traj::Trajectory& t) {
  std::string value;
  EncodeRecord(t, 4, &value);
  return value;
}

TEST(FiltersTest, TemporalRangeFilter) {
  const auto value = EncodeFor(MakeTrajectory("o", "t", 116, 39, 1000, 10));
  // Trajectory spans [1000, 1270].
  EXPECT_TRUE(TemporalRangeFilter(900, 1000).Matches("k", value));
  EXPECT_TRUE(TemporalRangeFilter(1270, 2000).Matches("k", value));
  EXPECT_TRUE(TemporalRangeFilter(1100, 1200).Matches("k", value));
  EXPECT_FALSE(TemporalRangeFilter(0, 999).Matches("k", value));
  EXPECT_FALSE(TemporalRangeFilter(1271, 9999).Matches("k", value));
}

TEST(FiltersTest, SpatialFilterUsesExactGeometryNotJustMBR) {
  // A diagonal line: its MBR covers the query window but the polyline
  // itself stays away from the window corner.
  traj::Trajectory diag;
  diag.oid = "o";
  diag.tid = "t";
  for (int i = 0; i <= 20; i++) {
    diag.points.push_back(geo::TimedPoint{i * 0.01, i * 0.01, i * 30});
  }
  const auto value = EncodeFor(diag);
  // Window in the empty upper-left corner of the MBR.
  const geo::MBR corner{0.0, 0.15, 0.02, 0.2};
  EXPECT_TRUE(geo::MBR(0.0, 0.0, 0.2, 0.2).Intersects(corner));
  EXPECT_FALSE(SpatialRangeFilter(corner).Matches("k", value));
  // Window straddling the diagonal matches.
  EXPECT_TRUE(
      SpatialRangeFilter(geo::MBR{0.05, 0.05, 0.07, 0.07}).Matches("k", value));
}

TEST(FiltersTest, ChainIsConjunction) {
  const auto value = EncodeFor(MakeTrajectory("o", "t", 116, 39, 1000, 10));
  FilterChain chain;
  chain.Add(std::make_unique<TemporalRangeFilter>(900, 2000));  // passes
  chain.Add(std::make_unique<SpatialRangeFilter>(
      geo::MBR{200, 200, 201, 201}));  // fails
  EXPECT_FALSE(chain.Matches("k", value));

  FilterChain both_pass;
  both_pass.Add(std::make_unique<TemporalRangeFilter>(900, 2000));
  both_pass.Add(std::make_unique<SpatialRangeFilter>(
      geo::MBR{115, 38, 117, 41}));
  EXPECT_TRUE(both_pass.Matches("k", value));
}

TEST(FiltersTest, MalformedValueRejected) {
  EXPECT_FALSE(TemporalRangeFilter(0, 1).Matches("k", "garbage"));
  EXPECT_FALSE(SpatialRangeFilter(geo::MBR{0, 0, 1, 1}).Matches("k", "xx"));
}

// ---------------------------------------------------------------------------
// IndexCache

TEST(IndexCacheTest, PutAndGetElement) {
  cache::RedisLikeStore redis;
  IndexCache cache(&redis, 16);
  cache.PutElement(42, {{0b101, 0}, {0b110, 1}, {0b011, 2}});
  auto element = cache.GetElement(42);
  ASSERT_EQ(element->shapes.size(), 3u);
  EXPECT_EQ(element->FinalCodeOf(0b101), 0u);
  EXPECT_EQ(element->FinalCodeOf(0b110), 1u);
  EXPECT_EQ(element->FinalCodeOf(0b111), UINT32_MAX);
  // Missing elements yield an empty map, not null.
  EXPECT_TRUE(cache.GetElement(999)->shapes.empty());
}

TEST(IndexCacheTest, SurvivesLFUEvictionViaRedis) {
  cache::RedisLikeStore redis;
  IndexCache cache(&redis, 2);  // tiny LFU
  for (uint64_t e = 0; e < 10; e++) {
    cache.PutElement(e, {{static_cast<uint32_t>(e + 1), 0}});
  }
  // Everything is still reachable: evicted entries reload from Redis.
  for (uint64_t e = 0; e < 10; e++) {
    auto element = cache.GetElement(e);
    ASSERT_EQ(element->shapes.size(), 1u) << e;
    EXPECT_EQ(element->shapes[0].first, e + 1);
  }
  EXPECT_GT(cache.redis_loads(), 0u);
}

TEST(IndexCacheTest, AddShapeUpdatesResidentEntry) {
  cache::RedisLikeStore redis;
  IndexCache cache(&redis, 8);
  cache.PutElement(7, {{0b1, 0}});
  cache.AddShape(7, 0b10, 1);
  auto element = cache.GetElement(7);
  EXPECT_EQ(element->FinalCodeOf(0b10), 1u);
  EXPECT_EQ(element->shapes.size(), 2u);
}

TEST(IndexCacheTest, LookupAdapterMatchesGetElement) {
  cache::RedisLikeStore redis;
  IndexCache cache(&redis, 8);
  cache.PutElement(3, {{0b11, 0}, {0b101, 1}});
  index::ShapeLookup lookup = cache.AsLookup();
  const auto shapes = lookup(3);
  ASSERT_EQ(shapes.size(), 2u);
  EXPECT_EQ(shapes[0].second, 0u);
  EXPECT_EQ(shapes[1].second, 1u);
}

TEST(BufferShapeCacheTest, CountsDistinctShapesAndDrains) {
  BufferShapeCache buffer;
  EXPECT_EQ(buffer.Add(1, 0b01), 1u);
  EXPECT_EQ(buffer.Add(1, 0b01), 1u);  // duplicate
  EXPECT_EQ(buffer.Add(1, 0b10), 2u);
  EXPECT_EQ(buffer.Add(2, 0b01), 3u);
  EXPECT_TRUE(buffer.Contains(1, 0b10));
  EXPECT_FALSE(buffer.Contains(2, 0b10));

  const auto drained = buffer.Drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_FALSE(buffer.Contains(1, 0b01));
}

}  // namespace
}  // namespace tman::core
