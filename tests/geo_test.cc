#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geo/douglas_peucker.h"
#include "geo/geometry.h"
#include "geo/similarity.h"

namespace tman::geo {
namespace {

TEST(MBRTest, ExpandAndContains) {
  MBR mbr = MBR::Empty();
  EXPECT_TRUE(mbr.IsEmpty());
  mbr.Expand(Point{1, 2});
  mbr.Expand(Point{3, 1});
  EXPECT_FALSE(mbr.IsEmpty());
  EXPECT_TRUE(mbr.Contains(Point{2, 1.5}));
  EXPECT_FALSE(mbr.Contains(Point{0, 0}));
  EXPECT_DOUBLE_EQ(mbr.width(), 2.0);
  EXPECT_DOUBLE_EQ(mbr.height(), 1.0);
}

TEST(MBRTest, IntersectsIsSymmetricAndTouchCounts) {
  const MBR a{0, 0, 1, 1};
  const MBR b{1, 1, 2, 2};  // touches at corner
  const MBR c{1.1, 1.1, 2, 2};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MBRTest, MinSquaredDistance) {
  const MBR a{0, 0, 1, 1};
  const MBR b{3, 0, 4, 1};   // 2 apart on x
  const MBR c{0.5, 0.5, 2, 2};  // overlapping
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(b), 4.0);
  EXPECT_DOUBLE_EQ(a.MinSquaredDistance(c), 0.0);
}

TEST(GeometryTest, HaversineKnownDistance) {
  // Beijing to Shanghai is roughly 1070 km.
  const Point beijing{116.4, 39.9};
  const Point shanghai{121.5, 31.2};
  const double d = HaversineMeters(beijing, shanghai);
  EXPECT_NEAR(d, 1070000, 30000);
}

TEST(GeometryTest, MetersToDegrees) {
  EXPECT_NEAR(MetersToDegreesLat(111320), 1.0, 1e-9);
  // At 60N a degree of longitude is half as long.
  EXPECT_NEAR(MetersToDegreesLon(111320, 60.0), 2.0, 0.01);
}

TEST(GeometryTest, SegmentRectIntersection) {
  const MBR rect{1, 1, 2, 2};
  // Crossing through.
  EXPECT_TRUE(SegmentIntersectsRect(Point{0, 0}, Point{3, 3}, rect));
  // Fully inside.
  EXPECT_TRUE(SegmentIntersectsRect(Point{1.2, 1.2}, Point{1.8, 1.8}, rect));
  // Passing beside.
  EXPECT_FALSE(SegmentIntersectsRect(Point{0, 0}, Point{0, 3}, rect));
  // Diagonal near corner, not touching.
  EXPECT_FALSE(SegmentIntersectsRect(Point{0, 2.5}, Point{0.4, 3}, rect));
  // Clipping case: both endpoints outside on different sides.
  EXPECT_TRUE(SegmentIntersectsRect(Point{0, 1.5}, Point{3, 1.5}, rect));
}

TEST(GeometryTest, PolylineRectIntersection) {
  std::vector<TimedPoint> polyline = {
      {0, 0, 0}, {0.5, 0.5, 1}, {3, 0.5, 2}};
  EXPECT_TRUE(PolylineIntersectsRect(polyline, MBR{1, 0, 2, 1}));
  EXPECT_FALSE(PolylineIntersectsRect(polyline, MBR{1, 2, 2, 3}));
  // Single-point polyline.
  std::vector<TimedPoint> dot = {{1.5, 0.5, 0}};
  EXPECT_TRUE(PolylineIntersectsRect(dot, MBR{1, 0, 2, 1}));
}

TEST(GeometryTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{0, 1}, Point{-1, 0},
                                        Point{1, 0}),
                   1.0);
  // Beyond the end: distance to endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{3, 0}, Point{-1, 0},
                                        Point{1, 0}),
                   2.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{3, 4}, Point{0, 0},
                                        Point{0, 0}),
                   5.0);
}

// ---------------------------------------------------------------------------
// Douglas-Peucker

std::vector<TimedPoint> ZigZag(int n) {
  std::vector<TimedPoint> points;
  for (int i = 0; i < n; i++) {
    points.push_back(TimedPoint{static_cast<double>(i),
                                (i % 2 == 0) ? 0.0 : 1.0, i * 10});
  }
  return points;
}

TEST(DouglasPeuckerTest, StraightLineKeepsEndpointsOnly) {
  std::vector<TimedPoint> line;
  for (int i = 0; i <= 10; i++) {
    line.push_back(TimedPoint{i * 1.0, i * 2.0, i});
  }
  const auto kept = DouglasPeucker(line, 0.01);
  EXPECT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.front(), 0u);
  EXPECT_EQ(kept.back(), 10u);
}

TEST(DouglasPeuckerTest, ZigZagKeepsAllAboveEpsilon) {
  const auto points = ZigZag(9);
  const auto kept = DouglasPeucker(points, 0.1);
  EXPECT_EQ(kept.size(), points.size());
  const auto coarse = DouglasPeucker(points, 10.0);
  EXPECT_EQ(coarse.size(), 2u);
}

TEST(DPFeaturesTest, RootFeatureCoversWholeTrajectory) {
  const auto points = ZigZag(21);
  const DPFeatures features = ExtractDPFeatures(points, 7);
  ASSERT_GE(features.features.size(), 1u);
  EXPECT_LE(features.features.size(), 7u);
  EXPECT_EQ(features.features[0].start, 0u);
  EXPECT_EQ(features.features[0].end, 20u);
  // The root box equals the trajectory MBR.
  EXPECT_DOUBLE_EQ(features.features[0].box.min_x, features.mbr.min_x);
  EXPECT_DOUBLE_EQ(features.features[0].box.max_y, features.mbr.max_y);
  // Every rep point is an actual trajectory point.
  for (const DPFeature& f : features.features) {
    bool found = false;
    for (const TimedPoint& p : points) {
      if (p.x == f.rep.x && p.y == f.rep.y && p.t == f.rep.t) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(DPFeaturesTest, SerializationRoundTrip) {
  const auto points = ZigZag(15);
  const DPFeatures features = ExtractDPFeatures(points, 5);
  std::string blob;
  EncodeDPFeatures(features, &blob);
  DPFeatures decoded;
  ASSERT_TRUE(DecodeDPFeatures(blob.data(), blob.size(), &decoded));
  ASSERT_EQ(decoded.features.size(), features.features.size());
  EXPECT_DOUBLE_EQ(decoded.mbr.min_x, features.mbr.min_x);
  for (size_t i = 0; i < features.features.size(); i++) {
    EXPECT_DOUBLE_EQ(decoded.features[i].rep.x, features.features[i].rep.x);
    EXPECT_EQ(decoded.features[i].rep.t, features.features[i].rep.t);
    EXPECT_EQ(decoded.features[i].start, features.features[i].start);
    EXPECT_EQ(decoded.features[i].end, features.features[i].end);
  }
}

// ---------------------------------------------------------------------------
// Similarity

std::vector<TimedPoint> Shifted(const std::vector<TimedPoint>& points,
                                double dx, double dy) {
  std::vector<TimedPoint> result = points;
  for (auto& p : result) {
    p.x += dx;
    p.y += dy;
  }
  return result;
}

TEST(SimilarityTest, IdenticalTrajectoriesHaveZeroDistance) {
  const auto a = ZigZag(20);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, a), 0.0);
  EXPECT_DOUBLE_EQ(DTWDistance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, a), 0.0);
}

TEST(SimilarityTest, ParallelShiftGivesShiftDistance) {
  const auto a = ZigZag(20);
  const auto b = Shifted(a, 0.0, 0.5);
  EXPECT_NEAR(DiscreteFrechet(a, b), 0.5, 1e-9);
  EXPECT_NEAR(HausdorffDistance(a, b), 0.5, 1e-9);
  // DTW sums per-step costs: n * 0.5 when aligned 1:1.
  EXPECT_NEAR(DTWDistance(a, b), 20 * 0.5, 1e-6);
}

TEST(SimilarityTest, FrechetAtLeastHausdorff) {
  Random rnd(3);
  for (int trial = 0; trial < 20; trial++) {
    std::vector<TimedPoint> a, b;
    for (int i = 0; i < 15; i++) {
      a.push_back(TimedPoint{rnd.UniformDouble(0, 1), rnd.UniformDouble(0, 1),
                             i});
      b.push_back(TimedPoint{rnd.UniformDouble(0, 1), rnd.UniformDouble(0, 1),
                             i});
    }
    EXPECT_GE(DiscreteFrechet(a, b) + 1e-12, HausdorffDistance(a, b));
  }
}

TEST(SimilarityTest, MBRLowerBoundNeverExceedsTrueDistance) {
  Random rnd(17);
  for (int trial = 0; trial < 30; trial++) {
    std::vector<TimedPoint> a, b;
    const double bx = rnd.UniformDouble(0, 2);
    for (int i = 0; i < 12; i++) {
      a.push_back(TimedPoint{rnd.UniformDouble(0, 1), rnd.UniformDouble(0, 1),
                             i});
      b.push_back(TimedPoint{bx + rnd.UniformDouble(0, 1),
                             rnd.UniformDouble(0, 1), i});
    }
    const double lb = MBRLowerBound(ComputeMBR(a), ComputeMBR(b));
    EXPECT_LE(lb, DiscreteFrechet(a, b) + 1e-9);
    EXPECT_LE(lb, HausdorffDistance(a, b) + 1e-9);
    EXPECT_LE(lb, DTWDistance(a, b) + 1e-9);
  }
}

TEST(SimilarityTest, DPFeatureBoundTighterThanOrEqualMBRBound) {
  Random rnd(29);
  for (int trial = 0; trial < 30; trial++) {
    std::vector<TimedPoint> a, b;
    for (int i = 0; i < 20; i++) {
      a.push_back(TimedPoint{rnd.UniformDouble(0, 1), rnd.UniformDouble(0, 1),
                             i});
      b.push_back(TimedPoint{2 + rnd.UniformDouble(0, 1),
                             rnd.UniformDouble(0, 1), i});
    }
    const DPFeatures fa = ExtractDPFeatures(a, 6);
    const DPFeatures fb = ExtractDPFeatures(b, 6);
    const double dp_lb = DPFeatureLowerBound(fa, fb);
    EXPECT_GE(dp_lb + 1e-12, MBRLowerBound(fa.mbr, fb.mbr));
    // Still a valid lower bound for all measures.
    EXPECT_LE(dp_lb, DiscreteFrechet(a, b) + 1e-9);
    EXPECT_LE(dp_lb, HausdorffDistance(a, b) + 1e-9);
  }
}

}  // namespace
}  // namespace tman::geo
