#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace tman {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(SliceTest, CompareOrdersBytewise) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
}

TEST(SliceTest, StartsWith) {
  EXPECT_TRUE(Slice("rowkey123").starts_with(Slice("rowkey")));
  EXPECT_FALSE(Slice("row").starts_with(Slice("rowkey")));
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(DecodeFixed32(s.data()), 0xdeadbeefu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string s;
  PutFixed64(&s, 0x0123456789abcdefULL);
  ASSERT_EQ(s.size(), 8u);
  EXPECT_EQ(DecodeFixed64(s.data()), 0x0123456789abcdefULL);
}

TEST(CodingTest, BigEndianPreservesOrder) {
  std::string a, b;
  PutBigEndian64(&a, 100);
  PutBigEndian64(&b, 101);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(DecodeBigEndian64(a.data()), 100u);
  std::string c;
  PutBigEndian32(&c, 7);
  EXPECT_EQ(DecodeBigEndian32(c.data()), 7u);
}

TEST(CodingTest, VarintRoundTrip) {
  std::string s;
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  (1ULL << 32) - 1, 1ULL << 63};
  for (uint64_t v : values) PutVarint64(&s, v);
  Slice input(s);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&input, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(input.empty());
}

TEST(CodingTest, VarintLengthMatchesEncoding) {
  for (uint64_t v : {0ULL, 127ULL, 128ULL, 1ULL << 40}) {
    std::string s;
    PutVarint64(&s, v);
    EXPECT_EQ(static_cast<int>(s.size()), VarintLength(v));
  }
}

TEST(CodingTest, MalformedVarintRejected) {
  std::string s(11, '\xff');  // never-terminating varint
  Slice input(s);
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&input, &v));
}

TEST(CodingTest, LengthPrefixedSliceRoundTrip) {
  std::string s;
  PutLengthPrefixedSlice(&s, Slice("hello"));
  PutLengthPrefixedSlice(&s, Slice(""));
  PutLengthPrefixedSlice(&s, Slice("world"));
  Slice input(s);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&input, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_EQ(b.ToString(), "");
  EXPECT_EQ(c.ToString(), "world");
}

TEST(CodingTest, ZigZagRoundTrip) {
  const int64_t values[] = {0,          1,         -1,       123456789,
                            -123456789, INT64_MAX, INT64_MIN};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  // Small magnitudes encode small.
  EXPECT_LT(ZigZagEncode64(-2), 5u);
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(Hash32("abc", 3, 1), Hash32("abc", 3, 1));
  EXPECT_NE(Hash32("abc", 3, 1), Hash32("abd", 3, 1));
  EXPECT_EQ(Hash64("abc", 3), Hash64("abc", 3));
}

TEST(HashTest, Crc32cKnownValue) {
  // CRC-32C of "123456789" is a published test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
}

TEST(RandomTest, DeterministicPerSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformDoubleInRange) {
  Random r(7);
  for (int i = 0; i < 1000; i++) {
    double d = r.UniformDouble(2.0, 3.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 3.0);
  }
}

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; i++) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

}  // namespace
}  // namespace tman
