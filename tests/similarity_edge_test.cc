// Edge cases of the similarity kernels and the push-down similarity
// filter.

#include <gtest/gtest.h>

#include "core/filters.h"
#include "core/record.h"
#include "geo/similarity.h"

namespace tman::geo {
namespace {

std::vector<TimedPoint> Line(double x0, double y0, double x1, double y1,
                             int n) {
  std::vector<TimedPoint> points;
  for (int i = 0; i < n; i++) {
    const double f = n == 1 ? 0 : static_cast<double>(i) / (n - 1);
    points.push_back(
        TimedPoint{x0 + f * (x1 - x0), y0 + f * (y1 - y0), i * 10});
  }
  return points;
}

TEST(SimilarityEdgeTest, SinglePointTrajectories) {
  const auto a = Line(0, 0, 0, 0, 1);
  const auto b = Line(3, 4, 3, 4, 1);
  EXPECT_DOUBLE_EQ(DiscreteFrechet(a, b), 5.0);
  EXPECT_DOUBLE_EQ(DTWDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 5.0);
}

TEST(SimilarityEdgeTest, EmptyTrajectoryIsInfinitelyFar) {
  const std::vector<TimedPoint> empty;
  const auto a = Line(0, 0, 1, 1, 5);
  EXPECT_GT(DiscreteFrechet(empty, a), 1e200);
  EXPECT_GT(DTWDistance(a, empty), 1e200);
  EXPECT_GT(HausdorffDistance(empty, empty), 1e200);
}

TEST(SimilarityEdgeTest, AsymmetricLengths) {
  // The same line sampled at different densities: the discrete measures
  // see at most half the coarser sampling interval (0.02 here).
  const auto sparse = Line(0, 0, 1, 0, 51);   // spacing 0.02
  const auto dense = Line(0, 0, 1, 0, 101);   // spacing 0.01
  EXPECT_LT(DiscreteFrechet(sparse, dense), 0.0201);
  EXPECT_LT(HausdorffDistance(sparse, dense), 0.0101);
}

TEST(SimilarityEdgeTest, FrechetRespectsOrdering) {
  // The same point set traversed in opposite directions: Hausdorff is 0,
  // Fréchet is not (it must couple endpoints monotonically).
  const auto forward = Line(0, 0, 1, 0, 10);
  auto backward = forward;
  std::reverse(backward.begin(), backward.end());
  EXPECT_LT(HausdorffDistance(forward, backward), 1e-9);
  EXPECT_NEAR(DiscreteFrechet(forward, backward), 1.0, 1e-9);
}

TEST(SimilarityEdgeTest, DTWTriangleSanity) {
  // DTW of identical is 0; shifting by d adds >= d.
  const auto a = Line(0, 0, 1, 1, 20);
  auto shifted = a;
  for (auto& p : shifted) p.x += 0.3;
  EXPECT_GE(DTWDistance(a, shifted), 0.3);
}

}  // namespace
}  // namespace tman::geo

namespace tman::core {
namespace {

traj::Trajectory MakeTrajectory(double x0, double y0, int n) {
  traj::Trajectory t;
  t.oid = "o";
  t.tid = "t";
  for (int i = 0; i < n; i++) {
    t.points.push_back(geo::TimedPoint{x0 + i * 0.01, y0, i * 30});
  }
  return t;
}

TEST(SimilarityFilterTest, PassesNearAndRejectsFar) {
  const traj::Trajectory query = MakeTrajectory(0, 0, 10);
  const geo::DPFeatures query_features =
      geo::ExtractDPFeatures(query.points, 4);
  SimilarityFilter filter(query_features, 0.05);

  std::string near_value, far_value;
  ASSERT_TRUE(EncodeRecord(MakeTrajectory(0, 0.01, 10), 4, &near_value));
  ASSERT_TRUE(EncodeRecord(MakeTrajectory(0, 5.0, 10), 4, &far_value));
  EXPECT_TRUE(filter.Matches("k", near_value));
  EXPECT_FALSE(filter.Matches("k", far_value));
  EXPECT_FALSE(filter.Matches("k", "garbage"));
}

TEST(SimilarityFilterTest, NeverRejectsTrueMatches) {
  // Soundness: any trajectory within the threshold must pass the filter.
  const traj::Trajectory query = MakeTrajectory(0, 0, 20);
  const geo::DPFeatures query_features =
      geo::ExtractDPFeatures(query.points, 6);
  const double threshold = 0.1;
  SimilarityFilter filter(query_features, threshold);
  for (double dy : {0.0, 0.02, 0.05, 0.099}) {
    const traj::Trajectory candidate = MakeTrajectory(0, dy, 20);
    const double d = geo::DiscreteFrechet(query.points, candidate.points);
    if (d <= threshold) {
      std::string value;
      ASSERT_TRUE(EncodeRecord(candidate, 6, &value));
      EXPECT_TRUE(filter.Matches("k", value)) << "dy=" << dy;
    }
  }
}

}  // namespace
}  // namespace tman::core
