// Cross-index property tests: invariants the paper states or relies on,
// checked over randomized inputs (parameterized sweeps).

#include <gtest/gtest.h>

#include <bit>
#include <map>
#include <set>

#include "common/random.h"
#include "index/fixed_bin_index.h"
#include "index/quadkey.h"
#include "index/shape_encoding.h"
#include "index/tr_index.h"
#include "index/tshape_index.h"
#include "index/xz2_index.h"
#include "index/xzt_index.h"

namespace tman::index {
namespace {

// ---------------------------------------------------------------------------
// TR vs XZT: the headline claim of §IV-A1 — the TR index covers a query
// with fewer candidate index values (less dead region).

TEST(TRvsXZTProperty, TRQueryIntervalsAreBounded) {
  // TR candidate values are at most N(N-1)/2 + Q*N (§V-B discussion), a
  // bound independent of the data volume.
  Random rnd(1);
  for (int trial = 0; trial < 100; trial++) {
    const int64_t period = 600 * (1 + static_cast<int64_t>(rnd.Uniform(8)));
    const int64_t N = 4 + static_cast<int64_t>(rnd.Uniform(44));
    TRIndex idx(TRConfig{0, period, N});
    const int64_t ts = static_cast<int64_t>(rnd.Uniform(1u << 30));
    const int64_t Q = 1 + static_cast<int64_t>(rnd.Uniform(10));
    const auto ranges = idx.QueryRanges(ts, ts + Q * period);
    const uint64_t bound =
        static_cast<uint64_t>(N * (N - 1) / 2 + (Q + 1) * N);
    EXPECT_LE(TotalCount(ranges), bound);
  }
}

TEST(TRvsXZTProperty, DeadRegionComparison) {
  // Dead region: the slack between a trajectory's represented span and its
  // actual time range. XZT's dichotomy can double the span; TR's bins add
  // at most two periods.
  TRIndex tr(TRConfig{0, 1800, 48});
  XZTIndex xzt(XZTConfig{0, 7 * 24 * 3600, 14});
  Random rnd(2);
  double tr_slack_total = 0;
  double xzt_slack_total = 0;
  const int trials = 500;
  for (int trial = 0; trial < trials; trial++) {
    const int64_t ts = static_cast<int64_t>(rnd.Uniform(60LL * 86400));
    const int64_t duration = 600 + static_cast<int64_t>(rnd.Uniform(12 * 3600));
    const int64_t te = ts + duration;
    // TR bin span.
    int64_t bin_start, bin_end;
    tr.DecodeBin(tr.Encode(ts, te), &bin_start, &bin_end);
    tr_slack_total += static_cast<double>((bin_end - bin_start) - duration);
    // XZT XElement span: infer from the code by re-deriving the element.
    // The encode picks the deepest element whose XElement covers [ts,te];
    // its span is at least the duration. Measure it by binary descent.
    const int64_t period = 7 * 24 * 3600;
    int64_t elem_start = (ts / period) * period;
    int64_t elem_len = period;
    for (int depth = 0; depth < 14; depth++) {
      const int64_t half = elem_len / 2;
      if (half == 0) break;
      const int64_t child_start =
          (ts - elem_start) >= half ? elem_start + half : elem_start;
      if (te < child_start + 2 * half) {
        elem_start = child_start;
        elem_len = half;
      } else {
        break;
      }
    }
    xzt_slack_total += static_cast<double>(2 * elem_len - duration);
  }
  // On average the TR representation is much tighter.
  EXPECT_LT(tr_slack_total / trials, xzt_slack_total / trials / 2);
}

// ---------------------------------------------------------------------------
// Fixed-bin duplication vs TR single storage.

TEST(FixedBinProperty, DuplicatesLongRanges) {
  FixedBinIndex idx(FixedBinConfig{0, 3600});
  // A 5-hour trajectory is stored 6 times (crossing 6 hourly bins).
  const auto bins = idx.EncodeAll(1800, 1800 + 5 * 3600);
  EXPECT_EQ(bins.size(), 6u);
  // TR stores it once.
  TRIndex tr(TRConfig{0, 3600, 24});
  (void)tr.Encode(1800, 1800 + 5 * 3600);  // one value by construction
}

TEST(FixedBinProperty, QueryCoversEveryStoredCopy) {
  FixedBinIndex idx(FixedBinConfig{0, 1800});
  Random rnd(3);
  for (int trial = 0; trial < 200; trial++) {
    const int64_t t_ts = static_cast<int64_t>(rnd.Uniform(1u << 24));
    const int64_t t_te = t_ts + static_cast<int64_t>(rnd.Uniform(20000));
    const int64_t q_ts = static_cast<int64_t>(rnd.Uniform(1u << 24));
    const int64_t q_te = q_ts + static_cast<int64_t>(rnd.Uniform(20000));
    if (t_ts > q_te || t_te < q_ts) continue;
    // At least one stored copy falls in a queried bin.
    const auto bins = idx.EncodeAll(t_ts, t_te);
    const auto ranges = idx.QueryRanges(q_ts, q_te);
    bool covered = false;
    for (uint64_t bin : bins) {
      for (const auto& r : ranges) {
        if (r.Contains(bin)) covered = true;
      }
    }
    EXPECT_TRUE(covered);
  }
}

// ---------------------------------------------------------------------------
// TShape: encode/query consistency under random alpha/beta.

struct ABCase {
  int alpha;
  int beta;
};

class TShapeSweep : public ::testing::TestWithParam<ABCase> {};

TEST_P(TShapeSweep, EncodedShapeAlwaysWithinElement) {
  const auto [alpha, beta] = GetParam();
  TShapeIndex idx(TShapeConfig{alpha, beta, 14});
  Random rnd(alpha * 31 + beta);
  for (int trial = 0; trial < 200; trial++) {
    std::vector<geo::TimedPoint> points;
    double x = rnd.UniformDouble(0.05, 0.9);
    double y = rnd.UniformDouble(0.05, 0.9);
    for (int i = 0; i < 30; i++) {
      x = std::clamp(x + rnd.UniformDouble(-0.003, 0.003), 0.0, 0.999);
      y = std::clamp(y + rnd.UniformDouble(-0.003, 0.003), 0.0, 0.999);
      points.push_back(geo::TimedPoint{x, y, i * 30});
    }
    const TShapeEncoding enc = idx.Encode(points);
    // Shape is non-empty and uses only bits inside alpha*beta.
    EXPECT_NE(enc.shape, 0u);
    EXPECT_EQ(enc.shape >> (alpha * beta), 0u);
    // The enlarged element covers the whole trajectory.
    const geo::MBR enlarged = idx.EnlargedRect(enc.anchor);
    const geo::MBR mbr = geo::ComputeMBR(points);
    EXPECT_LE(enlarged.min_x, mbr.min_x + 1e-12);
    EXPECT_GE(enlarged.max_x, mbr.max_x - 1e-12);
    EXPECT_LE(enlarged.min_y, mbr.min_y + 1e-12);
    EXPECT_GE(enlarged.max_y, mbr.max_y - 1e-12);
    // Every set bit's cell intersects the trajectory MBR.
    const double w = enc.anchor.size();
    for (int dy = 0; dy < beta; dy++) {
      for (int dx = 0; dx < alpha; dx++) {
        if ((enc.shape & (1u << (dy * alpha + dx))) == 0) continue;
        const geo::MBR cell{(enc.anchor.x + dx) * w, (enc.anchor.y + dy) * w,
                            (enc.anchor.x + dx + 1) * w,
                            (enc.anchor.y + dy + 1) * w};
        EXPECT_TRUE(mbr.Intersects(cell));
      }
    }
    // Index value round-trips its parts.
    EXPECT_EQ(idx.QuadCodeOf(enc.index_value), enc.quad_code);
    EXPECT_EQ(idx.ShapeCodeOf(enc.index_value), enc.shape);
  }
}

TEST_P(TShapeSweep, QueryRangesAreSortedAndDisjoint) {
  const auto [alpha, beta] = GetParam();
  TShapeIndex idx(TShapeConfig{alpha, beta, 12});
  Random rnd(alpha * 7 + beta);
  for (int trial = 0; trial < 50; trial++) {
    const double qx = rnd.UniformDouble(0, 0.9);
    const double qy = rnd.UniformDouble(0, 0.9);
    const geo::MBR query{qx, qy, qx + rnd.UniformDouble(0.005, 0.1),
                         qy + rnd.UniformDouble(0.005, 0.1)};
    const auto ranges = idx.QueryRanges(query, nullptr);
    for (size_t i = 0; i < ranges.size(); i++) {
      EXPECT_LE(ranges[i].lo, ranges[i].hi);
      if (i > 0) {
        EXPECT_GT(ranges[i].lo, ranges[i - 1].hi + 1)
            << "ranges must be merged and disjoint";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TShapeSweep,
                         ::testing::Values(ABCase{2, 2}, ABCase{2, 3},
                                           ABCase{3, 3}, ABCase{3, 4},
                                           ABCase{4, 4}, ABCase{5, 5}),
                         [](const ::testing::TestParamInfo<ABCase>& info) {
                           return std::to_string(info.param.alpha) + "x" +
                                  std::to_string(info.param.beta);
                         });

// ---------------------------------------------------------------------------
// Finer shapes never increase the candidate shape count for off-path
// queries (monotonicity of the paper's Fig. 15 claim).

TEST(TShapeProperty, ShapePopcountBoundedByCells) {
  TShapeIndex idx(TShapeConfig{5, 5, 14});
  Random rnd(9);
  for (int trial = 0; trial < 100; trial++) {
    // A short straight segment at a random angle.
    const double x = rnd.UniformDouble(0.1, 0.8);
    const double y = rnd.UniformDouble(0.1, 0.8);
    const double angle = rnd.UniformDouble(0, 6.28);
    std::vector<geo::TimedPoint> points;
    for (int i = 0; i < 20; i++) {
      points.push_back(geo::TimedPoint{x + std::cos(angle) * i * 0.002,
                                       y + std::sin(angle) * i * 0.002,
                                       i * 30});
    }
    const TShapeEncoding enc = idx.Encode(points);
    // A line through a 5x5 grid can cross at most 2*5-1 = 9 cells; the
    // bitset representation preserves that sparsity (an MBR could not).
    EXPECT_LE(std::popcount(enc.shape), 9);
  }
}

// ---------------------------------------------------------------------------
// XZ2 vs TShape: TShape is at least as selective as XZ2 on identical data
// (the shape bitset refines the enlarged element).

TEST(XZ2vsTShapeProperty, TShapeRefinesXZ2Selectivity) {
  XZ2Index xz2(XZ2Config{14});
  TShapeIndex tshape(TShapeConfig{3, 3, 14});
  Random rnd(12);
  int xz2_hits = 0;
  int tshape_hits = 0;
  for (int trial = 0; trial < 500; trial++) {
    // Diagonal trajectory; query window off the diagonal inside the MBR.
    const double x = rnd.UniformDouble(0.1, 0.8);
    const double y = rnd.UniformDouble(0.1, 0.8);
    std::vector<geo::TimedPoint> points;
    for (int i = 0; i < 25; i++) {
      points.push_back(
          geo::TimedPoint{x + i * 0.002, y + i * 0.002, i * 30});
    }
    const geo::MBR query{x + 0.001, y + 0.030, x + 0.010, y + 0.045};

    const geo::MBR mbr = geo::ComputeMBR(points);
    // XZ2 candidate test: enlarged element of the anchor intersects query.
    const QuadCell xz_anchor = xz2.AnchorCell(mbr);
    const double w = xz_anchor.size();
    const geo::MBR xz_enlarged{xz_anchor.x * w, xz_anchor.y * w,
                               (xz_anchor.x + 2) * w, (xz_anchor.y + 2) * w};
    if (xz_enlarged.Intersects(query)) xz2_hits++;
    // TShape candidate test: the stored shape bitset intersects the query.
    const TShapeEncoding enc = tshape.Encode(points);
    if (tshape.ShapeIntersects(enc.anchor, enc.shape, query)) tshape_hits++;
  }
  EXPECT_LT(tshape_hits, xz2_hits)
      << "shape bitsets must prune off-path queries that MBRs cannot";
}

// ---------------------------------------------------------------------------
// Shape-order optimisation invariants.

TEST(ShapeOrderProperty, GreedyNeverWorseThanRawOnAverage) {
  Random rnd(13);
  double greedy_total = 0;
  double raw_total = 0;
  for (int trial = 0; trial < 30; trial++) {
    std::set<uint32_t> unique;
    while (unique.size() < 20) {
      unique.insert(static_cast<uint32_t>(rnd.Uniform(1u << 25)) | 1);
    }
    std::vector<uint32_t> shapes(unique.begin(), unique.end());
    const auto greedy = OptimizeShapeOrder(shapes, ShapeOrderMethod::kGreedy);
    const auto raw = OptimizeShapeOrder(shapes, ShapeOrderMethod::kBitmap);
    greedy_total += CumulativeSimilarity(shapes, greedy);
    raw_total += CumulativeSimilarity(shapes, raw);
  }
  EXPECT_GT(greedy_total, raw_total);
}

TEST(ShapeOrderProperty, SingleAndEmptyInputs) {
  EXPECT_TRUE(OptimizeShapeOrder({}, ShapeOrderMethod::kGenetic).empty());
  const auto one = OptimizeShapeOrder({7u}, ShapeOrderMethod::kGreedy);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(ShapeOrderProperty, JaccardBasics) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity(0b1010, 0b1010), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(0b1010, 0b0101), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(0, 0), 1.0);  // defined as identical
  EXPECT_DOUBLE_EQ(JaccardSimilarity(0b11, 0b01), 0.5);
  // Symmetry.
  Random rnd(14);
  for (int i = 0; i < 100; i++) {
    const uint32_t a = static_cast<uint32_t>(rnd.Next());
    const uint32_t b = static_cast<uint32_t>(rnd.Next());
    EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b), JaccardSimilarity(b, a));
  }
}

// ---------------------------------------------------------------------------
// XZT code-space uniqueness within and across periods.

TEST(XZTProperty, CodesUniqueAcrossPeriods) {
  XZTIndex idx(XZTConfig{0, 10000, 6});
  Random rnd(15);
  std::map<uint64_t, std::pair<int64_t, int64_t>> seen;
  for (int trial = 0; trial < 2000; trial++) {
    const int64_t ts = static_cast<int64_t>(rnd.Uniform(200000));
    const int64_t te = ts + 1 + static_cast<int64_t>(rnd.Uniform(15000));
    const uint64_t code = idx.Encode(ts, te);
    auto it = seen.find(code);
    if (it != seen.end()) {
      // Same code implies same period and a shared covering element; both
      // ranges must fit inside one XElement of that period, i.e. they are
      // near each other.
      EXPECT_LT(std::abs(it->second.first - ts), 2 * 10000);
    }
    seen[code] = {ts, te};
  }
}

}  // namespace
}  // namespace tman::index
