#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>

#include "core/tman.h"
#include "geo/similarity.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_core_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TManOptions SmallOptions(const traj::DatasetSpec& spec) {
  TManOptions options;
  options.bounds = spec.bounds;
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.xzt.origin = 0;
  options.tshape.max_resolution = 15;
  options.num_shards = 4;
  options.num_servers = 3;
  options.genetic.generations = 10;  // keep tests fast
  options.kv.write_buffer_size = 256 * 1024;
  return options;
}

// Shared fixture: one loaded TMan instance + the raw data for brute force.
class TManQueryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new traj::DatasetSpec(traj::TDriveLikeSpec());
    data_ = new std::vector<traj::Trajectory>(traj::Generate(*spec_, 400, 99));
    tman_ = new std::unique_ptr<TMan>;
    TManOptions options = SmallOptions(*spec_);
    ASSERT_TRUE(TMan::Open(options, TestDir("query"), tman_).ok());
    ASSERT_TRUE((*tman_)->BulkLoad(*data_).ok());
    ASSERT_TRUE((*tman_)->Flush().ok());
  }

  static void TearDownTestSuite() {
    delete tman_;
    delete data_;
    delete spec_;
    tman_ = nullptr;
    data_ = nullptr;
    spec_ = nullptr;
  }

  static std::set<std::string> Tids(const std::vector<traj::Trajectory>& v) {
    std::set<std::string> tids;
    for (const auto& t : v) tids.insert(t.tid);
    return tids;
  }

  static traj::DatasetSpec* spec_;
  static std::vector<traj::Trajectory>* data_;
  static std::unique_ptr<TMan>* tman_;
};

traj::DatasetSpec* TManQueryTest::spec_ = nullptr;
std::vector<traj::Trajectory>* TManQueryTest::data_ = nullptr;
std::unique_ptr<TMan>* TManQueryTest::tman_ = nullptr;

TEST_F(TManQueryTest, TemporalRangeQueryMatchesBruteForce) {
  const auto windows = traj::RandomTimeWindows(*spec_, 10, 6 * 3600, 5);
  for (const auto& w : windows) {
    std::vector<traj::Trajectory> results;
    QueryStats stats;
    ASSERT_TRUE(
        (*tman_)->TemporalRangeQuery(w.ts, w.te, &results, &stats).ok());

    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.IntersectsTimeRange(w.ts, w.te)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
    EXPECT_GE(stats.candidates, results.size());
  }
}

TEST_F(TManQueryTest, SpatialRangeQueryMatchesBruteForce) {
  const auto windows = traj::RandomSpaceWindows(*spec_, 10, 3000, 5);
  for (const auto& w : windows) {
    std::vector<traj::Trajectory> results;
    QueryStats stats;
    ASSERT_TRUE((*tman_)->SpatialRangeQuery(w.rect, &results, &stats).ok());

    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (geo::PolylineIntersectsRect(t.points, w.rect)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
  }
}

TEST_F(TManQueryTest, SpatioTemporalQueryMatchesBruteForce) {
  const auto tws = traj::RandomTimeWindows(*spec_, 6, 12 * 3600, 8);
  const auto sws = traj::RandomSpaceWindows(*spec_, 6, 5000, 8);
  for (size_t i = 0; i < tws.size(); i++) {
    std::vector<traj::Trajectory> results;
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->SpatioTemporalRangeQuery(sws[i].rect, tws[i].ts,
                                               tws[i].te, &results, &stats)
                    .ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.IntersectsTimeRange(tws[i].ts, tws[i].te) &&
          geo::PolylineIntersectsRect(t.points, sws[i].rect)) {
        expected.insert(t.tid);
      }
    }
    EXPECT_EQ(Tids(results), expected) << "window " << i;
  }
}

TEST_F(TManQueryTest, IDTemporalQueryMatchesBruteForce) {
  // Pick a few objects that exist in the data.
  std::set<std::string> oids;
  for (const auto& t : *data_) {
    oids.insert(t.oid);
    if (oids.size() >= 5) break;
  }
  const int64_t ts = spec_->t0;
  const int64_t te = spec_->t0 + spec_->horizon_seconds / 2;
  for (const auto& oid : oids) {
    std::vector<traj::Trajectory> results;
    QueryStats stats;
    ASSERT_TRUE((*tman_)->IDTemporalQuery(oid, ts, te, &results, &stats).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.oid == oid && t.IntersectsTimeRange(ts, te)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected) << oid;
    for (const auto& t : results) EXPECT_EQ(t.oid, oid);
  }
}

TEST_F(TManQueryTest, ThresholdSimilarityMatchesBruteForce) {
  const traj::Trajectory& query = (*data_)[7];
  const double threshold = 0.02;  // degrees
  for (auto measure : {geo::SimilarityMeasure::kFrechet,
                       geo::SimilarityMeasure::kHausdorff}) {
    std::vector<traj::Trajectory> results;
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->ThresholdSimilarityQuery(query, measure, threshold,
                                               &results, &stats)
                    .ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (geo::ExactDistance(measure, query.points, t.points) <= threshold) {
        expected.insert(t.tid);
      }
    }
    EXPECT_EQ(Tids(results), expected);
    // Pruning must have avoided computing every exact distance.
    EXPECT_LT(stats.exact_distance_computations, data_->size());
  }
}

TEST_F(TManQueryTest, TopKSimilarityMatchesBruteForce) {
  const traj::Trajectory& query = (*data_)[3];
  const size_t k = 5;
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  ASSERT_TRUE((*tman_)
                  ->TopKSimilarityQuery(query, geo::SimilarityMeasure::kFrechet,
                                        k, &results, &stats)
                  .ok());
  ASSERT_EQ(results.size(), k);

  // Brute force: k smallest Fréchet distances (excluding the query itself).
  std::vector<std::pair<double, std::string>> all;
  for (const auto& t : *data_) {
    if (t.tid == query.tid) continue;
    all.emplace_back(geo::DiscreteFrechet(query.points, t.points), t.tid);
  }
  std::sort(all.begin(), all.end());
  // Distances (not necessarily identities, on ties) must match.
  for (size_t i = 0; i < k; i++) {
    const double got =
        geo::DiscreteFrechet(query.points, results[i].points);
    EXPECT_NEAR(got, all[i].first, 1e-12) << i;
  }
}

TEST_F(TManQueryTest, StatsArepopulated) {
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  const auto w = traj::RandomTimeWindows(*spec_, 1, 3600, 77)[0];
  ASSERT_TRUE((*tman_)->TemporalRangeQuery(w.ts, w.te, &results, &stats).ok());
  EXPECT_GT(stats.windows, 0u);
  EXPECT_FALSE(stats.plan.empty());
}

// ---------------------------------------------------------------------------
// Configuration matrix: every index combination answers queries correctly.

struct ConfigCase {
  const char* name;
  SpatialIndexKind spatial;
  TemporalIndexKind temporal;
  PrimaryIndexKind primary;
  bool use_cache;
  bool push_down;
};

class TManConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(TManConfigTest, QueriesMatchBruteForce) {
  const ConfigCase& c = GetParam();
  const traj::DatasetSpec spec = traj::LorryLikeSpec();
  const auto data = traj::Generate(spec, 150, 31);

  TManOptions options = SmallOptions(spec);
  options.spatial = c.spatial;
  options.temporal = c.temporal;
  options.primary = c.primary;
  options.use_index_cache = c.use_cache;
  options.push_down = c.push_down;

  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir(std::string("cfg_") + c.name),
                         &tman)
                  .ok());
  ASSERT_TRUE(tman->BulkLoad(data).ok());

  // TRQ.
  const auto tw = traj::RandomTimeWindows(spec, 4, 6 * 3600, 13);
  for (const auto& w : tw) {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->TemporalRangeQuery(w.ts, w.te, &results, nullptr).ok());
    std::set<std::string> expected, got;
    for (const auto& t : data) {
      if (t.IntersectsTimeRange(w.ts, w.te)) expected.insert(t.tid);
    }
    for (const auto& t : results) got.insert(t.tid);
    EXPECT_EQ(got, expected) << c.name;
  }

  // SRQ (only with a spatial primary).
  if (c.primary == PrimaryIndexKind::kSpatial) {
    const auto sw = traj::RandomSpaceWindows(spec, 4, 4000, 13);
    for (const auto& w : sw) {
      std::vector<traj::Trajectory> results;
      ASSERT_TRUE(tman->SpatialRangeQuery(w.rect, &results, nullptr).ok());
      std::set<std::string> expected, got;
      for (const auto& t : data) {
        if (geo::PolylineIntersectsRect(t.points, w.rect)) {
          expected.insert(t.tid);
        }
      }
      for (const auto& t : results) got.insert(t.tid);
      EXPECT_EQ(got, expected) << c.name;
    }
  }

  // STRQ works under all configurations.
  const auto w = traj::RandomTimeWindows(spec, 1, 24 * 3600, 17)[0];
  const auto s = traj::RandomSpaceWindows(spec, 1, 8000, 17)[0];
  std::vector<traj::Trajectory> results;
  ASSERT_TRUE(
      tman->SpatioTemporalRangeQuery(s.rect, w.ts, w.te, &results, nullptr)
          .ok());
  std::set<std::string> expected, got;
  for (const auto& t : data) {
    if (t.IntersectsTimeRange(w.ts, w.te) &&
        geo::PolylineIntersectsRect(t.points, s.rect)) {
      expected.insert(t.tid);
    }
  }
  for (const auto& t : results) got.insert(t.tid);
  EXPECT_EQ(got, expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TManConfigTest,
    ::testing::Values(
        ConfigCase{"tshape_tr_spatial", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kSpatial, true,
                   true},
        ConfigCase{"xz2_tr_spatial", SpatialIndexKind::kXZ2,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kSpatial, true,
                   true},
        ConfigCase{"xzstar_tr_spatial", SpatialIndexKind::kXZStar,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kSpatial, true,
                   true},
        ConfigCase{"tshape_xzt_spatial", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kXZT, PrimaryIndexKind::kSpatial, true,
                   true},
        ConfigCase{"tshape_tr_temporal", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kTemporal, true,
                   true},
        ConfigCase{"tshape_tr_st", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kST, true, true},
        ConfigCase{"nocache", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kSpatial, false,
                   true},
        ConfigCase{"nopushdown", SpatialIndexKind::kTShape,
                   TemporalIndexKind::kTR, PrimaryIndexKind::kSpatial, true,
                   false}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Update path (§IV-C)

TEST(TManUpdateTest, InsertTriggersReencodeAndStaysQueryable) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  TManOptions options = SmallOptions(spec);
  options.buffer_shape_threshold = 16;  // force re-encodes quickly
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("update"), &tman).ok());

  const auto initial = traj::Generate(spec, 100, 1);
  ASSERT_TRUE(tman->BulkLoad(initial).ok());

  // Insert in several batches; new shapes accumulate in the buffer shape
  // cache and trigger re-encoding.
  auto more = traj::Generate(spec, 300, 2);
  for (auto& t : more) t.tid += "-new";
  for (size_t off = 0; off < more.size(); off += 50) {
    std::vector<traj::Trajectory> batch(
        more.begin() + off,
        more.begin() + std::min(off + 50, more.size()));
    ASSERT_TRUE(tman->Insert(batch).ok());
  }
  EXPECT_GT(tman->reencode_count(), 0u);

  // After re-encoding every trajectory must still be retrievable.
  std::vector<traj::Trajectory> all_data = initial;
  all_data.insert(all_data.end(), more.begin(), more.end());
  const auto sw = traj::RandomSpaceWindows(spec, 5, 4000, 3);
  for (const auto& w : sw) {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->SpatialRangeQuery(w.rect, &results, nullptr).ok());
    std::set<std::string> expected, got;
    for (const auto& t : all_data) {
      if (geo::PolylineIntersectsRect(t.points, w.rect)) expected.insert(t.tid);
    }
    for (const auto& t : results) got.insert(t.tid);
    EXPECT_EQ(got, expected);
  }
}

TEST(TManStorageTest, SingleRowPerTrajectoryInPrimary) {
  // TrajMesa-style multi-table storage stores each trajectory ~3 times;
  // TMan's primary holds it once (secondaries store only small key rows).
  const traj::DatasetSpec spec = traj::LorryLikeSpec();
  TManOptions options = SmallOptions(spec);
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("storage"), &tman).ok());
  const auto data = traj::Generate(spec, 100, 4);
  ASSERT_TRUE(tman->BulkLoad(data).ok());
  ASSERT_TRUE(tman->Flush().ok());
  EXPECT_GT(tman->StorageBytes(), 0u);

  // A full spatial scan returns exactly one row per trajectory.
  std::vector<traj::Trajectory> results;
  ASSERT_TRUE(
      tman->SpatialRangeQuery(spec.bounds.ToGeo(), &results, nullptr).ok());
  EXPECT_EQ(results.size(), data.size());
}

TEST(TManStorageTest, RejectsEmptyTrajectory) {
  const traj::DatasetSpec spec = traj::LorryLikeSpec();
  TManOptions options = SmallOptions(spec);
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("reject"), &tman).ok());
  traj::Trajectory empty;
  empty.tid = "empty";
  EXPECT_FALSE(tman->BulkLoad({empty}).ok());
}

TEST(TManStorageTest, RecordRoundTrip) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  const auto data = traj::Generate(spec, 3, 8);
  for (const auto& t : data) {
    std::string value;
    ASSERT_TRUE(EncodeRecord(t, 8, &value));
    RecordHeader header;
    ASSERT_TRUE(DecodeRecordHeader(value, &header));
    EXPECT_EQ(header.oid.ToString(), t.oid);
    EXPECT_EQ(header.tid.ToString(), t.tid);
    EXPECT_EQ(header.ts, t.start_time());
    EXPECT_EQ(header.te, t.end_time());

    traj::Trajectory decoded;
    ASSERT_TRUE(DecodeRecord(value, &decoded));
    ASSERT_EQ(decoded.points.size(), t.points.size());
    for (size_t i = 0; i < t.points.size(); i++) {
      EXPECT_EQ(decoded.points[i].x, t.points[i].x);
      EXPECT_EQ(decoded.points[i].y, t.points[i].y);
      EXPECT_EQ(decoded.points[i].t, t.points[i].t);
    }
  }
}

}  // namespace
}  // namespace tman::core
