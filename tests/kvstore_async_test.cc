// Tests for the asynchronous write path: group-commit WAL, background
// flush/compaction, write backpressure, sync-write plumbing and crash
// recovery with a frozen memtable in flight.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "kvstore/db.h"
#include "kvstore/env.h"
#include "kvstore/options.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_kv_async_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(int thread, int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "k%02d-%06d", thread, i);
  return buf;
}

// ---------------------------------------------------------------------------
// Group commit

TEST(AsyncDBTest, GroupCommitConcurrentWriters) {
  std::string dir = TestDir("group_commit");
  Options options;
  options.write_buffer_size = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  constexpr int kThreads = 8;
  constexpr int kWrites = 500;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      WriteOptions wo;
      for (int i = 0; i < kWrites; i++) {
        if (!db->Put(wo, Key(t, i), "v" + std::to_string(i)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  ASSERT_TRUE(db->Flush().ok());
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kWrites; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), Key(t, i), &value).ok())
          << Key(t, i);
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
  DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.flush_count, 0u);  // background flushes actually happened
}

// ---------------------------------------------------------------------------
// WriteOptions::sync -> Env::SyncFile

// Env wrapper that counts SyncFile calls and forwards everything else.
class SyncCountingEnv : public Env {
 public:
  explicit SyncCountingEnv(Env* base) : base_(base) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    return base_->NewWritableFile(fname, result);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* r) override {
    return base_->NewRandomAccessFile(fname, r);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* r) override {
    return base_->NewSequentialFile(fname, r);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDirIfMissing(const std::string& dirname) override {
    return base_->CreateDirIfMissing(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    return base_->RenameFile(src, dst);
  }
  Status SyncFile(WritableFile* file) override {
    syncs.fetch_add(1);
    return base_->SyncFile(file);
  }

  std::atomic<int> syncs{0};

 private:
  Env* base_;
};

TEST(AsyncDBTest, SyncWritesHitEnvSyncFile) {
  std::string dir = TestDir("sync_writes");
  SyncCountingEnv env(Env::Default());
  Options options;
  options.env = &env;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  WriteOptions async_wo;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db->Put(async_wo, Key(0, i), "v").ok());
  }
  EXPECT_EQ(env.syncs.load(), 0);  // non-sync writes never fsync

  WriteOptions sync_wo;
  sync_wo.sync = true;
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(db->Put(sync_wo, Key(1, i), "v").ok());
  }
  EXPECT_GT(env.syncs.load(), 0);
  EXPECT_LE(env.syncs.load(), 5);  // group commit may coalesce, never inflate
  EXPECT_EQ(db->GetStats().wal_syncs, static_cast<uint64_t>(env.syncs.load()));
}

// ---------------------------------------------------------------------------
// Readers concurrent with background flush/compaction

TEST(AsyncDBTest, IteratorStableDuringFlushAndCompaction) {
  std::string dir = TestDir("stable_iter");
  Options options;
  options.write_buffer_size = 16 * 1024;
  options.max_file_bytes = 32 * 1024;
  options.base_level_bytes = 64 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  constexpr int kStable = 200;
  WriteOptions wo;
  for (int i = 0; i < kStable; i++) {
    ASSERT_TRUE(db->Put(wo, "a" + Key(0, i), "stable").ok());
  }

  // Snapshot *before* the churn starts.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    // Keys sort after the "a" prefix; heavy enough to force several
    // flushes and compactions while the iterator is read (runs to
    // completion so the flush count below is deterministic).
    for (int i = 0; i < 4000; i++) {
      std::string value(256, 'x');
      ASSERT_TRUE(db->Put(wo, "b" + Key(1, i), value).ok());
    }
  });
  std::thread readers([&] {
    while (!stop.load()) {
      std::string value;
      Status s = db->Get(ReadOptions(), "a" + Key(0, 7), &value);
      ASSERT_TRUE(s.ok());
      ASSERT_EQ(value, "stable");
    }
  });

  int seen = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_EQ(iter->value().ToString(), "stable");
    seen++;
  }
  EXPECT_EQ(seen, kStable);  // the snapshot never sees the churn writes

  churn.join();
  stop.store(true);
  readers.join();
  ASSERT_TRUE(db->Flush().ok());
  EXPECT_GT(db->GetStats().flush_count, 1u);
}

// ---------------------------------------------------------------------------
// Crash recovery

// Simulates a crash by copying the live DB directory (as a crash would
// leave it) and reopening the copy.
TEST(AsyncDBTest, CrashRecoveryReplaysWalOnly) {
  std::string dir = TestDir("crash_wal");
  std::string crash_dir = TestDir("crash_wal_copy");
  Options options;  // default 4MB buffer: nothing flushes
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db->Put(wo, Key(0, i), "wal-only-" + std::to_string(i)).ok());
  }

  std::filesystem::copy(dir, crash_dir);
  // The "crashed" image must hold the data in WALs, not SSTables.
  int sst_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(crash_dir)) {
    if (e.path().extension() == ".sst") sst_files++;
  }
  EXPECT_EQ(sst_files, 0);

  std::unique_ptr<DB> recovered;
  ASSERT_TRUE(DB::Open(options, crash_dir, &recovered).ok());
  for (int i = 0; i < 100; i++) {
    std::string value;
    ASSERT_TRUE(recovered->Get(ReadOptions(), Key(0, i), &value).ok());
    EXPECT_EQ(value, "wal-only-" + std::to_string(i));
  }
}

// Env that parks the first SSTable creation on a gate, holding the
// background flush mid-flight: the frozen memtable's WAL and the active
// WAL both exist on disk, but no SSTable has been produced yet.
class FlushGateEnv : public SyncCountingEnv {
 public:
  explicit FlushGateEnv(Env* base) : SyncCountingEnv(base) {}

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    if (fname.size() > 4 && fname.substr(fname.size() - 4) == ".sst") {
      std::unique_lock<std::mutex> lock(mu_);
      blocked_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    return SyncCountingEnv::NewWritableFile(fname, result);
  }

  bool IsBlocked() {
    std::lock_guard<std::mutex> lock(mu_);
    return blocked_;
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool blocked_ = false;
  bool released_ = false;
};

TEST(AsyncDBTest, CrashRecoveryWithFrozenMemtable) {
  std::string dir = TestDir("crash_frozen");
  std::string crash_dir = TestDir("crash_frozen_copy");
  FlushGateEnv env(Env::Default());
  Options options;
  options.env = &env;
  options.write_buffer_size = 8 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  // Write until the memtable freezes and its background flush parks on the
  // gate; the pacing sleep guarantees the worker reaches the gate well
  // before a second freeze could hard-stall this thread.
  WriteOptions wo;
  int written = 0;
  while (!env.IsBlocked() && written < 500) {
    ASSERT_TRUE(
        db->Put(wo, Key(0, written), std::string(64, 'a')).ok());
    written++;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(env.IsBlocked());

  // Crash image: frozen-memtable WAL + active WAL, no SSTable yet. The
  // directory is quiescent (the only background task is parked).
  std::filesystem::copy(dir, crash_dir);
  int sst_files = 0, wal_files = 0;
  for (const auto& e : std::filesystem::directory_iterator(crash_dir)) {
    if (e.path().extension() == ".sst") sst_files++;
    if (e.path().extension() == ".wal") wal_files++;
  }
  EXPECT_EQ(sst_files, 0);
  EXPECT_EQ(wal_files, 2);

  env.Release();
  db.reset();

  Options plain;  // the copy reopens with the default Env
  plain.write_buffer_size = 8 * 1024;
  std::unique_ptr<DB> recovered;
  ASSERT_TRUE(DB::Open(plain, crash_dir, &recovered).ok());
  for (int i = 0; i < written; i++) {
    std::string value;
    ASSERT_TRUE(recovered->Get(ReadOptions(), Key(0, i), &value).ok())
        << Key(0, i);
    EXPECT_EQ(value, std::string(64, 'a'));
  }
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(AsyncDBTest, BackpressureSlowsButNeverLosesData) {
  std::string dir = TestDir("backpressure");
  Options options;
  options.write_buffer_size = 4 * 1024;
  options.l0_compaction_trigger = 2;
  options.l0_slowdown_trigger = 2;
  options.l0_stop_trigger = 4;
  options.max_file_bytes = 8 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  constexpr int kWrites = 2000;
  WriteOptions wo;
  for (int i = 0; i < kWrites; i++) {
    ASSERT_TRUE(db->Put(wo, Key(0, i), std::string(128, 'p')).ok());
  }

  DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.stall_count, 0u);  // thresholds this tight must throttle
  EXPECT_GT(stats.stall_micros, 0u);

  ASSERT_TRUE(db->Flush().ok());
  for (int i = 0; i < kWrites; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), Key(0, i), &value).ok()) << Key(0, i);
  }
  // Backpressure kept L0 bounded instead of letting it grow with the load.
  stats = db->GetStats();
  ASSERT_FALSE(stats.files_per_level.empty());
  EXPECT_LE(stats.files_per_level[0], options.l0_stop_trigger);
}

// ---------------------------------------------------------------------------
// Legacy synchronous mode

TEST(AsyncDBTest, SynchronousModeMatchesAsync) {
  for (bool background : {false, true}) {
    std::string dir =
        TestDir(background ? "mode_async" : "mode_sync");
    Options options;
    options.background_flush = background;
    options.write_buffer_size = 8 * 1024;
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());

    WriteOptions wo;
    for (int i = 0; i < 400; i++) {
      ASSERT_TRUE(db->Put(wo, Key(0, i), "v" + std::to_string(i)).ok());
    }
    for (int i = 0; i < 400; i += 3) {
      ASSERT_TRUE(db->Delete(wo, Key(0, i)).ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());

    for (int i = 0; i < 400; i++) {
      std::string value;
      Status s = db->Get(ReadOptions(), Key(0, i), &value);
      if (i % 3 == 0) {
        EXPECT_TRUE(s.IsNotFound()) << Key(0, i);
      } else {
        ASSERT_TRUE(s.ok()) << Key(0, i);
        EXPECT_EQ(value, "v" + std::to_string(i));
      }
    }
  }
}

}  // namespace
}  // namespace tman::kv
