// End-to-end observability tests: a TMan instance opened with a metrics
// registry runs a mixed workload, then (a) a traced query's span tree is
// cross-checked against its QueryStats, (b) the Prometheus scrape shows
// nonzero instruments from every layer, and (c) planning/execution timings
// are consistent across all query types.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/tman.h"
#include "geo/similarity.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// One loaded instance with metrics attached, shared by all tests; queries
// only add to counters, so per-test assertions stay order-independent by
// checking "nonzero"/structure rather than exact totals.
class ObservabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new obs::MetricsRegistry();
    spec_ = new traj::DatasetSpec(traj::TDriveLikeSpec());
    data_ = new std::vector<traj::Trajectory>(traj::Generate(*spec_, 300, 42));
    tman_ = new std::unique_ptr<TMan>;

    TManOptions options;
    options.bounds = spec_->bounds;
    options.tr.origin = 0;
    options.tr.period_seconds = 3600;
    options.tr.max_periods = 24;
    options.xzt.origin = 0;
    options.tshape.max_resolution = 15;
    options.num_shards = 4;
    options.num_servers = 3;
    options.genetic.generations = 10;
    // Tiny write buffer so the load triggers real flushes (and usually
    // compactions) that the registry must observe.
    options.kv.write_buffer_size = 64 * 1024;
    options.kv.metrics = registry_;

    ASSERT_TRUE(TMan::Open(options, TestDir("e2e"), tman_).ok());
    ASSERT_TRUE((*tman_)->BulkLoad(*data_).ok());
    ASSERT_TRUE((*tman_)->Flush().ok());
  }

  static void TearDownTestSuite() {
    delete tman_;
    delete data_;
    delete spec_;
    delete registry_;
    tman_ = nullptr;
    data_ = nullptr;
    spec_ = nullptr;
    registry_ = nullptr;
  }

  static uint64_t CounterValue(const std::string& name) {
    return registry_->GetCounter(name)->value();
  }

  static obs::MetricsRegistry* registry_;
  static traj::DatasetSpec* spec_;
  static std::vector<traj::Trajectory>* data_;
  static std::unique_ptr<TMan>* tman_;
};

obs::MetricsRegistry* ObservabilityTest::registry_ = nullptr;
traj::DatasetSpec* ObservabilityTest::spec_ = nullptr;
std::vector<traj::Trajectory>* ObservabilityTest::data_ = nullptr;
std::unique_ptr<TMan>* ObservabilityTest::tman_ = nullptr;

TEST_F(ObservabilityTest, UntracedQueryLeavesNoTrace) {
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  ASSERT_TRUE((*tman_)
                  ->TemporalRangeQuery(spec_->t0, spec_->t0 + 6 * 3600,
                                       &results, &stats)
                  .ok());
  EXPECT_EQ(stats.trace, nullptr);
}

TEST_F(ObservabilityTest, TracedSTRQMatchesQueryStats) {
  const geo::MBR window{116.25, 39.8, 116.55, 40.0};
  const int64_t ts = spec_->t0 + 3600;
  const int64_t te = ts + 6 * 3600;

  QueryOptions qopts;
  qopts.trace = true;
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  ASSERT_TRUE((*tman_)
                  ->SpatioTemporalRangeQuery(window, ts, te, &results, &stats,
                                             qopts)
                  .ok());
  ASSERT_NE(stats.trace, nullptr);
  const obs::TraceSpan& root = *stats.trace;
  EXPECT_EQ(root.name(), "SpatioTemporalRangeQuery");
  EXPECT_TRUE(root.ended());

  // Root annotations mirror the stats the caller got.
  EXPECT_EQ(root.GetAnnotationString("plan"), stats.plan);
  EXPECT_DOUBLE_EQ(root.GetAnnotation("candidates"),
                   static_cast<double>(stats.candidates));
  EXPECT_DOUBLE_EQ(root.GetAnnotation("results"),
                   static_cast<double>(stats.results));
  EXPECT_EQ(stats.results, results.size());

  // Stage structure: planning + execute (+ scan under execute).
  const obs::TraceSpan* planning = root.Find("planning");
  const obs::TraceSpan* execute = root.Find("execute");
  ASSERT_NE(planning, nullptr);
  ASSERT_NE(execute, nullptr);
  ASSERT_FALSE(execute->children().empty());
  const obs::TraceSpan* scan = execute->children()[0].get();
  EXPECT_EQ(scan->name().rfind("scan ", 0), 0u) << scan->name();
  EXPECT_DOUBLE_EQ(scan->GetAnnotation("windows"),
                   static_cast<double>(stats.windows));
  EXPECT_DOUBLE_EQ(scan->GetAnnotation("rows_scanned"),
                   static_cast<double>(stats.candidates));
  EXPECT_FALSE(scan->children().empty());  // per-region breakdown

  // Timing consistency: the planning span is what planning_ms measured,
  // the stage durations sum to the root (within scheduling tolerance),
  // and the root is what execution_ms measured.
  EXPECT_NEAR(planning->duration_ms(), stats.planning_ms,
              0.2 + 0.1 * stats.planning_ms);
  EXPECT_LE(stats.planning_ms, stats.execution_ms);
  const double stage_sum = planning->duration_ms() + execute->duration_ms();
  EXPECT_LE(stage_sum, stats.execution_ms * 1.05 + 0.5);
  EXPECT_GE(stage_sum, stats.execution_ms * 0.5 - 0.5);
  EXPECT_NEAR(root.duration_ms(), stats.execution_ms,
              0.5 + 0.1 * stats.execution_ms);

  // The EXPLAIN ANALYZE report renders every stage.
  const std::string report = root.Render();
  EXPECT_NE(report.find("SpatioTemporalRangeQuery  (actual time="),
            std::string::npos);
  EXPECT_NE(report.find("-> planning"), std::string::npos);
  EXPECT_NE(report.find("-> execute"), std::string::npos);
  EXPECT_NE(report.find("-> scan "), std::string::npos);
  EXPECT_NE(report.find("-> region "), std::string::npos);
}

TEST_F(ObservabilityTest, TracedTopKHasPerRoundSpans) {
  QueryOptions qopts;
  qopts.trace = true;
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  ASSERT_TRUE((*tman_)
                  ->TopKSimilarityQuery((*data_)[3],
                                        geo::SimilarityMeasure::kFrechet, 3,
                                        &results, &stats, qopts)
                  .ok());
  ASSERT_NE(stats.trace, nullptr);
  const obs::TraceSpan* round0 = stats.trace->Find("round 0");
  ASSERT_NE(round0, nullptr);
  EXPECT_NE(round0->Find("planning"), nullptr);
  EXPECT_NE(round0->Find("execute"), nullptr);
  EXPECT_GT(round0->GetAnnotation("radius", -1), 0);
}

TEST_F(ObservabilityTest, TracedCountQuery) {
  QueryOptions qopts;
  qopts.trace = true;
  uint64_t count = 0;
  QueryStats stats;
  ASSERT_TRUE((*tman_)
                  ->SpatioTemporalRangeCount(geo::MBR{116.3, 39.85, 116.5,
                                                      39.95},
                                             spec_->t0, spec_->t0 + 12 * 3600,
                                             &count, &stats, qopts)
                  .ok());
  ASSERT_NE(stats.trace, nullptr);
  const obs::TraceSpan* execute = stats.trace->Find("execute");
  ASSERT_NE(execute, nullptr);
  EXPECT_DOUBLE_EQ(execute->GetAnnotation("count"),
                   static_cast<double>(count));
  EXPECT_EQ(stats.results, count);
}

TEST_F(ObservabilityTest, ScrapeShowsEveryLayer) {
  // Touch each query family once so per-type histograms have samples.
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  (*tman_)->TemporalRangeQuery(spec_->t0, spec_->t0 + 3600, &results, &stats);
  results.clear();
  (*tman_)->SpatialRangeQuery(geo::MBR{116.3, 39.85, 116.5, 39.95}, &results,
                              &stats);
  results.clear();
  (*tman_)->IDTemporalQuery((*data_)[0].oid, spec_->t0,
                            spec_->t0 + 12 * 3600, &results, &stats);
  (*tman_)->PublishMetrics();

  // Layer coverage via live handles: storage engine...
  EXPECT_GT(CounterValue("tman_kv_flushes_total"), 0u);
  EXPECT_GT(registry_->GetHistogram("tman_kv_write_micros")->count(), 0u);
  // Queries run the batched read path by default, so scans land in the
  // multiscan histogram; plain Scan still has its own.
  EXPECT_GT(registry_->GetHistogram("tman_kv_multiscan_micros")->count(), 0u);
  EXPECT_GT(CounterValue("tman_kv_multiscan_windows_total"), 0u);
  EXPECT_GT(registry_->GetHistogram("tman_kv_flush_micros")->count(), 0u);
  // ...cluster fan-out...
  EXPECT_GT(CounterValue("tman_cluster_scans_total"), 0u);
  EXPECT_GT(registry_->GetHistogram("tman_cluster_scan_micros")->count(), 0u);
  // ...caches...
  EXPECT_GT(CounterValue("tman_index_cache_hits_total") +
                CounterValue("tman_index_cache_misses_total"),
            0u);
  EXPECT_GT(CounterValue("tman_redis_ops_total"), 0u);
  // ...executor and per-query-type latency.
  EXPECT_GT(CounterValue("tman_exec_rows_streamed_total"), 0u);
  EXPECT_GT(registry_
                ->GetHistogram("tman_core_query_micros{type=\"temporal_range\"}")
                ->count(),
            0u);

  // Gauges published point-in-time.
  EXPECT_GT(registry_->GetGauge("tman_storage_sstable_bytes")->value(), 0);

  // And the same instruments appear in the rendered scrape.
  const std::string scrape = registry_->RenderPrometheus();
  EXPECT_NE(scrape.find("tman_kv_get_micros"), std::string::npos);
  EXPECT_NE(scrape.find("tman_kv_flushes_total"), std::string::npos);
  EXPECT_NE(scrape.find("tman_index_cache_hits_total"), std::string::npos);
  EXPECT_NE(scrape.find("tman_cluster_scan_micros_count"), std::string::npos);
  EXPECT_NE(scrape.find("tman_storage_sstable_bytes"), std::string::npos);
  EXPECT_NE(
      scrape.find("tman_core_query_micros_count{type=\"temporal_range\"}"),
      std::string::npos);
}

TEST_F(ObservabilityTest, TimingFieldsConsistentAcrossQueryTypes) {
  const geo::MBR window{116.3, 39.85, 116.5, 39.95};
  auto check = [](const QueryStats& stats, const char* what) {
    EXPECT_GE(stats.planning_ms, 0) << what;
    EXPECT_GT(stats.execution_ms, 0) << what;
    EXPECT_LE(stats.planning_ms, stats.execution_ms) << what;
    EXPECT_FALSE(stats.plan.empty()) << what;
  };

  std::vector<traj::Trajectory> results;
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->TemporalRangeQuery(spec_->t0, spec_->t0 + 3600, &results,
                                         &stats)
                    .ok());
    check(stats, "TRQ");
  }
  results.clear();
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)->SpatialRangeQuery(window, &results, &stats).ok());
    check(stats, "SRQ");
  }
  results.clear();
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->SpatioTemporalRangeQuery(window, spec_->t0,
                                               spec_->t0 + 6 * 3600, &results,
                                               &stats)
                    .ok());
    check(stats, "STRQ");
  }
  results.clear();
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->IDTemporalQuery((*data_)[0].oid, spec_->t0,
                                      spec_->t0 + 12 * 3600, &results, &stats)
                    .ok());
    check(stats, "IDT");
  }
  results.clear();
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->ThresholdSimilarityQuery(
                        (*data_)[5], geo::SimilarityMeasure::kFrechet, 0.05,
                        &results, &stats)
                    .ok());
    check(stats, "threshold-sim");
  }
  results.clear();
  {
    QueryStats stats;
    ASSERT_TRUE((*tman_)
                    ->TopKSimilarityQuery((*data_)[5],
                                          geo::SimilarityMeasure::kFrechet, 2,
                                          &results, &stats)
                    .ok());
    check(stats, "topk-sim");
  }
  {
    QueryStats stats;
    uint64_t count = 0;
    ASSERT_TRUE((*tman_)
                    ->TemporalRangeCount(spec_->t0, spec_->t0 + 3600, &count,
                                         &stats)
                    .ok());
    check(stats, "TR-count");
  }
}

TEST_F(ObservabilityTest, MetricsOffHasNoRegistryDependence) {
  // A second instance without a registry must run the same queries fine
  // (all instrument pointers stay null) and never touch our registry's
  // query histograms.
  const uint64_t before =
      registry_->GetHistogram("tman_core_query_micros{type=\"temporal_range\"}")
          ->count();
  TManOptions options;
  options.bounds = spec_->bounds;
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.num_shards = 2;
  options.num_servers = 2;
  std::unique_ptr<TMan> plain;
  ASSERT_TRUE(TMan::Open(options, TestDir("plain"), &plain).ok());
  std::vector<traj::Trajectory> sample((*data_).begin(), (*data_).begin() + 50);
  ASSERT_TRUE(plain->BulkLoad(sample).ok());
  std::vector<traj::Trajectory> results;
  QueryStats stats;
  ASSERT_TRUE(
      plain->TemporalRangeQuery(spec_->t0, spec_->t0 + 3600, &results, &stats)
          .ok());
  plain->PublishMetrics();  // no-op without a registry
  EXPECT_EQ(
      registry_->GetHistogram("tman_core_query_micros{type=\"temporal_range\"}")
          ->count(),
      before);
}

}  // namespace
}  // namespace tman::core
