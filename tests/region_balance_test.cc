// Dynamic region management tests: range routing edge cases, online
// split/merge correctness (including under concurrent writers and
// scanners), the RegionBalancer policy, topology events, manifest
// recovery, and fault-injected crash-mid-split scenarios.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/region_balancer.h"
#include "common/coding.h"
#include "kvstore/fault_env.h"
#include "obs/event_log.h"

namespace tman::cluster {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_region_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(uint8_t shard, uint64_t value) {
  std::string key(1, static_cast<char>(shard));
  PutBigEndian64(&key, value);
  return key;
}

// Deterministic value for a key, so any scanner can verify rows without
// access to the writer's state.
std::string ValueFor(const std::string& key) { return "v:" + key; }

std::vector<Row> FullScan(ClusterTable* table) {
  std::vector<Row> out;
  Status s = table->ParallelScan({KeyRange{"", ""}}, nullptr, 0, &out, nullptr);
  EXPECT_TRUE(s.ok()) << s.ToString();
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.key < b.key; });
  return out;
}

// The per-region ranges reported by GetPerRegionStats must partition the
// keyspace: first starts at "", last ends at "", each end chains to the
// next start.
void ExpectRangesPartitionKeyspace(ClusterTable* table) {
  const auto stats = table->GetPerRegionStats();
  ASSERT_FALSE(stats.empty());
  EXPECT_TRUE(stats.front().range.start.empty());
  EXPECT_TRUE(stats.back().range.end.empty());
  for (size_t i = 0; i + 1 < stats.size(); i++) {
    EXPECT_FALSE(stats[i].range.end.empty());
    EXPECT_EQ(stats[i].range.end, stats[i + 1].range.start);
  }
}

// ---------------------------------------------------------------------------
// Routing-table edge cases

TEST(RegionRoutingTest, SingleRegionOwnsWholeKeyspace) {
  Cluster cluster(TestDir("single"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 1).ok());
  ClusterTable* table = cluster.GetTable("t");
  EXPECT_EQ(table->num_shards(), 1);

  // Keys with arbitrary leading bytes — far beyond any "shard byte" — all
  // land in the one region whose range is ["", "").
  const std::vector<std::string> keys = {std::string(1, '\x00'), "middle",
                                         "\x7f@", "\xff\xff\xff"};
  for (const auto& k : keys) ASSERT_TRUE(table->Put(k, ValueFor(k)).ok());
  for (const auto& k : keys) {
    std::string value;
    ASSERT_TRUE(table->Get(k, &value).ok()) << "key " << k;
    EXPECT_EQ(value, ValueFor(k));
  }
  EXPECT_EQ(FullScan(table).size(), keys.size());
  ExpectRangesPartitionKeyspace(table);
}

TEST(RegionRoutingTest, BoundaryExactStartKeysRouteRight) {
  Cluster cluster(TestDir("boundary"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");

  // A key equal to a region's start key belongs to that region, not its
  // left neighbour (half-open ranges). Region i owns [\xi, \xi+1).
  ASSERT_TRUE(table->Put(std::string(1, '\x01'), "exact1").ok());
  ASSERT_TRUE(table->Put(std::string("\x01\x00", 2), "inside1").ok());
  ASSERT_TRUE(table->Put(std::string(1, '\x02'), "exact2").ok());
  ASSERT_TRUE(table->Put(std::string("\x00\xff", 2), "in0").ok());
  ASSERT_TRUE(table->Put("\xff", "in3").ok());

  const auto stats = table->GetPerRegionStats();
  ASSERT_EQ(stats.size(), 4u);
  EXPECT_EQ(stats[0].writes_total, 1u);  // "\x00\xff"
  EXPECT_EQ(stats[1].writes_total, 2u);  // "\x01", "\x01\x00"
  EXPECT_EQ(stats[2].writes_total, 1u);  // "\x02"
  EXPECT_EQ(stats[3].writes_total, 1u);  // "\xff" (last range end = infinity)

  std::string value;
  ASSERT_TRUE(table->Get(std::string(1, '\x01'), &value).ok());
  EXPECT_EQ(value, "exact1");
  ASSERT_TRUE(table->Get("\xff", &value).ok());
  EXPECT_EQ(value, "in3");
}

TEST(RegionRoutingTest, EmptyEndRangeScansToInfinity) {
  Cluster cluster(TestDir("infinity"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");
  // The last region's range is [\x03, ""): every key above \x03 lives
  // there, no matter how large.
  ASSERT_TRUE(table->Put("\x03zzz", "a").ok());
  ASSERT_TRUE(table->Put("\xfe\xff", "b").ok());
  std::vector<Row> out;
  ASSERT_TRUE(table
                  ->ParallelScan({KeyRange{std::string(1, '\x03'), ""}},
                                 nullptr, 0, &out, nullptr)
                  .ok());
  EXPECT_EQ(out.size(), 2u);
}

// ---------------------------------------------------------------------------
// Split

TEST(RegionSplitTest, SplitPreservesEveryRowAndPartitionsRange) {
  Cluster cluster(TestDir("split_rows"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");

  std::vector<Row> rows;
  for (uint64_t v = 0; v < 800; v++) rows.push_back(Row{Key(0, v), "x"});
  ASSERT_TRUE(table->BatchPut(rows).ok());
  const auto before = FullScan(table);
  const uint64_t gen_before = table->routing_generation();

  ASSERT_TRUE(table->Flush().ok());
  Status s = table->SplitRegion(0);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(table->num_shards(), 3);
  EXPECT_EQ(table->splits_performed(), 1u);
  EXPECT_EQ(table->routing_generation(), gen_before + 1);
  ExpectRangesPartitionKeyspace(table);

  // The median split must leave real data on both sides.
  const auto stats = table->GetPerRegionStats();
  EXPECT_GT(stats[0].range.end, stats[0].range.start);
  EXPECT_GT(stats[1].range.end, stats[1].range.start);

  const auto after = FullScan(table);
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); i++) {
    EXPECT_EQ(after[i].key, before[i].key);
    EXPECT_EQ(after[i].value, before[i].value);
  }

  // Writes and reads keep working on both halves, routed by the new table.
  ASSERT_TRUE(table->Put(Key(0, 10), "updated-low").ok());
  ASSERT_TRUE(table->Put(Key(0, 790), "updated-high").ok());
  std::string value;
  ASSERT_TRUE(table->Get(Key(0, 10), &value).ok());
  EXPECT_EQ(value, "updated-low");
  ASSERT_TRUE(table->Get(Key(0, 790), &value).ok());
  EXPECT_EQ(value, "updated-high");
}

TEST(RegionSplitTest, SplitValidatesKeyAndRegion) {
  Cluster cluster(TestDir("split_args"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  // Split key must be strictly inside the region's range.
  EXPECT_TRUE(table->SplitRegionAt(0, "").IsInvalidArgument());
  EXPECT_TRUE(
      table->SplitRegionAt(0, std::string(1, '\x01')).IsInvalidArgument());
  EXPECT_TRUE(table->SplitRegionAt(0, "\x42").IsInvalidArgument());
  EXPECT_TRUE(table->SplitRegionAt(99, "\x00\x01").IsNotFound());
  // An empty region has no median to sample.
  EXPECT_TRUE(table->SplitRegion(0).IsNotFound());
  EXPECT_EQ(table->num_shards(), 2);
  EXPECT_EQ(table->splits_performed(), 0u);
}

TEST(RegionSplitTest, SplitInfinityEndRegionKeepsEmptyEnd) {
  Cluster cluster(TestDir("split_inf"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 1).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 200; v++) {
    ASSERT_TRUE(table->Put(Key(static_cast<uint8_t>(v % 8), v),
                           ValueFor(Key(static_cast<uint8_t>(v % 8), v)))
                    .ok());
  }
  ASSERT_TRUE(table->SplitRegionAt(0, std::string(1, '\x04')).ok());
  const auto stats = table->GetPerRegionStats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_TRUE(stats[0].range.start.empty());
  EXPECT_EQ(stats[0].range.end, std::string(1, '\x04'));
  EXPECT_EQ(stats[1].range.start, std::string(1, '\x04'));
  EXPECT_TRUE(stats[1].range.end.empty());  // still to infinity
  EXPECT_EQ(FullScan(table).size(), 200u);
}

// ---------------------------------------------------------------------------
// Merge

TEST(RegionMergeTest, MergeRestoresRangeAndKeepsRows) {
  Cluster cluster(TestDir("merge_rows"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 600; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), ValueFor(Key(0, v))).ok());
  }
  ASSERT_TRUE(table->SplitRegionAt(0, Key(0, 300)).ok());
  ASSERT_EQ(table->num_shards(), 3);
  // New writes land on both sides of the split before the merge.
  ASSERT_TRUE(table->Put(Key(0, 100), "new-low").ok());
  ASSERT_TRUE(table->Put(Key(0, 500), "new-high").ok());

  const auto stats = table->GetPerRegionStats();
  Status s = table->MergeRegions(stats[0].shard, stats[1].shard);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(table->num_shards(), 2);
  EXPECT_EQ(table->merges_performed(), 1u);
  ExpectRangesPartitionKeyspace(table);

  const auto rows = FullScan(table);
  EXPECT_EQ(rows.size(), 600u);
  std::string value;
  ASSERT_TRUE(table->Get(Key(0, 100), &value).ok());
  EXPECT_EQ(value, "new-low");
  ASSERT_TRUE(table->Get(Key(0, 500), &value).ok());
  EXPECT_EQ(value, "new-high");
}

TEST(RegionMergeTest, MergeRequiresAdjacency) {
  Cluster cluster(TestDir("merge_adj"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");
  EXPECT_TRUE(table->MergeRegions(0, 2).IsInvalidArgument());
  EXPECT_TRUE(table->MergeRegions(0, 99).IsNotFound());
  // Argument order is free for an adjacent pair.
  EXPECT_TRUE(table->MergeRegions(1, 0).ok());
  EXPECT_EQ(table->num_shards(), 3);
}

// A key deleted in the right region must stay deleted after the merge,
// even though the left store may still physically hold a stale pre-split
// copy of it (lazy reclamation had not run yet).
TEST(RegionMergeTest, MergeDoesNotResurrectStaleOrDeletedRows) {
  Cluster cluster(TestDir("merge_stale"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 400; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), "old").ok());
  }
  // Split; the left store still holds stale copies of [200, 400) until a
  // compaction reclaims them (deliberately not forced here).
  ASSERT_TRUE(table->SplitRegionAt(0, Key(0, 200)).ok());
  // Mutate the migrated half in its new region: one delete, one overwrite.
  ASSERT_TRUE(table->Delete(Key(0, 250)).ok());
  ASSERT_TRUE(table->Put(Key(0, 300), "newer").ok());

  const auto stats = table->GetPerRegionStats();
  ASSERT_TRUE(table->MergeRegions(stats[0].shard, stats[1].shard).ok());

  std::string value;
  EXPECT_TRUE(table->Get(Key(0, 250), &value).IsNotFound())
      << "deleted row resurrected by merge";
  ASSERT_TRUE(table->Get(Key(0, 300), &value).ok());
  EXPECT_EQ(value, "newer") << "stale pre-split version won over the update";
  EXPECT_EQ(FullScan(table).size(), 399u);  // 400 - 1 deleted
}

// ---------------------------------------------------------------------------
// Concurrency: split/merge under live writers and scanners

TEST(RegionConcurrencyTest, SplitAndMergeUnderConcurrentWritesAndScans) {
  Cluster cluster(TestDir("concurrent"), 4, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");

  // Writer: unique keys spread over the whole keyspace, each written once
  // with a value derivable from the key (so scanners can verify rows
  // without synchronizing with the writer).
  constexpr int kKeys = 3000;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kKeys; i++) {
      const std::string k = Key(static_cast<uint8_t>((i * 37) % 8),
                                static_cast<uint64_t>(i));
      Status s = table->Put(k, ValueFor(k));
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
    done.store(true);
  });

  // Scanner: full-range scans must never observe a duplicate key or a
  // wrong value, no matter how the topology shifts mid-scan.
  std::thread scanner([&] {
    while (!done.load()) {
      std::vector<Row> out;
      Status s = table->ParallelScan({KeyRange{"", ""}}, nullptr, 0, &out,
                                     nullptr);
      ASSERT_TRUE(s.ok()) << s.ToString();
      std::set<std::string> seen;
      for (const Row& row : out) {
        EXPECT_TRUE(seen.insert(row.key).second)
            << "duplicate key in one scan";
        EXPECT_EQ(row.value, ValueFor(row.key));
      }
    }
  });

  // Balancer stand-in: splits and merges while both threads run.
  const std::string mid0 = Key(0, 1u << 20);
  const std::string mid1 = Key(4, 1u << 20);
  int cycles = 0;
  while (!done.load() && cycles < 6) {
    Status s = table->SplitRegionAt(0, cycles % 2 == 0 ? mid0 : mid1);
    // The split key alternates between region 0's and region 1's range;
    // pick whichever region owns it this cycle.
    if (s.IsInvalidArgument() || s.IsNotFound()) {
      s = table->SplitRegionAt(1, cycles % 2 == 0 ? mid0 : mid1);
    }
    ASSERT_TRUE(s.ok()) << s.ToString();
    const auto stats = table->GetPerRegionStats();
    // Merge the freshly created boundary back so the next cycle splits
    // again from a 2-region layout.
    size_t idx = 0;
    for (size_t i = 0; i + 1 < stats.size(); i++) {
      if (stats[i].range.end == (cycles % 2 == 0 ? mid0 : mid1)) idx = i;
    }
    s = table->MergeRegions(stats[idx].shard, stats[idx + 1].shard);
    ASSERT_TRUE(s.ok()) << s.ToString();
    cycles++;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  writer.join();
  scanner.join();
  EXPECT_GE(cycles, 1);

  // Differential check: the final table holds exactly the written keys.
  const auto rows = FullScan(table);
  ASSERT_EQ(rows.size(), static_cast<size_t>(kKeys));
  std::set<std::string> expected;
  for (int i = 0; i < kKeys; i++) {
    expected.insert(
        Key(static_cast<uint8_t>((i * 37) % 8), static_cast<uint64_t>(i)));
  }
  for (const Row& row : rows) {
    EXPECT_EQ(expected.count(row.key), 1u);
    EXPECT_EQ(row.value, ValueFor(row.key));
  }
}

// ---------------------------------------------------------------------------
// RegionBalancer policy

TEST(RegionBalancerTest, SplitsHotRegionThenMergesColdPair) {
  Cluster cluster(TestDir("balancer"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");

  RegionBalancerOptions opts;
  opts.interval_seconds = 0;  // manual ticks
  opts.min_tick_writes = 100;
  opts.split_share = 0.5;
  opts.min_split_writes = 500;
  opts.min_split_bytes = 4 * 1024;
  opts.merge_share = 0.05;
  opts.min_regions = 2;
  opts.max_regions = 8;
  RegionBalancer balancer({table}, opts);

  // Idle guard: no writes yet, a tick must not churn the topology.
  EXPECT_EQ(balancer.Tick(), 0);
  EXPECT_EQ(balancer.ticks(), 1u);

  // All traffic into region 0 -> its share is ~1.0, far over split_share.
  std::vector<Row> hot;
  for (uint64_t v = 0; v < 3000; v++) {
    hot.push_back(Row{Key(0, v), "payload-payload-payload"});
  }
  ASSERT_TRUE(table->BatchPut(hot).ok());
  ASSERT_TRUE(table->Flush().ok());  // sstable_bytes feeds the split gate
  EXPECT_EQ(balancer.Tick(), 1);
  EXPECT_EQ(balancer.splits(), 1u);
  EXPECT_EQ(table->num_shards(), 5);
  EXPECT_TRUE(balancer.last_error().ok()) << balancer.last_error().ToString();

  // Now write evenly to the OTHER regions: the two halves of old region 0
  // both go cold (share 0), so the balancer merges them back.
  std::vector<Row> cold;
  for (uint64_t v = 0; v < 900; v++) {
    cold.push_back(Row{Key(static_cast<uint8_t>(1 + v % 3), v), "x"});
  }
  ASSERT_TRUE(table->BatchPut(cold).ok());
  EXPECT_EQ(balancer.Tick(), 1);
  EXPECT_EQ(balancer.merges(), 1u);
  EXPECT_EQ(table->num_shards(), 4);

  // Scans see every row through all of it.
  EXPECT_EQ(FullScan(table).size(), 3000u + 900u);
}

TEST(RegionBalancerTest, RespectsRegionCountGuardrails) {
  Cluster cluster(TestDir("guardrails"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");

  RegionBalancerOptions opts;
  opts.interval_seconds = 0;
  opts.min_tick_writes = 1;
  opts.split_share = 0.5;
  opts.min_split_writes = 1;
  opts.min_split_bytes = 1;
  opts.max_regions = 2;  // already at the cap: the hot region cannot split
  RegionBalancer balancer({table}, opts);

  std::vector<Row> rows;
  for (uint64_t v = 0; v < 500; v++) rows.push_back(Row{Key(0, v), "x"});
  ASSERT_TRUE(table->BatchPut(rows).ok());
  ASSERT_TRUE(table->Flush().ok());
  EXPECT_EQ(balancer.Tick(), 0);
  EXPECT_EQ(table->num_shards(), 2);
  EXPECT_EQ(balancer.splits(), 0u);
}

// ---------------------------------------------------------------------------
// Topology events

TEST(RegionEventTest, SplitAndMergeEmitEvents) {
  Cluster cluster(TestDir("events"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  obs::EventLog log(16);
  table->set_event_log(&log);

  for (uint64_t v = 0; v < 300; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), "x").ok());
  }
  ASSERT_TRUE(table->SplitRegionAt(0, Key(0, 150)).ok());
  auto stats = table->GetPerRegionStats();
  ASSERT_TRUE(table->MergeRegions(stats[0].shard, stats[1].shard).ok());

  const auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "region_split");
  EXPECT_EQ(events[1].type, "region_merge");
  auto field = [](const obs::Event& e, const std::string& k) -> std::string {
    for (const auto& [key, value] : e.fields) {
      if (key == k) return value;
    }
    return "<missing>";
  };
  EXPECT_NE(field(events[0], "split_key"), "<missing>");
  EXPECT_NE(field(events[0], "left_range"), "<missing>");
  EXPECT_NE(field(events[0], "right_range"), "<missing>");
  EXPECT_EQ(field(events[0], "generation"), "2");
  const uint64_t migrated =
      std::stoull(field(events[0], "migrated_rows"));
  EXPECT_GT(migrated, 0u);
  EXPECT_NE(field(events[1], "merged_range"), "<missing>");
  EXPECT_EQ(field(events[1], "generation"), "3");
}

// ---------------------------------------------------------------------------
// Manifest recovery and fault injection

TEST(RegionRecoveryTest, ReopenRestoresSplitTopology) {
  const std::string dir = TestDir("reopen");
  {
    Cluster cluster(dir, 2, kv::Options());
    ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
    ClusterTable* table = cluster.GetTable("t");
    for (uint64_t v = 0; v < 400; v++) {
      ASSERT_TRUE(table->Put(Key(0, v), ValueFor(Key(0, v))).ok());
    }
    ASSERT_TRUE(table->SplitRegionAt(0, Key(0, 200)).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  Cluster cluster(dir, 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  EXPECT_EQ(table->num_shards(), 3);
  EXPECT_EQ(table->routing_generation(), 2u);
  ExpectRangesPartitionKeyspace(table);
  const auto rows = FullScan(table);
  ASSERT_EQ(rows.size(), 400u);
  for (const Row& row : rows) EXPECT_EQ(row.value, ValueFor(row.key));
}

TEST(RegionRecoveryTest, ReopenSweepsOrphanDirsAndTempFiles) {
  const std::string dir = TestDir("sweep");
  {
    Cluster cluster(dir, 2, kv::Options());
    ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
    ClusterTable* table = cluster.GetTable("t");
    for (uint64_t v = 0; v < 300; v++) {
      ASSERT_TRUE(table->Put(Key(0, v), "x").ok());
    }
    ASSERT_TRUE(table->SplitRegionAt(0, Key(0, 150)).ok());
    ASSERT_TRUE(table->Flush().ok());
  }
  // A torn split can leave an unreferenced region directory and a stray
  // manifest temp file; a reopen must sweep both.
  const std::string table_dir = dir + "/t";
  std::filesystem::create_directories(table_dir + "/region-99");
  std::ofstream(table_dir + "/region-99/junk.sst") << "junk";
  std::ofstream(table_dir + "/ROUTING.tmp") << "half-written";

  Cluster cluster(dir, 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  EXPECT_FALSE(std::filesystem::exists(table_dir + "/region-99"));
  EXPECT_FALSE(std::filesystem::exists(table_dir + "/ROUTING.tmp"));
  EXPECT_EQ(FullScan(cluster.GetTable("t")).size(), 300u);
}

TEST(RegionFaultTest, SplitFailsCleanlyWhenManifestWriteFails) {
  kv::FaultInjectionEnv fault(kv::Env::Default());
  kv::Options options;
  options.env = &fault;
  Cluster cluster(TestDir("fault_manifest"), 2, options);
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 400; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), ValueFor(Key(0, v))).ok());
  }
  ASSERT_TRUE(table->Flush().ok());
  const uint64_t gen = table->routing_generation();

  // The manifest append fails mid-split: the split must abort without
  // changing routing, losing rows, or leaving the table gated.
  fault.FailAppends("ROUTING", 1);
  Status s = table->SplitRegionAt(0, Key(0, 200));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(table->routing_generation(), gen);
  EXPECT_EQ(table->num_shards(), 2);
  EXPECT_EQ(table->splits_performed(), 0u);
  EXPECT_EQ(FullScan(table).size(), 400u);
  ASSERT_TRUE(table->Put(Key(0, 500), ValueFor(Key(0, 500))).ok());

  // Same for the publish rename.
  fault.ClearFaults();
  fault.FailRenames(1);
  s = table->SplitRegionAt(0, Key(0, 200));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(table->routing_generation(), gen);
  EXPECT_EQ(table->num_shards(), 2);

  // With faults cleared, the retry succeeds and nothing was lost.
  fault.ClearFaults();
  s = table->SplitRegionAt(0, Key(0, 200));
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(table->routing_generation(), gen + 1);
  EXPECT_EQ(table->num_shards(), 3);
  const auto rows = FullScan(table);
  ASSERT_EQ(rows.size(), 401u);
  for (const Row& row : rows) EXPECT_EQ(row.value, ValueFor(row.key));
}

TEST(RegionFaultTest, CrashMidSplitRecoversConsistentRouting) {
  const std::string dir = TestDir("fault_crash");
  kv::FaultInjectionEnv fault(kv::Env::Default());
  kv::Options options;
  options.env = &fault;
  {
    Cluster cluster(dir, 2, options);
    ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
    ClusterTable* table = cluster.GetTable("t");
    for (uint64_t v = 0; v < 400; v++) {
      ASSERT_TRUE(table->Put(Key(0, v), ValueFor(Key(0, v))).ok());
    }
    ASSERT_TRUE(table->Flush().ok());  // make the rows crash-durable

    // Power loss mid-split: every mutating operation fails from here on.
    fault.Crash();
    Status s = table->SplitRegionAt(0, Key(0, 200));
    EXPECT_FALSE(s.ok());
    // The dying process still reads consistently.
    EXPECT_EQ(table->num_shards(), 2);
  }
  ASSERT_TRUE(fault.DropUnsyncedAndReset().ok());

  // Reopen against the surviving state: pre-split routing, all rows, and
  // the split retry succeeds.
  Cluster cluster(dir, 2, options);
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  EXPECT_EQ(table->num_shards(), 2);
  EXPECT_EQ(table->routing_generation(), 1u);
  ExpectRangesPartitionKeyspace(table);
  auto rows = FullScan(table);
  ASSERT_EQ(rows.size(), 400u);
  for (const Row& row : rows) EXPECT_EQ(row.value, ValueFor(row.key));

  Status s = table->SplitRegionAt(0, Key(0, 200));
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(table->num_shards(), 3);
  EXPECT_EQ(table->routing_generation(), 2u);
  EXPECT_EQ(FullScan(table).size(), 400u);
}

}  // namespace
}  // namespace tman::cluster
