#include <gtest/gtest.h>

#include <string>

#include "cachestore/lfu_cache.h"
#include "cachestore/redis_like.h"

namespace tman::cache {
namespace {

TEST(RedisLikeTest, HashOps) {
  RedisLikeStore store;
  EXPECT_TRUE(store.HSet("h", "f1", "v1"));
  EXPECT_FALSE(store.HSet("h", "f1", "v2"));  // overwrite, not new
  std::string value;
  ASSERT_TRUE(store.HGet("h", "f1", &value));
  EXPECT_EQ(value, "v2");
  EXPECT_FALSE(store.HGet("h", "nope", &value));
  EXPECT_FALSE(store.HGet("nope", "f1", &value));

  store.HSet("h", "f2", "x");
  EXPECT_EQ(store.HLen("h"), 2u);
  const auto all = store.HGetAll("h");
  EXPECT_EQ(all.size(), 2u);

  EXPECT_TRUE(store.HDel("h", "f1"));
  EXPECT_FALSE(store.HDel("h", "f1"));
  EXPECT_EQ(store.HLen("h"), 1u);
  EXPECT_TRUE(store.Del("h"));
  EXPECT_FALSE(store.Exists("h"));
}

TEST(RedisLikeTest, BinarySafeKeys) {
  RedisLikeStore store;
  const std::string key("k\0ey", 4);
  const std::string field("\x01\x02\x03\x04", 4);
  store.HSet(key, field, "bin");
  std::string value;
  ASSERT_TRUE(store.HGet(key, field, &value));
  EXPECT_EQ(value, "bin");
}

TEST(RedisLikeTest, OpsCounter) {
  RedisLikeStore store;
  store.ResetOps();
  store.HSet("a", "b", "c");
  std::string v;
  store.HGet("a", "b", &v);
  store.HGetAll("a");
  EXPECT_EQ(store.ops(), 3u);
}

TEST(LFUCacheTest, BasicGetPut) {
  LFUCache<int, std::string> cache(3);
  cache.Put(1, "one");
  cache.Put(2, "two");
  std::string value;
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, "one");
  EXPECT_FALSE(cache.Get(9, &value));
}

TEST(LFUCacheTest, EvictsLeastFrequentlyUsed) {
  LFUCache<int, int> cache(3);
  int v;
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(3, 30);
  // Touch 1 and 2 repeatedly; 3 stays at frequency 1.
  for (int i = 0; i < 5; i++) {
    cache.Get(1, &v);
    cache.Get(2, &v);
  }
  cache.Put(4, 40);  // must evict 3
  EXPECT_FALSE(cache.Get(3, &v));
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_TRUE(cache.Get(2, &v));
  EXPECT_TRUE(cache.Get(4, &v));
}

TEST(LFUCacheTest, TieBreaksLRUWithinFrequency) {
  LFUCache<int, int> cache(2);
  int v;
  cache.Put(1, 10);
  cache.Put(2, 20);
  // Both at frequency 1; access 1 so 2 becomes the LRU of freq 1... but 1
  // moves to freq 2 anyway. Insert 3: 2 must go.
  cache.Get(1, &v);
  cache.Put(3, 30);
  EXPECT_FALSE(cache.Get(2, &v));
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_TRUE(cache.Get(3, &v));
}

TEST(LFUCacheTest, OverwriteBumpsFrequency) {
  LFUCache<int, int> cache(2);
  int v;
  cache.Put(1, 10);
  cache.Put(1, 11);  // freq 2 now
  cache.Put(2, 20);
  cache.Put(3, 30);  // evicts 2 (freq 1), not 1
  EXPECT_TRUE(cache.Get(1, &v));
  EXPECT_EQ(v, 11);
  EXPECT_FALSE(cache.Get(2, &v));
  EXPECT_TRUE(cache.Get(3, &v));
}

TEST(LFUCacheTest, EraseAndClear) {
  LFUCache<int, int> cache(4);
  cache.Put(1, 1);
  cache.Put(2, 2);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  int v;
  EXPECT_FALSE(cache.Get(1, &v));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(2, &v));
}

TEST(LFUCacheTest, HitMissCounters) {
  LFUCache<int, int> cache(2);
  int v;
  cache.Put(1, 1);
  cache.Get(1, &v);
  cache.Get(2, &v);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LFUCacheTest, BoundMetricsMirrorInternalCounters) {
  obs::MetricsRegistry registry;
  LFUCache<int, int> cache(2);
  cache.BindMetrics(registry.GetCounter("hits"), registry.GetCounter("misses"),
                    registry.GetCounter("evictions"));
  int v;
  cache.Put(1, 1);
  cache.Put(2, 2);
  cache.Get(1, &v);   // hit
  cache.Get(9, &v);   // miss
  cache.Put(3, 3);    // evicts the LFU entry
  EXPECT_EQ(registry.GetCounter("hits")->value(), cache.hits());
  EXPECT_EQ(registry.GetCounter("misses")->value(), cache.misses());
  EXPECT_EQ(registry.GetCounter("evictions")->value(), cache.evictions());
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(RedisLikeTest, BoundMetricsCountReadsAndOps) {
  obs::MetricsRegistry registry;
  RedisLikeStore store;
  store.BindMetrics(registry.GetCounter("hits"), registry.GetCounter("misses"),
                    registry.GetCounter("ops"));
  store.HSet("h", "f", "v");
  std::string v;
  EXPECT_TRUE(store.HGet("h", "f", &v));    // hit
  EXPECT_FALSE(store.HGet("h", "nf", &v));  // miss: absent field
  EXPECT_FALSE(store.HGet("nh", "f", &v));  // miss: absent key
  EXPECT_EQ(registry.GetCounter("hits")->value(), 1u);
  EXPECT_EQ(registry.GetCounter("misses")->value(), 2u);
  // Every command counts as an op: HSet + 3x HGet.
  EXPECT_EQ(registry.GetCounter("ops")->value(), 4u);
  EXPECT_EQ(store.hits(), 1u);
  EXPECT_EQ(store.misses(), 2u);
}

}  // namespace
}  // namespace tman::cache
