#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "compress/byte_codec.h"
#include "core/ttl_filter.h"
#include "kvstore/compaction_filter.h"
#include "kvstore/compression.h"
#include "kvstore/db.h"
#include "kvstore/env.h"
#include "kvstore/sst_file_writer.h"
#include "kvstore/table.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_storage_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string PointKey(int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pt%08d", i);
  return buf;
}

std::string PointValue(int i) {
  std::string v;
  EncodePointValue(1700000000 + i * 15, -122.4 + i * 1e-4, 37.7 + i * 1e-4,
                   &v);
  return v;
}

// ---------------------------------------------------------------------------
// Generic byte codec

TEST(ByteCodecTest, RoundTripsCompressibleData) {
  std::string raw;
  for (int i = 0; i < 500; i++) raw += "row-payload-" + std::to_string(i % 7);
  std::string comp;
  compress::ByteLzEncode(raw.data(), raw.size(), &comp);
  EXPECT_LT(comp.size(), raw.size());
  std::string back;
  ASSERT_TRUE(compress::ByteLzDecode(comp.data(), comp.size(), &back));
  EXPECT_EQ(back, raw);
}

TEST(ByteCodecTest, RoundTripsRandomAndEmpty) {
  Random rnd(42);
  std::string raw;
  for (int i = 0; i < 4096; i++) raw.push_back(static_cast<char>(rnd.Next()));
  std::string comp;
  compress::ByteLzEncode(raw.data(), raw.size(), &comp);
  std::string back;
  ASSERT_TRUE(compress::ByteLzDecode(comp.data(), comp.size(), &back));
  EXPECT_EQ(back, raw);

  std::string empty_comp;
  compress::ByteLzEncode("", 0, &empty_comp);
  std::string empty_back;
  ASSERT_TRUE(
      compress::ByteLzDecode(empty_comp.data(), empty_comp.size(), &empty_back));
  EXPECT_TRUE(empty_back.empty());
}

TEST(ByteCodecTest, DecodeRejectsCorruptPayloads) {
  std::string raw(2000, 'a');
  std::string comp;
  compress::ByteLzEncode(raw.data(), raw.size(), &comp);
  std::string out;
  // Truncations at every prefix must fail cleanly, never crash.
  for (size_t len = 0; len < comp.size(); len++) {
    out.clear();
    if (compress::ByteLzDecode(comp.data(), len, &out)) {
      EXPECT_EQ(out, raw);  // only acceptable if it still decodes fully
      FAIL() << "truncated payload decoded at len " << len;
    }
  }
  // Random single-byte flips either fail or reproduce the input exactly.
  Random rnd(7);
  for (int trial = 0; trial < 64; trial++) {
    std::string mut = comp;
    mut[rnd.Uniform(static_cast<int>(mut.size()))] ^=
        static_cast<char>(1 + rnd.Uniform(255));
    out.clear();
    if (compress::ByteLzDecode(mut.data(), mut.size(), &out)) {
      EXPECT_EQ(out.size(), raw.size());
    }
  }
}

// ---------------------------------------------------------------------------
// Block compression negotiation

TEST(CompressionTest, PointValueRoundTrip) {
  std::string v;
  EncodePointValue(1234567890, -122.4194, 37.7749, &v);
  ASSERT_EQ(v.size(), kPointValueSize);
  int64_t ts;
  double lon, lat;
  ASSERT_TRUE(DecodePointValue(Slice(v), &ts, &lon, &lat));
  EXPECT_EQ(ts, 1234567890);
  EXPECT_EQ(lon, -122.4194);
  EXPECT_EQ(lat, 37.7749);
}

TEST(CompressionTest, IncompressibleBlockStaysRaw) {
  Random rnd(99);
  std::string raw;
  for (int i = 0; i < 512; i++) raw.push_back(static_cast<char>(rnd.Next()));
  std::string out;
  CompressionType used = CompressBlock(kByteCompression, Slice(raw), &out);
  EXPECT_EQ(used, kNoCompression);
  EXPECT_TRUE(out.empty());
}

TEST(CompressionTest, UncompressRejectsGarbage) {
  std::string out;
  Status s = UncompressBlock(kByteCompression, "\xff\xff\xff", 3, &out);
  EXPECT_TRUE(s.IsCorruption());
  out.clear();
  s = UncompressBlock(kTrajPointCompression, "junk", 4, &out);
  EXPECT_TRUE(s.IsCorruption());
}

// ---------------------------------------------------------------------------
// DB-level compression round trips

Options CompressedOptions(CompressionType type) {
  Options options;
  options.compression = type;
  options.background_flush = false;
  options.write_buffer_size = 64 * 1024;
  return options;
}

void WriteReadCycle(const std::string& dir, Options options, int n) {
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->CompactAll().ok());
    for (int i = 0; i < n; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), PointKey(i), &value).ok());
      ASSERT_EQ(value, PointValue(i));
    }
    DB::IntegrityReport report;
    ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
    EXPECT_GT(report.blocks_checked, 0u);
  }
  // Reopen: the on-disk format must self-describe.
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int i = 0; i < n; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), PointKey(i), &value).ok());
    ASSERT_EQ(value, PointValue(i));
  }
}

TEST(StorageFormatTest, TrajPointCompressionRoundTrip) {
  WriteReadCycle(TestDir("traj_rt"), CompressedOptions(kTrajPointCompression),
                 4000);
}

TEST(StorageFormatTest, ByteCompressionRoundTrip) {
  WriteReadCycle(TestDir("byte_rt"), CompressedOptions(kByteCompression),
                 4000);
}

TEST(StorageFormatTest, TrajCompressionShrinksPointTables) {
  auto total_sst_bytes = [](const std::string& dir) {
    uint64_t total = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().extension() == ".sst") total += e.file_size();
    }
    return total;
  };
  const std::string plain_dir = TestDir("size_plain");
  const std::string comp_dir = TestDir("size_comp");
  const int n = 8000;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(CompressedOptions(kNoCompression), plain_dir, &db)
                    .ok());
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->CompactAll().ok());
  }
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(
        DB::Open(CompressedOptions(kTrajPointCompression), comp_dir, &db).ok());
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    ASSERT_TRUE(db->CompactAll().ok());
  }
  const uint64_t plain = total_sst_bytes(plain_dir);
  const uint64_t comp = total_sst_bytes(comp_dir);
  ASSERT_GT(plain, 0u);
  ASSERT_GT(comp, 0u);
  // ISSUE acceptance: at least 2x bytes/point reduction on point rows.
  EXPECT_LE(comp * 2, plain) << "plain=" << plain << " comp=" << comp;
}

TEST(StorageFormatTest, LegacyV1TablesStillRead) {
  const std::string dir = TestDir("legacy");
  Options legacy = CompressedOptions(kNoCompression);
  legacy.write_legacy_table_format = true;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(legacy, dir, &db).ok());
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Reopen with a modern, compression-enabled config: v1 tables written
  // before the upgrade must keep reading, and new writes land as v2.
  Options modern = CompressedOptions(kTrajPointCompression);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(modern, dir, &db).ok());
  for (int i = 0; i < 2000; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), PointKey(i), &value).ok());
    ASSERT_EQ(value, PointValue(i));
  }
  for (int i = 2000; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());  // merges v1 + v2 inputs
  for (int i = 0; i < 3000; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), PointKey(i), &value).ok());
    ASSERT_EQ(value, PointValue(i));
  }
  DB::IntegrityReport report;
  ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
}

TEST(StorageFormatTest, VerifyIntegrityCatchesCompressedCorruption) {
  const std::string dir = TestDir("corrupt");
  Options options = CompressedOptions(kTrajPointCompression);
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    for (int i = 0; i < 4000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i), PointValue(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip one byte in the middle of the (compressed) table body.
  std::string sst;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".sst") sst = e.path().string();
  }
  ASSERT_FALSE(sst.empty());
  {
    std::fstream f(sst, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(128);
    char b;
    f.seekg(128);
    f.get(b);
    f.seekp(128);
    f.put(static_cast<char>(b ^ 0x5a));
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  DB::IntegrityReport report;
  Status s = db->VerifyIntegrity(&report);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

// ---------------------------------------------------------------------------
// SstFileWriter + IngestExternalFile

TEST(SstFileWriterTest, EnforcesOrderAndNonEmpty) {
  const std::string dir = TestDir("writer");
  ASSERT_TRUE(Env::Default()->CreateDirIfMissing(dir).ok());
  Options options;
  {
    SstFileWriter writer(options);
    ASSERT_TRUE(writer.Open(dir + "/empty.sst").ok());
    ExternalSstFileInfo info;
    EXPECT_TRUE(writer.Finish(&info).IsInvalidArgument());
  }
  SstFileWriter writer(options);
  ASSERT_TRUE(writer.Open(dir + "/order.sst").ok());
  ASSERT_TRUE(writer.Put("b", "1").ok());
  EXPECT_TRUE(writer.Put("a", "0").IsInvalidArgument());  // out of order
  EXPECT_TRUE(writer.Put("b", "2").IsInvalidArgument());  // duplicate
  ASSERT_TRUE(writer.Put("c", "2").ok());
  ExternalSstFileInfo info;
  ASSERT_TRUE(writer.Finish(&info).ok());
  EXPECT_EQ(info.num_entries, 2u);
  EXPECT_EQ(info.smallest_user_key, "b");
  EXPECT_EQ(info.largest_user_key, "c");
  EXPECT_GT(info.file_size, 0u);
}

TEST(IngestTest, IngestedFileIsVisibleAndDurable) {
  const std::string dir = TestDir("ingest");
  Options options = CompressedOptions(kTrajPointCompression);
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  const std::string ext = dir + "/bulk-0.tmp";
  SstFileWriter writer(options);
  ASSERT_TRUE(writer.Open(ext).ok());
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(writer.Put(PointKey(i), PointValue(i)).ok());
  }
  ExternalSstFileInfo info;
  ASSERT_TRUE(writer.Finish(&info).ok());

  DB::IngestOptions io;
  io.move_file = true;
  ASSERT_TRUE(db->IngestExternalFile(io, ext).ok());
  EXPECT_FALSE(Env::Default()->FileExists(ext));  // moved, not copied

  DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.files_ingested, 1u);
  EXPECT_EQ(stats.rows_ingested, 3000u);

  for (int i = 0; i < 3000; i++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), PointKey(i), &value).ok());
    ASSERT_EQ(value, PointValue(i));
  }
  db.reset();

  // Survives reopen: the install was committed through the MANIFEST.
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), PointKey(1234), &value).ok());
  EXPECT_EQ(value, PointValue(1234));
  DB::IntegrityReport report;
  ASSERT_TRUE(db->VerifyIntegrity(&report).ok());
}

TEST(IngestTest, OverlappingRangeIsRejected) {
  const std::string dir = TestDir("overlap");
  Options options;
  options.background_flush = false;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), PointKey(500), "live").ok());
  ASSERT_TRUE(db->Flush().ok());

  const std::string ext = dir + "/bulk-1.tmp";
  SstFileWriter writer(options);
  ASSERT_TRUE(writer.Open(ext).ok());
  for (int i = 400; i < 600; i++) {
    ASSERT_TRUE(writer.Put(PointKey(i), PointValue(i)).ok());
  }
  ExternalSstFileInfo info;
  ASSERT_TRUE(writer.Finish(&info).ok());

  DB::IngestOptions io;
  Status s = db->IngestExternalFile(io, ext);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // The live row must win and the store must stay consistent.
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), PointKey(500), &value).ok());
  EXPECT_EQ(value, "live");

  // A disjoint file still ingests (copy mode keeps the source).
  const std::string ext2 = dir + "/bulk-2.tmp";
  SstFileWriter writer2(options);
  ASSERT_TRUE(writer2.Open(ext2).ok());
  for (int i = 600; i < 700; i++) {
    ASSERT_TRUE(writer2.Put(PointKey(i), PointValue(i)).ok());
  }
  ASSERT_TRUE(writer2.Finish(&info).ok());
  ASSERT_TRUE(db->IngestExternalFile(io, ext2).ok());
  EXPECT_TRUE(Env::Default()->FileExists(ext2));  // copy, source kept
  ASSERT_TRUE(db->Get(ReadOptions(), PointKey(650), &value).ok());
}

TEST(IngestTest, RejectsFilesNotBuiltBySstFileWriter) {
  const std::string dir = TestDir("badfile");
  Options options;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  const std::string ext = dir + "/bulk-3.tmp";
  {
    std::ofstream f(ext, std::ios::binary);
    f << "this is not an sstable";
  }
  DB::IngestOptions io;
  Status s = db->IngestExternalFile(io, ext);
  EXPECT_FALSE(s.ok());
}

// ---------------------------------------------------------------------------
// Compaction filter

// Drops every row whose value is the literal "expired".
class ValueFilter : public CompactionFilter {
 public:
  const char* Name() const override { return "test.value"; }
  bool ShouldDrop(int, const Slice&, const Slice& value) const override {
    return value == Slice("expired");
  }
};

TEST(CompactionFilterTest, ExpiredRowsAreDroppedAndCounted) {
  const std::string dir = TestDir("filter");
  ValueFilter filter;
  Options options;
  options.background_flush = false;
  options.compaction_filter = &filter;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 1000; i++) {
    const bool expired = i % 3 == 0;
    ASSERT_TRUE(db->Put(WriteOptions(), PointKey(i),
                        expired ? "expired" : "live")
                    .ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());

  for (int i = 0; i < 1000; i++) {
    std::string value;
    Status s = db->Get(ReadOptions(), PointKey(i), &value);
    if (i % 3 == 0) {
      EXPECT_TRUE(s.IsNotFound()) << PointKey(i);
    } else {
      ASSERT_TRUE(s.ok());
      EXPECT_EQ(value, "live");
    }
  }
  DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.compaction_filter_dropped +
                stats.compaction_filter_tombstoned,
            0u);

  // After full compaction to the bottom, survivors stay and the dropped
  // rows stay gone across reopen.
  db.reset();
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), PointKey(0), &value).IsNotFound());
  EXPECT_TRUE(db->Get(ReadOptions(), PointKey(1), &value).ok());
}

TEST(CompactionFilterTest, NewestVersionWinsOverFilter) {
  // A newer live version of a key must shadow an older expired one: the
  // filter is consulted only on the newest surviving version.
  const std::string dir = TestDir("filter_ver");
  ValueFilter filter;
  Options options;
  options.background_flush = false;
  options.compaction_filter = &filter;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "expired").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "live-again").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->CompactAll().ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "live-again");
}

// ---------------------------------------------------------------------------
// TTL filter (core)

TEST(TtlFilterTest, ExpiresOnlyDecodableOldRecords) {
  const int64_t now = 1700000000;
  core::TtlCompactionFilter ttl(3600, [now] { return now; });
  // Undecodable values (e.g. secondary index rows holding primary-key
  // strings) are never dropped.
  EXPECT_FALSE(ttl.ShouldDrop(1, Slice("k"), Slice("primary-key-string")));
  EXPECT_FALSE(ttl.ShouldDrop(1, Slice("k"), Slice()));
  EXPECT_EQ(ttl.expired(), 0u);
  // Disabled filter never drops.
  core::TtlCompactionFilter off(0, [now] { return now; });
  EXPECT_FALSE(off.ShouldDrop(1, Slice("k"), Slice("anything")));
}

// ---------------------------------------------------------------------------
// Cluster bulk load

TEST(ClusterBulkLoadTest, LoadsAcrossRegionsAndReadsBack) {
  cluster::Cluster cl(TestDir("bulkload"), 3, Options());
  ASSERT_TRUE(cl.CreateTable("t", 4).ok());
  cluster::ClusterTable* table = cl.GetTable("t");

  std::vector<cluster::Row> rows;
  for (int shard = 0; shard < 4; shard++) {
    for (int i = 0; i < 500; i++) {
      cluster::Row row;
      row.key.push_back(static_cast<char>(shard));
      row.key += PointKey(i);
      row.value = PointValue(i);
      rows.push_back(std::move(row));
    }
  }
  ASSERT_TRUE(table->BulkLoad(rows).ok());
  for (const cluster::Row& row : rows) {
    std::string value;
    ASSERT_TRUE(table->Get(row.key, &value).ok());
    ASSERT_EQ(value, row.value);
  }
  // Ingestion accounting reached the region stores.
  DB::Stats stats = table->GetStorageStats();
  EXPECT_EQ(stats.files_ingested, 4u);
  EXPECT_EQ(stats.rows_ingested, rows.size());

  // A second overlapping load must fail (live range overlap)...
  EXPECT_FALSE(table->BulkLoad(rows).ok());
  // ...while a disjoint one succeeds.
  std::vector<cluster::Row> more;
  for (int shard = 0; shard < 4; shard++) {
    for (int i = 500; i < 600; i++) {
      cluster::Row row;
      row.key.push_back(static_cast<char>(shard));
      row.key += PointKey(i);
      row.value = PointValue(i);
      more.push_back(std::move(row));
    }
  }
  ASSERT_TRUE(table->BulkLoad(more).ok());
}

}  // namespace
}  // namespace tman::kv
