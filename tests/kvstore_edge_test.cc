#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <thread>

#include "common/random.h"
#include "kvstore/arena.h"
#include "kvstore/db.h"
#include "kvstore/dbformat.h"
#include "kvstore/merge_iterator.h"
#include "kvstore/table.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_kvedge_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Arena

TEST(ArenaTest, AllocationsAreDistinctAndUsable) {
  Arena arena;
  std::vector<char*> blocks;
  for (int i = 1; i <= 200; i++) {
    char* p = arena.Allocate(i);
    memset(p, i & 0xff, i);
    blocks.push_back(p);
  }
  // Nothing was clobbered.
  for (int i = 1; i <= 200; i++) {
    for (int j = 0; j < i; j++) {
      EXPECT_EQ(static_cast<unsigned char>(blocks[i - 1][j]), i & 0xff);
    }
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 50; i++) {
    arena.Allocate(1);  // misalign the bump pointer
    char* p = arena.AllocateAligned(16);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
  }
}

TEST(ArenaTest, LargeAllocationsGetOwnBlocks) {
  Arena arena;
  char* big = arena.Allocate(64 * 1024);
  memset(big, 0x5a, 64 * 1024);
  char* small = arena.Allocate(8);
  memset(small, 0x11, 8);
  EXPECT_EQ(static_cast<unsigned char>(big[0]), 0x5a);
}

// ---------------------------------------------------------------------------
// Internal key format

TEST(DBFormatTest, InternalKeyOrdering) {
  InternalKeyComparator cmp;
  InternalKey a("key", 5, kTypeValue);
  InternalKey b("key", 9, kTypeValue);
  // Higher sequence sorts first (newest wins).
  EXPECT_GT(cmp.Compare(a.Encode(), b.Encode()), 0);
  InternalKey c("kez", 1, kTypeValue);
  EXPECT_LT(cmp.Compare(a.Encode(), c.Encode()), 0);
}

TEST(DBFormatTest, ParseRoundTrip) {
  InternalKey key("user-key", 123456, kTypeDeletion);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(key.Encode(), &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user-key");
  EXPECT_EQ(parsed.sequence, 123456u);
  EXPECT_EQ(parsed.type, kTypeDeletion);
}

TEST(DBFormatTest, LookupKeyParts) {
  LookupKey key("abc", 77);
  EXPECT_EQ(key.user_key().ToString(), "abc");
  EXPECT_EQ(ExtractUserKey(key.internal_key()).ToString(), "abc");
}

// ---------------------------------------------------------------------------
// Merging iterator

class VectorIterator final : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> kv)
      : kv_(std::move(kv)), pos_(kv_.size()) {}
  bool Valid() const override { return pos_ < kv_.size(); }
  void SeekToFirst() override { pos_ = 0; }
  void Seek(const Slice& target) override {
    pos_ = 0;
    InternalKeyComparator cmp;
    while (pos_ < kv_.size() && cmp.Compare(kv_[pos_].first, target) < 0) {
      pos_++;
    }
  }
  void Next() override { pos_++; }
  Slice key() const override { return kv_[pos_].first; }
  Slice value() const override { return kv_[pos_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t pos_;
};

std::pair<std::string, std::string> Entry(const std::string& key,
                                          SequenceNumber seq,
                                          const std::string& value) {
  std::string ikey;
  AppendInternalKey(&ikey, key, seq, kTypeValue);
  return {ikey, value};
}

TEST(MergeIteratorTest, InterleavesSortedStreams) {
  InternalKeyComparator cmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator({Entry("a", 1, "1"),
                                         Entry("c", 1, "3")}));
  children.push_back(new VectorIterator({Entry("b", 1, "2"),
                                         Entry("d", 1, "4")}));
  children.push_back(new VectorIterator({}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, std::move(children)));
  std::string got;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    got += merged->value().ToString();
  }
  EXPECT_EQ(got, "1234");
}

TEST(MergeIteratorTest, NewestVersionComesFirst) {
  InternalKeyComparator cmp;
  std::vector<Iterator*> children;
  children.push_back(new VectorIterator({Entry("k", 5, "old")}));
  children.push_back(new VectorIterator({Entry("k", 9, "new")}));
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&cmp, std::move(children)));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->value().ToString(), "old");
}

// ---------------------------------------------------------------------------
// Block iterator Seek edge cases

std::string InternalKeyOf(const std::string& user_key) {
  std::string ikey;
  AppendInternalKey(&ikey, user_key, 1, kTypeValue);
  return ikey;
}

// Block with zero entries (one restart point, no data): Seek and
// SeekToFirst land invalid without reading out of bounds.
TEST(BlockSeekEdgeTest, EmptyBlockIsInvalidNotOOB) {
  BlockBuilder builder(4);
  Block block(builder.Finish().ToString());
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  iter->Seek(InternalKeyOf("anything"));
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());

  // Degenerate contents: too short for a trailer, and a trailer claiming
  // zero restart points. Both must stay invalid, not crash.
  Block malformed((std::string()));
  std::unique_ptr<Iterator> bad(malformed.NewIterator(&icmp));
  bad->Seek(InternalKeyOf("x"));
  EXPECT_FALSE(bad->Valid());
  Block zero_restarts(std::string(4, '\0'));
  std::unique_ptr<Iterator> zero(zero_restarts.NewIterator(&icmp));
  zero->SeekToFirst();
  EXPECT_FALSE(zero->Valid());
  zero->Seek(InternalKeyOf("x"));
  EXPECT_FALSE(zero->Valid());
}

// Seeking past every key leaves the iterator cleanly exhausted.
TEST(BlockSeekEdgeTest, SeekPastLastRestartKey) {
  BlockBuilder builder(2);
  for (int i = 0; i < 9; i++) {
    builder.Add(InternalKeyOf("key" + std::to_string(i)), "v");
  }
  Block block(builder.Finish().ToString());
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));
  iter->Seek(InternalKeyOf("zzz"));
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().ok());
  // And a target inside the last restart region still works.
  iter->Seek(InternalKeyOf("key8"));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "key8");
}

// A restart array whose offsets point into the trailer must surface
// Corruption from Seek's binary search instead of dereferencing past the
// entry area.
TEST(BlockSeekEdgeTest, MalformedRestartArraySurfacesCorruption) {
  BlockBuilder builder(1);  // every entry is a restart point
  for (int i = 0; i < 8; i++) {
    builder.Add(InternalKeyOf("key" + std::to_string(i)), "v");
  }
  std::string contents = builder.Finish().ToString();
  const uint32_t num_restarts =
      DecodeFixed32(contents.data() + contents.size() - 4);
  ASSERT_EQ(num_restarts, 8u);
  const size_t restart_offset = contents.size() - (1 + num_restarts) * 4;
  // Point every non-zero restart at the end of the block.
  std::string enc;
  PutFixed32(&enc, static_cast<uint32_t>(contents.size()));
  for (uint32_t i = 1; i < num_restarts; i++) {
    contents.replace(restart_offset + i * 4, 4, enc);
  }
  Block block(std::move(contents));
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));
  iter->Seek(InternalKeyOf("key7"));
  EXPECT_FALSE(iter->Valid());
  EXPECT_TRUE(iter->status().IsCorruption()) << iter->status().ToString();
}

// Regression guard for the reusable-buffer key decode: prefix-compressed
// entries (shared > 0) and restart entries (pinned slices into the block)
// must interleave correctly under both iteration and repeated seeks.
TEST(BlockSeekEdgeTest, PrefixCompressedKeysSurviveSeekAndScan) {
  BlockBuilder builder(16);
  std::vector<std::string> ikeys;
  for (int i = 0; i < 100; i++) {
    char buf[32];
    snprintf(buf, sizeof(buf), "sharedprefix%04d", i);
    ikeys.push_back(InternalKeyOf(buf));
    builder.Add(ikeys.back(), "value" + std::to_string(i));
  }
  Block block(builder.Finish().ToString());
  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));
  iter->SeekToFirst();
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(iter->key().ToString(), ikeys[i]);
    EXPECT_EQ(iter->value().ToString(), "value" + std::to_string(i));
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
  // Seeks in descending order re-enter earlier restart regions, exercising
  // the pinned -> buffered -> pinned transitions.
  for (int i = 99; i >= 0; i -= 7) {
    iter->Seek(ikeys[static_cast<size_t>(i)]);
    ASSERT_TRUE(iter->Valid()) << i;
    EXPECT_EQ(iter->key().ToString(), ikeys[static_cast<size_t>(i)]);
  }
}

// ---------------------------------------------------------------------------
// SSTable corruption handling

TEST(TableTest, DetectsCorruptMagic) {
  const std::string dir = TestDir("corrupt");
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  const std::string fname = dir + "/bad.sst";
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
    ASSERT_TRUE(file->Append(std::string(100, 'x')).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());
  std::unique_ptr<Table> table;
  Options options;
  const Status s =
      Table::Open(options, 1, std::move(file), 100, nullptr, &table);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(TableTest, DetectsFlippedDataBit) {
  const std::string dir = TestDir("bitflip");
  Options options;
  options.write_buffer_size = 1 << 20;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    for (int i = 0; i < 1000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "key" + std::to_string(i),
                          std::string(50, 'v'))
                      .ok());
    }
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip one byte in the middle of the only SSTable.
  std::string sst;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".sst") sst = entry.path();
  }
  ASSERT_FALSE(sst.empty());
  {
    FILE* f = fopen(sst.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    fseek(f, 500, SEEK_SET);
    int c = fgetc(f);
    fseek(f, 500, SEEK_SET);
    fputc(c ^ 0xff, f);
    fclose(f);
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  // Some read must surface the corruption (checksum mismatch), and no read
  // may return wrong data silently.
  int corruption_seen = 0;
  for (int i = 0; i < 1000; i++) {
    std::string value;
    Status s = db->Get(ReadOptions(), "key" + std::to_string(i), &value);
    if (s.IsCorruption()) {
      corruption_seen++;
    } else if (s.ok()) {
      EXPECT_EQ(value, std::string(50, 'v'));
    }
  }
  EXPECT_GT(corruption_seen, 0);
}

// ---------------------------------------------------------------------------
// Concurrency: readers during writes

TEST(DBConcurrencyTest, ConcurrentReadersSeeConsistentData) {
  const std::string dir = TestDir("concurrent");
  Options options;
  options.write_buffer_size = 32 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "stable" + std::to_string(i),
                        "value" + std::to_string(i))
                    .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread reader([&] {
    Random rnd(1);
    while (!stop.load()) {
      const int i = static_cast<int>(rnd.Uniform(500));
      std::string value;
      Status s =
          db->Get(ReadOptions(), "stable" + std::to_string(i), &value);
      if (!s.ok() || value != "value" + std::to_string(i)) {
        reader_errors++;
      }
    }
  });
  std::thread scanner([&] {
    while (!stop.load()) {
      std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
      int count = 0;
      for (iter->Seek("stable"); iter->Valid(); iter->Next()) {
        if (!Slice(iter->key()).starts_with("stable")) break;
        count++;
      }
      if (count < 500) reader_errors++;
    }
  });

  // Writer churns other keys, forcing flushes and compactions underneath
  // the readers.
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db->Put(WriteOptions(), "churn" + std::to_string(i % 700),
                        std::string(100, static_cast<char>('a' + i % 26)))
                    .ok());
  }
  stop.store(true);
  reader.join();
  scanner.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

// Overwrite-heavy workload: compaction must drop shadowed versions but
// always serve the newest.
TEST(DBEdgeTest, HeavyOverwrites) {
  const std::string dir = TestDir("overwrite");
  Options options;
  options.write_buffer_size = 8 * 1024;
  options.base_level_bytes = 16 * 1024;
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int round = 0; round < 50; round++) {
    for (int k = 0; k < 50; k++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "hot" + std::to_string(k),
                          "round" + std::to_string(round))
                      .ok());
    }
  }
  ASSERT_TRUE(db->CompactAll().ok());
  for (int k = 0; k < 50; k++) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "hot" + std::to_string(k), &value).ok());
    EXPECT_EQ(value, "round49");
  }
}

TEST(DBEdgeTest, EmptyAndZeroLengthValues) {
  const std::string dir = TestDir("empty");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
  ASSERT_TRUE(db->Put(WriteOptions(), "k", "").ok());
  std::string value = "sentinel";
  ASSERT_TRUE(db->Get(ReadOptions(), "k", &value).ok());
  EXPECT_EQ(value, "");
  // Empty scans on an empty range.
  std::vector<std::pair<std::string, std::string>> rows;
  ASSERT_TRUE(
      db->Scan(ReadOptions(), "zzz", "zzzz", nullptr, 0, &rows, nullptr).ok());
  EXPECT_TRUE(rows.empty());
}

TEST(DBEdgeTest, BinaryKeysAndValues) {
  const std::string dir = TestDir("binary");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
  const std::string key("\x00\x01\xff\x7f", 4);
  const std::string value("\x00binary\xffvalue\x00", 14);
  ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string got;
  ASSERT_TRUE(db->Get(ReadOptions(), key, &got).ok());
  EXPECT_EQ(got, value);
}

}  // namespace
}  // namespace tman::kv
