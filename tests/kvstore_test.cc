#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/random.h"
#include "kvstore/bloom.h"
#include "kvstore/block.h"
#include "kvstore/block_builder.h"
#include "kvstore/db.h"
#include "kvstore/dbformat.h"
#include "kvstore/log.h"
#include "kvstore/memtable.h"
#include "kvstore/skiplist.h"
#include "kvstore/write_batch.h"

namespace tman::kv {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_kv_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// SkipList

struct IntComparator {
  int operator()(uint64_t a, uint64_t b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertAndIterateSorted) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  Random rnd(301);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; i++) {
    uint64_t k = rnd.Uniform(10000);
    if (keys.insert(k).second) list.Insert(k);
  }
  for (uint64_t k : keys) EXPECT_TRUE(list.Contains(k));

  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t k : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), k);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t k = 0; k < 100; k += 10) list.Insert(k);
  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.Seek(35);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40u);
  iter.Seek(40);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40u);
  iter.Seek(95);
  EXPECT_FALSE(iter.Valid());
}

// ---------------------------------------------------------------------------
// MemTable

TEST(MemTableTest, PutGetDelete) {
  InternalKeyComparator icmp;
  MemTable mem(icmp);
  mem.Add(1, kTypeValue, "k1", "v1");
  mem.Add(2, kTypeValue, "k2", "v2");

  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k1", 10), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v1");

  mem.Add(3, kTypeDeletion, "k1", "");
  ASSERT_TRUE(mem.Get(LookupKey("k1", 10), &value, &s));
  EXPECT_TRUE(s.IsNotFound());

  // At an older snapshot the value is still visible.
  ASSERT_TRUE(mem.Get(LookupKey("k1", 2), &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v1");

  EXPECT_FALSE(mem.Get(LookupKey("nope", 10), &value, &s));
}

TEST(MemTableTest, NewestVersionWins) {
  InternalKeyComparator icmp;
  MemTable mem(icmp);
  mem.Add(1, kTypeValue, "k", "old");
  mem.Add(5, kTypeValue, "k", "new");
  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("k", 100), &value, &s));
  EXPECT_EQ(value, "new");
}

// ---------------------------------------------------------------------------
// Block

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char key[32];
    snprintf(key, sizeof(key), "key%04d", i);
    std::string ikey;
    AppendInternalKey(&ikey, key, 1, kTypeValue);
    entries[ikey] = "value" + std::to_string(i);
  }
  for (const auto& [k, v] : entries) builder.Add(k, v);
  Block block(builder.Finish().ToString());

  InternalKeyComparator icmp;
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));
  iter->SeekToFirst();
  for (const auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seek to an existing key.
  std::string target;
  AppendInternalKey(&target, "key0050", kMaxSequenceNumber, kValueTypeForSeek);
  iter->Seek(target);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), "key0050");
}

// ---------------------------------------------------------------------------
// Bloom filter

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterPolicy bloom(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) keys.push_back("bloomkey" + std::to_string(i));
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::string filter;
  bloom.CreateFilter(slices, &filter);
  for (const auto& k : keys) {
    EXPECT_TRUE(bloom.KeyMayMatch(k, filter)) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilterPolicy bloom(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; i++) keys.push_back("in" + std::to_string(i));
  std::vector<Slice> slices(keys.begin(), keys.end());
  std::string filter;
  bloom.CreateFilter(slices, &filter);
  int false_positives = 0;
  for (int i = 0; i < 10000; i++) {
    if (bloom.KeyMayMatch("out" + std::to_string(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key gives ~1% FPR; allow generous slack.
  EXPECT_LT(false_positives, 300);
}

// ---------------------------------------------------------------------------
// WAL

TEST(LogTest, RoundTripAndTornTail) {
  std::string dir = TestDir("log");
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  const std::string fname = dir + "/test.wal";
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(fname, &file).ok());
    LogWriter writer(std::move(file));
    ASSERT_TRUE(writer.AddRecord("record-one").ok());
    ASSERT_TRUE(writer.AddRecord("record-two").ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Append a torn record: header promising more bytes than present.
  {
    FILE* f = fopen(fname.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x01\x02\x03\x04\xff\x00\x00\x00partial";
    fwrite(garbage, 1, sizeof(garbage) - 1, f);
    fclose(f);
  }
  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env->NewSequentialFile(fname, &file).ok());
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "record-one");
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "record-two");
  EXPECT_FALSE(reader.ReadRecord(&record, &scratch));  // torn tail rejected
}

// ---------------------------------------------------------------------------
// WriteBatch

TEST(WriteBatchTest, CountAndApply) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  EXPECT_EQ(batch.Count(), 3u);
  batch.SetSequence(100);

  InternalKeyComparator icmp;
  MemTable mem(icmp);
  ASSERT_TRUE(batch.InsertInto(&mem).ok());
  std::string value;
  Status s;
  ASSERT_TRUE(mem.Get(LookupKey("a", 200), &value, &s));
  EXPECT_TRUE(s.IsNotFound());  // delete at seq 102 shadows put at 100
  ASSERT_TRUE(mem.Get(LookupKey("b", 200), &value, &s));
  EXPECT_EQ(value, "2");
}

// ---------------------------------------------------------------------------
// DB end-to-end

TEST(DBTest, PutGetOverwriteDelete) {
  std::string dir = TestDir("basic");
  std::unique_ptr<DB> db;
  Options options;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  WriteOptions wo;
  ReadOptions ro;
  ASSERT_TRUE(db->Put(wo, "key", "value1").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ro, "key", &value).ok());
  EXPECT_EQ(value, "value1");

  ASSERT_TRUE(db->Put(wo, "key", "value2").ok());
  ASSERT_TRUE(db->Get(ro, "key", &value).ok());
  EXPECT_EQ(value, "value2");

  ASSERT_TRUE(db->Delete(wo, "key").ok());
  EXPECT_TRUE(db->Get(ro, "key", &value).IsNotFound());
  EXPECT_TRUE(db->Get(ro, "never", &value).IsNotFound());
}

TEST(DBTest, SurvivesFlushAndReopen) {
  std::string dir = TestDir("reopen");
  WriteOptions wo;
  ReadOptions ro;
  {
    std::unique_ptr<DB> db;
    Options options;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(
          db->Put(wo, "k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(db->Flush().ok());
    for (int i = 500; i < 1000; i++) {  // these stay in the WAL/memtable
      ASSERT_TRUE(
          db->Put(wo, "k" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
  }
  {
    std::unique_ptr<DB> db;
    Options options;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    for (int i = 0; i < 1000; i++) {
      std::string value;
      ASSERT_TRUE(db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok())
          << i;
      EXPECT_EQ(value, "v" + std::to_string(i));
    }
  }
}

TEST(DBTest, IteratorSeesSortedUserKeys) {
  std::string dir = TestDir("iter");
  std::unique_ptr<DB> db;
  Options options;
  options.write_buffer_size = 16 * 1024;  // force several flushes
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  WriteOptions wo;
  std::map<std::string, std::string> model;
  Random rnd(17);
  for (int i = 0; i < 3000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(1000)));
    std::string value = "v" + std::to_string(i);
    model[key] = value;
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(DBTest, DeletesShadowAcrossFlushes) {
  std::string dir = TestDir("shadow");
  std::unique_ptr<DB> db;
  Options options;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  WriteOptions wo;
  ASSERT_TRUE(db->Put(wo, "gone", "x").ok());
  ASSERT_TRUE(db->Flush().ok());
  ASSERT_TRUE(db->Delete(wo, "gone").ok());
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  EXPECT_TRUE(db->Get(ReadOptions(), "gone", &value).IsNotFound());

  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  iter->Seek("gone");
  EXPECT_FALSE(iter->Valid() && iter->key() == Slice("gone"));
}

TEST(DBTest, CompactionPreservesData) {
  std::string dir = TestDir("compact");
  std::unique_ptr<DB> db;
  Options options;
  options.write_buffer_size = 8 * 1024;
  options.max_file_bytes = 16 * 1024;
  options.base_level_bytes = 32 * 1024;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  WriteOptions wo;
  std::map<std::string, std::string> model;
  Random rnd(99);
  for (int i = 0; i < 5000; i++) {
    char key[16];
    snprintf(key, sizeof(key), "%08llu",
             static_cast<unsigned long long>(rnd.Uniform(2000)));
    std::string value(50, static_cast<char>('a' + (i % 26)));
    model[key] = value;
    ASSERT_TRUE(db->Put(wo, key, value).ok());
  }
  ASSERT_TRUE(db->CompactAll().ok());

  // After full compaction L0 must be empty and data intact.
  DB::Stats stats = db->GetStats();
  EXPECT_EQ(stats.files_per_level[0], 0);
  for (const auto& [k, v] : model) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), k, &value).ok()) << k;
    EXPECT_EQ(value, v);
  }
}

TEST(DBTest, ScanRangeWithPushdownFilter) {
  std::string dir = TestDir("scan");
  std::unique_ptr<DB> db;
  Options options;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    char key[16];
    snprintf(key, sizeof(key), "row%03d", i);
    ASSERT_TRUE(db->Put(wo, key, i % 2 == 0 ? "even" : "odd").ok());
  }

  struct EvenFilter : public ScanFilter {
    bool Matches(const Slice&, const Slice& value) const override {
      return value == Slice("even");
    }
  } filter;

  std::vector<std::pair<std::string, std::string>> out;
  ScanStats stats;
  ASSERT_TRUE(
      db->Scan(ReadOptions(), "row010", "row020", &filter, 0, &out, &stats)
          .ok());
  EXPECT_EQ(stats.scanned, 10u);
  EXPECT_EQ(stats.matched, 5u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].first, "row010");
  EXPECT_EQ(out[4].first, "row018");

  // Limit stops the scan early.
  out.clear();
  ScanStats s2;
  ASSERT_TRUE(db->Scan(ReadOptions(), "row000", "", &filter, 3, &out, &s2).ok());
  EXPECT_EQ(out.size(), 3u);
}

TEST(DBTest, ReopenAfterCompactionKeepsManifest) {
  std::string dir = TestDir("manifest");
  Options options;
  options.write_buffer_size = 8 * 1024;
  {
    std::unique_ptr<DB> db;
    ASSERT_TRUE(DB::Open(options, dir, &db).ok());
    WriteOptions wo;
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db->Put(wo, "key" + std::to_string(i),
                          std::string(30, 'x'))
                      .ok());
    }
    ASSERT_TRUE(db->CompactAll().ok());
  }
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  for (int i = 0; i < 2000; i += 97) {
    std::string value;
    ASSERT_TRUE(db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok());
  }
}

TEST(DBTest, WriteBatchIsAtomicInOrder) {
  std::string dir = TestDir("batch");
  std::unique_ptr<DB> db;
  ASSERT_TRUE(DB::Open(Options(), dir, &db).ok());
  WriteBatch batch;
  batch.Put("x", "1");
  batch.Delete("x");
  batch.Put("x", "3");
  ASSERT_TRUE(db->Write(WriteOptions(), &batch).ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "x", &value).ok());
  EXPECT_EQ(value, "3");
}

TEST(DBTest, BlockCacheServesRepeatedReads) {
  std::string dir = TestDir("cache");
  std::unique_ptr<DB> db;
  Options options;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());
  WriteOptions wo;
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db->Put(wo, "ck" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(db->Flush().ok());
  std::string value;
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 1000; i += 100) {
      ASSERT_TRUE(db->Get(ReadOptions(), "ck" + std::to_string(i), &value).ok());
    }
  }
  DB::Stats stats = db->GetStats();
  EXPECT_GT(stats.block_cache_hits, 0u);
}

// Property-style sweep: random workloads against an in-memory model.
class DBFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(DBFuzzTest, MatchesModelUnderRandomOps) {
  const int seed = GetParam();
  std::string dir = TestDir("fuzz" + std::to_string(seed));
  std::unique_ptr<DB> db;
  Options options;
  options.write_buffer_size = 4 * 1024;
  options.max_file_bytes = 8 * 1024;
  options.base_level_bytes = 16 * 1024;
  ASSERT_TRUE(DB::Open(options, dir, &db).ok());

  std::map<std::string, std::string> model;
  Random rnd(seed);
  WriteOptions wo;
  for (int op = 0; op < 4000; op++) {
    std::string key = "fz" + std::to_string(rnd.Uniform(300));
    switch (rnd.Uniform(3)) {
      case 0:
      case 1: {
        std::string value = "val" + std::to_string(rnd.Next() % 100000);
        model[key] = value;
        ASSERT_TRUE(db->Put(wo, key, value).ok());
        break;
      }
      case 2:
        model.erase(key);
        ASSERT_TRUE(db->Delete(wo, key).ok());
        break;
    }
  }

  // Point lookups match the model.
  for (int i = 0; i < 300; i++) {
    std::string key = "fz" + std::to_string(i);
    std::string value;
    Status s = db->Get(ReadOptions(), key, &value);
    auto it = model.find(key);
    if (it == model.end()) {
      EXPECT_TRUE(s.IsNotFound()) << key;
    } else {
      ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
      EXPECT_EQ(value, it->second);
    }
  }

  // Full iteration matches the model.
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  for (const auto& [k, v] : model) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DBFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tman::kv
