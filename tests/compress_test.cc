#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "compress/gorilla.h"
#include "compress/simple8b.h"
#include "compress/traj_codec.h"

namespace tman::compress {
namespace {

TEST(Simple8bTest, RoundTripSmallValues) {
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 1000; i++) values.push_back(i % 7);
  std::string blob;
  ASSERT_TRUE(Simple8bEncode(values, &blob));
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(Simple8bDecode(blob.data(), blob.size(), values.size(),
                             &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(Simple8bTest, RoundTripMixedMagnitudes) {
  Random rnd(9);
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; i++) {
    const int bits = static_cast<int>(rnd.Uniform(59)) + 1;
    values.push_back(rnd.Next() & ((1ULL << bits) - 1));
  }
  std::string blob;
  ASSERT_TRUE(Simple8bEncode(values, &blob));
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(Simple8bDecode(blob.data(), blob.size(), values.size(),
                             &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(Simple8bTest, ZeroRunsPackDensely) {
  std::vector<uint64_t> values(960, 0);
  std::string blob;
  ASSERT_TRUE(Simple8bEncode(values, &blob));
  // 960 zeros = 4 words of 240 -> 32 bytes vs 7680 raw.
  EXPECT_LE(blob.size(), 64u);
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(Simple8bDecode(blob.data(), blob.size(), values.size(),
                             &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(Simple8bTest, RejectsOversizedValues) {
  std::vector<uint64_t> values = {1ULL << 60};
  std::string blob;
  EXPECT_FALSE(Simple8bEncode(values, &blob));
}

TEST(Simple8bTest, EmptyInput) {
  std::string blob;
  ASSERT_TRUE(Simple8bEncode({}, &blob));
  EXPECT_TRUE(blob.empty());
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(Simple8bDecode(blob.data(), blob.size(), 0, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(GorillaTest, RoundTripGPSLikeSeries) {
  Random rnd(11);
  std::vector<double> values;
  double lon = 116.40;
  for (int i = 0; i < 2000; i++) {
    lon += rnd.UniformDouble(-0.0005, 0.0005);
    values.push_back(lon);
  }
  GorillaEncoder enc;
  for (double v : values) enc.Add(v);
  const std::string blob = enc.Finish();
  // Gorilla on smooth series: well under 8 bytes per value.
  EXPECT_LT(blob.size(), values.size() * 8);

  GorillaDecoder dec(blob.data(), blob.size());
  std::vector<double> decoded;
  ASSERT_TRUE(dec.Decode(values.size(), &decoded));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); i++) {
    EXPECT_EQ(decoded[i], values[i]) << i;  // bit-exact lossless
  }
}

TEST(GorillaTest, RoundTripConstantsAndSpecials) {
  const std::vector<double> values = {0.0,  0.0,   -0.0,  1.5,
                                      1.5,  1e300, -1e300, 3.14159};
  GorillaEncoder enc;
  for (double v : values) enc.Add(v);
  const std::string blob = enc.Finish();
  GorillaDecoder dec(blob.data(), blob.size());
  std::vector<double> decoded;
  ASSERT_TRUE(dec.Decode(values.size(), &decoded));
  for (size_t i = 0; i < values.size(); i++) {
    EXPECT_EQ(std::signbit(decoded[i]), std::signbit(values[i]));
    EXPECT_EQ(decoded[i], values[i]);
  }
}

TEST(GorillaTest, TruncatedInputFailsCleanly) {
  GorillaEncoder enc;
  for (int i = 0; i < 100; i++) enc.Add(i * 0.1);
  std::string blob = enc.Finish();
  blob.resize(blob.size() / 2);
  GorillaDecoder dec(blob.data(), blob.size());
  std::vector<double> decoded;
  EXPECT_FALSE(dec.Decode(100, &decoded));
}

TEST(DeltaOfDeltaTest, RegularTimestampsCompressToZeros) {
  std::vector<int64_t> ts;
  for (int i = 0; i < 100; i++) ts.push_back(1400000000 + i * 30);
  std::vector<uint64_t> encoded;
  DeltaOfDeltaEncode(ts, &encoded);
  // After the first two entries every delta-of-delta is zero.
  for (size_t i = 2; i < encoded.size(); i++) {
    EXPECT_EQ(encoded[i], 0u);
  }
  std::vector<int64_t> decoded;
  DeltaOfDeltaDecode(encoded, &decoded);
  EXPECT_EQ(decoded, ts);
}

TEST(TrajCodecTest, RoundTripAndCompressionRatio) {
  Random rnd(23);
  PointColumns columns;
  double lon = 113.3, lat = 23.1;
  int64_t t = 1393632000;
  for (int i = 0; i < 1000; i++) {
    lon += rnd.UniformDouble(-0.0004, 0.0004);
    lat += rnd.UniformDouble(-0.0004, 0.0004);
    t += 28 + static_cast<int64_t>(rnd.Uniform(5));
    columns.lons.push_back(lon);
    columns.lats.push_back(lat);
    columns.timestamps.push_back(t);
  }
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));
  const size_t raw_size = 1000 * (8 + 8 + 8);
  EXPECT_LT(blob.size(), raw_size) << "codec must beat raw layout";

  PointColumns decoded;
  ASSERT_TRUE(DecodePoints(blob.data(), blob.size(), &decoded));
  EXPECT_EQ(decoded.timestamps, columns.timestamps);
  EXPECT_EQ(decoded.lons, columns.lons);
  EXPECT_EQ(decoded.lats, columns.lats);
}

TEST(TrajCodecTest, RejectsMismatchedColumns) {
  PointColumns columns;
  columns.timestamps = {1, 2, 3};
  columns.lons = {1.0, 2.0};
  columns.lats = {1.0, 2.0, 3.0};
  std::string blob;
  EXPECT_FALSE(EncodePoints(columns, &blob));
}

TEST(TrajCodecTest, SinglePoint) {
  PointColumns columns;
  columns.timestamps = {1400000000};
  columns.lons = {116.5};
  columns.lats = {39.9};
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));
  PointColumns decoded;
  ASSERT_TRUE(DecodePoints(blob.data(), blob.size(), &decoded));
  EXPECT_EQ(decoded.timestamps, columns.timestamps);
  EXPECT_EQ(decoded.lons, columns.lons);
}

TEST(TrajCodecTest, EmptySeriesRoundTrips) {
  PointColumns columns;
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));
  PointColumns decoded;
  ASSERT_TRUE(DecodePoints(blob.data(), blob.size(), &decoded));
  EXPECT_TRUE(decoded.timestamps.empty());
  EXPECT_TRUE(decoded.lons.empty());
  EXPECT_TRUE(decoded.lats.empty());
}

TEST(TrajCodecTest, NonMonotoneTimestampsRoundTrip) {
  // Delta-of-delta must be lossless even when the series goes backwards
  // (GPS clock skew, out-of-order fixes stitched into one row).
  PointColumns columns;
  columns.timestamps = {100, 50, 200, 199, -7, 1ll << 40, 0};
  for (size_t i = 0; i < columns.timestamps.size(); i++) {
    columns.lons.push_back(116.0 + static_cast<double>(i));
    columns.lats.push_back(39.0 - static_cast<double>(i));
  }
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));
  PointColumns decoded;
  ASSERT_TRUE(DecodePoints(blob.data(), blob.size(), &decoded));
  EXPECT_EQ(decoded.timestamps, columns.timestamps);
  EXPECT_EQ(decoded.lons, columns.lons);
  EXPECT_EQ(decoded.lats, columns.lats);
}

TEST(TrajCodecTest, ExtremeCoordinatesRoundTrip) {
  PointColumns columns;
  columns.lons = {-180.0, 180.0, 0.0, -0.0,
                  std::numeric_limits<double>::min(),
                  std::numeric_limits<double>::max(),
                  std::numeric_limits<double>::denorm_min(),
                  -std::numeric_limits<double>::max()};
  for (size_t i = 0; i < columns.lons.size(); i++) {
    columns.lats.push_back(i % 2 == 0 ? 90.0 : -90.0);
    columns.timestamps.push_back(static_cast<int64_t>(i));
  }
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));
  PointColumns decoded;
  ASSERT_TRUE(DecodePoints(blob.data(), blob.size(), &decoded));
  // Bit-exact: -0.0 must stay -0.0, denormals must survive.
  for (size_t i = 0; i < columns.lons.size(); i++) {
    uint64_t want, got;
    std::memcpy(&want, &columns.lons[i], 8);
    std::memcpy(&got, &decoded.lons[i], 8);
    EXPECT_EQ(got, want) << "lon " << i;
  }
  EXPECT_EQ(decoded.lats, columns.lats);
  EXPECT_EQ(decoded.timestamps, columns.timestamps);
}

TEST(TrajCodecTest, CorruptedPayloadFailsCleanly) {
  PointColumns columns;
  for (int i = 0; i < 300; i++) {
    columns.timestamps.push_back(1400000000 + i * 5);
    columns.lons.push_back(116.3 + i * 1e-5);
    columns.lats.push_back(39.9 + i * 1e-5);
  }
  std::string blob;
  ASSERT_TRUE(EncodePoints(columns, &blob));

  // Every truncation must be rejected, never crash or hand back columns of
  // the wrong length.
  for (size_t len = 0; len < blob.size(); len += 7) {
    PointColumns decoded;
    if (DecodePoints(blob.data(), len, &decoded)) {
      EXPECT_EQ(decoded.timestamps.size(), columns.timestamps.size());
    }
  }
  // Single-byte flips either fail or decode to *some* equal-length columns
  // (the blob has no checksum of its own; the SSTable trailer CRC guards
  // end-to-end integrity).
  Random rnd(31);
  for (int trial = 0; trial < 100; trial++) {
    std::string mut = blob;
    mut[rnd.Uniform(static_cast<int>(mut.size()))] ^=
        static_cast<char>(1 + rnd.Uniform(255));
    PointColumns decoded;
    if (DecodePoints(mut.data(), mut.size(), &decoded)) {
      EXPECT_EQ(decoded.lons.size(), decoded.timestamps.size());
      EXPECT_EQ(decoded.lats.size(), decoded.timestamps.size());
    }
  }
}

}  // namespace
}  // namespace tman::compress
