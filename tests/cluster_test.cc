#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "cluster/cluster.h"
#include "common/coding.h"

namespace tman::cluster {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_cluster_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string Key(uint8_t shard, uint64_t value) {
  std::string key(1, static_cast<char>(shard));
  PutBigEndian64(&key, value);
  return key;
}

TEST(ClusterTest, CreateGetDropTable) {
  Cluster cluster(TestDir("tables"), 3, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t1", 4).ok());
  EXPECT_FALSE(cluster.CreateTable("t1", 4).ok());  // duplicate
  EXPECT_NE(cluster.GetTable("t1"), nullptr);
  EXPECT_EQ(cluster.GetTable("missing"), nullptr);
  ASSERT_TRUE(cluster.DropTable("t1").ok());
  EXPECT_EQ(cluster.GetTable("t1"), nullptr);
}

TEST(ClusterTest, PutGetRoutesByShard) {
  Cluster cluster(TestDir("route"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint8_t shard = 0; shard < 4; shard++) {
    ASSERT_TRUE(table->Put(Key(shard, 100), "v" + std::to_string(shard)).ok());
  }
  for (uint8_t shard = 0; shard < 4; shard++) {
    std::string value;
    ASSERT_TRUE(table->Get(Key(shard, 100), &value).ok());
    EXPECT_EQ(value, "v" + std::to_string(shard));
  }
}

TEST(ClusterTest, ParallelScanAcrossShards) {
  Cluster cluster(TestDir("scan"), 5, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 8).ok());
  ClusterTable* table = cluster.GetTable("t");

  std::vector<Row> rows;
  for (uint8_t shard = 0; shard < 8; shard++) {
    for (uint64_t v = 0; v < 100; v++) {
      rows.push_back(Row{Key(shard, v), "x"});
    }
  }
  ASSERT_TRUE(table->BatchPut(rows).ok());

  // One window per shard over values [10, 20).
  std::vector<KeyRange> windows;
  for (uint8_t shard = 0; shard < 8; shard++) {
    windows.push_back(KeyRange{Key(shard, 10), Key(shard, 20)});
  }
  std::vector<Row> out;
  kv::ScanStats stats;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 0, &out, &stats).ok());
  EXPECT_EQ(out.size(), 8u * 10);
  EXPECT_EQ(stats.scanned, 80u);
}

struct ValuePrefixFilter : public kv::ScanFilter {
  explicit ValuePrefixFilter(std::string p) : prefix(std::move(p)) {}
  bool Matches(const Slice&, const Slice& value) const override {
    return value.starts_with(prefix);
  }
  std::string prefix;
};

TEST(ClusterTest, PushdownVsClientSideFiltering) {
  Cluster cluster(TestDir("pushdown"), 3, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");

  std::vector<Row> rows;
  for (uint64_t v = 0; v < 200; v++) {
    for (uint8_t shard = 0; shard < 4; shard++) {
      rows.push_back(Row{Key(shard, v), v % 10 == 0 ? "hit" : "miss"});
    }
  }
  ASSERT_TRUE(table->BatchPut(rows).ok());

  std::vector<KeyRange> windows;
  for (uint8_t shard = 0; shard < 4; shard++) {
    windows.push_back(KeyRange{Key(shard, 0), Key(shard, 200)});
  }
  ValuePrefixFilter filter("hit");

  std::vector<Row> pushed;
  kv::ScanStats pushed_stats;
  ASSERT_TRUE(
      table->ParallelScan(windows, &filter, 0, &pushed, &pushed_stats).ok());

  std::vector<Row> shipped;
  kv::ScanStats shipped_stats;
  ASSERT_TRUE(
      table->ScanWithoutPushdown(windows, &filter, &shipped, &shipped_stats)
          .ok());

  // Same results either way; same rows touched in storage; but the
  // non-pushdown path ships every candidate to the client.
  EXPECT_EQ(pushed.size(), shipped.size());
  EXPECT_EQ(pushed.size(), 4u * 20);
  EXPECT_EQ(pushed_stats.scanned, shipped_stats.scanned);
  EXPECT_EQ(pushed_stats.matched, 80u);
}

TEST(ClusterTest, BatchPutGroupsAtomicallyPerShard) {
  Cluster cluster(TestDir("batch"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  std::vector<Row> rows = {{Key(0, 1), "a"}, {Key(1, 1), "b"},
                           {Key(0, 2), "c"}};
  ASSERT_TRUE(table->BatchPut(rows).ok());
  std::string value;
  EXPECT_TRUE(table->Get(Key(0, 2), &value).ok());
  EXPECT_EQ(value, "c");
}

TEST(ClusterTest, DeleteRemovesRow) {
  Cluster cluster(TestDir("delete"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 2).ok());
  ClusterTable* table = cluster.GetTable("t");
  ASSERT_TRUE(table->Put(Key(0, 5), "v").ok());
  ASSERT_TRUE(table->Delete(Key(0, 5)).ok());
  std::string value;
  EXPECT_TRUE(table->Get(Key(0, 5), &value).IsNotFound());
}

TEST(ClusterTest, ScanLimitPerRange) {
  Cluster cluster(TestDir("limit"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 1).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 50; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), "x").ok());
  }
  std::vector<KeyRange> windows = {KeyRange{Key(0, 0), Key(0, 50)}};
  std::vector<Row> out;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 7, &out, nullptr).ok());
  EXPECT_EQ(out.size(), 7u);
}

TEST(ClusterTest, ScanLimitAppliesToEachRange) {
  Cluster cluster(TestDir("limit_multi"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 1).ok());
  ClusterTable* table = cluster.GetTable("t");
  for (uint64_t v = 0; v < 50; v++) {
    ASSERT_TRUE(table->Put(Key(0, v), "x").ok());
  }
  // The limit is per range, not global: two disjoint windows with limit 7
  // each contribute up to 7 rows.
  std::vector<KeyRange> windows = {KeyRange{Key(0, 0), Key(0, 20)},
                                   KeyRange{Key(0, 20), Key(0, 50)}};
  std::vector<Row> out;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 7, &out, nullptr).ok());
  EXPECT_EQ(out.size(), 14u);
}

// Routing regression: a range whose shard bytes extend past num_shards must
// wrap onto the regions that actually host those bytes (byte % num_shards)
// instead of scanning nothing or every region.
TEST(ClusterTest, RoutingWrapsPastShardCount) {
  Cluster cluster(TestDir("route_wrap"), 2, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");
  // Keys with shard bytes 4..9 land on regions 0..3 via byte % 4.
  for (uint8_t b = 4; b <= 9; b++) {
    for (uint64_t v = 0; v < 5; v++) {
      ASSERT_TRUE(table->Put(Key(b, v), std::to_string(b)).ok());
    }
  }
  // [byte 5, byte 9): exactly the rows with shard bytes 5..8.
  std::vector<KeyRange> windows = {KeyRange{Key(5, 0), Key(9, 0)}};
  std::vector<Row> out;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 0, &out, nullptr).ok());
  ASSERT_EQ(out.size(), 4u * 5);
  for (const Row& row : out) {
    const uint8_t b = static_cast<uint8_t>(row.key[0]);
    EXPECT_GE(b, 5);
    EXPECT_LE(b, 8);
  }

  // A one-byte end key excludes its byte entirely ([byte 5, "\x08")).
  std::vector<KeyRange> exclusive = {
      KeyRange{Key(5, 0), std::string(1, '\x08')}};
  out.clear();
  ASSERT_TRUE(table->ParallelScan(exclusive, nullptr, 0, &out, nullptr).ok());
  ASSERT_EQ(out.size(), 3u * 5);
  for (const Row& row : out) {
    EXPECT_LE(static_cast<uint8_t>(row.key[0]), 7);
  }
}

// Sink scans must stop every in-flight region once the sink declines a row.
class TakeNSink : public kv::RowSink {
 public:
  explicit TakeNSink(size_t n) : n_(n) {}
  bool Accept(const Slice& key, const Slice&) override {
    keys.push_back(key.ToString());
    return keys.size() < n_;
  }
  std::vector<std::string> keys;

 private:
  size_t n_;
};

TEST(ClusterTest, SinkScanBroadcastsEarlyTermination) {
  Cluster cluster(TestDir("sink_stop"), 4, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 4).ok());
  ClusterTable* table = cluster.GetTable("t");
  std::vector<Row> rows;
  for (uint8_t shard = 0; shard < 4; shard++) {
    for (uint64_t v = 0; v < 500; v++) {
      rows.push_back(Row{Key(shard, v), "x"});
    }
  }
  ASSERT_TRUE(table->BatchPut(rows).ok());

  std::vector<KeyRange> windows;
  for (uint8_t shard = 0; shard < 4; shard++) {
    windows.push_back(KeyRange{Key(shard, 0), Key(shard, 500)});
  }
  TakeNSink sink(5);
  kv::ScanStats stats;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 0, &sink, &stats).ok());
  EXPECT_EQ(sink.keys.size(), 5u);
  // The stop must propagate to all four region scans well before they
  // drain their 500-row windows.
  EXPECT_LT(stats.scanned, rows.size() / 2);
}

TEST(ClusterTest, ParallelBatchPutWritesEveryRegion) {
  Cluster cluster(TestDir("batch_parallel"), 3, kv::Options());
  ASSERT_TRUE(cluster.CreateTable("t", 8).ok());
  ClusterTable* table = cluster.GetTable("t");
  std::vector<Row> rows;
  for (uint8_t shard = 0; shard < 8; shard++) {
    for (uint64_t v = 0; v < 400; v++) {
      rows.push_back(Row{Key(shard, v), std::to_string(shard * 1000 + v)});
    }
  }
  ASSERT_TRUE(table->BatchPut(rows).ok());

  std::vector<KeyRange> windows;
  for (uint8_t shard = 0; shard < 8; shard++) {
    windows.push_back(KeyRange{Key(shard, 0), Key(shard, 400)});
  }
  std::vector<Row> out;
  ASSERT_TRUE(table->ParallelScan(windows, nullptr, 0, &out, nullptr).ok());
  ASSERT_EQ(out.size(), rows.size());
  std::string value;
  ASSERT_TRUE(table->Get(Key(7, 399), &value).ok());
  EXPECT_EQ(value, "7399");
}

}  // namespace
}  // namespace tman::cluster
