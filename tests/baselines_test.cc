#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "baselines/similarity_baselines.h"
#include "baselines/sthadoop.h"
#include "baselines/trajmesa.h"
#include "geo/similarity.h"
#include "traj/generator.h"

namespace tman::baselines {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_base_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class BaselineData : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new traj::DatasetSpec(traj::LorryLikeSpec());
    data_ = new std::vector<traj::Trajectory>(traj::Generate(*spec_, 200, 71));
  }
  static void TearDownTestSuite() {
    delete spec_;
    delete data_;
    spec_ = nullptr;
    data_ = nullptr;
  }

  static std::set<std::string> Tids(const std::vector<traj::Trajectory>& v) {
    std::set<std::string> out;
    for (const auto& t : v) out.insert(t.tid);
    return out;
  }

  static traj::DatasetSpec* spec_;
  static std::vector<traj::Trajectory>* data_;
};

traj::DatasetSpec* BaselineData::spec_ = nullptr;
std::vector<traj::Trajectory>* BaselineData::data_ = nullptr;

TEST_F(BaselineData, TrajMesaQueriesMatchBruteForce) {
  TrajMesa::Options options;
  options.bounds = spec_->bounds;
  options.num_shards = 4;
  options.num_servers = 2;
  std::unique_ptr<TrajMesa> tm;
  ASSERT_TRUE(TrajMesa::Open(options, TestDir("trajmesa"), &tm).ok());
  ASSERT_TRUE(tm->Load(*data_).ok());

  // TRQ.
  const auto tw = traj::RandomTimeWindows(*spec_, 4, 6 * 3600, 2);
  for (const auto& w : tw) {
    std::vector<traj::Trajectory> results;
    core::QueryStats stats;
    ASSERT_TRUE(tm->TemporalRangeQuery(w.ts, w.te, &results, &stats).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.IntersectsTimeRange(w.ts, w.te)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
    EXPECT_GE(stats.candidates, results.size());
  }

  // SRQ.
  const auto sw = traj::RandomSpaceWindows(*spec_, 4, 4000, 2);
  for (const auto& w : sw) {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tm->SpatialRangeQuery(w.rect, &results, nullptr).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (geo::PolylineIntersectsRect(t.points, w.rect)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // STRQ + IDT.
  const auto w = tw[0];
  const auto s = sw[0];
  std::vector<traj::Trajectory> results;
  ASSERT_TRUE(
      tm->SpatioTemporalRangeQuery(s.rect, w.ts, w.te, &results, nullptr)
          .ok());
  std::set<std::string> expected;
  for (const auto& t : *data_) {
    if (t.IntersectsTimeRange(w.ts, w.te) &&
        geo::PolylineIntersectsRect(t.points, s.rect)) {
      expected.insert(t.tid);
    }
  }
  EXPECT_EQ(Tids(results), expected);

  const std::string oid = (*data_)[0].oid;
  results.clear();
  ASSERT_TRUE(tm->IDTemporalQuery(oid, spec_->t0,
                                  spec_->t0 + spec_->horizon_seconds, &results,
                                  nullptr)
                  .ok());
  expected.clear();
  for (const auto& t : *data_) {
    if (t.oid == oid) expected.insert(t.tid);
  }
  EXPECT_EQ(Tids(results), expected);
  EXPECT_GT(tm->StorageBytes(), 0u);
}

TEST_F(BaselineData, STHadoopPointQueriesMatchBruteForce) {
  STHadoop::Options options;
  options.bounds = spec_->bounds;
  options.job_startup_micros = 0;  // no artificial latency in tests
  std::unique_ptr<STHadoop> sth;
  ASSERT_TRUE(STHadoop::Open(options, TestDir("sth"), &sth).ok());
  ASSERT_TRUE(sth->Load(*data_).ok());

  const auto tw = traj::RandomTimeWindows(*spec_, 3, 6 * 3600, 4);
  for (const auto& w : tw) {
    std::vector<std::string> tids;
    core::QueryStats stats;
    ASSERT_TRUE(sth->TemporalRangeQuery(w.ts, w.te, &tids, &stats).ok());
    // Point-level semantics: a trajectory matches if a sampled point falls
    // in the window.
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      for (const auto& p : t.points) {
        if (p.t >= w.ts && p.t <= w.te) {
          expected.insert(t.tid);
          break;
        }
      }
    }
    EXPECT_EQ(std::set<std::string>(tids.begin(), tids.end()), expected);
    // Candidates are points: vastly more than trajectories.
    EXPECT_GT(stats.candidates, expected.size());
  }

  const auto sw = traj::RandomSpaceWindows(*spec_, 3, 4000, 4);
  for (const auto& w : sw) {
    std::vector<std::string> tids;
    ASSERT_TRUE(sth->SpatialRangeQuery(w.rect, &tids, nullptr).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      for (const auto& p : t.points) {
        if (w.rect.Contains(geo::Point{p.x, p.y})) {
          expected.insert(t.tid);
          break;
        }
      }
    }
    EXPECT_EQ(std::set<std::string>(tids.begin(), tids.end()), expected);
  }
}

// Every similarity baseline must return exactly the brute-force threshold
// result set and the true top-k distances.
template <typename B>
void CheckSimilarityBaseline(B* baseline,
                             const std::vector<traj::Trajectory>& data) {
  const traj::Trajectory& query = data[11];
  const double threshold = 0.05;
  for (auto measure : {geo::SimilarityMeasure::kFrechet,
                       geo::SimilarityMeasure::kHausdorff,
                       geo::SimilarityMeasure::kDTW}) {
    SimilarityStats stats;
    const auto results =
        baseline->Threshold(query, measure, threshold, &stats);
    std::set<std::string> expected;
    for (const auto& t : data) {
      if (geo::ExactDistance(measure, query.points, t.points) <= threshold) {
        expected.insert(t.tid);
      }
    }
    std::set<std::string> got;
    for (const auto& r : results) got.insert(r.tid);
    EXPECT_EQ(got, expected);
  }

  // Top-k distances match brute force.
  const size_t k = 5;
  SimilarityStats stats;
  const auto topk =
      baseline->TopK(query, geo::SimilarityMeasure::kFrechet, k, &stats);
  ASSERT_EQ(topk.size(), k);
  std::vector<double> all;
  for (const auto& t : data) {
    if (t.tid == query.tid) continue;
    all.push_back(geo::DiscreteFrechet(query.points, t.points));
  }
  std::sort(all.begin(), all.end());
  for (size_t i = 0; i < k; i++) {
    EXPECT_NEAR(topk[i].distance, all[i], 1e-12) << i;
  }
}

TEST_F(BaselineData, DFTSimilarityCorrect) {
  DFT::Options options;
  options.bounds = spec_->bounds;
  DFT dft(options);
  dft.Load(*data_);
  CheckSimilarityBaseline(&dft, *data_);
}

TEST_F(BaselineData, DITASimilarityCorrect) {
  DITA::Options options;
  options.bounds = spec_->bounds;
  DITA dita(options);
  dita.Load(*data_);
  CheckSimilarityBaseline(&dita, *data_);
}

TEST_F(BaselineData, REPOSESimilarityCorrect) {
  REPOSE::Options options;
  options.bounds = spec_->bounds;
  REPOSE repose(options);
  repose.Load(*data_);
  CheckSimilarityBaseline(&repose, *data_);
}

}  // namespace
}  // namespace tman::baselines
