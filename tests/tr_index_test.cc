#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "index/tr_index.h"

namespace tman::index {
namespace {

TRConfig MakeConfig(int64_t period, int64_t n) {
  TRConfig cfg;
  cfg.origin = 0;
  cfg.period_seconds = period;
  cfg.max_periods = n;
  return cfg;
}

TEST(TRIndexTest, PeriodOfFloors) {
  TRIndex idx(MakeConfig(3600, 48));
  EXPECT_EQ(idx.PeriodOf(0), 0);
  EXPECT_EQ(idx.PeriodOf(3599), 0);
  EXPECT_EQ(idx.PeriodOf(3600), 1);
  EXPECT_EQ(idx.PeriodOf(7200), 2);
}

TEST(TRIndexTest, EncodeMatchesEquationOne) {
  // TR(TB_{i,j}) = i*N + (j-i).
  TRIndex idx(MakeConfig(3600, 48));
  EXPECT_EQ(idx.Encode(0, 1800), 0u);              // TB_{0,0}
  EXPECT_EQ(idx.Encode(0, 3600 + 1), 1u);          // TB_{0,1}
  EXPECT_EQ(idx.Encode(3600, 3600 + 100), 48u);    // TB_{1,1}
  EXPECT_EQ(idx.Encode(3600, 2 * 3600 + 5), 49u);  // TB_{1,2}
}

TEST(TRIndexTest, Lemma1AdjacentBinsSamePeriodContiguous) {
  // TR(TB_{i,j}) + 1 = TR(TB_{i,j+1}).
  TRIndex idx(MakeConfig(1800, 16));
  for (int64_t i = 0; i < 20; i++) {
    for (int64_t span = 0; span + 1 < 16; span++) {
      const int64_t ts = i * 1800 + 10;
      const uint64_t a = idx.Encode(ts, (i + span) * 1800 + 10);
      const uint64_t b = idx.Encode(ts, (i + span + 1) * 1800 + 10);
      EXPECT_EQ(a + 1, b);
    }
  }
}

TEST(TRIndexTest, Lemma2AdjacentPeriodsContiguous) {
  // TR(TB_{i,i+N-1}) + 1 = TR(TB_{i+1,i+1}); max interval 2N-1.
  const int64_t N = 12;
  TRIndex idx(MakeConfig(600, N));
  for (int64_t i = 0; i < 10; i++) {
    const uint64_t longest = idx.Encode(i * 600 + 1, (i + N - 1) * 600 + 1);
    const uint64_t next_shortest = idx.Encode((i + 1) * 600 + 1,
                                              (i + 1) * 600 + 2);
    EXPECT_EQ(longest + 1, next_shortest);
    const uint64_t next_longest =
        idx.Encode((i + 1) * 600 + 1, (i + N) * 600 + 1);
    const uint64_t shortest = idx.Encode(i * 600 + 1, i * 600 + 2);
    EXPECT_EQ(next_longest - shortest, static_cast<uint64_t>(2 * N - 1));
  }
}

TEST(TRIndexTest, EncodingIsUniquePerBin) {
  const int64_t N = 8;
  TRIndex idx(MakeConfig(100, N));
  std::set<uint64_t> codes;
  for (int64_t i = 0; i < 50; i++) {
    for (int64_t j = i; j < i + N; j++) {
      const uint64_t code = idx.Encode(i * 100 + 1, j * 100 + 1);
      EXPECT_TRUE(codes.insert(code).second)
          << "duplicate code for bin (" << i << "," << j << ")";
    }
  }
}

TEST(TRIndexTest, OverlongRangeClamped) {
  const int64_t N = 4;
  TRIndex idx(MakeConfig(100, N));
  // 10 periods long, but bins cap at 4 periods.
  EXPECT_EQ(idx.Encode(0, 999), idx.Encode(0, 399));
}

TEST(TRIndexTest, QueryRangesHasAtMostNIntervals) {
  const int64_t N = 16;
  TRIndex idx(MakeConfig(300, N));
  const auto ranges = idx.QueryRanges(10000, 20000);
  EXPECT_LE(ranges.size(), static_cast<size_t>(N));
}

TEST(TRIndexTest, DecodeBinInvertsEncode) {
  TRIndex idx(MakeConfig(1800, 48));
  const int64_t ts = 7 * 1800 + 100;
  const int64_t te = 11 * 1800 + 200;
  const uint64_t code = idx.Encode(ts, te);
  int64_t bin_start, bin_end;
  idx.DecodeBin(code, &bin_start, &bin_end);
  EXPECT_LE(bin_start, ts);
  EXPECT_GT(bin_end, te);
  EXPECT_EQ(bin_start, 7 * 1800);
  EXPECT_EQ(bin_end, 12 * 1800);
}

// Completeness: every trajectory time range intersecting the query has its
// bin code inside some query range (no false negatives).
class TRIndexCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(TRIndexCompleteness, NoFalseNegatives) {
  Random rnd(GetParam());
  const int64_t period = 600 + static_cast<int64_t>(rnd.Uniform(3000));
  const int64_t N = 4 + static_cast<int64_t>(rnd.Uniform(44));
  TRIndex idx(MakeConfig(period, N));
  const int64_t horizon = 30LL * 24 * 3600;

  for (int trial = 0; trial < 300; trial++) {
    // Random query window.
    const int64_t q_ts = static_cast<int64_t>(rnd.Uniform(horizon));
    const int64_t q_te = q_ts + 60 + static_cast<int64_t>(rnd.Uniform(86400));
    const auto ranges = idx.QueryRanges(q_ts, q_te);

    // Random trajectory range, biased to be near the query.
    const int64_t t_ts =
        std::max<int64_t>(0, q_ts - 43200 +
                                 static_cast<int64_t>(rnd.Uniform(86400)));
    const int64_t max_len = period * (N - 1);
    const int64_t t_te = t_ts + 1 + static_cast<int64_t>(rnd.Uniform(
                                        static_cast<uint64_t>(max_len)));
    const uint64_t code = idx.Encode(t_ts, t_te);

    const bool intersects = t_ts <= q_te && t_te >= q_ts;
    bool covered = false;
    for (const auto& r : ranges) {
      if (r.Contains(code)) {
        covered = true;
        break;
      }
    }
    if (intersects) {
      EXPECT_TRUE(covered) << "missed trajectory [" << t_ts << "," << t_te
                           << "] for query [" << q_ts << "," << q_te
                           << "] period=" << period << " N=" << N;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TRIndexCompleteness,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// The paper's headline: TR visits far fewer candidate index values than
// the number a duplicate-storing fixed-bin scheme would have to visit data
// for; here we sanity-check the candidate-count formula of §V-B:
// roughly N(N-1)/2 + Q*N bins.
TEST(TRIndexTest, CandidateCountMatchesAnalysis) {
  const int64_t N = 8;
  const int64_t period = 1800;
  TRIndex idx(MakeConfig(period, N));
  const int64_t Q = 2;  // query spans 2 periods
  const auto ranges = idx.QueryRanges(3 * period + 1, (3 + Q) * period - 1);
  uint64_t total = TotalCount(ranges);
  // N-1 partial intervals + (Q full periods)*N bins.
  const uint64_t expected = static_cast<uint64_t>(N * (N - 1) / 2 + Q * N);
  EXPECT_NEAR(static_cast<double>(total), static_cast<double>(expected),
              static_cast<double>(N));
}

}  // namespace
}  // namespace tman::index
