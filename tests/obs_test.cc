// Unit tests for the observability primitives: histogram bucket math and
// quantile accuracy, registry identity/exposition, concurrent recording
// (exercised under TSan in CI), and the trace span tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tman::obs {
namespace {

TEST(CounterTest, IncAndStore) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Store(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(1.5);
  g.Set(-3.25);
  EXPECT_DOUBLE_EQ(g.value(), -3.25);
}

TEST(HistogramTest, BucketBoundsRoundTrip) {
  // Every bucket's lower bound must map back to that bucket, and values
  // one below the bound to the previous one.
  for (int i = 0; i < Histogram::kNumBuckets; i++) {
    const uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    if (lo > 0) {
      EXPECT_EQ(Histogram::BucketIndex(lo - 1), i - 1);
    }
  }
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kNumBuckets - 1);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0);
}

TEST(HistogramTest, ExactStatsAndClamping) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  h.RecordMicros(-5.0);  // clamps to 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 15.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 30);
}

TEST(HistogramTest, QuantileAccuracyUniform) {
  // 1..100000 uniformly: every quantile is known exactly; the log-scale
  // buckets with interpolation must stay within ~3% relative error.
  Histogram h;
  const uint64_t n = 100000;
  for (uint64_t v = 1; v <= n; v++) h.Record(v);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9}) {
    const double expect = p / 100.0 * static_cast<double>(n);
    const double got = h.Percentile(p);
    EXPECT_NEAR(got, expect, expect * 0.035) << "p" << p;
  }
  EXPECT_EQ(h.max(), n);
  EXPECT_EQ(h.min(), 1u);
}

TEST(HistogramTest, SkewedDistribution) {
  // 99 fast ops + 1 slow outlier: p50 stays near the fast mode, p99.9 and
  // max see the outlier.
  Histogram h;
  for (int i = 0; i < 99; i++) h.Record(100);
  h.Record(1000000);
  EXPECT_NEAR(h.p50(), 100, 100 * 0.07);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_GT(h.p999(), 500000);
}

TEST(HistogramTest, ConcurrentRecordersAndScrapes) {
  // 8 writer threads hammer the sharded cells while a reader scrapes
  // snapshots mid-flight; totals must be exact after the join. TSan (CI)
  // checks the memory orderings.
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Histogram::Snapshot s = h.TakeSnapshot();
      ASSERT_LE(s.count * 1, kThreads * kPerThread);
      (void)s.Percentile(50);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&h, t] {
      for (uint64_t i = 0; i < kPerThread; i++) {
        h.Record(t * 1000 + i % 997);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
}

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry r;
  Counter* c1 = r.GetCounter("tman_test_total");
  Counter* c2 = r.GetCounter("tman_test_total");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(r.GetCounter("tman_other_total"), c1);
  Histogram* h1 = r.GetHistogram("tman_test_micros");
  EXPECT_EQ(h1, r.GetHistogram("tman_test_micros"));
  Gauge* g1 = r.GetGauge("tman_test_bytes");
  EXPECT_EQ(g1, r.GetGauge("tman_test_bytes"));
}

TEST(RegistryTest, ConcurrentResolutionIsSafe) {
  MetricsRegistry r;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&r, &seen, t] {
      Counter* c = r.GetCounter("tman_shared_total");
      c->Inc();
      seen[t] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; t++) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), 8u);
}

TEST(RegistryTest, PrometheusExposition) {
  MetricsRegistry r;
  r.GetCounter("tman_events_total")->Inc(3);
  r.GetGauge("tman_resident_bytes")->Set(1024);
  Histogram* h = r.GetHistogram("tman_op_micros");
  for (int i = 1; i <= 100; i++) h->Record(i);
  const std::string text = r.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE tman_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("tman_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tman_resident_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tman_op_micros summary"), std::string::npos);
  EXPECT_NE(text.find("tman_op_micros{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("tman_op_micros_count 100"), std::string::npos);
  EXPECT_NE(text.find("tman_op_micros_sum 5050"), std::string::npos);
}

TEST(RegistryTest, LabeledNamesRenderInPlace) {
  // Fixed label sets are baked into the name; exposition must keep the
  // braces intact and splice _sum/_count suffixes before the label block.
  MetricsRegistry r;
  r.GetCounter("tman_kv_sstable_reads_total{level=\"0\"}")->Inc(5);
  Histogram* h = r.GetHistogram("tman_core_query_micros{type=\"st_range\"}");
  h->Record(10);
  const std::string text = r.RenderPrometheus();
  EXPECT_NE(text.find("tman_kv_sstable_reads_total{level=\"0\"} 5"),
            std::string::npos);
  EXPECT_NE(
      text.find("tman_core_query_micros_count{type=\"st_range\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("tman_core_query_micros{type=\"st_range\",quantile=\"0.5\"}"),
      std::string::npos);
}

TEST(RegistryTest, JsonExposition) {
  MetricsRegistry r;
  r.GetCounter("tman_events_total")->Inc(2);
  r.GetHistogram("tman_op_micros")->Record(5);
  const std::string json = r.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"tman_events_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"tman_op_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(TraceTest, TreeStructureAndTiming) {
  TraceSpan root("query");
  TraceSpan* child = root.AddChild("planning");
  child->Annotate("windows", 38);
  child->End();
  TraceSpan* scan = root.AddChild("scan");
  TraceSpan* region = scan->AddChild("region 0");
  region->SetDurationMs(4.5);
  region->SetDurationMs(9.9);  // first freeze wins
  scan->End();
  root.End();

  EXPECT_EQ(root.children().size(), 2u);
  EXPECT_TRUE(root.ended());
  EXPECT_GE(root.duration_ms(), child->duration_ms());
  EXPECT_DOUBLE_EQ(region->duration_ms(), 4.5);

  const TraceSpan* found = root.Find("region 0");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, region);
  EXPECT_EQ(root.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(root.Find("planning")->GetAnnotation("windows"), 38);
  EXPECT_DOUBLE_EQ(child->GetAnnotation("absent", -1), -1);
}

TEST(TraceTest, RenderFormat) {
  TraceSpan root("STRQ");
  root.Annotate("plan", "primary:st-fine");
  root.Annotate("candidates", 812);
  TraceSpan* child = root.AddChild("scan primary");
  child->SetDurationMs(11.021);
  root.End();
  const std::string text = root.Render();
  EXPECT_NE(text.find("STRQ  (actual time="), std::string::npos);
  EXPECT_NE(text.find("plan=primary:st-fine"), std::string::npos);
  EXPECT_NE(text.find("candidates=812"), std::string::npos);
  EXPECT_NE(text.find("-> scan primary  (actual time=11.021 ms)"),
            std::string::npos);
  // Children indent below the root.
  EXPECT_LT(text.find("STRQ"), text.find("-> scan primary"));
}


// ---------------------------------------------------------------------------
// Sliding windows (rotated by the telemetry reporter; timestamps injected
// here so slot spans are deterministic)

constexpr uint64_t kSec = 1000000;  // micros

TEST(WindowTest, DisabledByDefault) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.windows_enabled());
  registry.GetCounter("tman_w_ops_total")->Inc(5);
  registry.RotateWindow(10 * kSec);  // no-op while disabled
  EXPECT_FALSE(registry.CounterWindow("tman_w_ops_total", 20 * kSec).valid);
  EXPECT_EQ(registry.RenderPrometheus().find("_window_rate"),
            std::string::npos);
}

TEST(WindowTest, CounterDeltaAndRate) {
  MetricsRegistry registry;
  registry.EnableWindows(6, 10);
  Counter* ops = registry.GetCounter("tman_w_ops_total");
  ops->Inc(100);
  registry.RotateWindow(10 * kSec);  // baseline snapshot: 100
  ops->Inc(50);

  const auto w = registry.CounterWindow("tman_w_ops_total", 20 * kSec);
  ASSERT_TRUE(w.valid);
  EXPECT_EQ(w.delta, 50u);
  EXPECT_DOUBLE_EQ(w.span_seconds, 10.0);
  EXPECT_DOUBLE_EQ(w.rate_per_sec, 5.0);
}

TEST(WindowTest, OldSlotsFallOutOfTheWindow) {
  MetricsRegistry registry;
  registry.EnableWindows(2, 10);  // window spans at most 2 slots
  Counter* ops = registry.GetCounter("tman_w_ops_total");
  for (int i = 1; i <= 4; i++) {
    ops->Inc(10);
    registry.RotateWindow(static_cast<uint64_t>(i) * 10 * kSec);
  }
  // Oldest retained slot is the one from t=30s (value 30); the increments
  // before it no longer count against the window.
  ops->Inc(5);
  const auto w = registry.CounterWindow("tman_w_ops_total", 50 * kSec);
  ASSERT_TRUE(w.valid);
  EXPECT_EQ(w.delta, 15u);  // 40+5 live - 30 baseline
  EXPECT_DOUBLE_EQ(w.span_seconds, 20.0);
}

TEST(WindowTest, CounterBornAfterBaselineCountsFromZero) {
  MetricsRegistry registry;
  registry.EnableWindows(6, 10);
  registry.RotateWindow(10 * kSec);
  Counter* late = registry.GetCounter("tman_w_late_total");
  late->Inc(7);
  const auto w = registry.CounterWindow("tman_w_late_total", 20 * kSec);
  ASSERT_TRUE(w.valid);
  EXPECT_EQ(w.delta, 7u);
}

TEST(WindowTest, HistogramWindowIsolatesRecentSamples) {
  MetricsRegistry registry;
  registry.EnableWindows(6, 10);
  Histogram* lat = registry.GetHistogram("tman_w_micros");
  for (int i = 0; i < 1000; i++) lat->Record(100);  // old regime
  registry.RotateWindow(10 * kSec);
  for (int i = 0; i < 200; i++) lat->Record(100000);  // new regime

  const Histogram::Snapshot w = registry.HistogramWindow("tman_w_micros");
  EXPECT_EQ(w.count, 200u);
  EXPECT_EQ(w.sum, 200u * 100000u);
  // Quantiles of the window reflect only the new regime: the old 100us
  // samples are subtracted out, so the median sits near 100ms, far above
  // the cumulative histogram's median.
  EXPECT_GT(w.Percentile(50), 50000.0);
  const Histogram::Snapshot live = lat->TakeSnapshot();
  EXPECT_LT(live.Percentile(50), 1000.0);
}

TEST(WindowTest, RenderExposesWindowSeries) {
  MetricsRegistry registry;
  registry.EnableWindows(6, 10);
  registry.GetCounter("tman_w_ops_total")->Inc(30);
  registry.GetHistogram("tman_w_micros")->Record(500);
  registry.RotateWindow(10 * kSec);
  registry.GetCounter("tman_w_ops_total")->Inc(30);
  registry.GetHistogram("tman_w_micros")->Record(700);

  const std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("tman_w_ops_window_rate "), std::string::npos);
  EXPECT_NE(prom.find("tman_w_ops_window_seconds "), std::string::npos);
  EXPECT_NE(prom.find("tman_w_micros_window{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("tman_w_micros_window_count 1"), std::string::npos);

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"slot_seconds\": 10"), std::string::npos);
}

TEST(WindowTest, GeometryChangeResetsSlots) {
  MetricsRegistry registry;
  registry.EnableWindows(6, 10);
  registry.GetCounter("tman_w_ops_total")->Inc(10);
  registry.RotateWindow(10 * kSec);
  EXPECT_TRUE(registry.CounterWindow("tman_w_ops_total", 20 * kSec).valid);
  registry.EnableWindows(3, 5);  // new geometry drops stale slots
  EXPECT_FALSE(registry.CounterWindow("tman_w_ops_total", 20 * kSec).valid);
}

}  // namespace
}  // namespace tman::obs
