#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/filters.h"
#include "core/planner.h"
#include "core/tman.h"
#include "geo/similarity.h"
#include "traj/generator.h"

namespace tman::core {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_pipe_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TManOptions SmallOptions(const traj::DatasetSpec& spec) {
  TManOptions options;
  options.bounds = spec.bounds;
  options.tr.origin = 0;
  options.tr.period_seconds = 3600;
  options.tr.max_periods = 24;
  options.xzt.origin = 0;
  options.tshape.max_resolution = 15;
  options.num_shards = 4;
  options.num_servers = 3;
  options.genetic.generations = 10;  // keep tests fast
  options.kv.write_buffer_size = 256 * 1024;
  return options;
}

// ---------------------------------------------------------------------------
// Planner unit tests: plans are produced from indexes + options alone, with
// no cluster or storage behind them.

class PlannerHarness {
 public:
  explicit PlannerHarness(TManOptions options)
      : options_(std::move(options)),
        tr_(options_.tr),
        xzt_(options_.xzt),
        tshape_(options_.tshape),
        xz2_(options_.xz2),
        xzstar_(options_.tshape.max_resolution),
        planner_(&options_, &tr_, &xzt_, &tshape_, &xz2_, &xzstar_,
                 /*index_cache=*/nullptr) {}

  const QueryPlanner& planner() const { return planner_; }

 private:
  TManOptions options_;
  index::TRIndex tr_;
  index::XZTIndex xzt_;
  index::TShapeIndex tshape_;
  index::XZ2Index xz2_;
  index::XZStarIndex xzstar_;
  QueryPlanner planner_;
};

TManOptions PlannerOptions(PrimaryIndexKind primary) {
  TManOptions options = SmallOptions(traj::TDriveLikeSpec());
  options.primary = primary;
  options.use_index_cache = false;  // plans must not need the cache
  return options;
}

TEST(PlannerTest, TemporalPlanFollowsPrimaryIndex) {
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kTemporal));
    QueryPlan plan;
    ASSERT_TRUE(h.planner().PlanTemporalRange(0, 7200, &plan).ok());
    EXPECT_EQ(plan.name, "primary:temporal");
    EXPECT_EQ(plan.kind, PlanKind::kPrimaryScan);
    EXPECT_EQ(plan.scan_table, PlanTable::kPrimary);
    EXPECT_FALSE(plan.windows.empty());
    EXPECT_NE(plan.filter, nullptr);
    EXPECT_GT(plan.index_values, 0u);
  }
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kST));
    QueryPlan plan;
    ASSERT_TRUE(h.planner().PlanTemporalRange(0, 7200, &plan).ok());
    EXPECT_EQ(plan.name, "primary:st-prefix");
    EXPECT_EQ(plan.kind, PlanKind::kPrimaryScan);
  }
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kSpatial));
    QueryPlan plan;
    ASSERT_TRUE(h.planner().PlanTemporalRange(0, 7200, &plan).ok());
    EXPECT_EQ(plan.name, "secondary:tr");
    EXPECT_EQ(plan.kind, PlanKind::kSecondaryFetch);
    EXPECT_EQ(plan.scan_table, PlanTable::kTRSecondary);
  }
}

TEST(PlannerTest, SpatialPlanRequiresSpatialPrimary) {
  const geo::MBR rect{116.3, 39.8, 116.5, 40.0};
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kTemporal));
    QueryPlan plan;
    EXPECT_FALSE(h.planner().PlanSpatialRange(rect, &plan).ok());
  }
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kSpatial));
    QueryPlan plan;
    ASSERT_TRUE(h.planner().PlanSpatialRange(rect, &plan).ok());
    EXPECT_EQ(plan.name, "primary:spatial");
    EXPECT_FALSE(plan.windows.empty());
    EXPECT_NE(plan.filter, nullptr);
    EXPECT_GT(plan.elements_visited, 0u);
  }
}

TEST(PlannerTest, SpatioTemporalCBOChoiceMatchesEstimate) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  PlannerHarness h(PlannerOptions(PrimaryIndexKind::kST));

  // The CBO decision must be consistent with its own window estimate.
  QueryPlan small;
  ASSERT_TRUE(h.planner()
                  .PlanSpatioTemporalRange(geo::MBR{116.40, 39.90, 116.41,
                                                    39.91},
                                           spec.t0, spec.t0 + 1800, &small)
                  .ok());
  if (small.estimated_fine_windows <= QueryPlanner::kFineWindowBudget) {
    EXPECT_EQ(small.name, "primary:st-fine");
    EXPECT_EQ(small.windows.size(), small.estimated_fine_windows);
  } else {
    EXPECT_EQ(small.name, "primary:st-coarse");
  }

  // A query covering the whole dataset must exceed the fine budget.
  QueryPlan huge;
  ASSERT_TRUE(h.planner()
                  .PlanSpatioTemporalRange(geo::MBR{110, 35, 125, 45}, spec.t0,
                                           spec.t0 + spec.horizon_seconds,
                                           &huge)
                  .ok());
  EXPECT_EQ(huge.name, "primary:st-coarse");
  EXPECT_GT(huge.estimated_fine_windows, QueryPlanner::kFineWindowBudget);
}

TEST(PlannerTest, NonSTPrimariesFilterTheOtherDimension) {
  const geo::MBR rect{116.3, 39.8, 116.5, 40.0};
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kSpatial));
    QueryPlan plan;
    ASSERT_TRUE(
        h.planner().PlanSpatioTemporalRange(rect, 0, 7200, &plan).ok());
    EXPECT_EQ(plan.name, "primary:spatial+tfilter");
  }
  {
    PlannerHarness h(PlannerOptions(PrimaryIndexKind::kTemporal));
    QueryPlan plan;
    ASSERT_TRUE(
        h.planner().PlanSpatioTemporalRange(rect, 0, 7200, &plan).ok());
    EXPECT_EQ(plan.name, "primary:temporal+sfilter");
  }
}

TEST(PlannerTest, IDTemporalAndSimilarityPlans) {
  PlannerHarness h(PlannerOptions(PrimaryIndexKind::kSpatial));
  QueryPlan idt;
  ASSERT_TRUE(h.planner().PlanIDTemporal("obj-1", 0, 7200, &idt).ok());
  EXPECT_EQ(idt.name, "secondary:idt");
  EXPECT_EQ(idt.kind, PlanKind::kSecondaryFetch);
  EXPECT_EQ(idt.scan_table, PlanTable::kIDTSecondary);
  EXPECT_FALSE(idt.windows.empty());

  const geo::MBR qmbr{116.40, 39.90, 116.45, 39.95};
  QueryPlan sim;
  ASSERT_TRUE(h.planner()
                  .PlanSimilarityCandidates(
                      qmbr, 0.01,
                      std::make_unique<MBRDistanceFilter>(qmbr, 0.01),
                      "similarity:topk", &sim)
                  .ok());
  EXPECT_EQ(sim.name, "similarity:topk");
  EXPECT_EQ(sim.kind, PlanKind::kPrimaryScan);
  EXPECT_FALSE(sim.windows.empty());
  EXPECT_NE(sim.filter, nullptr);

  PlannerHarness temporal(PlannerOptions(PrimaryIndexKind::kTemporal));
  QueryPlan rejected;
  EXPECT_FALSE(temporal.planner()
                   .PlanSimilarityCandidates(qmbr, 0.01, nullptr,
                                             "similarity:topk", &rejected)
                   .ok());
}

// Every planner emits windows that are sorted by start key and pairwise
// disjoint after coalescing, which is what the MultiScan seek-elision
// optimization in the kvstore relies on.
TEST(PlannerTest, WindowsAreSortedAndCoalesced) {
  const geo::MBR qmbr{116.30, 39.85, 116.50, 39.99};
  for (PrimaryIndexKind primary :
       {PrimaryIndexKind::kTemporal, PrimaryIndexKind::kST,
        PrimaryIndexKind::kSpatial}) {
    PlannerHarness h(PlannerOptions(primary));
    std::vector<QueryPlan> plans;
    plans.emplace_back();
    ASSERT_TRUE(h.planner().PlanTemporalRange(0, 7200, &plans.back()).ok());
    plans.emplace_back();
    ASSERT_TRUE(
        h.planner().PlanIDTemporal("obj-1", 0, 7200, &plans.back()).ok());
    if (primary == PrimaryIndexKind::kSpatial) {
      plans.emplace_back();
      ASSERT_TRUE(h.planner().PlanSpatialRange(qmbr, &plans.back()).ok());
    }
    if (primary != PrimaryIndexKind::kTemporal) {
      plans.emplace_back();
      ASSERT_TRUE(h.planner()
                      .PlanSpatioTemporalRange(qmbr, 0, 7200, &plans.back())
                      .ok());
    }
    for (const QueryPlan& plan : plans) {
      ASSERT_FALSE(plan.windows.empty()) << plan.name;
      for (size_t i = 1; i < plan.windows.size(); i++) {
        const cluster::KeyRange& prev = plan.windows[i - 1];
        const cluster::KeyRange& cur = plan.windows[i];
        EXPECT_LT(prev.start, cur.start) << plan.name << " window " << i;
        // Disjoint: the previous window ends strictly before the next
        // starts (an unbounded window could only be last).
        ASSERT_FALSE(prev.end.empty()) << plan.name << " window " << i - 1;
        EXPECT_LT(prev.end, cur.start) << plan.name << " window " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pipeline tests: planner + streaming executor against a loaded instance.

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new traj::DatasetSpec(traj::TDriveLikeSpec());
    data_ = new std::vector<traj::Trajectory>(traj::Generate(*spec_, 300, 42));
    tman_ = new std::unique_ptr<TMan>;
    ASSERT_TRUE(
        TMan::Open(SmallOptions(*spec_), TestDir("pipeline"), tman_).ok());
    ASSERT_TRUE((*tman_)->BulkLoad(*data_).ok());
    ASSERT_TRUE((*tman_)->Flush().ok());
  }

  static void TearDownTestSuite() {
    delete tman_;
    delete data_;
    delete spec_;
    tman_ = nullptr;
    data_ = nullptr;
    spec_ = nullptr;
  }

  static std::set<std::string> Tids(const std::vector<traj::Trajectory>& v) {
    std::set<std::string> tids;
    for (const auto& t : v) tids.insert(t.tid);
    return tids;
  }

  static traj::DatasetSpec* spec_;
  static std::vector<traj::Trajectory>* data_;
  static std::unique_ptr<TMan>* tman_;
};

traj::DatasetSpec* PipelineTest::spec_ = nullptr;
std::vector<traj::Trajectory>* PipelineTest::data_ = nullptr;
std::unique_ptr<TMan>* PipelineTest::tman_ = nullptr;

// A plan's global `limit` must stop the scan mid-stream (not truncate a
// fully materialized result): with limit k the executor may not visit the
// whole candidate set.
TEST_F(PipelineTest, GlobalLimitTerminatesScansEarly) {
  TMan* tman = tman_->get();
  const geo::MBR everywhere{spec_->bounds.min_lon, spec_->bounds.min_lat,
                            spec_->bounds.max_lon, spec_->bounds.max_lat};

  QueryPlan unlimited;
  ASSERT_TRUE(tman->planner()->PlanSpatialRange(everywhere, &unlimited).ok());
  QueryStats full_stats;
  std::vector<traj::Trajectory> all;
  DecodeTrajectoriesSink all_sink(&all);
  ASSERT_TRUE(tman->executor()->Execute(unlimited, &all_sink, &full_stats).ok());
  ASSERT_TRUE(all_sink.status().ok());
  ASSERT_EQ(all.size(), data_->size());

  QueryPlan limited;
  ASSERT_TRUE(tman->planner()->PlanSpatialRange(everywhere, &limited).ok());
  limited.limit = 5;
  QueryStats stats;
  std::vector<traj::Trajectory> out;
  DecodeTrajectoriesSink sink(&out);
  ASSERT_TRUE(tman->executor()->Execute(limited, &sink, &stats).ok());
  ASSERT_TRUE(sink.status().ok());
  EXPECT_EQ(out.size(), 5u);
  // Early termination: far fewer rows were scanned than the full pass saw.
  EXPECT_LT(stats.candidates, full_stats.candidates);
}

// The six query types answered through the plan -> streaming-executor
// pipeline must match an exhaustive in-memory evaluation.
TEST_F(PipelineTest, SixQueriesMatchBruteForce) {
  TMan* tman = tman_->get();

  // 1. Temporal range (through the TR secondary on the spatial primary).
  const int64_t ts = spec_->t0 + 3600;
  const int64_t te = spec_->t0 + 8 * 3600;
  {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->TemporalRangeQuery(ts, te, &results).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.IntersectsTimeRange(ts, te)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // 2. Spatial range.
  const geo::MBR rect{116.30, 39.85, 116.50, 40.00};
  {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->SpatialRangeQuery(rect, &results).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (geo::PolylineIntersectsRect(t.points, rect)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // 3. Spatio-temporal range.
  {
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->SpatioTemporalRangeQuery(rect, ts, te, &results).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.IntersectsTimeRange(ts, te) &&
          geo::PolylineIntersectsRect(t.points, rect)) {
        expected.insert(t.tid);
      }
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // 4. ID-temporal.
  {
    const std::string oid = (*data_)[0].oid;
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->IDTemporalQuery(oid, ts, te, &results).ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (t.oid == oid && t.IntersectsTimeRange(ts, te)) expected.insert(t.tid);
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // 5. Threshold similarity.
  const traj::Trajectory& query = (*data_)[11];
  const auto measure = geo::SimilarityMeasure::kHausdorff;
  {
    const double threshold = 0.02;
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(
        tman->ThresholdSimilarityQuery(query, measure, threshold, &results)
            .ok());
    std::set<std::string> expected;
    for (const auto& t : *data_) {
      if (geo::ExactDistance(measure, query.points, t.points) <= threshold) {
        expected.insert(t.tid);
      }
    }
    EXPECT_EQ(Tids(results), expected);
  }

  // 6. Top-k similarity (nearest first, query itself excluded).
  {
    const size_t k = 5;
    std::vector<traj::Trajectory> results;
    ASSERT_TRUE(tman->TopKSimilarityQuery(query, measure, k, &results).ok());
    ASSERT_EQ(results.size(), k);

    std::vector<std::pair<double, std::string>> scored;
    for (const auto& t : *data_) {
      if (t.tid == query.tid) continue;
      scored.emplace_back(geo::ExactDistance(measure, query.points, t.points),
                          t.tid);
    }
    std::sort(scored.begin(), scored.end());
    double prev = 0;
    for (size_t i = 0; i < k; i++) {
      const double d =
          geo::ExactDistance(measure, query.points, results[i].points);
      EXPECT_NEAR(d, scored[i].first, 1e-9) << "rank " << i;
      EXPECT_GE(d, prev);  // nearest first
      prev = d;
    }
  }
}

// The batched MultiScan read path and the per-window fan-out baseline are
// interchangeable: flipping Executor::set_use_multiscan must not change any
// query answer.
TEST_F(PipelineTest, MultiScanTogglePreservesAnswers) {
  TMan* tman = tman_->get();
  const int64_t ts = spec_->t0 + 3600;
  const int64_t te = spec_->t0 + 8 * 3600;
  const geo::MBR rect{116.30, 39.85, 116.50, 40.00};
  const std::string oid = (*data_)[0].oid;

  auto run_all = [&](bool multiscan) {
    tman->executor()->set_use_multiscan(multiscan);
    std::vector<std::set<std::string>> answers;
    std::vector<traj::Trajectory> out;
    EXPECT_TRUE(tman->TemporalRangeQuery(ts, te, &out).ok());
    answers.push_back(Tids(out));
    EXPECT_TRUE(tman->SpatialRangeQuery(rect, &out).ok());
    answers.push_back(Tids(out));
    EXPECT_TRUE(tman->SpatioTemporalRangeQuery(rect, ts, te, &out).ok());
    answers.push_back(Tids(out));
    EXPECT_TRUE(tman->IDTemporalQuery(oid, ts, te, &out).ok());
    answers.push_back(Tids(out));
    return answers;
  };

  const auto batched = run_all(true);
  const auto fanout = run_all(false);
  tman->executor()->set_use_multiscan(true);  // restore the default
  ASSERT_EQ(batched.size(), fanout.size());
  for (size_t i = 0; i < batched.size(); i++) {
    EXPECT_EQ(batched[i], fanout[i]) << "query " << i;
    EXPECT_FALSE(batched[i].empty()) << "query " << i;
  }
}

// Every query and count must report which plan ran and how long planning
// and execution took.
TEST_F(PipelineTest, EveryQueryReportsPlanAndTimings) {
  TMan* tman = tman_->get();
  const int64_t ts = spec_->t0;
  const int64_t te = spec_->t0 + 6 * 3600;
  const geo::MBR rect{116.30, 39.85, 116.50, 40.00};
  const traj::Trajectory& query = (*data_)[3];
  std::vector<traj::Trajectory> out;
  uint64_t count = 0;

  std::vector<QueryStats> all(9);
  ASSERT_TRUE(tman->TemporalRangeQuery(ts, te, &out, &all[0]).ok());
  ASSERT_TRUE(tman->SpatialRangeQuery(rect, &out, &all[1]).ok());
  ASSERT_TRUE(tman->SpatioTemporalRangeQuery(rect, ts, te, &out, &all[2]).ok());
  ASSERT_TRUE(
      tman->IDTemporalQuery((*data_)[0].oid, ts, te, &out, &all[3]).ok());
  ASSERT_TRUE(tman->ThresholdSimilarityQuery(
                      query, geo::SimilarityMeasure::kFrechet, 0.01, &out,
                      &all[4])
                  .ok());
  ASSERT_TRUE(tman->TopKSimilarityQuery(query, geo::SimilarityMeasure::kFrechet,
                                        3, &out, &all[5])
                  .ok());
  ASSERT_TRUE(tman->TemporalRangeCount(ts, te, &count, &all[6]).ok());
  ASSERT_TRUE(tman->SpatialRangeCount(rect, &count, &all[7]).ok());
  ASSERT_TRUE(
      tman->SpatioTemporalRangeCount(rect, ts, te, &count, &all[8]).ok());

  for (size_t i = 0; i < all.size(); i++) {
    EXPECT_FALSE(all[i].plan.empty()) << "query " << i;
    EXPECT_GE(all[i].planning_ms, 0.0) << "query " << i;
    EXPECT_GT(all[i].execution_ms, 0.0) << "query " << i;
    EXPECT_GT(all[i].windows, 0u) << "query " << i;
  }
}

// The expanding-radius top-k search must stop scanning mid-round once the
// heap cannot improve: with many exact twins of the query, the k-th bound
// hits the round cutoff after k rows and the sink terminates every
// in-flight region scan.
TEST(TopKEarlyStopTest, SinkCutoffStopsScanMidRound) {
  const traj::DatasetSpec spec = traj::TDriveLikeSpec();
  TManOptions options = SmallOptions(spec);
  std::unique_ptr<TMan> tman;
  ASSERT_TRUE(TMan::Open(options, TestDir("topk_stop"), &tman).ok());

  // One query trajectory and 200 identical twins (distance 0 to the query).
  traj::Trajectory query;
  query.oid = "probe";
  query.tid = "probe-t0";
  for (int i = 0; i < 20; i++) {
    query.points.push_back(geo::TimedPoint{116.40 + 0.0001 * i,
                                           39.90 + 0.0001 * i,
                                           spec.t0 + 30 * i});
  }
  std::vector<traj::Trajectory> rows;
  rows.push_back(query);
  for (int i = 0; i < 200; i++) {
    traj::Trajectory twin = query;
    twin.oid = "twin-" + std::to_string(i);
    twin.tid = twin.oid + "-t0";
    rows.push_back(std::move(twin));
  }
  ASSERT_TRUE(tman->BulkLoad(rows).ok());
  ASSERT_TRUE(tman->Flush().ok());

  QueryStats stats;
  std::vector<traj::Trajectory> results;
  ASSERT_TRUE(tman->TopKSimilarityQuery(query, geo::SimilarityMeasure::kDTW, 2,
                                        &results, &stats)
                  .ok());
  ASSERT_EQ(results.size(), 2u);
  for (const auto& t : results) {
    EXPECT_EQ(geo::ExactDistance(geo::SimilarityMeasure::kDTW, query.points,
                                 t.points),
              0.0);
  }
  // All 201 rows fall inside the first search radius, but the sink stops the
  // scan once two distance-0 results reach the cutoff — most rows must never
  // have been scanned.
  EXPECT_EQ(stats.plan, "similarity:topk");
  EXPECT_LT(stats.candidates, rows.size() / 2);
  EXPECT_GE(stats.candidates, 2u);
}

}  // namespace
}  // namespace tman::core
