#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "index/quadkey.h"
#include "index/shape_encoding.h"
#include "index/tshape_index.h"
#include "index/value_range.h"
#include "index/xz2_index.h"
#include "index/xzstar_index.h"
#include "index/xzt_index.h"

namespace tman::index {
namespace {

// ---------------------------------------------------------------------------
// Quadrant codes (Eq. 2)

TEST(QuadKeyTest, PaperExampleCode03) {
  // Figure 8(a): with g=2, the cell with sequence "03" has code 4.
  // Sequence "03": first quadrant 0 (SW), then quadrant 3 (NE).
  QuadCell cell{2, 1, 1};  // SW half then NE quarter -> x=01b=1, y=01b=1
  EXPECT_EQ(cell.Sequence(), "03");
  EXPECT_EQ(QuadCode(cell, 2), 4u);
}

TEST(QuadKeyTest, CodesAreUniqueAndOrderPreserving) {
  const int g = 4;
  std::map<uint64_t, std::string> codes;
  // Enumerate all cells of all resolutions.
  for (int r = 1; r <= g; r++) {
    for (uint32_t x = 0; x < (1u << r); x++) {
      for (uint32_t y = 0; y < (1u << r); y++) {
        QuadCell cell{r, x, y};
        const uint64_t code = QuadCode(cell, g);
        auto [it, inserted] = codes.emplace(code, cell.Sequence());
        ASSERT_TRUE(inserted) << "duplicate code " << code;
      }
    }
  }
  // Depth-first order = lexicographic order of sequences (with the parent
  // before its children).
  std::string prev;
  for (const auto& [code, seq] : codes) {
    if (!prev.empty()) {
      EXPECT_LT(prev, seq) << "order violated at code " << code;
    }
    prev = seq;
  }
  // Total count: 4 + 16 + 64 + 256.
  EXPECT_EQ(codes.size(), 4u + 16 + 64 + 256);
}

TEST(QuadKeyTest, SubtreeCodesAreContiguous) {
  const int g = 5;
  Random rnd(7);
  for (int trial = 0; trial < 50; trial++) {
    const int r = 1 + static_cast<int>(rnd.Uniform(g));
    QuadCell cell{r, static_cast<uint32_t>(rnd.Uniform(1u << r)),
                  static_cast<uint32_t>(rnd.Uniform(1u << r))};
    const uint64_t base = QuadCode(cell, g);
    const uint64_t count = QuadSubtreeCount(r, g);
    // Every descendant's code lies in [base, base+count).
    if (r < g) {
      for (int q = 0; q < 4; q++) {
        const QuadCell child = cell.Child(q);
        const uint64_t child_code = QuadCode(child, g);
        EXPECT_GE(child_code, base);
        EXPECT_LT(child_code, base + count);
      }
    }
  }
}

TEST(QuadKeyTest, CellContainingRoundTrips) {
  const QuadCell cell = CellContaining(0.3, 0.7, 3);
  const geo::MBR rect = cell.Rect();
  EXPECT_TRUE(rect.Contains(geo::Point{0.3, 0.7}));
  EXPECT_DOUBLE_EQ(cell.size(), 0.125);
}

// ---------------------------------------------------------------------------
// XZ2

TEST(XZ2Test, EncodeSelectsCoveringEnlargedElement) {
  XZ2Index idx(XZ2Config{8});
  const geo::MBR small{0.30, 0.30, 0.32, 0.31};
  const QuadCell anchor = idx.AnchorCell(small);
  const double w = anchor.size();
  // The 2x enlargement must cover the MBR.
  EXPECT_LE(anchor.x * w, small.min_x);
  EXPECT_GE((anchor.x + 2) * w, small.max_x);
  EXPECT_LE(anchor.y * w, small.min_y);
  EXPECT_GE((anchor.y + 2) * w, small.max_y);
}

class XZ2Completeness : public ::testing::TestWithParam<int> {};

TEST_P(XZ2Completeness, NoFalseNegatives) {
  Random rnd(GetParam());
  XZ2Index idx(XZ2Config{10});
  for (int trial = 0; trial < 200; trial++) {
    // Random query rectangle.
    const double qx = rnd.UniformDouble(0, 0.9);
    const double qy = rnd.UniformDouble(0, 0.9);
    const double qw = rnd.UniformDouble(0.001, 0.1);
    const double qh = rnd.UniformDouble(0.001, 0.1);
    const geo::MBR query{qx, qy, qx + qw, qy + qh};
    const auto ranges = idx.QueryRanges(query);

    // Random object MBR near the query.
    const double ox = std::clamp(qx + rnd.UniformDouble(-0.1, 0.1), 0.0, 0.95);
    const double oy = std::clamp(qy + rnd.UniformDouble(-0.1, 0.1), 0.0, 0.95);
    const double ow = rnd.UniformDouble(0.0005, 0.05);
    const double oh = rnd.UniformDouble(0.0005, 0.05);
    const geo::MBR object{ox, oy, std::min(1.0, ox + ow),
                          std::min(1.0, oy + oh)};
    if (!object.Intersects(query)) continue;

    const uint64_t code = idx.Encode(object);
    bool covered = false;
    for (const auto& r : ranges) {
      if (r.Contains(code)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "missed object at trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XZ2Completeness,
                         ::testing::Values(3, 5, 7, 9));

// ---------------------------------------------------------------------------
// XZT (temporal baseline)

class XZTCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(XZTCompleteness, NoFalseNegatives) {
  Random rnd(GetParam());
  XZTConfig cfg;
  cfg.origin = 0;
  cfg.period_seconds = 7 * 24 * 3600;
  cfg.max_resolution = 12;
  XZTIndex idx(cfg);
  const int64_t horizon = 60LL * 24 * 3600;

  for (int trial = 0; trial < 200; trial++) {
    const int64_t q_ts = static_cast<int64_t>(rnd.Uniform(horizon));
    const int64_t q_te = q_ts + 60 + static_cast<int64_t>(rnd.Uniform(86400));
    const auto ranges = idx.QueryRanges(q_ts, q_te);

    const int64_t t_ts =
        std::max<int64_t>(0, q_ts - 86400 +
                                 static_cast<int64_t>(rnd.Uniform(2 * 86400)));
    const int64_t t_te =
        t_ts + 1 + static_cast<int64_t>(rnd.Uniform(48 * 3600));
    if (!(t_ts <= q_te && t_te >= q_ts)) continue;

    const uint64_t code = idx.Encode(t_ts, t_te);
    bool covered = false;
    for (const auto& r : ranges) {
      if (r.Contains(code)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "missed range [" << t_ts << "," << t_te
                         << "] query [" << q_ts << "," << q_te << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XZTCompleteness, ::testing::Values(2, 4, 6));

// ---------------------------------------------------------------------------
// TShape

std::vector<geo::TimedPoint> MakeLine(double x0, double y0, double x1,
                                      double y1, int n = 20) {
  std::vector<geo::TimedPoint> points;
  for (int i = 0; i < n; i++) {
    const double f = static_cast<double>(i) / (n - 1);
    points.push_back(
        geo::TimedPoint{x0 + f * (x1 - x0), y0 + f * (y1 - y0), i * 30});
  }
  return points;
}

TEST(TShapeTest, ResolutionRespectsLemma3And4) {
  TShapeIndex idx(TShapeConfig{3, 3, 15});
  // An MBR of extent e fits alpha cells when cell size >= e/alpha.
  const geo::MBR mbr{0.1, 0.1, 0.1 + 0.03, 0.1 + 0.02};
  const int r = idx.Resolution(mbr);
  const double w = 1.0 / static_cast<double>(1 << r);
  // Lemma 4 condition must hold at the chosen resolution.
  const double ax = std::floor(mbr.min_x / w) * w;
  const double ay = std::floor(mbr.min_y / w) * w;
  EXPECT_GE(ax + 3 * w, mbr.max_x);
  EXPECT_GE(ay + 3 * w, mbr.max_y);
  // And fail at one resolution deeper (r is maximal) unless capped by g.
  if (r < 15) {
    const double w2 = w / 2;
    const double ax2 = std::floor(mbr.min_x / w2) * w2;
    const double ay2 = std::floor(mbr.min_y / w2) * w2;
    const bool fits_deeper =
        ax2 + 3 * w2 >= mbr.max_x && ay2 + 3 * w2 >= mbr.max_y &&
        std::max(mbr.width() / 3, mbr.height() / 3) <= w2;
    EXPECT_FALSE(fits_deeper) << "resolution not maximal";
  }
}

TEST(TShapeTest, ShapeBitsMarkVisitedCellsOnly) {
  TShapeIndex idx(TShapeConfig{3, 3, 12});
  // A horizontal line crosses a row of cells: the shape must be a subset
  // of one row (plus possibly adjacent bits when grazing edges), never the
  // full 3x3 block.
  const auto points = MakeLine(0.40, 0.455, 0.47, 0.455);
  const TShapeEncoding enc = idx.Encode(points);
  EXPECT_NE(enc.shape, 0u);
  EXPECT_NE(enc.shape, (1u << 9) - 1) << "line cannot visit all 9 cells";
  EXPECT_EQ(enc.index_value, (enc.quad_code << 9) | enc.shape);
}

TEST(TShapeTest, DiagonalVisitsMoreCellsThanMBRWouldSuggest) {
  TShapeIndex idx(TShapeConfig{3, 3, 12});
  const auto diag = MakeLine(0.40, 0.40, 0.47, 0.47);
  const auto horiz = MakeLine(0.40, 0.40, 0.47, 0.401);
  const TShapeEncoding diag_enc = idx.Encode(diag);
  const TShapeEncoding horiz_enc = idx.Encode(horiz);
  // Both shapes are proper subsets of the full block; the diagonal's
  // fine-grained shape is what XZ-style MBR indexes cannot express.
  EXPECT_LT(std::popcount(diag_enc.shape), 9);
  EXPECT_LT(std::popcount(horiz_enc.shape), 9);
}

class TShapeCompleteness : public ::testing::TestWithParam<int> {};

TEST_P(TShapeCompleteness, NoFalseNegativesWithCache) {
  Random rnd(GetParam());
  TShapeIndex idx(TShapeConfig{3, 3, 12});

  // Build a small "index cache" of used shapes.
  std::map<uint64_t, std::vector<std::pair<uint32_t, uint32_t>>> cache;
  struct Stored {
    uint64_t value;
    std::vector<geo::TimedPoint> points;
  };
  std::vector<Stored> stored;
  for (int i = 0; i < 300; i++) {
    const double x = rnd.UniformDouble(0.05, 0.9);
    const double y = rnd.UniformDouble(0.05, 0.9);
    const auto points =
        MakeLine(x, y, x + rnd.UniformDouble(-0.04, 0.04),
                 y + rnd.UniformDouble(-0.04, 0.04));
    const TShapeEncoding enc = idx.Encode(points);
    auto& shapes = cache[enc.quad_code];
    uint32_t final_code = UINT32_MAX;
    for (const auto& [bits, code] : shapes) {
      if (bits == enc.shape) final_code = code;
    }
    if (final_code == UINT32_MAX) {
      final_code = static_cast<uint32_t>(shapes.size());
      shapes.emplace_back(enc.shape, final_code);
    }
    stored.push_back(Stored{idx.IndexValue(enc.quad_code, final_code), points});
  }

  ShapeLookup lookup = [&cache](uint64_t code) {
    auto it = cache.find(code);
    return it == cache.end()
               ? std::vector<std::pair<uint32_t, uint32_t>>{}
               : it->second;
  };

  for (int trial = 0; trial < 100; trial++) {
    const double qx = rnd.UniformDouble(0, 0.9);
    const double qy = rnd.UniformDouble(0, 0.9);
    const geo::MBR query{qx, qy, qx + rnd.UniformDouble(0.01, 0.08),
                         qy + rnd.UniformDouble(0.01, 0.08)};
    const auto ranges = idx.QueryRanges(query, &lookup);
    for (const Stored& s : stored) {
      if (!geo::PolylineIntersectsRect(s.points, query)) continue;
      bool covered = false;
      for (const auto& r : ranges) {
        if (r.Contains(s.value)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "missed stored trajectory, trial " << trial;
      if (!covered) return;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TShapeCompleteness,
                         ::testing::Values(21, 42, 63, 84));

TEST(TShapeTest, FinerAlphaBetaVisitsFewerFalseCandidates) {
  // A 5x5 decomposition represents shapes more precisely than 2x2, so a
  // query off the trajectory's path should intersect fewer stored shapes.
  Random rnd(5);
  TShapeIndex coarse(TShapeConfig{2, 2, 12});
  TShapeIndex fine(TShapeConfig{5, 5, 12});

  int coarse_hits = 0;
  int fine_hits = 0;
  for (int i = 0; i < 200; i++) {
    const double x = rnd.UniformDouble(0.1, 0.8);
    const double y = rnd.UniformDouble(0.1, 0.8);
    // Diagonal trajectories: their MBR has big empty corners.
    const auto points = MakeLine(x, y, x + 0.05, y + 0.05);
    // Query sits in the empty corner of the MBR.
    const geo::MBR query{x + 0.002, y + 0.038, x + 0.012, y + 0.048};

    const TShapeEncoding ce = coarse.Encode(points);
    const TShapeEncoding fe = fine.Encode(points);
    if (coarse.ShapeIntersects(ce.anchor, ce.shape, query)) coarse_hits++;
    if (fine.ShapeIntersects(fe.anchor, fe.shape, query)) fine_hits++;
  }
  EXPECT_LT(fine_hits, coarse_hits);
}

// ---------------------------------------------------------------------------
// XZ*

TEST(XZStarTest, EncodingIsTShape2x2Raw) {
  XZStarIndex xzstar(12);
  const auto points = MakeLine(0.3, 0.3, 0.34, 0.33);
  const TShapeEncoding enc = xzstar.EncodeFull(points);
  EXPECT_GT(enc.shape, 0u);
  EXPECT_LT(enc.shape, 16u);
  EXPECT_EQ(xzstar.Encode(points), (enc.quad_code << 4) | enc.shape);
}

TEST(XZStarTest, QueryFindsStoredTrajectory) {
  XZStarIndex xzstar(12);
  const auto points = MakeLine(0.41, 0.42, 0.45, 0.44);
  const uint64_t value = xzstar.Encode(points);
  const geo::MBR query{0.42, 0.42, 0.43, 0.43};
  if (geo::PolylineIntersectsRect(points, query)) {
    bool covered = false;
    for (const auto& r : xzstar.QueryRanges(query)) {
      if (r.Contains(value)) covered = true;
    }
    EXPECT_TRUE(covered);
  }
}

// ---------------------------------------------------------------------------
// Shape-code optimisation

uint32_t BitsFromString(const std::string& s) {
  uint32_t bits = 0;
  for (char c : s) {
    bits = (bits << 1) | static_cast<uint32_t>(c == '1');
  }
  return bits;
}

TEST(ShapeEncodingTest, JaccardMatchesPaperFigure10) {
  const uint32_t s0 = BitsFromString("111100001");
  const uint32_t s1 = BitsFromString("011110001");
  const uint32_t s2 = BitsFromString("000010011");
  const uint32_t s3 = BitsFromString("010010011");
  EXPECT_NEAR(JaccardSimilarity(s0, s1), 0.67, 0.01);
  EXPECT_NEAR(JaccardSimilarity(s0, s2), 0.14, 0.01);
  EXPECT_NEAR(JaccardSimilarity(s0, s3), 0.29, 0.01);
  EXPECT_NEAR(JaccardSimilarity(s1, s2), 0.33, 0.01);
  EXPECT_NEAR(JaccardSimilarity(s1, s3), 0.50, 0.01);
  EXPECT_NEAR(JaccardSimilarity(s2, s3), 0.75, 0.01);
}

TEST(ShapeEncodingTest, GreedyReproducesPaperExample) {
  // Figure 10: greedy picks <s0, s1, s3, s2> with cumulative 1.92.
  const std::vector<uint32_t> shapes = {
      BitsFromString("111100001"), BitsFromString("011110001"),
      BitsFromString("000010011"), BitsFromString("010010011")};
  const auto order = OptimizeShapeOrder(shapes, ShapeOrderMethod::kGreedy);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 3u);
  EXPECT_EQ(order[3], 2u);
  EXPECT_NEAR(CumulativeSimilarity(shapes, order), 1.92, 0.01);
  // Raw order scores 1.75, strictly worse.
  EXPECT_NEAR(CumulativeSimilarity(shapes, {0, 1, 2, 3}), 1.75, 0.02);
}

TEST(ShapeEncodingTest, GeneticNeverWorseThanGreedy) {
  Random rnd(31337);
  for (int trial = 0; trial < 10; trial++) {
    std::vector<uint32_t> shapes;
    const int n = 5 + static_cast<int>(rnd.Uniform(30));
    std::set<uint32_t> unique;
    while (static_cast<int>(unique.size()) < n) {
      unique.insert(static_cast<uint32_t>(rnd.Uniform(1u << 25)) | 1u);
    }
    shapes.assign(unique.begin(), unique.end());

    const auto greedy = OptimizeShapeOrder(shapes, ShapeOrderMethod::kGreedy);
    GeneticParams params;
    params.seed = trial;
    const auto genetic =
        OptimizeShapeOrder(shapes, ShapeOrderMethod::kGenetic, params);
    // The genetic population is seeded with the greedy solution, so its
    // result is always at least as good.
    EXPECT_GE(CumulativeSimilarity(shapes, genetic),
              CumulativeSimilarity(shapes, greedy) - 1e-9);
  }
}

TEST(ShapeEncodingTest, OrdersArePermutations) {
  std::vector<uint32_t> shapes = {3, 5, 9, 17, 6, 12, 24, 20};
  for (auto method : {ShapeOrderMethod::kBitmap, ShapeOrderMethod::kGreedy,
                      ShapeOrderMethod::kGenetic}) {
    const auto order = OptimizeShapeOrder(shapes, method);
    std::set<uint32_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), shapes.size());
    EXPECT_EQ(*seen.rbegin(), shapes.size() - 1);
  }
}

// ---------------------------------------------------------------------------
// ValueRange

TEST(ValueRangeTest, MergeCoalescesAdjacentAndOverlapping) {
  std::vector<ValueRange> ranges = {{10, 20}, {21, 30}, {5, 8}, {25, 40},
                                    {100, 100}};
  const auto merged = MergeRanges(std::move(ranges));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (ValueRange{5, 8}));
  EXPECT_EQ(merged[1], (ValueRange{10, 40}));
  EXPECT_EQ(merged[2], (ValueRange{100, 100}));
  EXPECT_EQ(TotalCount(merged), 4u + 31 + 1);
}

}  // namespace
}  // namespace tman::index
