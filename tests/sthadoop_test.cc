#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "baselines/sthadoop.h"
#include "traj/generator.h"

namespace tman::baselines {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "tman_sth_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

traj::Trajectory MakeTrajectory(const std::string& tid, double lon,
                                double lat, int64_t t0, int64_t step,
                                int n) {
  traj::Trajectory t;
  t.oid = "o-" + tid;
  t.tid = tid;
  for (int i = 0; i < n; i++) {
    t.points.push_back(
        geo::TimedPoint{lon + i * 0.001, lat, t0 + i * step});
  }
  return t;
}

TEST(STHadoopTest, SliceBoundaryStraddling) {
  STHadoop::Options options;
  options.bounds = traj::SpatialBounds{100, 20, 120, 40};
  options.slice_seconds = 1000;
  options.job_startup_micros = 0;
  std::unique_ptr<STHadoop> sth;
  ASSERT_TRUE(STHadoop::Open(options, TestDir("slices"), &sth).ok());

  // Trajectory spanning slices 0..3 (points at t = 500..3500).
  ASSERT_TRUE(
      sth->Load({MakeTrajectory("straddler", 110, 30, 500, 1000, 4)}).ok());

  // A query touching only slice 2 still finds it (per-point storage).
  std::vector<std::string> tids;
  ASSERT_TRUE(sth->TemporalRangeQuery(2100, 2900, &tids, nullptr).ok());
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_EQ(tids[0], "straddler");

  // A query in a gap between points finds nothing (the known point-level
  // semantics of the ST-Hadoop layout).
  tids.clear();
  ASSERT_TRUE(sth->TemporalRangeQuery(600, 900, &tids, nullptr).ok());
  EXPECT_TRUE(tids.empty());
}

TEST(STHadoopTest, CandidatesCountPoints) {
  STHadoop::Options options;
  options.bounds = traj::SpatialBounds{100, 20, 120, 40};
  options.job_startup_micros = 0;
  std::unique_ptr<STHadoop> sth;
  ASSERT_TRUE(STHadoop::Open(options, TestDir("points"), &sth).ok());
  ASSERT_TRUE(sth->Load({MakeTrajectory("a", 105, 25, 1000, 60, 100),
                         MakeTrajectory("b", 115, 35, 1000, 60, 100)})
                  .ok());
  std::vector<std::string> tids;
  core::QueryStats stats;
  ASSERT_TRUE(
      sth->TemporalRangeQuery(0, 100000, &tids, &stats).ok());
  EXPECT_EQ(tids.size(), 2u);
  EXPECT_EQ(stats.candidates, 200u) << "candidates are points, not rows";
}

TEST(STHadoopTest, SpatialGridPrunesCells) {
  STHadoop::Options options;
  options.bounds = traj::SpatialBounds{100, 20, 120, 40};
  options.grid_bits = 4;
  options.job_startup_micros = 0;
  std::unique_ptr<STHadoop> sth;
  ASSERT_TRUE(STHadoop::Open(options, TestDir("grid"), &sth).ok());
  // Two trajectories in far-apart corners.
  ASSERT_TRUE(sth->Load({MakeTrajectory("sw", 101, 21, 1000, 60, 50),
                         MakeTrajectory("ne", 119, 39, 1000, 60, 50)})
                  .ok());
  std::vector<std::string> tids;
  core::QueryStats stats;
  ASSERT_TRUE(sth->SpatialRangeQuery(geo::MBR{100.5, 20.5, 102, 22}, &tids,
                                     &stats)
                  .ok());
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_EQ(tids[0], "sw");
  // Grid pruning kept the NE trajectory's points out of the scan.
  EXPECT_LT(stats.candidates, 100u);
}

TEST(STHadoopTest, JobStartupAddsLatency) {
  STHadoop::Options options;
  options.bounds = traj::SpatialBounds{100, 20, 120, 40};
  options.job_startup_micros = 20000;
  std::unique_ptr<STHadoop> sth;
  ASSERT_TRUE(STHadoop::Open(options, TestDir("startup"), &sth).ok());
  ASSERT_TRUE(sth->Load({MakeTrajectory("x", 110, 30, 1000, 60, 10)}).ok());
  std::vector<std::string> tids;
  core::QueryStats stats;
  ASSERT_TRUE(sth->TemporalRangeQuery(0, 10000, &tids, &stats).ok());
  EXPECT_GE(stats.execution_ms, 20.0);
}

}  // namespace
}  // namespace tman::baselines
