#include "traj/generator.h"

#include <algorithm>
#include <cmath>

namespace tman::traj {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kMetersPerDegree = 111320.0;

}  // namespace

DatasetSpec TDriveLikeSpec() {
  DatasetSpec spec;
  spec.name = "tdrive";
  spec.bounds = SpatialBounds{110.0, 35.0, 125.0, 45.0};
  // Beijing proper, where taxis operate.
  spec.core = SpatialBounds{116.0, 39.6, 116.8, 40.2};
  spec.t0 = 1200000000;  // arbitrary fixed epoch for determinism
  spec.horizon_seconds = 7 * 24 * 3600;  // one week
  spec.sample_interval = 60;
  // 66% < 2h, tail to 18h (99%).
  spec.short_fraction = 0.66;
  spec.short_min = 5 * 60;
  spec.short_max = 2 * 3600;
  spec.long_max = 18 * 3600;
  // Drivers transport passengers 2.7-65 km.
  spec.trip_min_meters = 2700;
  spec.trip_max_meters = 65000;
  spec.roaming_fraction = 0.0;
  spec.trajectories_per_object = 25;  // taxis make many trips per week
  return spec;
}

DatasetSpec LorryLikeSpec() {
  DatasetSpec spec;
  spec.name = "lorry";
  spec.bounds = SpatialBounds{70.0, 0.0, 140.0, 55.0};
  // Guangzhou metro area.
  spec.core = SpatialBounds{112.9, 22.5, 113.9, 23.6};
  spec.t0 = 1393632000;  // 2014-03-01
  spec.horizon_seconds = 31LL * 24 * 3600;  // one month
  spec.sample_interval = 60;
  // 88% < 2h, tail to 14h (99%).
  spec.short_fraction = 0.88;
  spec.short_min = 10 * 60;
  spec.short_max = 2 * 3600;
  spec.long_max = 14 * 3600;
  spec.trip_min_meters = 2000;
  spec.trip_max_meters = 76000;
  spec.roaming_fraction = 0.008;  // <1% inter-city transports
  spec.trajectories_per_object = 8;
  return spec;
}

DatasetSpec CityHotspotSpec() {
  DatasetSpec spec = TDriveLikeSpec();
  spec.name = "cityhot";
  // Rush-hour-like skew: most trips leave from a few Zipf-weighted centers
  // (rank-1 takes ~46% of hotspot traffic at s=1.2 over 4 spots), melting
  // one region of an initially balanced layout.
  spec.hotspot_fraction = 0.9;
  spec.hotspot_count = 4;
  spec.hotspot_zipf_s = 1.2;
  spec.hotspot_radius_meters = 2500;
  return spec;
}

namespace {

// One random-walk trip of roughly `diameter_meters` extent and `duration`
// seconds starting at `start` within `area`.
std::vector<geo::TimedPoint> RandomWalk(Random* rnd, const SpatialBounds& area,
                                        geo::Point start, double diameter_m,
                                        int64_t start_time, int64_t duration,
                                        int64_t interval) {
  std::vector<geo::TimedPoint> points;
  const size_t steps =
      static_cast<size_t>(std::max<int64_t>(2, duration / interval));
  points.reserve(steps);

  // Speed chosen so the walk covers ~diameter over the trip: wandering
  // roughly doubles path length vs displacement.
  const double total_path_m = diameter_m * 2.0;
  const double step_m = total_path_m / static_cast<double>(steps);
  const double lat_mid = (area.min_lat + area.max_lat) / 2;
  const double deg_per_m_lat = 1.0 / kMetersPerDegree;
  const double cos_lat = std::max(0.1, std::cos(lat_mid * kPi / 180.0));
  const double deg_per_m_lon = 1.0 / (kMetersPerDegree * cos_lat);

  double heading = rnd->UniformDouble(0, 2 * kPi);
  geo::Point pos = start;
  int64_t t = start_time;
  for (size_t i = 0; i < steps; i++) {
    points.push_back(geo::TimedPoint{pos.x, pos.y, t});
    // Heading drifts slowly: trips look like streets, not noise.
    heading += rnd->UniformDouble(-0.5, 0.5);
    double nx = pos.x + std::cos(heading) * step_m * deg_per_m_lon;
    double ny = pos.y + std::sin(heading) * step_m * deg_per_m_lat;
    // Reflect at the area boundary.
    if (nx < area.min_lon || nx > area.max_lon) {
      heading = kPi - heading;
      nx = std::clamp(nx, area.min_lon, area.max_lon);
    }
    if (ny < area.min_lat || ny > area.max_lat) {
      heading = -heading;
      ny = std::clamp(ny, area.min_lat, area.max_lat);
    }
    pos = geo::Point{nx, ny};
    t += interval;
  }
  return points;
}

int64_t SampleDuration(Random* rnd, const DatasetSpec& spec) {
  if (rnd->Bernoulli(spec.short_fraction)) {
    return spec.short_min +
           static_cast<int64_t>(rnd->Uniform(
               static_cast<uint64_t>(spec.short_max - spec.short_min)));
  }
  // Exponential-ish tail between short_max and long_max: most long trips
  // are just a few hours; durations near long_max are rare (99th pct).
  const double u = rnd->NextDouble();
  const double frac = -std::log(1.0 - 0.98 * u) / 4.0;  // heavy head
  const double clamped = std::min(1.0, frac);
  return spec.short_max +
         static_cast<int64_t>(clamped * static_cast<double>(spec.long_max -
                                                            spec.short_max));
}

// Fixed hot-spot centers inside the core, derived from the workload seed so
// two Generate() calls with the same (spec, seed) place them identically.
std::vector<geo::Point> HotspotCenters(const DatasetSpec& spec,
                                       uint64_t seed) {
  Random rnd(seed ^ 0x686f7470);
  std::vector<geo::Point> centers;
  centers.reserve(static_cast<size_t>(spec.hotspot_count));
  for (int i = 0; i < spec.hotspot_count; i++) {
    centers.push_back(geo::Point{
        rnd.UniformDouble(spec.core.min_lon, spec.core.max_lon),
        rnd.UniformDouble(spec.core.min_lat, spec.core.max_lat)});
  }
  return centers;
}

// Cumulative Zipf(s) popularity over hotspot ranks: P(rank i) ~ 1/(i+1)^s.
std::vector<double> ZipfCdf(int n, double s) {
  std::vector<double> cdf(static_cast<size_t>(std::max(0, n)), 0.0);
  double total = 0;
  for (size_t i = 0; i < cdf.size(); i++) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (double& v : cdf) v /= total;
  return cdf;
}

}  // namespace

std::vector<Trajectory> Generate(const DatasetSpec& spec, size_t count,
                                 uint64_t seed) {
  Random rnd(seed ^ 0x74726a67);  // per-dataset deterministic stream
  std::vector<Trajectory> result;
  result.reserve(count);

  const bool use_hotspots =
      spec.hotspot_fraction > 0 && spec.hotspot_count > 0;
  const std::vector<geo::Point> hotspots =
      use_hotspots ? HotspotCenters(spec, seed) : std::vector<geo::Point>{};
  const std::vector<double> hotspot_cdf =
      use_hotspots ? ZipfCdf(spec.hotspot_count, spec.hotspot_zipf_s)
                   : std::vector<double>{};

  const size_t num_objects =
      std::max<size_t>(1, count / static_cast<size_t>(
                                      spec.trajectories_per_object));
  for (size_t i = 0; i < count; i++) {
    Trajectory t;
    const size_t object = rnd.Uniform(num_objects);
    t.oid = spec.name + "-obj-" + std::to_string(object);
    t.tid = spec.name + "-t-" + std::to_string(i);

    const bool roaming = rnd.Bernoulli(spec.roaming_fraction);
    const SpatialBounds& area = roaming ? spec.bounds : spec.core;
    geo::Point start{rnd.UniformDouble(area.min_lon, area.max_lon),
                     rnd.UniformDouble(area.min_lat, area.max_lat)};
    if (!roaming && use_hotspots && rnd.Bernoulli(spec.hotspot_fraction)) {
      // Zipf-pick a hot spot, scatter the origin uniformly within its
      // radius (rejection-free: uniform angle + sqrt-radius in a disc).
      const double u = rnd.NextDouble();
      size_t rank = 0;
      while (rank + 1 < hotspot_cdf.size() && u > hotspot_cdf[rank]) rank++;
      const geo::Point& c = hotspots[rank];
      const double ang = rnd.UniformDouble(0, 2 * kPi);
      const double r_m =
          spec.hotspot_radius_meters * std::sqrt(rnd.NextDouble());
      const double cos_lat = std::max(0.1, std::cos(c.y * kPi / 180.0));
      start.x = std::clamp(
          c.x + std::cos(ang) * r_m / (kMetersPerDegree * cos_lat),
          area.min_lon, area.max_lon);
      start.y = std::clamp(c.y + std::sin(ang) * r_m / kMetersPerDegree,
                           area.min_lat, area.max_lat);
    }

    const int64_t duration = SampleDuration(&rnd, spec);
    const int64_t latest_start = spec.horizon_seconds > duration
                                     ? spec.horizon_seconds - duration
                                     : 1;
    const int64_t start_time =
        spec.t0 + static_cast<int64_t>(
                      rnd.Uniform(static_cast<uint64_t>(latest_start)));

    double diameter = roaming
                          ? rnd.UniformDouble(spec.trip_max_meters * 3,
                                              spec.trip_max_meters * 20)
                          : 0;
    if (!roaming) {
      // Log-uniform between min and max diameter.
      const double lo = std::log(spec.trip_min_meters);
      const double hi = std::log(spec.trip_max_meters);
      diameter = std::exp(rnd.UniformDouble(lo, hi));
    }

    t.points = RandomWalk(&rnd, area, start, diameter, start_time, duration,
                          spec.sample_interval);
    result.push_back(std::move(t));
  }
  return result;
}

std::vector<Trajectory> Replicate(const DatasetSpec& spec,
                                  const std::vector<Trajectory>& base,
                                  int copies, uint64_t seed) {
  Random rnd(seed ^ 0x7265706c);
  std::vector<Trajectory> result;
  result.reserve(base.size() * static_cast<size_t>(copies));
  for (int c = 0; c < copies; c++) {
    const int64_t time_offset = static_cast<int64_t>(c) * spec.horizon_seconds;
    for (const Trajectory& t : base) {
      Trajectory copy = t;
      copy.tid = t.tid + "-r" + std::to_string(c);
      copy.oid = t.oid + "-r" + std::to_string(c);
      const double jitter_x = rnd.UniformDouble(-0.001, 0.001);
      const double jitter_y = rnd.UniformDouble(-0.001, 0.001);
      for (geo::TimedPoint& p : copy.points) {
        p.t += time_offset;
        p.x = std::clamp(p.x + jitter_x, spec.bounds.min_lon,
                         spec.bounds.max_lon);
        p.y = std::clamp(p.y + jitter_y, spec.bounds.min_lat,
                         spec.bounds.max_lat);
      }
      result.push_back(std::move(copy));
    }
  }
  return result;
}

std::vector<TimeWindow> RandomTimeWindows(const DatasetSpec& spec, size_t n,
                                          int64_t length_seconds,
                                          uint64_t seed) {
  Random rnd(seed ^ 0x74777175);
  std::vector<TimeWindow> windows;
  windows.reserve(n);
  const int64_t latest = std::max<int64_t>(1, spec.horizon_seconds -
                                                  length_seconds);
  for (size_t i = 0; i < n; i++) {
    const int64_t ts =
        spec.t0 +
        static_cast<int64_t>(rnd.Uniform(static_cast<uint64_t>(latest)));
    windows.push_back(TimeWindow{ts, ts + length_seconds});
  }
  return windows;
}

std::vector<SpaceWindow> RandomSpaceWindows(const DatasetSpec& spec, size_t n,
                                            double side_meters,
                                            uint64_t seed) {
  Random rnd(seed ^ 0x73717175);
  std::vector<SpaceWindow> windows;
  windows.reserve(n);
  const double lat_mid = (spec.core.min_lat + spec.core.max_lat) / 2;
  const double h = geo::MetersToDegreesLat(side_meters);
  const double w = geo::MetersToDegreesLon(side_meters, lat_mid);
  for (size_t i = 0; i < n; i++) {
    const double cx = rnd.UniformDouble(spec.core.min_lon, spec.core.max_lon);
    const double cy = rnd.UniformDouble(spec.core.min_lat, spec.core.max_lat);
    windows.push_back(SpaceWindow{
        geo::MBR{cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2}});
  }
  return windows;
}

}  // namespace tman::traj
