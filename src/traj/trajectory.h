#ifndef TMAN_TRAJ_TRAJECTORY_H_
#define TMAN_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace tman::traj {

// A trajectory: the ordered GPS fixes of one trip by one moving object.
struct Trajectory {
  std::string oid;  // moving-object identifier (e.g. a vehicle)
  std::string tid;  // globally unique trajectory identifier
  std::vector<geo::TimedPoint> points;

  int64_t start_time() const { return points.empty() ? 0 : points.front().t; }
  int64_t end_time() const { return points.empty() ? 0 : points.back().t; }
  int64_t duration() const { return end_time() - start_time(); }

  geo::MBR ComputeMBR() const { return geo::ComputeMBR(points); }

  bool IntersectsTimeRange(int64_t ts, int64_t te) const {
    return !points.empty() && start_time() <= te && end_time() >= ts;
  }
};

// The spatial extent of a dataset; trajectories are normalized into [0,1]^2
// against these bounds before spatial indexing.
struct SpatialBounds {
  double min_lon = 0;
  double min_lat = 0;
  double max_lon = 0;
  double max_lat = 0;

  double width() const { return max_lon - min_lon; }
  double height() const { return max_lat - min_lat; }

  // Maps a lon/lat point to normalized [0,1]^2 coordinates.
  geo::Point Normalize(const geo::Point& p) const {
    return geo::Point{(p.x - min_lon) / width(), (p.y - min_lat) / height()};
  }

  geo::MBR Normalize(const geo::MBR& m) const {
    return geo::MBR{(m.min_x - min_lon) / width(),
                    (m.min_y - min_lat) / height(),
                    (m.max_x - min_lon) / width(),
                    (m.max_y - min_lat) / height()};
  }

  geo::MBR ToGeo() const {
    return geo::MBR{min_lon, min_lat, max_lon, max_lat};
  }
};

}  // namespace tman::traj

#endif  // TMAN_TRAJ_TRAJECTORY_H_
