#ifndef TMAN_TRAJ_IO_H_
#define TMAN_TRAJ_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace tman::traj {

// Import/export of trajectory datasets.
//
// CSV format (one GPS fix per line, header optional):
//   oid,tid,lon,lat,timestamp
// Lines are grouped into trajectories by tid; points are sorted by
// timestamp within each trajectory. This is the layout of the public
// T-Drive release and of most fleet logs.
Status ReadCsv(const std::string& path, std::vector<Trajectory>* out);
Status WriteCsv(const std::string& path,
                const std::vector<Trajectory>& trajectories);

// Compact binary format (varint/Gorilla-compressed, one file per dataset):
// much smaller and faster than CSV for benchmark snapshots.
Status ReadBinary(const std::string& path, std::vector<Trajectory>* out);
Status WriteBinary(const std::string& path,
                   const std::vector<Trajectory>& trajectories);

}  // namespace tman::traj

#endif  // TMAN_TRAJ_IO_H_
