#ifndef TMAN_TRAJ_GENERATOR_H_
#define TMAN_TRAJ_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "traj/trajectory.h"

namespace tman::traj {

// Parameters of a synthetic trajectory workload. The two presets below are
// calibrated to the published marginals of the paper's datasets (Fig. 14):
// duration CDFs, spatial boundaries, and trip-diameter distributions.
struct DatasetSpec {
  std::string name;
  SpatialBounds bounds;           // published dataset boundary
  SpatialBounds core;             // where most trips start (the city proper)
  int64_t t0 = 0;                 // dataset start time (UNIX seconds)
  int64_t horizon_seconds = 0;    // dataset time span (week / month)
  int64_t sample_interval = 30;   // seconds between GPS fixes
  // Trip duration mixture: with probability short_fraction, a short trip
  // uniform in [short_min, short_max] seconds; otherwise a long trip
  // exponential-tailed up to long_max.
  double short_fraction = 0.9;
  int64_t short_min = 300;
  int64_t short_max = 7200;
  int64_t long_max = 48 * 3600;
  // Trip diameter in meters (uniform log-scale between min and max).
  double trip_min_meters = 1000;
  double trip_max_meters = 60000;
  // Fraction of trips that roam the full boundary (inter-city lorries).
  double roaming_fraction = 0.0;
  int trajectories_per_object = 8;  // average trips per moving object
  // City hot spots: with probability hotspot_fraction a non-roaming trip
  // starts near one of hotspot_count fixed centers (train stations,
  // business districts) instead of uniformly inside `core`. Which center
  // follows a Zipf law with exponent hotspot_zipf_s — rank-1 absorbs most
  // of the skewed traffic — and the origin scatters uniformly within
  // hotspot_radius_meters of it. Centers derive deterministically from the
  // Generate() seed. 0 (the default) keeps origins uniform.
  double hotspot_fraction = 0.0;
  int hotspot_count = 4;
  double hotspot_zipf_s = 1.2;
  double hotspot_radius_meters = 2500;
};

// Beijing taxi workload (~T-Drive): 1 week, boundary (110,35,125,45),
// 66% of trips < 2h, 99% < 18h, trip diameters 2.7-65 km.
DatasetSpec TDriveLikeSpec();

// Guangzhou lorry workload (~Lorry): 1 month, boundary (70,0,140,55),
// 88% of trips < 2h, 99% < 14h, <1% inter-city roaming trips.
DatasetSpec LorryLikeSpec();

// TDriveLikeSpec with 90% of trips Zipf-concentrated on a handful of city
// hot spots — the skewed ingest workload for the region balancer bench.
DatasetSpec CityHotspotSpec();

// Generates `count` trajectories deterministically from `seed`.
std::vector<Trajectory> Generate(const DatasetSpec& spec, size_t count,
                                 uint64_t seed);

// Scalability replication (Fig. 22): `copies` shifted copies of the input;
// copy i is offset in time by i * horizon and jittered in space.
std::vector<Trajectory> Replicate(const DatasetSpec& spec,
                                  const std::vector<Trajectory>& base,
                                  int copies, uint64_t seed);

// Query workload generators (paper §VI "Setting").
struct TimeWindow {
  int64_t ts;
  int64_t te;
};
struct SpaceWindow {
  geo::MBR rect;  // in lon/lat degrees
};

// `length_seconds` windows placed uniformly at random inside the horizon.
std::vector<TimeWindow> RandomTimeWindows(const DatasetSpec& spec, size_t n,
                                          int64_t length_seconds,
                                          uint64_t seed);

// Square windows of side `side_meters` centered in the core region.
std::vector<SpaceWindow> RandomSpaceWindows(const DatasetSpec& spec, size_t n,
                                            double side_meters, uint64_t seed);

}  // namespace tman::traj

#endif  // TMAN_TRAJ_GENERATOR_H_
