#include "traj/io.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/coding.h"
#include "compress/traj_codec.h"

namespace tman::traj {

namespace {

// Splits a CSV line into at most `n` fields (no quoting: the formats this
// reader targets never quote).
int SplitFields(const std::string& line, std::string fields[], int n) {
  int count = 0;
  size_t start = 0;
  while (count < n) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields[count++] = line.substr(start);
      break;
    }
    fields[count++] = line.substr(start, comma - start);
    start = comma + 1;
  }
  return count;
}

}  // namespace

Status ReadCsv(const std::string& path, std::vector<Trajectory>* out) {
  FILE* f = fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  std::map<std::string, Trajectory> by_tid;
  char buf[512];
  size_t line_no = 0;
  while (fgets(buf, sizeof(buf), f) != nullptr) {
    line_no++;
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::string fields[5];
    if (SplitFields(line, fields, 5) != 5) {
      fclose(f);
      return Status::Corruption(path + ": bad field count at line " +
                                std::to_string(line_no));
    }
    if (line_no == 1 && fields[4] == "timestamp") continue;  // header

    char* end = nullptr;
    const double lon = strtod(fields[2].c_str(), &end);
    if (end == fields[2].c_str()) {
      fclose(f);
      return Status::Corruption(path + ": bad longitude at line " +
                                std::to_string(line_no));
    }
    const double lat = strtod(fields[3].c_str(), &end);
    const int64_t t = strtoll(fields[4].c_str(), &end, 10);

    Trajectory& traj = by_tid[fields[1]];
    if (traj.tid.empty()) {
      traj.oid = fields[0];
      traj.tid = fields[1];
    }
    traj.points.push_back(geo::TimedPoint{lon, lat, t});
  }
  fclose(f);

  out->clear();
  out->reserve(by_tid.size());
  for (auto& [tid, traj] : by_tid) {
    std::stable_sort(traj.points.begin(), traj.points.end(),
                     [](const geo::TimedPoint& a, const geo::TimedPoint& b) {
                       return a.t < b.t;
                     });
    out->push_back(std::move(traj));
  }
  return Status::OK();
}

Status WriteCsv(const std::string& path,
                const std::vector<Trajectory>& trajectories) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  fputs("oid,tid,lon,lat,timestamp\n", f);
  for (const Trajectory& t : trajectories) {
    for (const geo::TimedPoint& p : t.points) {
      fprintf(f, "%s,%s,%.7f,%.7f,%lld\n", t.oid.c_str(), t.tid.c_str(), p.x,
              p.y, static_cast<long long>(p.t));
    }
  }
  if (fclose(f) != 0) return Status::IOError("close failed for " + path);
  return Status::OK();
}

namespace {
constexpr uint32_t kBinaryMagic = 0x544d414a;  // "TMAJ"
}  // namespace

Status WriteBinary(const std::string& path,
                   const std::vector<Trajectory>& trajectories) {
  std::string blob;
  PutFixed32(&blob, kBinaryMagic);
  PutVarint64(&blob, trajectories.size());
  for (const Trajectory& t : trajectories) {
    PutLengthPrefixedSlice(&blob, t.oid);
    PutLengthPrefixedSlice(&blob, t.tid);
    compress::PointColumns columns;
    for (const geo::TimedPoint& p : t.points) {
      columns.lons.push_back(p.x);
      columns.lats.push_back(p.y);
      columns.timestamps.push_back(p.t);
    }
    std::string points;
    if (!compress::EncodePoints(columns, &points)) {
      return Status::InvalidArgument("unencodable trajectory " + t.tid);
    }
    PutLengthPrefixedSlice(&blob, points);
  }
  FILE* f = fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = fwrite(blob.data(), 1, blob.size(), f);
  fclose(f);
  if (written != blob.size()) return Status::IOError("short write to " + path);
  return Status::OK();
}

Status ReadBinary(const std::string& path, std::vector<Trajectory>* out) {
  FILE* f = fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string blob;
  char buf[64 * 1024];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  fclose(f);

  Slice input(blob);
  if (input.size() < 4 || DecodeFixed32(input.data()) != kBinaryMagic) {
    return Status::Corruption(path + ": bad magic");
  }
  input.remove_prefix(4);
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption(path + ": bad count");
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    Slice oid, tid, points;
    if (!GetLengthPrefixedSlice(&input, &oid) ||
        !GetLengthPrefixedSlice(&input, &tid) ||
        !GetLengthPrefixedSlice(&input, &points)) {
      return Status::Corruption(path + ": truncated trajectory " +
                                std::to_string(i));
    }
    Trajectory t;
    t.oid = oid.ToString();
    t.tid = tid.ToString();
    compress::PointColumns columns;
    if (!compress::DecodePoints(points.data(), points.size(), &columns)) {
      return Status::Corruption(path + ": bad point column in trajectory " +
                                std::to_string(i));
    }
    t.points.reserve(columns.timestamps.size());
    for (size_t j = 0; j < columns.timestamps.size(); j++) {
      t.points.push_back(geo::TimedPoint{columns.lons[j], columns.lats[j],
                                         columns.timestamps[j]});
    }
    out->push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace tman::traj
