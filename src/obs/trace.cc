#include "obs/trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace tman::obs {

TraceSpan* TraceSpan::AddChild(std::string name) {
  children_.push_back(std::make_unique<TraceSpan>(std::move(name)));
  return children_.back().get();
}

void TraceSpan::End() {
  if (ended_) return;
  duration_ms_ = watch_.ElapsedMillis();
  ended_ = true;
}

double TraceSpan::duration_ms() const {
  return ended_ ? duration_ms_ : watch_.ElapsedMillis();
}

void TraceSpan::Annotate(const std::string& key, double value) {
  numbers_.emplace_back(key, value);
}

void TraceSpan::Annotate(const std::string& key, const std::string& value) {
  strings_.emplace_back(key, value);
}

const TraceSpan* TraceSpan::Find(const std::string& name) const {
  if (name_ == name) return this;
  for (const auto& child : children_) {
    if (const TraceSpan* hit = child->Find(name)) return hit;
  }
  return nullptr;
}

double TraceSpan::GetAnnotation(const std::string& key,
                                double fallback) const {
  for (const auto& [k, v] : numbers_) {
    if (k == key) return v;
  }
  return fallback;
}

std::string TraceSpan::GetAnnotationString(const std::string& key) const {
  for (const auto& [k, v] : strings_) {
    if (k == key) return v;
  }
  return "";
}

namespace {

void AppendNumber(std::string* out, double v) {
  char buf[64];
  // Counts render as integers, timings/costs keep three decimals.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    snprintf(buf, sizeof(buf), "%.3f", v);
  }
  out->append(buf);
}

}  // namespace

void TraceSpan::RenderInto(std::string* out, int depth) const {
  for (int i = 0; i < depth; i++) out->append("  ");
  if (depth > 0) out->append("-> ");
  out->append(name_);
  char buf[64];
  snprintf(buf, sizeof(buf), "  (actual time=%.3f ms)", duration_ms());
  out->append(buf);
  if (!numbers_.empty() || !strings_.empty()) {
    out->append("  [");
    bool first = true;
    for (const auto& [k, v] : strings_) {
      if (!first) out->append(" ");
      first = false;
      out->append(k).append("=").append(v);
    }
    for (const auto& [k, v] : numbers_) {
      if (!first) out->append(" ");
      first = false;
      out->append(k).append("=");
      AppendNumber(out, v);
    }
    out->append("]");
  }
  out->append("\n");
  for (const auto& child : children_) {
    child->RenderInto(out, depth + 1);
  }
}

std::string TraceSpan::Render() const {
  std::string out;
  RenderInto(&out, 0);
  return out;
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceRing::Capture(const TraceSpan& root, int64_t ts_micros) {
  Entry e;
  e.query = root.name();
  e.duration_ms = root.duration_ms();
  e.rendered = root.Render();
  e.ts_micros = ts_micros != 0
                    ? ts_micros
                    : std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  std::lock_guard<std::mutex> lock(mu_);
  e.id = next_id_++;
  total_++;
  ring_.push_back(std::move(e));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<TraceRing::Entry> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Entry>(ring_.begin(), ring_.end());
}

uint64_t TraceRing::total_captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string TraceRing::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[128];
  snprintf(buf, sizeof(buf),
           "slow query traces: %llu captured, %llu retained (capacity %llu)\n",
           static_cast<unsigned long long>(total_),
           static_cast<unsigned long long>(ring_.size()),
           static_cast<unsigned long long>(capacity_));
  out += buf;
  for (const Entry& e : ring_) {
    snprintf(buf, sizeof(buf),
             "\n--- trace #%llu  ts_micros=%lld  duration=%.3f ms\n",
             static_cast<unsigned long long>(e.id),
             static_cast<long long>(e.ts_micros), e.duration_ms);
    out += buf;
    out += e.rendered;
  }
  return out;
}

}  // namespace tman::obs
