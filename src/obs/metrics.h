#ifndef TMAN_OBS_METRICS_H_
#define TMAN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tman::obs {

// Observability primitives shared by every layer (kvstore, cluster,
// cachestore, core, bench). All recording paths are lock-free relaxed
// atomics with no allocation, so they are safe on storage-engine hot paths;
// the registry mutex is taken only at metric-resolution and scrape time.
//
// Naming scheme (see DESIGN.md "Observability"):
//   tman_<layer>_<what>[_<unit>][_total]   e.g. tman_kv_get_micros,
//   tman_cluster_rows_streamed_total, tman_index_cache_hits_total.
// Fixed label sets are baked into the metric name Prometheus-style, e.g.
//   tman_kv_sstable_reads_total{level="2"}.

// Monotonic event counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }

  // Publishes an externally maintained monotonic total (used when a
  // component keeps its own counter and folds it in at snapshot time).
  void Store(uint64_t v) { v_.store(v, std::memory_order_relaxed); }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Last-write-wins instantaneous value (bytes resident, entries cached, ...).
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// Fixed-bucket log-scale latency/size histogram.
//
// Bucket layout (HDR-style): values < 16 get one bucket each; above that,
// each power-of-two octave is split into 16 linear sub-buckets, so the
// relative width of any bucket is <= 1/16 (6.25%). With within-bucket
// interpolation at quantile time the reported error is ~3%. 1024 fixed
// uint64 cells cover the full uint64 domain — recording is one relaxed
// fetch_add on the bucket plus count/sum/min/max updates, no allocation.
//
// Cells are sharded kShards ways (indexed by a per-thread hash) so
// concurrent recorders do not contend on hot buckets; scrapes merge the
// shards into one snapshot. Typical unit is microseconds.
class Histogram {
 public:
  static constexpr int kSubBits = 4;  // 16 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kNumBuckets = (64 - kSubBits) * kSub + kSub;
  static constexpr int kShards = 4;

  Histogram();

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Records one observation. Hot path: relaxed atomics only.
  void Record(uint64_t value);

  // Convenience for stopwatch output; negatives clamp to zero.
  void RecordMicros(double micros) {
    Record(micros <= 0 ? 0 : static_cast<uint64_t>(micros));
  }

  uint64_t count() const;
  uint64_t sum() const;
  uint64_t min() const;  // exact; 0 when empty
  uint64_t max() const;  // exact; 0 when empty
  double mean() const;

  // Interpolated quantile, p in [0, 100]. p==0 returns min, p==100 max.
  double Percentile(double p) const;
  double p50() const { return Percentile(50); }
  double p95() const { return Percentile(95); }
  double p99() const { return Percentile(99); }
  double p999() const { return Percentile(99.9); }

  // Merged view of the sharded cells; quantile evaluation and exposition
  // work on this immutable copy so a scrape never blocks recorders.
  struct Snapshot {
    std::vector<uint64_t> buckets;  // kNumBuckets cells
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  // Inclusive lower bound of a bucket (upper bound is the next bucket's
  // lower bound minus one).
  static uint64_t BucketLowerBound(int index);
  static int BucketIndex(uint64_t value);

 private:
  struct Shard {
    std::atomic<uint64_t> buckets[kNumBuckets];
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
  };

  Shard& LocalShard();

  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

// Named metric registry. GetX() is get-or-create and returns a pointer
// stable for the registry's lifetime, so components resolve their handles
// once at construction and record through raw pointers afterwards.
// RenderPrometheus() emits text exposition format (histograms as summaries
// with quantile labels + _sum/_count/_min/_max); RenderJson() emits one
// JSON object for machine consumption next to BENCH_*.json dumps.
//
// Sliding windows: EnableWindows(slots, slot_seconds) turns on a rotating
// ring of cumulative snapshots. A periodic caller (TMan's background
// reporter, or a test) invokes RotateWindow(); the windowed view of any
// counter or histogram is then "live cumulative minus oldest retained
// snapshot", i.e. the last ~slots*slot_seconds of activity. Recording hot
// paths are untouched — windows cost only at rotate/scrape time. With
// windows enabled, RenderPrometheus adds `<name>_window_rate` /
// `<name>_window{quantile=...}` series and RenderJson adds a "window"
// section; the cumulative series are unchanged.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  std::string RenderPrometheus() const;
  std::string RenderJson() const;

  // Windowed delta of one counter since the oldest retained rotation.
  struct WindowRate {
    bool valid = false;       // false until at least one rotation happened
    double span_seconds = 0;  // age of the oldest retained snapshot
    uint64_t delta = 0;       // events inside the window
    double rate_per_sec = 0;  // delta / span_seconds
  };

  // Turns on window tracking with `slots` retained snapshots rotated every
  // `slot_seconds` (defaults: 6 x 10 s = last-minute view). Idempotent;
  // changing the geometry drops retained slots.
  void EnableWindows(int slots = 6, int slot_seconds = 10);
  bool windows_enabled() const;
  int window_slot_seconds() const;

  // Captures the current cumulative values as the newest window slot and
  // drops slots beyond the configured capacity. `now_micros` == 0 reads the
  // steady clock; tests pass explicit timestamps. No-op when windows are
  // off.
  void RotateWindow(uint64_t now_micros = 0);

  // Windowed views (valid=false / empty snapshot before the first
  // rotation or when windows are off). `now_micros` must use the same
  // clock as RotateWindow.
  WindowRate CounterWindow(const std::string& name,
                           uint64_t now_micros = 0) const;
  Histogram::Snapshot HistogramWindow(const std::string& name) const;

  // Process-wide registry for tools/examples; libraries always take an
  // explicit registry pointer (null = metrics off).
  static MetricsRegistry* Default();

 private:
  struct WindowSlot {
    uint64_t ts_micros = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, Histogram::Snapshot> histograms;
  };

  static uint64_t NowMicros();

  // Helpers that assume mu_ is held.
  WindowRate CounterWindowLocked(const std::string& name, uint64_t live,
                                 uint64_t now_micros) const;
  Histogram::Snapshot HistogramWindowLocked(
      const std::string& name, const Histogram::Snapshot& live) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;

  int window_capacity_ = 0;  // 0 = windows off
  int window_slot_seconds_ = 10;
  std::deque<WindowSlot> window_slots_;  // oldest first
};

}  // namespace tman::obs

#endif  // TMAN_OBS_METRICS_H_
