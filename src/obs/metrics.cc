#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>

namespace tman::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram() : shards_(new Shard[kShards]) {
  for (int s = 0; s < kShards; s++) {
    for (int b = 0; b < kNumBuckets; b++) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<int>(value);
  const int h = 63 - std::countl_zero(value);  // position of highest set bit
  return (h - kSubBits + 1) * kSub +
         static_cast<int>((value >> (h - kSubBits)) - kSub);
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kSub) return static_cast<uint64_t>(index);
  const int octave = index / kSub;
  const int sub = index % kSub;
  return static_cast<uint64_t>(kSub + sub) << (octave - 1);
}

Histogram::Shard& Histogram::LocalShard() {
  // Threads spread round-robin over the shards; a given thread always
  // records into the same shard, so recorders contend kShards-ways less.
  static std::atomic<unsigned> next_shard{0};
  thread_local unsigned my_shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[my_shard];
}

void Histogram::Record(uint64_t value) {
  Shard& shard = LocalShard();
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (int s = 0; s < kShards; s++) {
    for (int b = 0; b < kNumBuckets; b++) {
      snap.buckets[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shards_[s].count.load(std::memory_order_relaxed);
    snap.sum += shards_[s].sum.load(std::memory_order_relaxed);
  }
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  snap.min = (mn == UINT64_MAX) ? 0 : mn;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0) return static_cast<double>(min);
  if (p >= 100) return static_cast<double>(max);
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper =
          b + 1 < kNumBuckets ? static_cast<double>(BucketLowerBound(b + 1))
                              : lower + 1;
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[b]);
      const double v = lower + frac * (upper - lower);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (int s = 0; s < kShards; s++) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::sum() const {
  uint64_t total = 0;
  for (int s = 0; s < kShards; s++) {
    total += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::min() const {
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  return mn == UINT64_MAX ? 0 : mn;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  return TakeSnapshot().Percentile(p);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// "name{quantile=\"0.5\"}" — merging into an existing label set if the
// metric name already carries one ("name{level=\"0\"}").
std::string WithLabel(const std::string& name, const char* label,
                      const char* value) {
  std::string out;
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    out = name + "{" + label + "=\"" + value + "\"}";
  } else {
    out = name.substr(0, name.size() - 1);  // drop trailing '}'
    out += std::string(",") + label + "=\"" + value + "\"}";
  }
  return out;
}

// "name_sum" with the suffix spliced before any label block:
// "name{level=\"0\"}" -> "name_sum{level=\"0\"}".
std::string WithSuffix(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

// "tman_x_total" -> "tman_x" so the derived window series does not read as
// a counter ("..._total_window_rate" would); labels stay in place.
std::string StripTotal(const std::string& name) {
  const size_t brace = name.find('{');
  const std::string base =
      brace == std::string::npos ? name : name.substr(0, brace);
  static constexpr char kTotal[] = "_total";
  static constexpr size_t kTotalLen = sizeof(kTotal) - 1;
  if (base.size() > kTotalLen &&
      base.compare(base.size() - kTotalLen, kTotalLen, kTotal) == 0) {
    std::string out = base.substr(0, base.size() - kTotalLen);
    if (brace != std::string::npos) out += name.substr(brace);
    return out;
  }
  return name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sliding windows

uint64_t MetricsRegistry::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void MetricsRegistry::EnableWindows(int slots, int slot_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (slots < 1) slots = 1;
  if (slot_seconds < 1) slot_seconds = 1;
  if (window_capacity_ != slots || window_slot_seconds_ != slot_seconds) {
    window_slots_.clear();
  }
  window_capacity_ = slots;
  window_slot_seconds_ = slot_seconds;
}

bool MetricsRegistry::windows_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_capacity_ > 0;
}

int MetricsRegistry::window_slot_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_slot_seconds_;
}

void MetricsRegistry::RotateWindow(uint64_t now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_capacity_ == 0) return;
  WindowSlot slot;
  slot.ts_micros = now_micros != 0 ? now_micros : NowMicros();
  for (const auto& [name, c] : counters_) slot.counters[name] = c->value();
  for (const auto& [name, h] : histograms_) {
    slot.histograms[name] = h->TakeSnapshot();
  }
  window_slots_.push_back(std::move(slot));
  while (window_slots_.size() > static_cast<size_t>(window_capacity_)) {
    window_slots_.pop_front();
  }
}

MetricsRegistry::WindowRate MetricsRegistry::CounterWindowLocked(
    const std::string& name, uint64_t live, uint64_t now_micros) const {
  WindowRate out;
  if (window_slots_.empty()) return out;
  const WindowSlot& oldest = window_slots_.front();
  uint64_t baseline = 0;
  auto it = oldest.counters.find(name);
  if (it != oldest.counters.end()) baseline = it->second;
  out.valid = true;
  out.delta = live >= baseline ? live - baseline : 0;
  const uint64_t now = now_micros != 0 ? now_micros : NowMicros();
  out.span_seconds = now > oldest.ts_micros
                         ? static_cast<double>(now - oldest.ts_micros) / 1e6
                         : 0;
  out.rate_per_sec = out.span_seconds > 0
                         ? static_cast<double>(out.delta) / out.span_seconds
                         : 0;
  return out;
}

Histogram::Snapshot MetricsRegistry::HistogramWindowLocked(
    const std::string& name, const Histogram::Snapshot& live) const {
  Histogram::Snapshot delta;
  delta.buckets.assign(Histogram::kNumBuckets, 0);
  if (window_slots_.empty()) return delta;
  const WindowSlot& oldest = window_slots_.front();
  const Histogram::Snapshot* base = nullptr;
  auto it = oldest.histograms.find(name);
  if (it != oldest.histograms.end()) base = &it->second;
  int first_nonzero = -1;
  int last_nonzero = -1;
  for (int b = 0; b < Histogram::kNumBuckets; b++) {
    const uint64_t then = base != nullptr ? base->buckets[b] : 0;
    const uint64_t now = live.buckets[b];
    const uint64_t d = now >= then ? now - then : 0;
    delta.buckets[b] = d;
    if (d > 0) {
      if (first_nonzero < 0) first_nonzero = b;
      last_nonzero = b;
    }
    delta.count += d;
  }
  const uint64_t base_sum = base != nullptr ? base->sum : 0;
  delta.sum = live.sum >= base_sum ? live.sum - base_sum : 0;
  // Cumulative min/max do not subtract; derive window bounds from the first
  // and last occupied delta buckets (bucket resolution, <= 6.25% wide) so
  // Snapshot::Percentile's [min, max] clamp stays meaningful.
  if (first_nonzero >= 0) {
    delta.min = Histogram::BucketLowerBound(first_nonzero);
    delta.max = last_nonzero + 1 < Histogram::kNumBuckets
                    ? Histogram::BucketLowerBound(last_nonzero + 1) - 1
                    : live.max;
    if (delta.max < delta.min) delta.max = delta.min;
    if (live.max < delta.max && live.max >= delta.min) delta.max = live.max;
  }
  return delta;
}

MetricsRegistry::WindowRate MetricsRegistry::CounterWindow(
    const std::string& name, uint64_t now_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  const uint64_t live = it != counters_.end() ? it->second->value() : 0;
  return CounterWindowLocked(name, live, now_micros);
}

Histogram::Snapshot MetricsRegistry::HistogramWindow(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  Histogram::Snapshot live;
  live.buckets.assign(Histogram::kNumBuckets, 0);
  if (it != histograms_.end()) live = it->second->TakeSnapshot();
  return HistogramWindowLocked(name, live);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool windows = window_capacity_ > 0 && !window_slots_.empty();
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name.substr(0, name.find('{')) + " counter\n";
    out += name + " ";
    AppendU64(&out, c->value());
    out += "\n";
    if (windows) {
      const WindowRate w = CounterWindowLocked(name, c->value(), 0);
      const std::string rate_name = WithSuffix(StripTotal(name), "_window_rate");
      out += "# TYPE " + rate_name.substr(0, rate_name.find('{')) + " gauge\n";
      out += rate_name + " ";
      AppendDouble(&out, w.rate_per_sec);
      out += "\n" + WithSuffix(StripTotal(name), "_window_seconds") + " ";
      AppendDouble(&out, w.span_seconds);
      out += "\n";
    }
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name.substr(0, name.find('{')) + " gauge\n";
    out += name + " ";
    AppendDouble(&out, g->value());
    out += "\n";
  }
  static constexpr struct {
    const char* label;
    double p;
  } kQuantiles[] = {{"0.5", 50}, {"0.95", 95}, {"0.99", 99}, {"0.999", 99.9}};
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->TakeSnapshot();
    out += "# TYPE " + name.substr(0, name.find('{')) + " summary\n";
    for (const auto& q : kQuantiles) {
      out += WithLabel(name, "quantile", q.label) + " ";
      AppendDouble(&out, snap.Percentile(q.p));
      out += "\n";
    }
    out += WithSuffix(name, "_sum") + " ";
    AppendU64(&out, snap.sum);
    out += "\n" + WithSuffix(name, "_count") + " ";
    AppendU64(&out, snap.count);
    out += "\n" + WithSuffix(name, "_min") + " ";
    AppendU64(&out, snap.min);
    out += "\n" + WithSuffix(name, "_max") + " ";
    AppendU64(&out, snap.max);
    out += "\n";
    if (windows) {
      const Histogram::Snapshot w = HistogramWindowLocked(name, snap);
      const std::string wname = WithSuffix(name, "_window");
      for (const auto& q : kQuantiles) {
        out += WithLabel(wname, "quantile", q.label) + " ";
        AppendDouble(&out, w.Percentile(q.p));
        out += "\n";
      }
      out += WithSuffix(wname, "_count") + " ";
      AppendU64(&out, w.count);
      out += "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const bool windows = window_capacity_ > 0 && !window_slots_.empty();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendU64(&out, c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendDouble(&out, g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->TakeSnapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    AppendU64(&out, snap.count);
    out += ", \"sum\": ";
    AppendU64(&out, snap.sum);
    out += ", \"min\": ";
    AppendU64(&out, snap.min);
    out += ", \"p50\": ";
    AppendDouble(&out, snap.Percentile(50));
    out += ", \"p95\": ";
    AppendDouble(&out, snap.Percentile(95));
    out += ", \"p99\": ";
    AppendDouble(&out, snap.Percentile(99));
    out += ", \"p999\": ";
    AppendDouble(&out, snap.Percentile(99.9));
    out += ", \"max\": ";
    AppendU64(&out, snap.max);
    out += "}";
  }
  out += "\n  }";
  if (windows) {
    // Additive section: existing keys keep their shape, machine consumers
    // that predate windows are unaffected.
    out += ",\n  \"window\": {\n    \"slot_seconds\": ";
    AppendU64(&out, static_cast<uint64_t>(window_slot_seconds_));
    out += ",\n    \"slots_retained\": ";
    AppendU64(&out, static_cast<uint64_t>(window_slots_.size()));
    out += ",\n    \"counters\": {";
    bool wfirst = true;
    for (const auto& [name, c] : counters_) {
      const WindowRate w = CounterWindowLocked(name, c->value(), 0);
      out += wfirst ? "\n" : ",\n";
      wfirst = false;
      out += "      \"" + name + "\": {\"delta\": ";
      AppendU64(&out, w.delta);
      out += ", \"rate_per_sec\": ";
      AppendDouble(&out, w.rate_per_sec);
      out += ", \"span_seconds\": ";
      AppendDouble(&out, w.span_seconds);
      out += "}";
    }
    out += "\n    },\n    \"histograms\": {";
    wfirst = true;
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot w =
          HistogramWindowLocked(name, h->TakeSnapshot());
      out += wfirst ? "\n" : ",\n";
      wfirst = false;
      out += "      \"" + name + "\": {\"count\": ";
      AppendU64(&out, w.count);
      out += ", \"sum\": ";
      AppendU64(&out, w.sum);
      out += ", \"p50\": ";
      AppendDouble(&out, w.Percentile(50));
      out += ", \"p99\": ";
      AppendDouble(&out, w.Percentile(99));
      out += "}";
    }
    out += "\n    }\n  }";
  }
  out += "\n}\n";
  return out;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

}  // namespace tman::obs
