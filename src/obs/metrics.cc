#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace tman::obs {

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram() : shards_(new Shard[kShards]) {
  for (int s = 0; s < kShards; s++) {
    for (int b = 0; b < kNumBuckets; b++) {
      shards_[s].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

int Histogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<int>(value);
  const int h = 63 - std::countl_zero(value);  // position of highest set bit
  return (h - kSubBits + 1) * kSub +
         static_cast<int>((value >> (h - kSubBits)) - kSub);
}

uint64_t Histogram::BucketLowerBound(int index) {
  if (index < kSub) return static_cast<uint64_t>(index);
  const int octave = index / kSub;
  const int sub = index % kSub;
  return static_cast<uint64_t>(kSub + sub) << (octave - 1);
}

Histogram::Shard& Histogram::LocalShard() {
  // Threads spread round-robin over the shards; a given thread always
  // records into the same shard, so recorders contend kShards-ways less.
  static std::atomic<unsigned> next_shard{0};
  thread_local unsigned my_shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shards_[my_shard];
}

void Histogram::Record(uint64_t value) {
  Shard& shard = LocalShard();
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.buckets.assign(kNumBuckets, 0);
  for (int s = 0; s < kShards; s++) {
    for (int b = 0; b < kNumBuckets; b++) {
      snap.buckets[b] += shards_[s].buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shards_[s].count.load(std::memory_order_relaxed);
    snap.sum += shards_[s].sum.load(std::memory_order_relaxed);
  }
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  snap.min = (mn == UINT64_MAX) ? 0 : mn;
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0) return static_cast<double>(min);
  if (p >= 100) return static_cast<double>(max);
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; b++) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      const double lower = static_cast<double>(BucketLowerBound(b));
      const double upper =
          b + 1 < kNumBuckets ? static_cast<double>(BucketLowerBound(b + 1))
                              : lower + 1;
      const double frac = (rank - static_cast<double>(cumulative)) /
                          static_cast<double>(buckets[b]);
      const double v = lower + frac * (upper - lower);
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (int s = 0; s < kShards; s++) {
    total += shards_[s].count.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::sum() const {
  uint64_t total = 0;
  for (int s = 0; s < kShards; s++) {
    total += shards_[s].sum.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::min() const {
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  return mn == UINT64_MAX ? 0 : mn;
}

uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  return TakeSnapshot().Percentile(p);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// "name{quantile=\"0.5\"}" — merging into an existing label set if the
// metric name already carries one ("name{level=\"0\"}").
std::string WithLabel(const std::string& name, const char* label,
                      const char* value) {
  std::string out;
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    out = name + "{" + label + "=\"" + value + "\"}";
  } else {
    out = name.substr(0, name.size() - 1);  // drop trailing '}'
    out += std::string(",") + label + "=\"" + value + "\"}";
  }
  return out;
}

// "name_sum" with the suffix spliced before any label block:
// "name{level=\"0\"}" -> "name_sum{level=\"0\"}".
std::string WithSuffix(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "# TYPE " + name.substr(0, name.find('{')) + " counter\n";
    out += name + " ";
    AppendU64(&out, c->value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "# TYPE " + name.substr(0, name.find('{')) + " gauge\n";
    out += name + " ";
    AppendDouble(&out, g->value());
    out += "\n";
  }
  static constexpr struct {
    const char* label;
    double p;
  } kQuantiles[] = {{"0.5", 50}, {"0.95", 95}, {"0.99", 99}, {"0.999", 99.9}};
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->TakeSnapshot();
    out += "# TYPE " + name.substr(0, name.find('{')) + " summary\n";
    for (const auto& q : kQuantiles) {
      out += WithLabel(name, "quantile", q.label) + " ";
      AppendDouble(&out, snap.Percentile(q.p));
      out += "\n";
    }
    out += WithSuffix(name, "_sum") + " ";
    AppendU64(&out, snap.sum);
    out += "\n" + WithSuffix(name, "_count") + " ";
    AppendU64(&out, snap.count);
    out += "\n" + WithSuffix(name, "_min") + " ";
    AppendU64(&out, snap.min);
    out += "\n" + WithSuffix(name, "_max") + " ";
    AppendU64(&out, snap.max);
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendU64(&out, c->value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    AppendDouble(&out, g->value());
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->TakeSnapshot();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": ";
    AppendU64(&out, snap.count);
    out += ", \"sum\": ";
    AppendU64(&out, snap.sum);
    out += ", \"min\": ";
    AppendU64(&out, snap.min);
    out += ", \"p50\": ";
    AppendDouble(&out, snap.Percentile(50));
    out += ", \"p95\": ";
    AppendDouble(&out, snap.Percentile(95));
    out += ", \"p99\": ";
    AppendDouble(&out, snap.Percentile(99));
    out += ", \"p999\": ";
    AppendDouble(&out, snap.Percentile(99.9));
    out += ", \"max\": ";
    AppendU64(&out, snap.max);
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

}  // namespace tman::obs
