#ifndef TMAN_OBS_EVENT_LOG_H_
#define TMAN_OBS_EVENT_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tman::obs {

// One structured maintenance event (flush, compaction, stall, ...). Events
// are small string records, not metrics: they answer "what happened and
// when", the /eventz half of the telemetry plane, while counters answer
// "how often".
struct Event {
  uint64_t id = 0;         // assigned by the log, monotonically increasing
  int64_t ts_micros = 0;   // wall clock, assigned by the log when 0
  std::string type;        // e.g. "flush", "compaction", "write_stall_begin"
  std::string source;      // emitting store/table, e.g. a DB path
  std::vector<std::pair<std::string, std::string>> fields;
};

// Bounded in-memory ring of recent events. Appends are mutex-guarded (they
// happen on maintenance paths, never on per-key hot paths) and O(1); when
// full the oldest event is dropped — `total_appended` keeps counting so a
// scraper can detect loss. Thread-safe.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 256);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  // Appends one event, assigning `id` and (if zero) `ts_micros`.
  void Append(Event e);

  // Oldest-first copy of the retained events.
  std::vector<Event> Snapshot() const;

  uint64_t total_appended() const;
  size_t capacity() const { return capacity_; }

  // {"capacity":N,"total":N,"events":[{"id":..,"ts_micros":..,"type":"..",
  //  "source":"..","k":"v",...},...]} — the /eventz body.
  std::string RenderJson() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t total_ = 0;
  std::deque<Event> ring_;  // oldest first
};

// Minimal JSON string escaping (quotes, backslashes, control bytes) shared
// by the JSON-producing telemetry surfaces.
std::string JsonEscape(const std::string& in);

}  // namespace tman::obs

#endif  // TMAN_OBS_EVENT_LOG_H_
