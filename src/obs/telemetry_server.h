#ifndef TMAN_OBS_TELEMETRY_SERVER_H_
#define TMAN_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tman::obs {

// Embedded HTTP/1.1 telemetry endpoint — the live half of the
// observability plane. One accept thread plus a small worker pool serve
// read-only GETs over raw POSIX sockets (loopback by default):
//
//   /metrics       Prometheus text exposition (cumulative + window series)
//   /metrics.json  the same registry as JSON
//   /healthz       cheap liveness; 503 + detail once a sticky health
//                  source reports unhealthy (bg_error, degraded stores)
//   /statusz       one JSON status document from the attached source
//                  (per-region storage stats, build info, uptime)
//   /eventz        recent maintenance events (EventLog ring, JSON)
//   /tracez        slow-query EXPLAIN ANALYZE traces (TraceRing, text)
//   /              plain-text index of the endpoints above
//
// All data sources are borrowed pointers/functions set before Start() and
// must outlive the server (Stop() joins every thread, so destroying the
// sources after Stop()/~TelemetryServer is safe). Requests are bounded in
// size and time; malformed requests get 400/404/405 and never take the
// server down. The server never writes to the store — it is a pure
// observer.
class TelemetryServer {
 public:
  struct ServerOptions {
    int port = 0;           // 0 = ephemeral, read back via port()
    bool bind_any = false;  // false = loopback only (default)
    int num_workers = 2;
    size_t max_request_bytes = 8 * 1024;
    int io_timeout_seconds = 5;  // per-connection read/write timeout
  };

  TelemetryServer() = default;
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Data sources (all optional; unset => the endpoint reports 404).
  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }
  void set_event_log(EventLog* log) { event_log_ = log; }
  void set_trace_ring(TraceRing* ring) { trace_ring_ = ring; }

  // /statusz body producer (should return a JSON document).
  void set_status_source(std::function<std::string()> fn) {
    status_source_ = std::move(fn);
  }

  // Health probe: return false (and fill *detail) to make /healthz serve
  // 503. Unset => always healthy.
  void set_health_source(std::function<bool(std::string*)> fn) {
    health_source_ = std::move(fn);
  }

  // Invoked before /metrics, /metrics.json and /statusz render so
  // point-in-time gauges are fresh (TMan wires PublishMetrics here).
  void set_refresh_hook(std::function<void()> fn) {
    refresh_hook_ = std::move(fn);
  }

  // Binds and starts serving. Fails with IOError when the port is taken
  // or the socket cannot be created. Start after Stop() is supported.
  Status Start(const ServerOptions& opts);
  Status Start(int port) {
    ServerOptions o;
    o.port = port;
    return Start(o);
  }

  // Stops accepting, drains workers, closes every socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // Actual bound port (after Start with port 0 this is the ephemeral one).
  int port() const { return port_; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  struct Response {
    int code = 200;
    const char* content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  Response Route(const std::string& method, const std::string& path);

  MetricsRegistry* metrics_ = nullptr;
  EventLog* event_log_ = nullptr;
  TraceRing* trace_ring_ = nullptr;
  std::function<std::string()> status_source_;
  std::function<bool(std::string*)> health_source_;
  std::function<void()> refresh_hook_;

  ServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> requests_served_{0};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;  // accepted, waiting for a worker
};

}  // namespace tman::obs

#endif  // TMAN_OBS_TELEMETRY_SERVER_H_
