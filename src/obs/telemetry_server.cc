#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tman::obs {

namespace {

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

// Writes the full buffer, tolerating short writes; false on error/timeout.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(const ServerOptions& opts) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("telemetry server already running");
  }
  opts_ = opts;
  if (opts_.num_workers < 1) opts_.num_workers = 1;
  if (opts_.max_request_bytes < 64) opts_.max_request_bytes = 64;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("telemetry socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      opts_.bind_any ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("telemetry bind port " +
                           std::to_string(opts_.port) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("telemetry listen: " + err);
  }
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = opts_.port;
  }

  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&TelemetryServer::AcceptLoop, this);
  workers_.reserve(static_cast<size_t>(opts_.num_workers));
  for (int i = 0; i < opts_.num_workers; i++) {
    workers_.emplace_back(&TelemetryServer::WorkerLoop, this);
  }
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loop: shutdown makes a blocked accept() return.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_cv_.notify_all();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Connections accepted but never picked up by a worker.
  std::lock_guard<std::mutex> lock(queue_mu_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
}

void TelemetryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient accept failure (e.g. EMFILE); keep serving.
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    timeval tv;
    tv.tv_sec = opts_.io_timeout_seconds;
    tv.tv_usec = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    std::lock_guard<std::mutex> lock(queue_mu_);
    pending_fds_.push_back(fd);
    queue_cv_.notify_one();
  }
}

void TelemetryServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !pending_fds_.empty();
      });
      if (pending_fds_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void TelemetryServer::HandleConnection(int fd) {
  // Read until the end of the request head, a bound, a timeout, or EOF.
  std::string req;
  char buf[1024];
  bool complete = false;
  bool oversize = false;
  while (req.size() < opts_.max_request_bytes) {
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    if (r <= 0) {
      if (r < 0 && errno == EINTR) continue;
      break;  // EOF, timeout or error: respond to what we have (if parsable)
    }
    req.append(buf, static_cast<size_t>(r));
    if (req.find("\r\n\r\n") != std::string::npos ||
        req.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (req.size() >= opts_.max_request_bytes) oversize = true;

  Response resp;
  if (oversize) {
    resp.code = 413;
    resp.body = "request too large\n";
  } else if (req.empty()) {
    return;  // client connected and went away; nothing to answer
  } else {
    // Request line: METHOD SP PATH SP VERSION. Tolerate a head that ended
    // with EOF instead of a blank line as long as the first line is whole.
    const size_t eol = req.find_first_of("\r\n");
    if (eol == std::string::npos && !complete) {
      resp.code = 400;
      resp.body = "malformed request\n";
    } else {
      const std::string line = req.substr(0, eol);
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                  : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos ||
          sp2 == sp1 + 1) {
        resp.code = 400;
        resp.body = "malformed request line\n";
      } else {
        std::string method = line.substr(0, sp1);
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        const size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
        resp = Route(method, path);
      }
    }
  }

  requests_served_.fetch_add(1, std::memory_order_relaxed);
  char head[256];
  snprintf(head, sizeof(head),
           "HTTP/1.1 %d %s\r\n"
           "Content-Type: %s\r\n"
           "Content-Length: %zu\r\n"
           "Connection: close\r\n"
           "\r\n",
           resp.code, ReasonPhrase(resp.code), resp.content_type,
           resp.body.size());
  if (WriteAll(fd, head, std::strlen(head))) {
    WriteAll(fd, resp.body.data(), resp.body.size());
  }
}

TelemetryServer::Response TelemetryServer::Route(const std::string& method,
                                                 const std::string& path) {
  Response resp;
  if (method != "GET" && method != "HEAD") {
    resp.code = 405;
    resp.body = "only GET is supported\n";
    return resp;
  }
  if (path == "/" || path == "/index") {
    resp.body =
        "tman telemetry endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics as JSON\n"
        "  /healthz       liveness + sticky background-error flag\n"
        "  /statusz       storage/cluster status document (JSON)\n"
        "  /eventz        recent maintenance events (JSON)\n"
        "  /tracez        slow-query EXPLAIN ANALYZE traces\n";
    return resp;
  }
  if (path == "/metrics" || path == "/metrics.json") {
    if (metrics_ == nullptr) {
      resp.code = 404;
      resp.body = "no metrics registry attached\n";
      return resp;
    }
    if (refresh_hook_) refresh_hook_();
    if (path == "/metrics") {
      resp.body = metrics_->RenderPrometheus();
    } else {
      resp.content_type = "application/json";
      resp.body = metrics_->RenderJson();
    }
    return resp;
  }
  if (path == "/healthz") {
    std::string detail;
    const bool healthy = health_source_ ? health_source_(&detail) : true;
    if (healthy) {
      resp.body = "ok\n";
    } else {
      resp.code = 503;
      resp.body = detail.empty() ? "unhealthy\n" : detail;
      if (!resp.body.empty() && resp.body.back() != '\n') resp.body += "\n";
    }
    return resp;
  }
  if (path == "/statusz") {
    if (!status_source_) {
      resp.code = 404;
      resp.body = "no status source attached\n";
      return resp;
    }
    if (refresh_hook_) refresh_hook_();
    resp.content_type = "application/json";
    resp.body = status_source_();
    return resp;
  }
  if (path == "/eventz") {
    if (event_log_ == nullptr) {
      resp.code = 404;
      resp.body = "no event log attached\n";
      return resp;
    }
    resp.content_type = "application/json";
    resp.body = event_log_->RenderJson();
    return resp;
  }
  if (path == "/tracez") {
    if (trace_ring_ == nullptr) {
      resp.code = 404;
      resp.body = "no trace ring attached\n";
      return resp;
    }
    resp.body = trace_ring_->RenderText();
    return resp;
  }
  resp.code = 404;
  resp.body = "unknown endpoint " + path + "\n";
  return resp;
}

}  // namespace tman::obs
