#include "obs/event_log.h"

#include <chrono>
#include <cstdio>

namespace tman::obs {

namespace {

int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (unsigned char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

EventLog::EventLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void EventLog::Append(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  e.id = next_id_++;
  if (e.ts_micros == 0) e.ts_micros = WallMicros();
  ring_.push_back(std::move(e));
  total_++;
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Event> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Event>(ring_.begin(), ring_.end());
}

uint64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string EventLog::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"capacity\": ";
  char buf[32];
  snprintf(buf, sizeof(buf), "%llu",
           static_cast<unsigned long long>(capacity_));
  out += buf;
  out += ", \"total\": ";
  snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(total_));
  out += buf;
  out += ", \"events\": [";
  bool first = true;
  for (const Event& e : ring_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"id\": ";
    snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(e.id));
    out += buf;
    out += ", \"ts_micros\": ";
    snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(e.ts_micros));
    out += buf;
    out += ", \"type\": \"" + JsonEscape(e.type) + "\"";
    out += ", \"source\": \"" + JsonEscape(e.source) + "\"";
    for (const auto& [k, v] : e.fields) {
      out += ", \"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
    }
    out += "}";
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace tman::obs
