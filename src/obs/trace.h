#ifndef TMAN_OBS_TRACE_H_
#define TMAN_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace tman::obs {

// One timed stage in a query's execution, forming a tree: the root covers
// the whole query, children cover planning / scan / decode / accumulate,
// grandchildren cover per-region scans and so on. Spans carry key=value
// annotations (candidate counts, cost-model numbers, plan names) so a trace
// can be cross-checked against QueryStats.
//
// A span tree is built by exactly one query invocation. Parents own their
// children; AddChild returns a borrowed pointer that stays valid for the
// root's lifetime. Concurrent per-region workers must not mutate one span —
// collect their numbers after the join and annotate then (see ClusterTable).
//
// Render() produces the EXPLAIN ANALYZE-style report:
//
//   SpatioTemporalRangeQuery  (actual time=12.418 ms)
//     plan: primary:st-fine  [windows=38 index_values=12]
//     -> planning  (actual time=0.214 ms)  [rbo=..., est_fine_windows=38]
//     -> scan primary  (actual time=11.021 ms)  [regions=4 rows=812]
//        -> region 0  (actual time=4.913 ms)  [rows=215]
//     ...
class TraceSpan {
 public:
  explicit TraceSpan(std::string name) : name_(std::move(name)) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Starts a timed child stage. The child's clock starts now; call End()
  // (or let a later AddChild/Render observe it) to freeze its duration.
  TraceSpan* AddChild(std::string name);

  // Freezes the span's duration. Idempotent: the first call wins, so a
  // span can be defensively ended on every exit path.
  void End();

  // Freezes the span at an externally measured duration (for stages timed
  // elsewhere, e.g. per-region scans whose numbers are collected after the
  // parallel join). Like End(), the first freeze wins.
  void SetDurationMs(double ms) {
    if (ended_) return;
    ended_ = true;
    duration_ms_ = ms;
  }

  // Attaches a metric to the span; shown as [key=value ...] in Render().
  void Annotate(const std::string& key, double value);
  void Annotate(const std::string& key, const std::string& value);

  const std::string& name() const { return name_; }
  double duration_ms() const;
  bool ended() const { return ended_; }

  const std::vector<std::unique_ptr<TraceSpan>>& children() const {
    return children_;
  }

  // First descendant (depth-first, including this span) with the given
  // name, or nullptr. Test/report convenience, not a hot path.
  const TraceSpan* Find(const std::string& name) const;

  // Value of an annotation on this span; returns fallback when absent.
  double GetAnnotation(const std::string& key, double fallback = 0) const;
  std::string GetAnnotationString(const std::string& key) const;

  // EXPLAIN ANALYZE-style indented report of this span and its subtree.
  std::string Render() const;

 private:
  void RenderInto(std::string* out, int depth) const;

  std::string name_;
  Stopwatch watch_;
  double duration_ms_ = 0;
  bool ended_ = false;
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::unique_ptr<TraceSpan>> children_;
};

// Bounded ring of slow-query traces (the /tracez backing store). A query
// whose total latency crosses TManOptions::slow_query_micros is captured
// here: the span tree is rendered to its EXPLAIN ANALYZE text immediately
// (so the ring owns plain strings, never live spans) and the oldest entry
// is evicted when the ring is full. Thread-safe; capture happens at most
// once per slow query, far off any hot path.
class TraceRing {
 public:
  struct Entry {
    uint64_t id = 0;        // monotonically increasing capture number
    int64_t ts_micros = 0;  // wall-clock capture time
    std::string query;      // root span name (query type)
    double duration_ms = 0;
    std::string rendered;   // full EXPLAIN ANALYZE tree
  };

  explicit TraceRing(size_t capacity = 32);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Renders `root` and stores the entry. `ts_micros` == 0 stamps the wall
  // clock. The span tree is only read, never retained.
  void Capture(const TraceSpan& root, int64_t ts_micros = 0);

  // Oldest-first copy of the retained entries.
  std::vector<Entry> Snapshot() const;

  uint64_t total_captured() const;
  size_t capacity() const { return capacity_; }

  // Plain-text /tracez body: one header line per entry followed by its
  // indented EXPLAIN ANALYZE tree.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  const size_t capacity_;
  uint64_t next_id_ = 1;
  uint64_t total_ = 0;
  std::deque<Entry> ring_;  // oldest first
};

}  // namespace tman::obs

#endif  // TMAN_OBS_TRACE_H_
