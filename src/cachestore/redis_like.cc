#include "cachestore/redis_like.h"

namespace tman::cache {

bool RedisLikeStore::HSet(const std::string& key, const std::string& field,
                          const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOp();
  auto& hash = data_[key];
  auto [it, inserted] = hash.insert_or_assign(field, value);
  (void)it;
  return inserted;
}

bool RedisLikeStore::HGet(const std::string& key, const std::string& field,
                          std::string* value) const {
  std::lock_guard<std::mutex> lock(mu_);
  CountOp();
  auto it = data_.find(key);
  if (it == data_.end()) {
    CountRead(false);
    return false;
  }
  auto fit = it->second.find(field);
  if (fit == it->second.end()) {
    CountRead(false);
    return false;
  }
  *value = fit->second;
  CountRead(true);
  return true;
}

std::vector<std::pair<std::string, std::string>> RedisLikeStore::HGetAll(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  CountOp();
  std::vector<std::pair<std::string, std::string>> result;
  auto it = data_.find(key);
  if (it == data_.end()) {
    CountRead(false);
    return result;
  }
  CountRead(true);
  result.reserve(it->second.size());
  for (const auto& [field, value] : it->second) {
    result.emplace_back(field, value);
  }
  return result;
}

bool RedisLikeStore::HDel(const std::string& key, const std::string& field) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOp();
  auto it = data_.find(key);
  if (it == data_.end()) return false;
  return it->second.erase(field) > 0;
}

bool RedisLikeStore::Del(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  CountOp();
  return data_.erase(key) > 0;
}

bool RedisLikeStore::Exists(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.count(key) > 0;
}

size_t RedisLikeStore::HLen(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = data_.find(key);
  return it == data_.end() ? 0 : it->second.size();
}

size_t RedisLikeStore::KeyCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return data_.size();
}

}  // namespace tman::cache
