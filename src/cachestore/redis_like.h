#ifndef TMAN_CACHESTORE_REDIS_LIKE_H_
#define TMAN_CACHESTORE_REDIS_LIKE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tman::cache {

// In-process stand-in for the Redis instance TMan uses as the durable
// backing store of the index cache. Supports the hash-structure subset TMan
// needs: HSET / HGET / HGETALL / HDEL / DEL, binary-safe keys and values.
// Thread-safe. Operation counters let benchmarks account for round trips.
class RedisLikeStore {
 public:
  RedisLikeStore() = default;

  RedisLikeStore(const RedisLikeStore&) = delete;
  RedisLikeStore& operator=(const RedisLikeStore&) = delete;

  // Sets field in the hash at key. Returns true if the field is new.
  bool HSet(const std::string& key, const std::string& field,
            const std::string& value);

  // Reads hash field; returns false if key or field is absent.
  bool HGet(const std::string& key, const std::string& field,
            std::string* value) const;

  // All (field, value) pairs of the hash at key (empty if absent).
  std::vector<std::pair<std::string, std::string>> HGetAll(
      const std::string& key) const;

  // Removes a field; returns true if it existed.
  bool HDel(const std::string& key, const std::string& field);

  // Removes an entire key; returns true if it existed.
  bool Del(const std::string& key);

  bool Exists(const std::string& key) const;
  size_t HLen(const std::string& key) const;
  size_t KeyCount() const;

  uint64_t ops() const { return ops_; }
  void ResetOps() { ops_ = 0; }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::map<std::string, std::string>> data_;
  mutable uint64_t ops_ = 0;
};

}  // namespace tman::cache

#endif  // TMAN_CACHESTORE_REDIS_LIKE_H_
