#ifndef TMAN_CACHESTORE_REDIS_LIKE_H_
#define TMAN_CACHESTORE_REDIS_LIKE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace tman::cache {

// In-process stand-in for the Redis instance TMan uses as the durable
// backing store of the index cache. Supports the hash-structure subset TMan
// needs: HSET / HGET / HGETALL / HDEL / DEL, binary-safe keys and values.
// Thread-safe. Operation and read hit/miss counters let benchmarks account
// for round trips, optionally mirrored into a metrics registry.
class RedisLikeStore {
 public:
  RedisLikeStore() = default;

  RedisLikeStore(const RedisLikeStore&) = delete;
  RedisLikeStore& operator=(const RedisLikeStore&) = delete;

  // Sets field in the hash at key. Returns true if the field is new.
  bool HSet(const std::string& key, const std::string& field,
            const std::string& value);

  // Reads hash field; returns false if key or field is absent.
  bool HGet(const std::string& key, const std::string& field,
            std::string* value) const;

  // All (field, value) pairs of the hash at key (empty if absent).
  std::vector<std::pair<std::string, std::string>> HGetAll(
      const std::string& key) const;

  // Removes a field; returns true if it existed.
  bool HDel(const std::string& key, const std::string& field);

  // Removes an entire key; returns true if it existed.
  bool Del(const std::string& key);

  bool Exists(const std::string& key) const;
  size_t HLen(const std::string& key) const;
  size_t KeyCount() const;

  uint64_t ops() const { return ops_; }
  void ResetOps() { ops_ = 0; }

  // Read-path accounting: HGet/HGetAll against a present key/field count as
  // hits, absent ones as misses.
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Mirrors ops and read hit/miss events into registry counters. Call
  // before the store sees traffic; any pointer may be null.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* ops) {
    ext_hits_ = hits;
    ext_misses_ = misses;
    ext_ops_ = ops;
  }

 private:
  void CountOp() const {
    ops_++;
    if (ext_ops_ != nullptr) ext_ops_->Inc();
  }
  void CountRead(bool hit) const {
    if (hit) {
      hits_++;
      if (ext_hits_ != nullptr) ext_hits_->Inc();
    } else {
      misses_++;
      if (ext_misses_ != nullptr) ext_misses_->Inc();
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::map<std::string, std::string>> data_;
  mutable uint64_t ops_ = 0;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  obs::Counter* ext_hits_ = nullptr;
  obs::Counter* ext_misses_ = nullptr;
  obs::Counter* ext_ops_ = nullptr;
};

}  // namespace tman::cache

#endif  // TMAN_CACHESTORE_REDIS_LIKE_H_
