#ifndef TMAN_CACHESTORE_LFU_CACHE_H_
#define TMAN_CACHESTORE_LFU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace tman::cache {

namespace internal {

// One unsharded O(1) LFU shard (frequency-bucket list design). Ties inside
// a frequency bucket break LRU. Synchronization and stats live in the
// sharded wrapper below; the shard only owns its mutex and structure.
template <typename K, typename V>
class LFUShard {
 public:
  explicit LFUShard(size_t capacity) : capacity_(capacity) {}

  LFUShard(const LFUShard&) = delete;
  LFUShard& operator=(const LFUShard&) = delete;

  // Returns true and sets *value if present (bumps frequency).
  bool Get(const K& key, V* value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    Touch(it);
    *value = it->second.value;
    return true;
  }

  // Inserts or overwrites. Returns the number of entries evicted (0 or 1).
  size_t Put(const K& key, V value) {
    if (capacity_ == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      Touch(it);
      return 0;
    }
    size_t evicted = 0;
    if (entries_.size() >= capacity_) {
      evicted = EvictOne();
    }
    auto& bucket = buckets_[1];
    bucket.push_front(key);
    entries_.emplace(key, Entry{std::move(value), 1, bucket.begin()});
    if (min_freq_ == 0 || min_freq_ > 1) min_freq_ = 1;
    return evicted;
  }

  bool Erase(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    RemoveFromBucket(it);
    entries_.erase(it);
    return true;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    buckets_.clear();
    min_freq_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    V value;
    uint64_t freq;
    typename std::list<K>::iterator pos;
  };

  using EntryMap = std::unordered_map<K, Entry>;

  void Touch(typename EntryMap::iterator it) {
    const uint64_t old_freq = it->second.freq;
    auto& old_bucket = buckets_[old_freq];
    old_bucket.erase(it->second.pos);
    if (old_bucket.empty()) {
      buckets_.erase(old_freq);
      if (min_freq_ == old_freq) min_freq_ = old_freq + 1;
    }
    const uint64_t new_freq = old_freq + 1;
    auto& bucket = buckets_[new_freq];
    bucket.push_front(it->first);
    it->second.freq = new_freq;
    it->second.pos = bucket.begin();
  }

  void RemoveFromBucket(typename EntryMap::iterator it) {
    auto& bucket = buckets_[it->second.freq];
    bucket.erase(it->second.pos);
    if (bucket.empty()) buckets_.erase(it->second.freq);
  }

  size_t EvictOne() {
    auto bit = buckets_.find(min_freq_);
    if (bit == buckets_.end()) {
      // min_freq_ is stale; find the smallest occupied bucket.
      if (buckets_.empty()) return 0;
      bit = buckets_.begin();
      for (auto i = buckets_.begin(); i != buckets_.end(); ++i) {
        if (i->first < bit->first) bit = i;
      }
    }
    const K victim = bit->second.back();
    bit->second.pop_back();
    if (bit->second.empty()) buckets_.erase(bit);
    entries_.erase(victim);
    return 1;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  EntryMap entries_;
  std::unordered_map<uint64_t, std::list<K>> buckets_;
  uint64_t min_freq_ = 0;
};

}  // namespace internal

// Sharded O(1) LFU cache. TMan's index cache uses this policy to keep hot
// enlarged-element shape maps in memory (paper §IV-B(3)).
//
// Large caches are split into 16 shards by key hash, each with its own
// mutex, so concurrent readers on the multicore query path do not contend
// on one global lock. Eviction then approximates global LFU (least
// frequent within the victim's shard), which is the standard sharded-cache
// trade-off. Small caches (capacity < kShardableCapacity) keep a single
// shard and therefore exact global LFU order — per-shard capacities of one
// or two entries would thrash, and exactness at tiny sizes is what unit
// tests and the re-encode heuristics rely on.
template <typename K, typename V>
class LFUCache {
 public:
  // Capacity below which the cache stays unsharded (exact global LFU).
  static constexpr size_t kShardableCapacity = 256;
  static constexpr size_t kNumShards = 16;

  explicit LFUCache(size_t capacity)
      : shard_count_(capacity >= kShardableCapacity ? kNumShards : 1) {
    // Split the exact capacity across shards (first shards take the
    // remainder) so the sharded total never exceeds `capacity`.
    const size_t base = capacity / shard_count_;
    const size_t rem = capacity % shard_count_;
    shards_.reserve(shard_count_);
    for (size_t i = 0; i < shard_count_; i++) {
      shards_.push_back(std::make_unique<internal::LFUShard<K, V>>(
          base + (i < rem ? 1 : 0)));
    }
  }

  LFUCache(const LFUCache&) = delete;
  LFUCache& operator=(const LFUCache&) = delete;

  // Returns true and sets *value if present (bumps frequency).
  bool Get(const K& key, V* value) {
    if (Shard(key).Get(key, value)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (ext_hits_ != nullptr) ext_hits_->Inc();
      return true;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (ext_misses_ != nullptr) ext_misses_->Inc();
    return false;
  }

  // Inserts or overwrites. Evicts the least frequently used entry in the
  // key's shard if that shard is full.
  void Put(const K& key, V value) {
    const size_t evicted = Shard(key).Put(key, std::move(value));
    if (evicted != 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      if (ext_evictions_ != nullptr) ext_evictions_->Inc(evicted);
    }
  }

  bool Erase(const K& key) { return Shard(key).Erase(key); }

  void Clear() {
    for (auto& s : shards_) s->Clear();
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& s : shards_) n += s->size();
    return n;
  }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  size_t shard_count() const { return shard_count_; }

  // Mirrors hit/miss/eviction events into registry counters (in addition
  // to the internal totals above). Call before the cache sees traffic;
  // any pointer may be null.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions) {
    ext_hits_ = hits;
    ext_misses_ = misses;
    ext_evictions_ = evictions;
  }

 private:
  internal::LFUShard<K, V>& Shard(const K& key) {
    if (shard_count_ == 1) return *shards_[0];
    // Finalizer mix so weak std::hash implementations (identity for
    // integers) still spread across shards.
    uint64_t h = static_cast<uint64_t>(std::hash<K>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return *shards_[h % shard_count_];
  }

  const size_t shard_count_;
  std::vector<std::unique_ptr<internal::LFUShard<K, V>>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::Counter* ext_hits_ = nullptr;
  obs::Counter* ext_misses_ = nullptr;
  obs::Counter* ext_evictions_ = nullptr;
};

}  // namespace tman::cache

#endif  // TMAN_CACHESTORE_LFU_CACHE_H_
