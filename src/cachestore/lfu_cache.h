#ifndef TMAN_CACHESTORE_LFU_CACHE_H_
#define TMAN_CACHESTORE_LFU_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.h"

namespace tman::cache {

// O(1) LFU cache (frequency-bucket list design). Ties inside a frequency
// bucket break LRU. TMan's index cache uses this policy to keep hot
// enlarged-element shape maps in memory (paper §IV-B(3)).
template <typename K, typename V>
class LFUCache {
 public:
  explicit LFUCache(size_t capacity) : capacity_(capacity) {}

  LFUCache(const LFUCache&) = delete;
  LFUCache& operator=(const LFUCache&) = delete;

  // Returns true and sets *value if present (bumps frequency).
  bool Get(const K& key, V* value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      misses_++;
      if (ext_misses_ != nullptr) ext_misses_->Inc();
      return false;
    }
    hits_++;
    if (ext_hits_ != nullptr) ext_hits_->Inc();
    Touch(it);
    *value = it->second.value;
    return true;
  }

  // Inserts or overwrites. Evicts the least frequently used entry if full.
  void Put(const K& key, V value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.value = std::move(value);
      Touch(it);
      return;
    }
    if (entries_.size() >= capacity_) {
      EvictOne();
    }
    auto& bucket = buckets_[1];
    bucket.push_front(key);
    entries_.emplace(key, Entry{std::move(value), 1, bucket.begin()});
    if (min_freq_ == 0 || min_freq_ > 1) min_freq_ = 1;
  }

  bool Erase(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    RemoveFromBucket(it);
    entries_.erase(it);
    return true;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    buckets_.clear();
    min_freq_ = 0;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  // Mirrors hit/miss/eviction events into registry counters (in addition
  // to the internal totals above). Call before the cache sees traffic;
  // any pointer may be null.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions) {
    ext_hits_ = hits;
    ext_misses_ = misses;
    ext_evictions_ = evictions;
  }

 private:
  struct Entry {
    V value;
    uint64_t freq;
    typename std::list<K>::iterator pos;
  };

  using EntryMap = std::unordered_map<K, Entry>;

  void Touch(typename EntryMap::iterator it) {
    const uint64_t old_freq = it->second.freq;
    auto& old_bucket = buckets_[old_freq];
    old_bucket.erase(it->second.pos);
    if (old_bucket.empty()) {
      buckets_.erase(old_freq);
      if (min_freq_ == old_freq) min_freq_ = old_freq + 1;
    }
    const uint64_t new_freq = old_freq + 1;
    auto& bucket = buckets_[new_freq];
    bucket.push_front(it->first);
    it->second.freq = new_freq;
    it->second.pos = bucket.begin();
  }

  void RemoveFromBucket(typename EntryMap::iterator it) {
    auto& bucket = buckets_[it->second.freq];
    bucket.erase(it->second.pos);
    if (bucket.empty()) buckets_.erase(it->second.freq);
  }

  void EvictOne() {
    auto bit = buckets_.find(min_freq_);
    if (bit == buckets_.end()) {
      // min_freq_ is stale; find the smallest occupied bucket.
      if (buckets_.empty()) return;
      bit = buckets_.begin();
      for (auto i = buckets_.begin(); i != buckets_.end(); ++i) {
        if (i->first < bit->first) bit = i;
      }
    }
    const K victim = bit->second.back();
    bit->second.pop_back();
    if (bit->second.empty()) buckets_.erase(bit);
    entries_.erase(victim);
    evictions_++;
    if (ext_evictions_ != nullptr) ext_evictions_->Inc();
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  EntryMap entries_;
  std::unordered_map<uint64_t, std::list<K>> buckets_;
  uint64_t min_freq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  obs::Counter* ext_hits_ = nullptr;
  obs::Counter* ext_misses_ = nullptr;
  obs::Counter* ext_evictions_ = nullptr;
};

}  // namespace tman::cache

#endif  // TMAN_CACHESTORE_LFU_CACHE_H_
