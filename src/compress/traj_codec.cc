#include "compress/traj_codec.h"

#include "common/coding.h"
#include "compress/gorilla.h"
#include "compress/simple8b.h"

namespace tman::compress {

void DeltaOfDeltaEncode(const std::vector<int64_t>& values,
                        std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(values.size());
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (size_t i = 0; i < values.size(); i++) {
    const int64_t delta = values[i] - prev;
    const int64_t dod = delta - prev_delta;
    out->push_back(ZigZagEncode64(dod));
    prev = values[i];
    prev_delta = delta;
  }
}

void DeltaOfDeltaDecode(const std::vector<uint64_t>& encoded,
                        std::vector<int64_t>* out) {
  out->clear();
  out->reserve(encoded.size());
  int64_t prev = 0;
  int64_t prev_delta = 0;
  for (uint64_t e : encoded) {
    const int64_t dod = ZigZagDecode64(e);
    const int64_t delta = prev_delta + dod;
    prev += delta;
    out->push_back(prev);
    prev_delta = delta;
  }
}

bool EncodePoints(const PointColumns& columns, std::string* out) {
  const size_t n = columns.timestamps.size();
  if (columns.lons.size() != n || columns.lats.size() != n) return false;

  std::vector<uint64_t> dod;
  DeltaOfDeltaEncode(columns.timestamps, &dod);
  std::string ts_blob;
  if (!Simple8bEncode(dod, &ts_blob)) return false;

  GorillaEncoder lon_enc, lat_enc;
  for (size_t i = 0; i < n; i++) {
    lon_enc.Add(columns.lons[i]);
    lat_enc.Add(columns.lats[i]);
  }
  const std::string lon_blob = lon_enc.Finish();
  const std::string lat_blob = lat_enc.Finish();

  PutVarint32(out, static_cast<uint32_t>(n));
  PutLengthPrefixedSlice(out, ts_blob);
  PutLengthPrefixedSlice(out, lon_blob);
  PutLengthPrefixedSlice(out, lat_blob);
  return true;
}

bool DecodePoints(const char* data, size_t size, PointColumns* columns) {
  Slice input(data, size);
  uint32_t n;
  if (!GetVarint32(&input, &n)) return false;
  Slice ts_blob, lon_blob, lat_blob;
  if (!GetLengthPrefixedSlice(&input, &ts_blob) ||
      !GetLengthPrefixedSlice(&input, &lon_blob) ||
      !GetLengthPrefixedSlice(&input, &lat_blob)) {
    return false;
  }

  std::vector<uint64_t> dod;
  if (!Simple8bDecode(ts_blob.data(), ts_blob.size(), n, &dod)) return false;
  DeltaOfDeltaDecode(dod, &columns->timestamps);

  GorillaDecoder lon_dec(lon_blob.data(), lon_blob.size());
  if (!lon_dec.Decode(n, &columns->lons)) return false;
  GorillaDecoder lat_dec(lat_blob.data(), lat_blob.size());
  if (!lat_dec.Decode(n, &columns->lats)) return false;
  return true;
}

}  // namespace tman::compress
