#ifndef TMAN_COMPRESS_SIMPLE8B_H_
#define TMAN_COMPRESS_SIMPLE8B_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tman::compress {

// Simple8b integer packing (Anh & Moffat, 2010): each 64-bit word stores a
// 4-bit selector and up to 240 small integers at a fixed bit width. Used
// for the timestamp column of the trajectory `points` blob.
//
// Values of 60 bits or more cannot be packed; Encode returns false for
// them (callers zigzag/delta first, which keeps magnitudes small).
bool Simple8bEncode(const std::vector<uint64_t>& values, std::string* out);

// Decodes exactly `count` values appended by Simple8bEncode.
bool Simple8bDecode(const char* data, size_t size, size_t count,
                    std::vector<uint64_t>* out);

}  // namespace tman::compress

#endif  // TMAN_COMPRESS_SIMPLE8B_H_
