#ifndef TMAN_COMPRESS_BYTE_CODEC_H_
#define TMAN_COMPRESS_BYTE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace tman::compress {

// Dependency-free byte-oriented LZ codec used as the generic fallback for
// SSTable block compression (restart arrays, repeated key prefixes and
// value headers compress well even when the payload is not point data).
//
// Format: varint32 raw_size, then a token stream. Each token is a varint32
// `tag`; tag&1==0 encodes a literal run of tag>>1 bytes (copied verbatim),
// tag&1==1 encodes a back-reference of length tag>>1 (>= kMinMatch) whose
// varint32 distance follows. Greedy matching against a small hash table of
// 4-byte sequences; blocks are a few KiB so offsets stay tiny.

inline constexpr size_t kByteLzMinMatch = 4;

// Appends the encoded form of data[0,n) to *out.
void ByteLzEncode(const char* data, size_t n, std::string* out);

// Decodes a ByteLzEncode stream, appending to *out. Returns false on any
// malformed input (bad varint, distance past start, truncated literal run,
// or output size mismatch vs the declared raw_size).
bool ByteLzDecode(const char* data, size_t n, std::string* out);

}  // namespace tman::compress

#endif  // TMAN_COMPRESS_BYTE_CODEC_H_
