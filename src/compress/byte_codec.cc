#include "compress/byte_codec.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace tman::compress {

namespace {

// 2^13 slots is plenty for block-sized inputs (4-64 KiB); each slot holds
// the most recent position whose 4-byte prefix hashed there.
constexpr uint32_t kHashBits = 13;
constexpr uint32_t kHashSize = 1u << kHashBits;

inline uint32_t HashFour(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void PutLiteralRun(const char* data, size_t begin, size_t end,
                          std::string* out) {
  while (begin < end) {
    const size_t len = end - begin;
    PutVarint32(out, static_cast<uint32_t>(len) << 1);
    out->append(data + begin, len);
    begin = end;
  }
}

}  // namespace

void ByteLzEncode(const char* data, size_t n, std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(n));
  if (n == 0) return;

  uint32_t table[kHashSize];
  for (uint32_t& slot : table) slot = UINT32_MAX;

  size_t pos = 0;
  size_t literal_start = 0;
  // Stop probing once fewer than kMinMatch bytes remain.
  const size_t match_limit = n >= kByteLzMinMatch ? n - kByteLzMinMatch + 1 : 0;
  while (pos < match_limit) {
    const uint32_t h = HashFour(data + pos);
    const uint32_t candidate = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (candidate != UINT32_MAX &&
        std::memcmp(data + candidate, data + pos, kByteLzMinMatch) == 0) {
      size_t len = kByteLzMinMatch;
      while (pos + len < n && data[candidate + len] == data[pos + len]) len++;
      PutLiteralRun(data, literal_start, pos, out);
      PutVarint32(out, (static_cast<uint32_t>(len) << 1) | 1);
      PutVarint32(out, static_cast<uint32_t>(pos - candidate));
      // Seed the table across the match so later data can reference it.
      const size_t seed_end = std::min(pos + len, match_limit);
      for (size_t i = pos + 1; i < seed_end; i++) {
        table[HashFour(data + i)] = static_cast<uint32_t>(i);
      }
      pos += len;
      literal_start = pos;
    } else {
      pos++;
    }
  }
  PutLiteralRun(data, literal_start, n, out);
}

bool ByteLzDecode(const char* data, size_t n, std::string* out) {
  const char* p = data;
  const char* limit = data + n;
  uint32_t raw_size = 0;
  p = GetVarint32Ptr(p, limit, &raw_size);
  if (p == nullptr) return false;

  const size_t base = out->size();
  out->reserve(base + raw_size);
  while (p < limit) {
    uint32_t tag = 0;
    p = GetVarint32Ptr(p, limit, &tag);
    if (p == nullptr) return false;
    const size_t len = tag >> 1;
    if (len == 0) return false;
    if (out->size() - base + len > raw_size) return false;
    if ((tag & 1) == 0) {
      if (static_cast<size_t>(limit - p) < len) return false;
      out->append(p, len);
      p += len;
    } else {
      if (len < kByteLzMinMatch) return false;
      uint32_t distance = 0;
      p = GetVarint32Ptr(p, limit, &distance);
      if (p == nullptr) return false;
      const size_t produced = out->size() - base;
      if (distance == 0 || distance > produced) return false;
      // Overlapping copies are legal (distance < len repeats a pattern), so
      // copy byte-by-byte from the already-produced output.
      size_t from = out->size() - distance;
      for (size_t i = 0; i < len; i++) out->push_back((*out)[from + i]);
    }
  }
  return out->size() - base == raw_size;
}

}  // namespace tman::compress
