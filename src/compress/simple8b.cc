#include "compress/simple8b.h"

#include "common/coding.h"

namespace tman::compress {

namespace {

// selector -> (number of values per word, bits per value). Selector 0
// packs 240 zero-valued entries, selector 1 packs 120.
struct Packing {
  uint32_t n;
  uint32_t bits;
};

constexpr Packing kPackings[16] = {
    {240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4},
    {12, 5},  {10, 6},  {8, 7},  {7, 8},  {6, 10}, {5, 12},
    {4, 15},  {3, 20},  {2, 30}, {1, 60},
};

}  // namespace

bool Simple8bEncode(const std::vector<uint64_t>& values, std::string* out) {
  size_t pos = 0;
  while (pos < values.size()) {
    // Find the densest packing that fits the next run of values.
    bool packed = false;
    for (int sel = 0; sel < 16; sel++) {
      const Packing p = kPackings[sel];
      const size_t available = values.size() - pos;
      const size_t n = p.n < available ? p.n : available;
      if (p.bits == 0) {
        // Zero-run selectors require a full run of zeros.
        if (available < p.n) continue;
        bool all_zero = true;
        for (size_t i = 0; i < p.n; i++) {
          if (values[pos + i] != 0) {
            all_zero = false;
            break;
          }
        }
        if (!all_zero) continue;
        uint64_t word = static_cast<uint64_t>(sel) << 60;
        PutFixed64(out, word);
        pos += p.n;
        packed = true;
        break;
      }
      if (n < p.n && sel != 15) {
        // Not enough remaining values to fill this word; only acceptable
        // if no denser selector fits, so fall through to sparser ones.
      }
      // All of the next min(p.n, available) values must fit in p.bits, and
      // the word is only usable if it can be fully populated (pad-free
      // encoding keeps the decoder exact). Allow partial fill by padding
      // with zeros when this is the sparsest viable selector.
      const uint64_t max_value =
          p.bits >= 64 ? UINT64_MAX : ((1ULL << p.bits) - 1);
      bool fits = true;
      const size_t take = p.n <= available ? p.n : available;
      for (size_t i = 0; i < take; i++) {
        if (values[pos + i] > max_value) {
          fits = false;
          break;
        }
      }
      if (!fits) continue;
      if (take < p.n) {
        // Partial word: check that no denser selector both fits and fills;
        // padding zeros is safe because the decoder reads an exact count.
      }
      uint64_t word = static_cast<uint64_t>(sel) << 60;
      for (size_t i = 0; i < take; i++) {
        word |= values[pos + i] << (p.bits * i);
      }
      PutFixed64(out, word);
      pos += take;
      packed = true;
      break;
    }
    if (!packed) return false;  // value needs more than 60 bits
  }
  return true;
}

bool Simple8bDecode(const char* data, size_t size, size_t count,
                    std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  size_t offset = 0;
  while (out->size() < count) {
    if (offset + 8 > size) return false;
    const uint64_t word = DecodeFixed64(data + offset);
    offset += 8;
    const int sel = static_cast<int>(word >> 60);
    const Packing p = kPackings[sel];
    if (p.bits == 0) {
      for (uint32_t i = 0; i < p.n && out->size() < count; i++) {
        out->push_back(0);
      }
      continue;
    }
    const uint64_t mask = (p.bits >= 64) ? UINT64_MAX : ((1ULL << p.bits) - 1);
    for (uint32_t i = 0; i < p.n && out->size() < count; i++) {
      out->push_back((word >> (p.bits * i)) & mask);
    }
  }
  return out->size() == count;
}

}  // namespace tman::compress
