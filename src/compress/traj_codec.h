#ifndef TMAN_COMPRESS_TRAJ_CODEC_H_
#define TMAN_COMPRESS_TRAJ_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tman::compress {

// Columnar, lossless codec for the `points` column of a trajectory row
// (paper §IV-B(1)). The three coordinate arrays are compressed
// independently:
//   timestamps -> delta-of-delta, zigzag, simple8b
//   longitude  -> Gorilla XOR bitstream
//   latitude   -> Gorilla XOR bitstream
// Layout: varint32 count | varint32 ts_len | ts | varint32 lon_len | lon
//         | varint32 lat_len | lat

struct PointColumns {
  std::vector<int64_t> timestamps;
  std::vector<double> lons;
  std::vector<double> lats;
};

// Encodes the columns; all three vectors must have equal length.
bool EncodePoints(const PointColumns& columns, std::string* out);

// Decodes a blob produced by EncodePoints.
bool DecodePoints(const char* data, size_t size, PointColumns* columns);

// Timestamp helper codecs, exposed for tests and benchmarks.
void DeltaOfDeltaEncode(const std::vector<int64_t>& values,
                        std::vector<uint64_t>* out);
void DeltaOfDeltaDecode(const std::vector<uint64_t>& encoded,
                        std::vector<int64_t>* out);

}  // namespace tman::compress

#endif  // TMAN_COMPRESS_TRAJ_CODEC_H_
