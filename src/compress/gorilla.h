#ifndef TMAN_COMPRESS_GORILLA_H_
#define TMAN_COMPRESS_GORILLA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tman::compress {

// Lossless XOR compression for double series (the Gorilla/Elf family used
// by the paper for the latitude/longitude columns). Consecutive GPS fixes
// share exponent and high mantissa bits, so XORs are mostly zero.
class GorillaEncoder {
 public:
  void Add(double value);
  // Finalizes and returns the bitstream. The encoder is then exhausted.
  std::string Finish();
  size_t count() const { return count_; }

 private:
  void WriteBit(bool bit);
  void WriteBits(uint64_t value, int bits);

  std::string buffer_;
  uint8_t bit_buffer_ = 0;
  int bit_count_ = 0;
  uint64_t prev_ = 0;
  int prev_leading_ = -1;
  int prev_trailing_ = -1;
  size_t count_ = 0;
};

class GorillaDecoder {
 public:
  GorillaDecoder(const char* data, size_t size)
      : data_(data), size_(size) {}

  // Decodes exactly `count` doubles; false on malformed input.
  bool Decode(size_t count, std::vector<double>* out);

 private:
  bool ReadBit(bool* bit);
  bool ReadBits(int bits, uint64_t* value);

  const char* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;
};

}  // namespace tman::compress

#endif  // TMAN_COMPRESS_GORILLA_H_
