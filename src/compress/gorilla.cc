#include "compress/gorilla.h"

#include <bit>
#include <cstring>

namespace tman::compress {

namespace {

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

void GorillaEncoder::WriteBit(bool bit) {
  bit_buffer_ = static_cast<uint8_t>((bit_buffer_ << 1) | (bit ? 1 : 0));
  bit_count_++;
  if (bit_count_ == 8) {
    buffer_.push_back(static_cast<char>(bit_buffer_));
    bit_buffer_ = 0;
    bit_count_ = 0;
  }
}

void GorillaEncoder::WriteBits(uint64_t value, int bits) {
  for (int i = bits - 1; i >= 0; i--) {
    WriteBit((value >> i) & 1);
  }
}

void GorillaEncoder::Add(double value) {
  const uint64_t bits = DoubleToBits(value);
  if (count_ == 0) {
    WriteBits(bits, 64);
  } else {
    const uint64_t x = bits ^ prev_;
    if (x == 0) {
      WriteBit(false);
    } else {
      WriteBit(true);
      int leading = std::countl_zero(x);
      int trailing = std::countr_zero(x);
      if (leading > 31) leading = 31;  // 5-bit field
      if (prev_leading_ >= 0 && leading >= prev_leading_ &&
          trailing >= prev_trailing_) {
        // Control bit 0: reuse the previous window.
        WriteBit(false);
        const int meaningful = 64 - prev_leading_ - prev_trailing_;
        WriteBits(x >> prev_trailing_, meaningful);
      } else {
        // Control bit 1: new window: 5 bits leading, 6 bits length.
        WriteBit(true);
        const int meaningful = 64 - leading - trailing;
        WriteBits(static_cast<uint64_t>(leading), 5);
        WriteBits(static_cast<uint64_t>(meaningful), 6);
        WriteBits(x >> trailing, meaningful);
        prev_leading_ = leading;
        prev_trailing_ = trailing;
      }
    }
  }
  prev_ = bits;
  count_++;
}

std::string GorillaEncoder::Finish() {
  while (bit_count_ != 0) {
    WriteBit(false);  // pad the final byte
  }
  return std::move(buffer_);
}

bool GorillaDecoder::ReadBit(bool* bit) {
  if (byte_pos_ >= size_) return false;
  const uint8_t byte = static_cast<uint8_t>(data_[byte_pos_]);
  *bit = (byte >> (7 - bit_pos_)) & 1;
  bit_pos_++;
  if (bit_pos_ == 8) {
    bit_pos_ = 0;
    byte_pos_++;
  }
  return true;
}

bool GorillaDecoder::ReadBits(int bits, uint64_t* value) {
  uint64_t result = 0;
  for (int i = 0; i < bits; i++) {
    bool bit;
    if (!ReadBit(&bit)) return false;
    result = (result << 1) | (bit ? 1 : 0);
  }
  *value = result;
  return true;
}

bool GorillaDecoder::Decode(size_t count, std::vector<double>* out) {
  out->clear();
  if (count == 0) return true;
  out->reserve(count);

  uint64_t prev;
  if (!ReadBits(64, &prev)) return false;
  out->push_back(BitsToDouble(prev));

  int leading = 0;
  int meaningful = 0;
  while (out->size() < count) {
    bool changed;
    if (!ReadBit(&changed)) return false;
    if (!changed) {
      out->push_back(BitsToDouble(prev));
      continue;
    }
    bool new_window;
    if (!ReadBit(&new_window)) return false;
    if (new_window) {
      uint64_t lead_bits, len_bits;
      if (!ReadBits(5, &lead_bits) || !ReadBits(6, &len_bits)) return false;
      leading = static_cast<int>(lead_bits);
      meaningful = static_cast<int>(len_bits);
      if (meaningful == 0) meaningful = 64;  // 6-bit overflow encoding
    }
    if (meaningful == 0 || leading + meaningful > 64) return false;
    uint64_t xor_bits;
    if (!ReadBits(meaningful, &xor_bits)) return false;
    const int trailing = 64 - leading - meaningful;
    prev ^= xor_bits << trailing;
    out->push_back(BitsToDouble(prev));
  }
  return true;
}

}  // namespace tman::compress
