#ifndef TMAN_INDEX_SHAPE_ENCODING_H_
#define TMAN_INDEX_SHAPE_ENCODING_H_

#include <cstdint>
#include <vector>

namespace tman::index {

// Shape-code optimisation (paper §IV-A2(3)): renumber the shapes actually
// used inside an enlarged element so that spatially similar shapes receive
// adjacent final codes, which clusters similar trajectories in the rowkey
// space. Maximising the cumulative Jaccard similarity of adjacent codes is
// a longest-Hamiltonian-path variant of the TSP; the paper solves it with
// a greedy heuristic and a genetic algorithm.

// Jaccard similarity of two cell bitsets: |a&b| / |a|b|. Two empty shapes
// are defined as identical (similarity 1).
double JaccardSimilarity(uint32_t a, uint32_t b);

// Sum of similarities along a visiting order (Eq. 5's objective).
double CumulativeSimilarity(const std::vector<uint32_t>& shapes,
                            const std::vector<uint32_t>& order);

enum class ShapeOrderMethod {
  kBitmap,  // identity order (raw codes, no optimisation)
  kGreedy,  // nearest-neighbour on similarity
  kGenetic, // genetic algorithm with order crossover
};

struct GeneticParams {
  int population = 24;
  int generations = 60;
  double mutation_rate = 0.2;
  uint64_t seed = 1;
};

// Returns a permutation `order` of [0, shapes.size()): the shape at
// order[p] receives final code p.
std::vector<uint32_t> OptimizeShapeOrder(const std::vector<uint32_t>& shapes,
                                         ShapeOrderMethod method,
                                         const GeneticParams& params = {});

}  // namespace tman::index

#endif  // TMAN_INDEX_SHAPE_ENCODING_H_
