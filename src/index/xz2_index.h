#ifndef TMAN_INDEX_XZ2_INDEX_H_
#define TMAN_INDEX_XZ2_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "index/quadkey.h"
#include "index/value_range.h"

namespace tman::index {

// XZ-Ordering (Böhm et al. 1999) over normalized [0,1]^2 space — the
// spatial index used by GeoMesa/TrajMesa/JUST and the paper's baseline.
// An object's MBR is represented by the deepest cell whose 2x-enlargement
// covers the MBR and that contains the MBR's lower-left corner.
struct XZ2Config {
  int max_resolution = 15;  // g
};

class XZ2Index {
 public:
  explicit XZ2Index(const XZ2Config& config) : cfg_(config) {}

  const XZ2Config& config() const { return cfg_; }

  // Encodes a normalized MBR to its XZ2 code.
  uint64_t Encode(const geo::MBR& mbr) const;

  // The anchor cell for a normalized MBR (exposed for TShape reuse).
  QuadCell AnchorCell(const geo::MBR& mbr) const;

  struct QueryStats {
    uint64_t elements_visited = 0;
  };

  // Candidate code intervals for a spatial range query over normalized
  // space (BFS: covered enlarged elements contribute whole subtree ranges,
  // intersecting ones contribute themselves and recurse).
  std::vector<ValueRange> QueryRanges(const geo::MBR& query,
                                      QueryStats* stats = nullptr) const;

 private:
  XZ2Config cfg_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_XZ2_INDEX_H_
