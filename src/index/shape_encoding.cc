#include "index/shape_encoding.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/random.h"

namespace tman::index {

double JaccardSimilarity(uint32_t a, uint32_t b) {
  const int inter = std::popcount(a & b);
  const int uni = std::popcount(a | b);
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CumulativeSimilarity(const std::vector<uint32_t>& shapes,
                            const std::vector<uint32_t>& order) {
  double total = 0;
  for (size_t i = 0; i + 1 < order.size(); i++) {
    total += JaccardSimilarity(shapes[order[i]], shapes[order[i + 1]]);
  }
  return total;
}

namespace {

std::vector<uint32_t> GreedyOrder(const std::vector<uint32_t>& shapes) {
  const size_t n = shapes.size();
  std::vector<uint32_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  uint32_t current = 0;
  order.push_back(current);
  visited[current] = true;
  for (size_t step = 1; step < n; step++) {
    double best_sim = -1;
    uint32_t best = 0;
    for (uint32_t j = 0; j < n; j++) {
      if (visited[j]) continue;
      const double sim = JaccardSimilarity(shapes[current], shapes[j]);
      if (sim > best_sim) {
        best_sim = sim;
        best = j;
      }
    }
    order.push_back(best);
    visited[best] = true;
    current = best;
  }
  return order;
}

// Order crossover (OX): copies a slice of parent a, fills the rest in
// parent b's order.
std::vector<uint32_t> OrderCrossover(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b,
                                     Random* rnd) {
  const size_t n = a.size();
  size_t lo = rnd->Uniform(n);
  size_t hi = rnd->Uniform(n);
  if (lo > hi) std::swap(lo, hi);
  std::vector<uint32_t> child(n, UINT32_MAX);
  std::vector<bool> used(n, false);
  for (size_t i = lo; i <= hi; i++) {
    child[i] = a[i];
    used[a[i]] = true;
  }
  size_t pos = 0;
  for (size_t i = 0; i < n; i++) {
    if (used[b[i]]) continue;
    while (child[pos] != UINT32_MAX) pos++;
    child[pos] = b[i];
  }
  return child;
}

std::vector<uint32_t> GeneticOrder(const std::vector<uint32_t>& shapes,
                                   const GeneticParams& params) {
  const size_t n = shapes.size();
  Random rnd(params.seed ^ (n * 0x9e3779b9ULL));

  // Seed the population with the greedy solution plus random permutations.
  std::vector<std::vector<uint32_t>> population;
  population.push_back(GreedyOrder(shapes));
  for (int p = 1; p < params.population; p++) {
    std::vector<uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    for (size_t i = n; i > 1; i--) {
      std::swap(perm[i - 1], perm[rnd.Uniform(i)]);
    }
    population.push_back(std::move(perm));
  }

  auto fitness = [&shapes](const std::vector<uint32_t>& order) {
    return CumulativeSimilarity(shapes, order);
  };

  std::vector<uint32_t> best = population[0];
  double best_fitness = fitness(best);

  for (int gen = 0; gen < params.generations; gen++) {
    std::vector<std::vector<uint32_t>> next;
    next.reserve(population.size());
    next.push_back(best);  // elitism
    while (next.size() < population.size()) {
      // Binary tournaments for both parents.
      auto tournament = [&]() -> const std::vector<uint32_t>& {
        const auto& x = population[rnd.Uniform(population.size())];
        const auto& y = population[rnd.Uniform(population.size())];
        return fitness(x) >= fitness(y) ? x : y;
      };
      std::vector<uint32_t> child =
          OrderCrossover(tournament(), tournament(), &rnd);
      if (rnd.Bernoulli(params.mutation_rate) && n >= 2) {
        const size_t i = rnd.Uniform(n);
        const size_t j = rnd.Uniform(n);
        std::swap(child[i], child[j]);
      }
      next.push_back(std::move(child));
    }
    population = std::move(next);
    for (const auto& order : population) {
      const double f = fitness(order);
      if (f > best_fitness) {
        best_fitness = f;
        best = order;
      }
    }
  }
  return best;
}

}  // namespace

std::vector<uint32_t> OptimizeShapeOrder(const std::vector<uint32_t>& shapes,
                                         ShapeOrderMethod method,
                                         const GeneticParams& params) {
  const size_t n = shapes.size();
  if (n == 0) return {};
  if (n == 1) return {0};
  switch (method) {
    case ShapeOrderMethod::kBitmap: {
      // Raw order: ascending bitmap value.
      std::vector<uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&shapes](uint32_t a, uint32_t b) {
        return shapes[a] < shapes[b];
      });
      return order;
    }
    case ShapeOrderMethod::kGreedy:
      return GreedyOrder(shapes);
    case ShapeOrderMethod::kGenetic:
      return GeneticOrder(shapes, params);
  }
  return {};
}

}  // namespace tman::index
