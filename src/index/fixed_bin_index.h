#ifndef TMAN_INDEX_FIXED_BIN_INDEX_H_
#define TMAN_INDEX_FIXED_BIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/value_range.h"

namespace tman::index {

// ST-Hadoop-style temporal partitioning (paper §II-1): disjoint fixed-size
// time slices; a trajectory is stored once in *every* slice its time range
// intersects (duplicated storage), and a query reads every intersecting
// slice and deduplicates.
struct FixedBinConfig {
  int64_t origin = 0;
  int64_t bin_seconds = 24 * 3600;  // ST-Hadoop's daily slices
};

class FixedBinIndex {
 public:
  explicit FixedBinIndex(const FixedBinConfig& config) : cfg_(config) {}

  const FixedBinConfig& config() const { return cfg_; }

  int64_t BinOf(int64_t t) const { return (t - cfg_.origin) / cfg_.bin_seconds; }

  // All bins the range intersects: the trajectory is stored once per bin.
  std::vector<uint64_t> EncodeAll(int64_t ts, int64_t te) const {
    std::vector<uint64_t> bins;
    for (int64_t b = BinOf(ts); b <= BinOf(te); b++) {
      bins.push_back(static_cast<uint64_t>(b));
    }
    return bins;
  }

  std::vector<ValueRange> QueryRanges(int64_t ts, int64_t te) const {
    return {ValueRange{static_cast<uint64_t>(BinOf(ts)),
                       static_cast<uint64_t>(BinOf(te))}};
  }

 private:
  FixedBinConfig cfg_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_FIXED_BIN_INDEX_H_
