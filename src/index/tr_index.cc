#include "index/tr_index.h"

#include <algorithm>
#include <cassert>

namespace tman::index {

uint64_t TRIndex::Encode(int64_t ts, int64_t te) const {
  assert(ts <= te);
  const int64_t N = cfg_.max_periods;
  const int64_t i = PeriodOf(ts);
  int64_t j = PeriodOf(te);
  if (j - i > N - 1) j = i + N - 1;  // clamp over-long ranges
  return static_cast<uint64_t>(i * N + (j - i));
}

std::vector<ValueRange> TRIndex::QueryRanges(int64_t ts, int64_t te) const {
  const int64_t N = cfg_.max_periods;
  const int64_t i = PeriodOf(ts);
  const int64_t j = PeriodOf(te);
  std::vector<ValueRange> ranges;
  ranges.reserve(static_cast<size_t>(N));

  // Lemma 5 case 2: bins starting before TP_i must reach at least TP_i:
  // for k in [i-N+1, i), candidates are TB_{k,i} .. TB_{k,k+N-1}, whose
  // codes are contiguous (Lemma 1).
  for (int64_t k = i - N + 1; k < i; k++) {
    const uint64_t lo = static_cast<uint64_t>(k * N + (i - k));
    const uint64_t hi = static_cast<uint64_t>(k * N + (N - 1));
    ranges.push_back(ValueRange{lo, hi});
  }

  // Lemma 5 case 3: bins starting inside [TP_i, TP_j] all qualify; their
  // codes form one contiguous interval [TR(TB_{i,i}), TR(TB_{j,j+N-1})].
  ranges.push_back(ValueRange{static_cast<uint64_t>(i * N),
                              static_cast<uint64_t>(j * N + (N - 1))});
  // The k = i-1 look-back interval ends exactly where the main interval
  // starts; merging it (and any other adjacencies) saves scan windows.
  return MergeRanges(std::move(ranges));
}

void TRIndex::DecodeBin(uint64_t value, int64_t* bin_start,
                        int64_t* bin_end) const {
  const int64_t N = cfg_.max_periods;
  const int64_t v = static_cast<int64_t>(value);
  const int64_t i = v / N;
  const int64_t span = v % N;
  *bin_start = PeriodStart(i);
  *bin_end = PeriodStart(i + span + 1);
}

}  // namespace tman::index
