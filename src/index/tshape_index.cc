#include "index/tshape_index.h"

#include <cassert>
#include <cmath>
#include <deque>

namespace tman::index {

TShapeIndex::TShapeIndex(const TShapeConfig& config) : cfg_(config) {
  // 64-bit capacity check from §IV-A2(2): 2g+1+alpha*beta <= 64.
  assert(2 * cfg_.max_resolution + 1 + cfg_.shape_bits() <= 64);
  assert(cfg_.alpha >= 2 && cfg_.beta >= 2);
}

int TShapeIndex::Resolution(const geo::MBR& mbr) const {
  const double extent =
      std::max(mbr.width() / cfg_.alpha, mbr.height() / cfg_.beta);
  int l;
  if (extent <= 0) {
    return cfg_.max_resolution;
  }
  // Lemma 3: l = floor(log_0.5(max(w/alpha, h/beta))).
  l = static_cast<int>(std::floor(std::log2(1.0 / extent)));
  l = std::min(l, cfg_.max_resolution);
  if (l < 1) return 1;

  // Lemma 4: the enlarged element anchored at the lower-left corner's cell
  // must reach past the MBR on both axes; otherwise use l-1.
  const double w = 1.0 / static_cast<double>(1u << l);
  const double ax = std::floor(mbr.min_x / w) * w;
  const double ay = std::floor(mbr.min_y / w) * w;
  if (ax + cfg_.alpha * w >= mbr.max_x && ay + cfg_.beta * w >= mbr.max_y) {
    return l;
  }
  return std::max(1, l - 1);
}

TShapeEncoding TShapeIndex::Encode(
    const std::vector<geo::TimedPoint>& points) const {
  TShapeEncoding enc;
  const geo::MBR mbr = geo::ComputeMBR(points);
  const int r = Resolution(mbr);
  enc.anchor = CellContaining(mbr.min_x, mbr.min_y, r);
  enc.quad_code = QuadCode(enc.anchor, cfg_.max_resolution);

  enc.shape = 0;
  const double w = enc.anchor.size();
  for (int dy = 0; dy < cfg_.beta; dy++) {
    for (int dx = 0; dx < cfg_.alpha; dx++) {
      const geo::MBR cell{(enc.anchor.x + dx) * w, (enc.anchor.y + dy) * w,
                          (enc.anchor.x + dx + 1) * w,
                          (enc.anchor.y + dy + 1) * w};
      if (!mbr.Intersects(cell)) continue;
      if (geo::PolylineIntersectsRect(points, cell)) {
        enc.shape |= 1u << (dy * cfg_.alpha + dx);
      }
    }
  }
  if (enc.shape == 0 && !points.empty()) {
    // Numerical edge: the polyline grazes cell borders. Fall back to the
    // cell containing the first point so the shape is never empty.
    enc.shape = 1;
  }
  enc.index_value = IndexValue(enc.quad_code, enc.shape);
  return enc;
}

geo::MBR TShapeIndex::EnlargedRect(const QuadCell& anchor) const {
  const double w = anchor.size();
  return geo::MBR{anchor.x * w, anchor.y * w, (anchor.x + cfg_.alpha) * w,
                  (anchor.y + cfg_.beta) * w};
}

namespace {

bool TShapeIntersectsImpl(const TShapeConfig& cfg, const QuadCell& anchor,
                          uint32_t shape, const geo::MBR& query) {
  const double w = anchor.size();
  for (int dy = 0; dy < cfg.beta; dy++) {
    for (int dx = 0; dx < cfg.alpha; dx++) {
      if ((shape & (1u << (dy * cfg.alpha + dx))) == 0) continue;
      const geo::MBR cell{(anchor.x + dx) * w, (anchor.y + dy) * w,
                          (anchor.x + dx + 1) * w, (anchor.y + dy + 1) * w};
      if (query.Intersects(cell)) return true;
    }
  }
  return false;
}

}  // namespace

bool TShapeIndex::ShapeIntersects(const QuadCell& anchor, uint32_t shape,
                                  const geo::MBR& query) const {
  return TShapeIntersectsImpl(cfg_, anchor, shape, query);
}

std::vector<ValueRange> TShapeIndex::QueryRanges(const geo::MBR& query,
                                                 const ShapeLookup* lookup,
                                                 QueryStats* stats) const {
  std::vector<ValueRange> ranges;
  std::deque<QuadCell> queue;
  for (int q = 0; q < 4; q++) {
    queue.push_back(QuadCell{1, static_cast<uint32_t>(q >> 1),
                             static_cast<uint32_t>(q & 1)});
  }

  while (!queue.empty()) {
    const QuadCell cell = queue.front();
    queue.pop_front();
    if (stats != nullptr) stats->elements_visited++;

    const geo::MBR enlarged = EnlargedRect(cell);
    if (!query.Intersects(enlarged)) continue;  // disjoint: prune

    const uint64_t code = QuadCode(cell, cfg_.max_resolution);
    if (query.Contains(enlarged)) {
      // All shapes of all elements prefixed with this cell qualify.
      const uint64_t end_code =
          code + QuadSubtreeCount(cell.r, cfg_.max_resolution);
      ranges.push_back(
          ValueRange{IndexValue(code, 0), IndexValue(end_code, 0) - 1});
      continue;
    }

    // intersects: consult the used shapes (index cache) if available.
    if (lookup != nullptr) {
      for (const auto& [bits, final_code] : (*lookup)(code)) {
        if (stats != nullptr) stats->shapes_checked++;
        if (TShapeIntersectsImpl(cfg_, cell, bits, query)) {
          const uint64_t v = IndexValue(code, final_code);
          ranges.push_back(ValueRange{v, v});
        }
      }
    } else {
      // No index cache: cannot enumerate used shapes, so every shape code
      // of this element is a candidate (the push-down spatial filter
      // discards the misses).
      ranges.push_back(
          ValueRange{IndexValue(code, 0), IndexValue(code + 1, 0) - 1});
    }

    if (cell.r < cfg_.max_resolution) {
      for (int q = 0; q < 4; q++) {
        queue.push_back(cell.Child(q));
      }
    }
  }
  return MergeRanges(std::move(ranges));
}

}  // namespace tman::index
