#ifndef TMAN_INDEX_QUADKEY_H_
#define TMAN_INDEX_QUADKEY_H_

#include <cstdint>
#include <string>

#include "geo/geometry.h"

namespace tman::index {

// Quad-tree cell addressing in normalized [0,1]^2 space.
//
// A cell at resolution r is one of 2^r x 2^r grid squares identified by
// integer coordinates (x, y). Its quadrant sequence q1..qr (Fig. 2 of the
// paper) follows the recursive subdivision; quadrant numbering here is
// q = (x_bit << 1) | y_bit, i.e. 0=SW, 1=NW, 2=SE, 3=NE.
struct QuadCell {
  int r = 0;      // resolution (sequence length); r >= 1
  uint32_t x = 0;  // column in [0, 2^r)
  uint32_t y = 0;  // row in [0, 2^r)

  double size() const { return 1.0 / static_cast<double>(1u << r); }

  // Rectangle covered by the cell.
  geo::MBR Rect() const {
    const double w = size();
    return geo::MBR{x * w, y * w, (x + 1) * w, (y + 1) * w};
  }

  QuadCell Child(int quadrant) const {
    return QuadCell{r + 1, (x << 1) | static_cast<uint32_t>(quadrant >> 1),
                    (y << 1) | static_cast<uint32_t>(quadrant & 1)};
  }

  // Quadrant digit at step i (1-based) of the sequence.
  int QuadrantAt(int i) const {
    const int shift = r - i;
    const uint32_t xb = (x >> shift) & 1;
    const uint32_t yb = (y >> shift) & 1;
    return static_cast<int>((xb << 1) | yb);
  }

  // "0312"-style printable sequence (debugging / metadata).
  std::string Sequence() const;
};

// Depth-first order-preserving integer code of a quadrant sequence with
// maximum resolution g (paper Eq. 2):
//   code(Q) = sum_{i=1..r} (q_i * (4^{g-i+1}-1)/3 + 1) - 1
// Codes of all cells prefixed by Q are contiguous: [code, code+SubtreeCount).
uint64_t QuadCode(const QuadCell& cell, int g);

// Number of cells (including itself) in the subtree of a resolution-r cell:
//   sum_{i=r..g} 4^{i-r} = (4^{g-r+1} - 1) / 3.
uint64_t QuadSubtreeCount(int r, int g);

// The cell at resolution r containing point (px, py); coordinates are
// clamped into [0,1).
QuadCell CellContaining(double px, double py, int r);

}  // namespace tman::index

#endif  // TMAN_INDEX_QUADKEY_H_
