#ifndef TMAN_INDEX_XZT_INDEX_H_
#define TMAN_INDEX_XZT_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/value_range.h"

namespace tman::index {

// XZT temporal index (TrajMesa's design; the paper's baseline). The
// timeline is cut into long fixed periods (e.g. a week); each period is
// recursively halved into binary elements down to resolution g; every
// element is doubled into an "XElement". A time range is encoded as the
// deepest element whose XElement covers it and whose start period matches.
//
// The binary-dichotomy structure leaves up to a 1/2 "dead region" per
// element, which is what TR index improves on.
struct XZTConfig {
  int64_t origin = 0;
  int64_t period_seconds = 7LL * 24 * 3600;  // one week
  int max_resolution = 16;                   // g
};

class XZTIndex {
 public:
  explicit XZTIndex(const XZTConfig& config);

  const XZTConfig& config() const { return cfg_; }

  // Number of element codes inside one period.
  uint64_t CodesPerPeriod() const { return codes_per_period_; }

  uint64_t Encode(int64_t ts, int64_t te) const;

  // Candidate intervals for a temporal range query (BFS over the binary
  // element tree of every period overlapping the query).
  std::vector<ValueRange> QueryRanges(int64_t ts, int64_t te) const;

 private:
  // Code of a binary sequence (depth-first order preserving), base-2
  // analogue of Eq. 2. `depth` is the length of the sequence in `bits`
  // (most significant bit first).
  uint64_t SequenceCode(uint64_t bits, int depth) const;

  // Elements (including self) in the subtree of a depth-d element.
  uint64_t SubtreeCount(int depth) const {
    return (1ULL << (cfg_.max_resolution - depth + 1)) - 1;
  }

  XZTConfig cfg_;
  uint64_t codes_per_period_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_XZT_INDEX_H_
