#include "index/quadkey.h"

#include <algorithm>
#include <cassert>

namespace tman::index {

std::string QuadCell::Sequence() const {
  std::string seq;
  seq.reserve(r);
  for (int i = 1; i <= r; i++) {
    seq.push_back(static_cast<char>('0' + QuadrantAt(i)));
  }
  return seq;
}

uint64_t QuadCode(const QuadCell& cell, int g) {
  assert(cell.r >= 1 && cell.r <= g);
  uint64_t code = 0;
  for (int i = 1; i <= cell.r; i++) {
    const uint64_t qi = static_cast<uint64_t>(cell.QuadrantAt(i));
    const uint64_t subtree = ((1ULL << (2 * (g - i + 1))) - 1) / 3;
    code += qi * subtree + 1;
  }
  return code - 1;
}

uint64_t QuadSubtreeCount(int r, int g) {
  assert(r >= 1 && r <= g);
  return ((1ULL << (2 * (g - r + 1))) - 1) / 3;
}

QuadCell CellContaining(double px, double py, int r) {
  const uint32_t n = 1u << r;
  const double w = 1.0 / static_cast<double>(n);
  auto clamp_idx = [n](double v, double width) {
    int64_t idx = static_cast<int64_t>(v / width);
    if (v < 0) idx = 0;
    if (idx >= static_cast<int64_t>(n)) idx = n - 1;
    return static_cast<uint32_t>(std::max<int64_t>(0, idx));
  };
  return QuadCell{r, clamp_idx(px, w), clamp_idx(py, w)};
}

}  // namespace tman::index
