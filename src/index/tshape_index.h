#ifndef TMAN_INDEX_TSHAPE_INDEX_H_
#define TMAN_INDEX_TSHAPE_INDEX_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "geo/geometry.h"
#include "index/quadkey.h"
#include "index/value_range.h"

namespace tman::index {

// TShape index (paper §IV-A2): the spatial shape of a trajectory is
// represented inside an "enlarged element" of alpha x beta same-resolution
// quad cells anchored at the cell containing the MBR's lower-left corner.
// A bitset over those cells (the *shape code*) records which cells the
// polyline actually visits, so the index space is non-rectangular and far
// tighter than the XZ family's enlarged rectangles.
//
// Index value (Eq. 3): TShape(code(E), s) = (code(E) << alpha*beta) | s.
// With the index-cache optimisation, s is the *final code* assigned by the
// shape-order optimisation of §IV-A2(3) instead of the raw bitmap.
struct TShapeConfig {
  int alpha = 3;
  int beta = 3;
  int max_resolution = 15;  // g; requires 2g+1+alpha*beta <= 64

  int shape_bits() const { return alpha * beta; }
};

struct TShapeEncoding {
  QuadCell anchor;       // lower-left cell of the enlarged element
  uint64_t quad_code;    // code(E)
  uint32_t shape;        // raw shape bitmap (bit dy*alpha+dx)
  uint64_t index_value;  // Eq. 3 with the raw bitmap as shape code
};

// Supplies the shapes actually used in an enlarged element, as pairs of
// (raw bitmap, final code). Backed by TMan's index cache; nullptr-like
// absence switches queries to no-cache mode (whole-element ranges).
using ShapeLookup =
    std::function<std::vector<std::pair<uint32_t, uint32_t>>(uint64_t)>;

class TShapeIndex {
 public:
  explicit TShapeIndex(const TShapeConfig& config);

  const TShapeConfig& config() const { return cfg_; }

  // Resolution of the enlarged element for a normalized MBR (Lemmas 3-4).
  int Resolution(const geo::MBR& mbr) const;

  // Encodes a normalized polyline. Shape bit b = dy*alpha+dx is set iff
  // the polyline intersects cell (anchor.x+dx, anchor.y+dy).
  TShapeEncoding Encode(const std::vector<geo::TimedPoint>& points) const;

  // Index value for an element code and a (possibly re-encoded) shape code.
  uint64_t IndexValue(uint64_t quad_code, uint32_t shape_code) const {
    return (quad_code << cfg_.shape_bits()) | shape_code;
  }

  uint64_t QuadCodeOf(uint64_t index_value) const {
    return index_value >> cfg_.shape_bits();
  }
  uint32_t ShapeCodeOf(uint64_t index_value) const {
    return static_cast<uint32_t>(index_value) &
           ((1u << cfg_.shape_bits()) - 1);
  }

  // True if the shape bitmap anchored at `anchor` touches `query`.
  bool ShapeIntersects(const QuadCell& anchor, uint32_t shape,
                       const geo::MBR& query) const;

  struct QueryStats {
    uint64_t elements_visited = 0;
    uint64_t shapes_checked = 0;
  };

  // Algorithm 2. With `lookup`, intersecting elements contribute only the
  // used shapes that touch the query; without it (no index cache) they
  // contribute their entire shape-code range and the storage-layer filter
  // does the pruning.
  std::vector<ValueRange> QueryRanges(const geo::MBR& query,
                                      const ShapeLookup* lookup,
                                      QueryStats* stats = nullptr) const;

  // The rectangle of the full enlarged element of `anchor`.
  geo::MBR EnlargedRect(const QuadCell& anchor) const;

 private:
  TShapeConfig cfg_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_TSHAPE_INDEX_H_
