#ifndef TMAN_INDEX_XZSTAR_INDEX_H_
#define TMAN_INDEX_XZSTAR_INDEX_H_

#include <cstdint>
#include <vector>

#include "geo/geometry.h"
#include "index/tshape_index.h"
#include "index/value_range.h"

namespace tman::index {

// XZ* index (TraSS, ICDE'22; the paper's spatial baseline for similarity
// queries). The enlarged element is divided into 2x2 sub-quads and the
// index space is the combination of sub-quads the trajectory visits. As
// the paper notes (§V-F), XZ* is TShape with alpha=beta=2, raw bitmap
// shape codes, and no index cache; its query enumerates all 15 non-empty
// sub-quad combinations of each intersecting element.
class XZStarIndex {
 public:
  explicit XZStarIndex(int max_resolution)
      : tshape_(TShapeConfig{2, 2, max_resolution}) {}

  uint64_t Encode(const std::vector<geo::TimedPoint>& points) const {
    return tshape_.Encode(points).index_value;
  }

  TShapeEncoding EncodeFull(const std::vector<geo::TimedPoint>& points) const {
    return tshape_.Encode(points);
  }

  std::vector<ValueRange> QueryRanges(
      const geo::MBR& query, TShapeIndex::QueryStats* stats = nullptr) const {
    // All 15 non-empty bitmaps, coded by their raw value.
    static const std::vector<std::pair<uint32_t, uint32_t>> kAllShapes = [] {
      std::vector<std::pair<uint32_t, uint32_t>> shapes;
      for (uint32_t bits = 1; bits < 16; bits++) {
        shapes.emplace_back(bits, bits);
      }
      return shapes;
    }();
    ShapeLookup lookup = [](uint64_t) { return kAllShapes; };
    return tshape_.QueryRanges(query, &lookup, stats);
  }

  const TShapeIndex& tshape() const { return tshape_; }

 private:
  TShapeIndex tshape_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_XZSTAR_INDEX_H_
