#ifndef TMAN_INDEX_VALUE_RANGE_H_
#define TMAN_INDEX_VALUE_RANGE_H_

#include <cstdint>
#include <vector>

namespace tman::index {

// Closed interval [lo, hi] of index values. Query planning produces these;
// the storage layer turns each into one rowkey scan window per shard.
struct ValueRange {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool Contains(uint64_t v) const { return v >= lo && v <= hi; }
  uint64_t count() const { return hi - lo + 1; }

  friend bool operator==(const ValueRange& a, const ValueRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

// Sorts and merges adjacent/overlapping ranges to minimize scan windows.
std::vector<ValueRange> MergeRanges(std::vector<ValueRange> ranges);

// Total number of index values covered.
uint64_t TotalCount(const std::vector<ValueRange>& ranges);

}  // namespace tman::index

#endif  // TMAN_INDEX_VALUE_RANGE_H_
