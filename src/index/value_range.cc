#include "index/value_range.h"

#include <algorithm>

namespace tman::index {

std::vector<ValueRange> MergeRanges(std::vector<ValueRange> ranges) {
  if (ranges.empty()) return ranges;
  std::sort(ranges.begin(), ranges.end(),
            [](const ValueRange& a, const ValueRange& b) {
              return a.lo < b.lo || (a.lo == b.lo && a.hi < b.hi);
            });
  std::vector<ValueRange> merged;
  merged.push_back(ranges[0]);
  for (size_t i = 1; i < ranges.size(); i++) {
    ValueRange& last = merged.back();
    // Merge if overlapping or exactly adjacent.
    if (ranges[i].lo <= last.hi + 1 && last.hi != UINT64_MAX) {
      last.hi = std::max(last.hi, ranges[i].hi);
    } else if (ranges[i].lo <= last.hi) {
      last.hi = std::max(last.hi, ranges[i].hi);
    } else {
      merged.push_back(ranges[i]);
    }
  }
  return merged;
}

uint64_t TotalCount(const std::vector<ValueRange>& ranges) {
  uint64_t total = 0;
  for (const ValueRange& r : ranges) total += r.count();
  return total;
}

}  // namespace tman::index
