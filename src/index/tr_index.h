#ifndef TMAN_INDEX_TR_INDEX_H_
#define TMAN_INDEX_TR_INDEX_H_

#include <cstdint>
#include <vector>

#include "index/value_range.h"

namespace tman::index {

// TR index (paper §IV-A1): the timeline is cut into fixed-length *time
// periods*; a trajectory's time range [ts, te] is represented by the *time
// bin* TB_{i,j} of consecutive periods containing it. Bins are limited to
// N periods. Encoding (Eq. 1):
//
//   TR(TB_{i,j}) = i * N + (j - i)
//
// which is unique, keeps bins from one period contiguous (Lemma 1), and
// keeps bins of adjacent periods within 2N-1 of each other (Lemma 2).
struct TRConfig {
  int64_t origin = 0;         // timeline start (paper: UNIX epoch)
  int64_t period_seconds = 1800;  // paper sweeps 10min..8h; default 30min
  int64_t max_periods = 48;   // N: longest representable bin
};

class TRIndex {
 public:
  explicit TRIndex(const TRConfig& config) : cfg_(config) {}

  const TRConfig& config() const { return cfg_; }

  // Index of the period containing t.
  int64_t PeriodOf(int64_t t) const {
    int64_t d = t - cfg_.origin;
    // Floor division for times before the origin.
    return d >= 0 ? d / cfg_.period_seconds
                  : -((-d + cfg_.period_seconds - 1) / cfg_.period_seconds);
  }

  // Start time of period i.
  int64_t PeriodStart(int64_t i) const {
    return cfg_.origin + i * cfg_.period_seconds;
  }

  // Eq. 1. Ranges longer than N periods are clamped to N. The paper's
  // preprocessing splits such trajectories; configure N to cover the
  // longest stored range, because a query that touches only the clamped
  // tail of an over-long range would miss it.
  uint64_t Encode(int64_t ts, int64_t te) const;

  // Candidate index-value intervals for a temporal range query [ts, te]
  // (Algorithm 1 / Lemma 5). At most N intervals.
  std::vector<ValueRange> QueryRanges(int64_t ts, int64_t te) const;

  // Inverse of Encode: the [start, end) time span of the bin for `value`.
  void DecodeBin(uint64_t value, int64_t* bin_start, int64_t* bin_end) const;

 private:
  TRConfig cfg_;
};

}  // namespace tman::index

#endif  // TMAN_INDEX_TR_INDEX_H_
