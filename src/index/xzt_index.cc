#include "index/xzt_index.h"

#include <cassert>
#include <deque>

namespace tman::index {

XZTIndex::XZTIndex(const XZTConfig& config) : cfg_(config) {
  // Total codes in a period: all elements of depths 1..g plus the root.
  // Root has code 0; depth-1 subtrees are contiguous after it.
  codes_per_period_ = SubtreeCount(0);
}

uint64_t XZTIndex::SequenceCode(uint64_t bits, int depth) const {
  // code(q1..qd) = sum_i (q_i * (2^(g-i+1) - 1) + 1), root = 0.
  uint64_t code = 0;
  for (int i = 1; i <= depth; i++) {
    const uint64_t qi = (bits >> (depth - i)) & 1;
    code += qi * ((1ULL << (cfg_.max_resolution - i + 1)) - 1) + 1;
  }
  return code;
}

uint64_t XZTIndex::Encode(int64_t ts, int64_t te) const {
  assert(ts <= te);
  const int64_t period =
      (ts - cfg_.origin) / cfg_.period_seconds;  // data after origin
  const int64_t pstart = cfg_.origin + period * cfg_.period_seconds;

  // Descend while the child containing ts still has an XElement covering
  // [ts, te].
  uint64_t bits = 0;
  int depth = 0;
  int64_t elem_start = pstart;
  int64_t elem_len = cfg_.period_seconds;
  while (depth < cfg_.max_resolution) {
    const int64_t half = elem_len / 2;
    if (half == 0) break;
    // Child containing ts.
    const int child = (ts - elem_start) >= half ? 1 : 0;
    const int64_t child_start = elem_start + child * half;
    // XElement of the child is [child_start, child_start + 2*half).
    if (te < child_start + 2 * half) {
      bits = (bits << 1) | static_cast<uint64_t>(child);
      depth++;
      elem_start = child_start;
      elem_len = half;
    } else {
      break;
    }
  }
  return static_cast<uint64_t>(period) * codes_per_period_ +
         SequenceCode(bits, depth);
}

std::vector<ValueRange> XZTIndex::QueryRanges(int64_t ts, int64_t te) const {
  std::vector<ValueRange> ranges;
  const int64_t first_period = (ts - cfg_.origin) / cfg_.period_seconds;
  // Trajectories are stored in the period containing their start time, and
  // their XElement can extend one full period to the right; conversely a
  // query can be matched by trajectories starting one period earlier.
  const int64_t last_period = (te - cfg_.origin) / cfg_.period_seconds;

  struct Node {
    uint64_t bits;
    int depth;
    int64_t start;
    int64_t len;
  };

  for (int64_t p = first_period - 1; p <= last_period; p++) {
    if (p < 0) continue;
    const uint64_t base = static_cast<uint64_t>(p) * codes_per_period_;
    const int64_t pstart = cfg_.origin + p * cfg_.period_seconds;
    std::deque<Node> queue;
    queue.push_back(Node{0, 0, pstart, cfg_.period_seconds});
    while (!queue.empty()) {
      const Node node = queue.front();
      queue.pop_front();
      const int64_t x_end = node.start + 2 * node.len;  // XElement bound
      if (node.start > te || x_end <= ts) continue;     // disjoint
      const uint64_t code = base + SequenceCode(node.bits, node.depth);
      if (ts <= node.start && x_end - 1 <= te) {
        // Query covers the whole XElement: all descendants qualify.
        ranges.push_back(
            ValueRange{code, code + SubtreeCount(node.depth) - 1});
        continue;
      }
      ranges.push_back(ValueRange{code, code});
      if (node.depth < cfg_.max_resolution && node.len >= 2) {
        const int64_t half = node.len / 2;
        queue.push_back(Node{node.bits << 1, node.depth + 1, node.start, half});
        queue.push_back(Node{(node.bits << 1) | 1, node.depth + 1,
                             node.start + half, half});
      }
    }
  }
  return MergeRanges(std::move(ranges));
}

}  // namespace tman::index
