#include "index/xz2_index.h"

#include <cmath>
#include <deque>

namespace tman::index {

QuadCell XZ2Index::AnchorCell(const geo::MBR& mbr) const {
  const double extent = std::max(mbr.width(), mbr.height());
  int l;
  if (extent <= 0) {
    l = cfg_.max_resolution;
  } else {
    l = static_cast<int>(std::floor(std::log2(1.0 / extent)));
    l = std::min(l, cfg_.max_resolution);
    l = std::max(l, 1);
    // The enlarged element (2x2 cells anchored at the lower-left corner's
    // cell) must cover the MBR; otherwise drop one resolution.
    const double w = 1.0 / static_cast<double>(1u << l);
    const double ax = std::floor(mbr.min_x / w) * w;
    const double ay = std::floor(mbr.min_y / w) * w;
    if (ax + 2 * w < mbr.max_x || ay + 2 * w < mbr.max_y) {
      l = std::max(1, l - 1);
    }
  }
  return CellContaining(mbr.min_x, mbr.min_y, l);
}

uint64_t XZ2Index::Encode(const geo::MBR& mbr) const {
  return QuadCode(AnchorCell(mbr), cfg_.max_resolution);
}

std::vector<ValueRange> XZ2Index::QueryRanges(const geo::MBR& query,
                                              QueryStats* stats) const {
  std::vector<ValueRange> ranges;
  std::deque<QuadCell> queue;
  const QuadCell root{1, 0, 0};
  for (int q = 0; q < 4; q++) {
    queue.push_back(QuadCell{1, static_cast<uint32_t>(q >> 1),
                             static_cast<uint32_t>(q & 1)});
  }
  while (!queue.empty()) {
    const QuadCell cell = queue.front();
    queue.pop_front();
    if (stats != nullptr) stats->elements_visited++;

    const double w = cell.size();
    const geo::MBR enlarged{cell.x * w, cell.y * w, (cell.x + 2) * w,
                            (cell.y + 2) * w};
    if (!query.Intersects(enlarged)) continue;
    const uint64_t code = QuadCode(cell, cfg_.max_resolution);
    if (query.Contains(enlarged)) {
      ranges.push_back(ValueRange{
          code, code + QuadSubtreeCount(cell.r, cfg_.max_resolution) - 1});
      continue;
    }
    ranges.push_back(ValueRange{code, code});
    if (cell.r < cfg_.max_resolution) {
      for (int q = 0; q < 4; q++) {
        queue.push_back(cell.Child(q));
      }
    }
  }
  (void)root;
  return MergeRanges(std::move(ranges));
}

}  // namespace tman::index
