#ifndef TMAN_GEO_SIMILARITY_H_
#define TMAN_GEO_SIMILARITY_H_

#include <vector>

#include "geo/douglas_peucker.h"
#include "geo/geometry.h"

namespace tman::geo {

enum class SimilarityMeasure {
  kFrechet,    // discrete Fréchet distance
  kDTW,        // dynamic time warping (sum of matched distances)
  kHausdorff,  // symmetric Hausdorff distance
};

// Exact distances (O(n*m) dynamic programming / scans) in coordinate units.
double DiscreteFrechet(const std::vector<TimedPoint>& a,
                       const std::vector<TimedPoint>& b);
double DTWDistance(const std::vector<TimedPoint>& a,
                   const std::vector<TimedPoint>& b);
double HausdorffDistance(const std::vector<TimedPoint>& a,
                         const std::vector<TimedPoint>& b);

double ExactDistance(SimilarityMeasure measure,
                     const std::vector<TimedPoint>& a,
                     const std::vector<TimedPoint>& b);

// Cheap lower bound on the distance between two trajectories given only
// their MBRs: any matching must bridge the rectangle gap. Valid for all
// three measures (for DTW it bounds the per-step cost, hence the total from
// below as well since DTW sums >= max step >= gap).
double MBRLowerBound(const MBR& a, const MBR& b);

// Tighter lower bound from DP-features (TraSS local filter): the maximum
// over query features of the distance from the feature box to the
// candidate's box. Never exceeds the true Fréchet/Hausdorff distance.
double DPFeatureLowerBound(const DPFeatures& query,
                           const DPFeatures& candidate);

}  // namespace tman::geo

#endif  // TMAN_GEO_SIMILARITY_H_
