#ifndef TMAN_GEO_DOUGLAS_PEUCKER_H_
#define TMAN_GEO_DOUGLAS_PEUCKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace tman::geo {

// DP-Features (TraSS §storage): the first levels of the Douglas-Peucker
// split tree of a trajectory. Each feature is a representative point plus
// the bounding box of the sub-polyline it represents. Similarity queries
// use them for cheap lower/upper distance bounds without decompressing the
// full point column.
struct DPFeature {
  TimedPoint rep;   // split point with maximum deviation
  MBR box;          // bounds of the sub-polyline [start, end]
  uint32_t start;   // index range within the original trajectory
  uint32_t end;     // inclusive
};

struct DPFeatures {
  std::vector<DPFeature> features;  // breadth-first order of the split tree
  MBR mbr;                          // whole-trajectory bounds
};

// Extracts up to `max_features` DP features (always at least one: the whole
// trajectory). Splits proceed in order of decreasing deviation.
DPFeatures ExtractDPFeatures(const std::vector<TimedPoint>& points,
                             size_t max_features);

// Classic Douglas-Peucker simplification: indices of the retained points.
std::vector<uint32_t> DouglasPeucker(const std::vector<TimedPoint>& points,
                                     double epsilon);

// Compact (de)serialization of DPFeatures for the `features` column.
void EncodeDPFeatures(const DPFeatures& features, std::string* out);
bool DecodeDPFeatures(const char* data, size_t size, DPFeatures* features);

}  // namespace tman::geo

#endif  // TMAN_GEO_DOUGLAS_PEUCKER_H_
