#include "geo/douglas_peucker.h"

#include <algorithm>
#include <queue>

#include "common/coding.h"
#include "common/slice.h"

namespace tman::geo {

namespace {

// Finds the point of maximum deviation from the chord [start, end].
// Returns the index, or start if the span has no interior points.
uint32_t MaxDeviationPoint(const std::vector<TimedPoint>& points,
                           uint32_t start, uint32_t end, double* deviation) {
  *deviation = 0;
  uint32_t best = start;
  const Point a{points[start].x, points[start].y};
  const Point b{points[end].x, points[end].y};
  for (uint32_t i = start + 1; i < end; i++) {
    const double d = PointSegmentDistance(Point{points[i].x, points[i].y}, a, b);
    if (d > *deviation) {
      *deviation = d;
      best = i;
    }
  }
  return best;
}

MBR SpanMBR(const std::vector<TimedPoint>& points, uint32_t start,
            uint32_t end) {
  MBR mbr = MBR::Empty();
  for (uint32_t i = start; i <= end; i++) {
    mbr.Expand(Point{points[i].x, points[i].y});
  }
  return mbr;
}

struct Span {
  uint32_t start;
  uint32_t end;
  uint32_t split;
  double deviation;

  bool operator<(const Span& other) const {
    return deviation < other.deviation;  // max-heap on deviation
  }
};

}  // namespace

DPFeatures ExtractDPFeatures(const std::vector<TimedPoint>& points,
                             size_t max_features) {
  DPFeatures result;
  result.mbr = ComputeMBR(points);
  if (points.empty()) return result;
  if (max_features == 0) max_features = 1;

  const uint32_t last = static_cast<uint32_t>(points.size() - 1);

  // Root feature: whole trajectory, represented by its deepest point.
  double dev;
  uint32_t split = MaxDeviationPoint(points, 0, last, &dev);
  result.features.push_back(
      DPFeature{points[split], result.mbr, 0, last});

  std::priority_queue<Span> spans;
  if (split > 0 && split < last) {
    spans.push(Span{0, last, split, dev});
  }

  while (result.features.size() < max_features && !spans.empty()) {
    const Span span = spans.top();
    spans.pop();
    // Split into [start, split] and [split, end].
    const uint32_t halves[2][2] = {{span.start, span.split},
                                   {span.split, span.end}};
    for (const auto& half : halves) {
      if (result.features.size() >= max_features) break;
      const uint32_t s = half[0];
      const uint32_t e = half[1];
      double d;
      const uint32_t m = MaxDeviationPoint(points, s, e, &d);
      result.features.push_back(DPFeature{points[m], SpanMBR(points, s, e),
                                          s, e});
      if (m > s && m < e) {
        spans.push(Span{s, e, m, d});
      }
    }
  }
  return result;
}

std::vector<uint32_t> DouglasPeucker(const std::vector<TimedPoint>& points,
                                     double epsilon) {
  std::vector<uint32_t> keep;
  if (points.empty()) return keep;
  if (points.size() <= 2) {
    for (uint32_t i = 0; i < points.size(); i++) keep.push_back(i);
    return keep;
  }
  std::vector<bool> retained(points.size(), false);
  retained.front() = retained.back() = true;

  // Iterative stack-based DP.
  std::vector<std::pair<uint32_t, uint32_t>> stack;
  stack.emplace_back(0, static_cast<uint32_t>(points.size() - 1));
  while (!stack.empty()) {
    auto [start, end] = stack.back();
    stack.pop_back();
    if (end <= start + 1) continue;
    double dev;
    const uint32_t split = MaxDeviationPoint(points, start, end, &dev);
    if (dev > epsilon) {
      retained[split] = true;
      stack.emplace_back(start, split);
      stack.emplace_back(split, end);
    }
  }
  for (uint32_t i = 0; i < retained.size(); i++) {
    if (retained[i]) keep.push_back(i);
  }
  return keep;
}

void EncodeDPFeatures(const DPFeatures& features, std::string* out) {
  auto put_double = [out](double d) {
    uint64_t bits;
    memcpy(&bits, &d, sizeof(bits));
    PutFixed64(out, bits);
  };
  put_double(features.mbr.min_x);
  put_double(features.mbr.min_y);
  put_double(features.mbr.max_x);
  put_double(features.mbr.max_y);
  PutVarint32(out, static_cast<uint32_t>(features.features.size()));
  for (const DPFeature& f : features.features) {
    put_double(f.rep.x);
    put_double(f.rep.y);
    PutVarint64(out, static_cast<uint64_t>(f.rep.t));
    put_double(f.box.min_x);
    put_double(f.box.min_y);
    put_double(f.box.max_x);
    put_double(f.box.max_y);
    PutVarint32(out, f.start);
    PutVarint32(out, f.end);
  }
}

bool DecodeDPFeatures(const char* data, size_t size, DPFeatures* features) {
  Slice input(data, size);
  auto get_double = [&input](double* d) {
    if (input.size() < 8) return false;
    uint64_t bits = DecodeFixed64(input.data());
    input.remove_prefix(8);
    memcpy(d, &bits, sizeof(*d));
    return true;
  };
  if (!get_double(&features->mbr.min_x) || !get_double(&features->mbr.min_y) ||
      !get_double(&features->mbr.max_x) || !get_double(&features->mbr.max_y)) {
    return false;
  }
  uint32_t count;
  if (!GetVarint32(&input, &count)) return false;
  features->features.clear();
  features->features.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    DPFeature f;
    uint64_t t;
    if (!get_double(&f.rep.x) || !get_double(&f.rep.y) ||
        !GetVarint64(&input, &t) || !get_double(&f.box.min_x) ||
        !get_double(&f.box.min_y) || !get_double(&f.box.max_x) ||
        !get_double(&f.box.max_y) || !GetVarint32(&input, &f.start) ||
        !GetVarint32(&input, &f.end)) {
      return false;
    }
    f.rep.t = static_cast<int64_t>(t);
    features->features.push_back(f);
  }
  return true;
}

}  // namespace tman::geo
