#ifndef TMAN_GEO_GEOMETRY_H_
#define TMAN_GEO_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace tman::geo {

struct Point {
  double x = 0;  // longitude
  double y = 0;  // latitude
};

// GPS fix: position plus UNIX timestamp (seconds).
struct TimedPoint {
  double x = 0;
  double y = 0;
  int64_t t = 0;
};

// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct MBR {
  double min_x = 0;
  double min_y = 0;
  double max_x = 0;
  double max_y = 0;

  static MBR Empty() {
    return MBR{1e300, 1e300, -1e300, -1e300};
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }

  void Expand(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Merge(const MBR& other) {
    if (other.IsEmpty()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const MBR& other) const {
    return other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  bool Intersects(const MBR& other) const {
    return !(other.min_x > max_x || other.max_x < min_x ||
             other.min_y > max_y || other.max_y < min_y);
  }

  // Minimum squared Euclidean distance between the rectangles (0 if they
  // intersect). Used by similarity-query lower bounds.
  double MinSquaredDistance(const MBR& other) const {
    const double dx = std::max({0.0, other.min_x - max_x, min_x - other.max_x});
    const double dy = std::max({0.0, other.min_y - max_y, min_y - other.max_y});
    return dx * dx + dy * dy;
  }

  // Grows the rectangle by `margin` on every side.
  MBR Expanded(double margin) const {
    return MBR{min_x - margin, min_y - margin, max_x + margin, max_y + margin};
  }
};

inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

// Great-circle distance in meters.
double HaversineMeters(const Point& a, const Point& b);

// Approximate conversion of a meter length to degrees of longitude/latitude
// at latitude `lat_deg` (used to size query windows specified in meters).
double MetersToDegreesLat(double meters);
double MetersToDegreesLon(double meters, double lat_deg);

// True if segment [a, b] intersects the rectangle (including touching).
bool SegmentIntersectsRect(const Point& a, const Point& b, const MBR& rect);

// True if the polyline visits the rectangle: any vertex inside or any
// segment crossing it.
bool PolylineIntersectsRect(const std::vector<TimedPoint>& points,
                            const MBR& rect);

// Point-to-segment distance.
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

MBR ComputeMBR(const std::vector<TimedPoint>& points);

}  // namespace tman::geo

#endif  // TMAN_GEO_GEOMETRY_H_
