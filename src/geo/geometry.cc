#include "geo/geometry.h"

namespace tman::geo {

namespace {
constexpr double kEarthRadiusMeters = 6371000.0;
constexpr double kPi = 3.14159265358979323846;
constexpr double kMetersPerDegreeLat = 111320.0;
}  // namespace

double HaversineMeters(const Point& a, const Point& b) {
  const double lat1 = a.y * kPi / 180.0;
  const double lat2 = b.y * kPi / 180.0;
  const double dlat = (b.y - a.y) * kPi / 180.0;
  const double dlon = (b.x - a.x) * kPi / 180.0;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

double MetersToDegreesLat(double meters) {
  return meters / kMetersPerDegreeLat;
}

double MetersToDegreesLon(double meters, double lat_deg) {
  const double scale = std::cos(lat_deg * kPi / 180.0);
  return meters / (kMetersPerDegreeLat * (scale < 0.01 ? 0.01 : scale));
}

namespace {

// Cohen–Sutherland outcodes.
constexpr int kInside = 0;
constexpr int kLeft = 1;
constexpr int kRight = 2;
constexpr int kBottom = 4;
constexpr int kTop = 8;

int OutCode(const Point& p, const MBR& r) {
  int code = kInside;
  if (p.x < r.min_x) {
    code |= kLeft;
  } else if (p.x > r.max_x) {
    code |= kRight;
  }
  if (p.y < r.min_y) {
    code |= kBottom;
  } else if (p.y > r.max_y) {
    code |= kTop;
  }
  return code;
}

}  // namespace

bool SegmentIntersectsRect(const Point& a, const Point& b, const MBR& rect) {
  // Cohen–Sutherland clipping reduced to an intersection test.
  Point p0 = a;
  Point p1 = b;
  int code0 = OutCode(p0, rect);
  int code1 = OutCode(p1, rect);
  for (int iter = 0; iter < 32; iter++) {
    if ((code0 | code1) == 0) return true;   // a point inside
    if ((code0 & code1) != 0) return false;  // both on one outside side
    const int out = code0 != 0 ? code0 : code1;
    Point p;
    if (out & kTop) {
      p.x = p0.x + (p1.x - p0.x) * (rect.max_y - p0.y) / (p1.y - p0.y);
      p.y = rect.max_y;
    } else if (out & kBottom) {
      p.x = p0.x + (p1.x - p0.x) * (rect.min_y - p0.y) / (p1.y - p0.y);
      p.y = rect.min_y;
    } else if (out & kRight) {
      p.y = p0.y + (p1.y - p0.y) * (rect.max_x - p0.x) / (p1.x - p0.x);
      p.x = rect.max_x;
    } else {
      p.y = p0.y + (p1.y - p0.y) * (rect.min_x - p0.x) / (p1.x - p0.x);
      p.x = rect.min_x;
    }
    if (out == code0) {
      p0 = p;
      code0 = OutCode(p0, rect);
    } else {
      p1 = p;
      code1 = OutCode(p1, rect);
    }
  }
  return false;
}

bool PolylineIntersectsRect(const std::vector<TimedPoint>& points,
                            const MBR& rect) {
  if (points.empty()) return false;
  if (points.size() == 1) {
    return rect.Contains(Point{points[0].x, points[0].y});
  }
  for (size_t i = 0; i + 1 < points.size(); i++) {
    if (SegmentIntersectsRect(Point{points[i].x, points[i].y},
                              Point{points[i + 1].x, points[i + 1].y}, rect)) {
      return true;
    }
  }
  return false;
}

double PointSegmentDistance(const Point& p, const Point& a, const Point& b) {
  const double len2 = SquaredDistance(a, b);
  if (len2 == 0.0) return Distance(p, a);
  double t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Point proj{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
  return Distance(p, proj);
}

MBR ComputeMBR(const std::vector<TimedPoint>& points) {
  MBR mbr = MBR::Empty();
  for (const TimedPoint& p : points) {
    mbr.Expand(Point{p.x, p.y});
  }
  return mbr;
}

}  // namespace tman::geo
