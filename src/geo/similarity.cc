#include "geo/similarity.h"

#include <algorithm>
#include <cmath>

namespace tman::geo {

namespace {

double PointToRectDistance(const Point& p, const MBR& r) {
  const double dx = std::max({0.0, r.min_x - p.x, p.x - r.max_x});
  const double dy = std::max({0.0, r.min_y - p.y, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

double DiscreteFrechet(const std::vector<TimedPoint>& a,
                       const std::vector<TimedPoint>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 1e300;

  // Rolling 1-D dynamic program over the coupling matrix.
  std::vector<double> prev(m), curr(m);
  auto d = [&](size_t i, size_t j) {
    return Distance(Point{a[i].x, a[i].y}, Point{b[j].x, b[j].y});
  };
  prev[0] = d(0, 0);
  for (size_t j = 1; j < m; j++) prev[j] = std::max(prev[j - 1], d(0, j));
  for (size_t i = 1; i < n; i++) {
    curr[0] = std::max(prev[0], d(i, 0));
    for (size_t j = 1; j < m; j++) {
      const double reach = std::min({prev[j], prev[j - 1], curr[j - 1]});
      curr[j] = std::max(reach, d(i, j));
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double DTWDistance(const std::vector<TimedPoint>& a,
                   const std::vector<TimedPoint>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return 1e300;

  std::vector<double> prev(m), curr(m);
  auto d = [&](size_t i, size_t j) {
    return Distance(Point{a[i].x, a[i].y}, Point{b[j].x, b[j].y});
  };
  prev[0] = d(0, 0);
  for (size_t j = 1; j < m; j++) prev[j] = prev[j - 1] + d(0, j);
  for (size_t i = 1; i < n; i++) {
    curr[0] = prev[0] + d(i, 0);
    for (size_t j = 1; j < m; j++) {
      curr[j] = std::min({prev[j], prev[j - 1], curr[j - 1]}) + d(i, j);
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double HausdorffDistance(const std::vector<TimedPoint>& a,
                         const std::vector<TimedPoint>& b) {
  if (a.empty() || b.empty()) return 1e300;
  auto directed = [](const std::vector<TimedPoint>& from,
                     const std::vector<TimedPoint>& to) {
    double result = 0;
    for (const TimedPoint& p : from) {
      double best = 1e300;
      for (const TimedPoint& q : to) {
        const double d =
            Distance(Point{p.x, p.y}, Point{q.x, q.y});
        if (d < best) best = d;
        if (best == 0) break;
      }
      result = std::max(result, best);
    }
    return result;
  };
  return std::max(directed(a, b), directed(b, a));
}

double ExactDistance(SimilarityMeasure measure,
                     const std::vector<TimedPoint>& a,
                     const std::vector<TimedPoint>& b) {
  switch (measure) {
    case SimilarityMeasure::kFrechet:
      return DiscreteFrechet(a, b);
    case SimilarityMeasure::kDTW:
      return DTWDistance(a, b);
    case SimilarityMeasure::kHausdorff:
      return HausdorffDistance(a, b);
  }
  return 1e300;
}

double MBRLowerBound(const MBR& a, const MBR& b) {
  return std::sqrt(a.MinSquaredDistance(b));
}

double DPFeatureLowerBound(const DPFeatures& query,
                           const DPFeatures& candidate) {
  // Every representative point is a real trajectory point; its match must
  // lie inside the other trajectory's MBR, so the point-to-MBR distance is
  // a valid lower bound in both directions.
  double lb = MBRLowerBound(query.mbr, candidate.mbr);
  for (const DPFeature& f : query.features) {
    lb = std::max(lb, PointToRectDistance(Point{f.rep.x, f.rep.y},
                                          candidate.mbr));
  }
  for (const DPFeature& f : candidate.features) {
    lb = std::max(lb,
                  PointToRectDistance(Point{f.rep.x, f.rep.y}, query.mbr));
  }
  return lb;
}

}  // namespace tman::geo
