#include "baselines/similarity_baselines.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/stopwatch.h"

namespace tman::baselines {

namespace {

// Verifies `candidate_ids` against the query with an MBR lower-bound
// pre-check, returning those within `threshold`.
std::vector<SimilarityResult> VerifyThreshold(
    const std::vector<traj::Trajectory>& data,
    const std::vector<geo::MBR>& mbrs, const std::vector<uint32_t>& candidates,
    const traj::Trajectory& query, const geo::MBR& query_mbr,
    geo::SimilarityMeasure measure, double threshold,
    SimilarityStats* stats) {
  std::vector<SimilarityResult> results;
  for (uint32_t id : candidates) {
    if (stats != nullptr) stats->candidates++;
    if (geo::MBRLowerBound(mbrs[id], query_mbr) > threshold) continue;
    if (stats != nullptr) stats->exact_distance_computations++;
    const double d =
        geo::ExactDistance(measure, query.points, data[id].points);
    if (d <= threshold) {
      results.push_back(SimilarityResult{data[id].tid, d});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const SimilarityResult& a, const SimilarityResult& b) {
              return a.distance < b.distance;
            });
  return results;
}

std::vector<SimilarityResult> VerifyTopK(
    const std::vector<traj::Trajectory>& data,
    const std::vector<geo::MBR>& mbrs, const std::vector<uint32_t>& candidates,
    const traj::Trajectory& query, const geo::MBR& query_mbr,
    geo::SimilarityMeasure measure, size_t k, double seed_threshold,
    SimilarityStats* stats) {
  std::vector<SimilarityResult> best;
  double bound = seed_threshold;
  for (uint32_t id : candidates) {
    if (data[id].tid == query.tid) continue;
    if (stats != nullptr) stats->candidates++;
    const double kth = best.size() >= k ? best[k - 1].distance : bound;
    if (geo::MBRLowerBound(mbrs[id], query_mbr) > kth) continue;
    if (stats != nullptr) stats->exact_distance_computations++;
    const double d =
        geo::ExactDistance(measure, query.points, data[id].points);
    if (best.size() >= k && d >= best[k - 1].distance) continue;
    SimilarityResult r{data[id].tid, d};
    best.insert(std::upper_bound(best.begin(), best.end(), r,
                                 [](const SimilarityResult& a,
                                    const SimilarityResult& b) {
                                   return a.distance < b.distance;
                                 }),
                r);
    if (best.size() > k) best.resize(k);
  }
  return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// DFT

uint32_t DFT::PartitionOf(double lon, double lat) const {
  const uint32_t n = 1u << options_.grid_bits;
  auto idx = [n](double v, double lo, double hi) {
    double f = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    uint32_t i = static_cast<uint32_t>(f * n);
    return i >= n ? n - 1 : i;
  };
  return idx(lat, options_.bounds.min_lat, options_.bounds.max_lat) * n +
         idx(lon, options_.bounds.min_lon, options_.bounds.max_lon);
}

std::vector<uint32_t> DFT::PartitionsOf(const geo::MBR& rect) const {
  const uint32_t n = 1u << options_.grid_bits;
  const uint32_t p0 = PartitionOf(rect.min_x, rect.min_y);
  const uint32_t p1 = PartitionOf(rect.max_x, rect.max_y);
  std::vector<uint32_t> result;
  for (uint32_t cy = p0 / n; cy <= p1 / n; cy++) {
    for (uint32_t cx = p0 % n; cx <= p1 % n; cx++) {
      result.push_back(cy * n + cx);
    }
  }
  return result;
}

void DFT::Load(const std::vector<traj::Trajectory>& trajectories) {
  data_ = trajectories;
  mbrs_.clear();
  partitions_.clear();
  for (uint32_t id = 0; id < data_.size(); id++) {
    mbrs_.push_back(data_[id].ComputeMBR());
    // Register the trajectory in every partition its segments cross
    // (approximated by sampling its points; segments are short).
    std::set<uint32_t> touched;
    for (const geo::TimedPoint& p : data_[id].points) {
      touched.insert(PartitionOf(p.x, p.y));
    }
    for (uint32_t part : touched) {
      partitions_[part].push_back(id);
    }
  }
}

std::vector<SimilarityResult> DFT::Threshold(const traj::Trajectory& query,
                                             geo::SimilarityMeasure measure,
                                             double threshold,
                                             SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);
  geo::MBR expanded = query_mbr;
  expanded.min_x -= threshold;
  expanded.min_y -= threshold;
  expanded.max_x += threshold;
  expanded.max_y += threshold;

  std::set<uint32_t> candidate_set;
  for (uint32_t part : PartitionsOf(expanded)) {
    auto it = partitions_.find(part);
    if (it == partitions_.end()) continue;
    candidate_set.insert(it->second.begin(), it->second.end());
  }
  std::vector<uint32_t> candidates(candidate_set.begin(),
                                   candidate_set.end());
  auto results = VerifyThreshold(data_, mbrs_, candidates, query, query_mbr,
                                 measure, threshold, stats);
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return results;
}

std::vector<SimilarityResult> DFT::TopK(const traj::Trajectory& query,
                                        geo::SimilarityMeasure measure,
                                        size_t k, SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);

  // Threshold seeding: take c*k trajectories from each intersecting
  // partition and use their exact distances as an upper bound. Wide-MBR
  // trajectories make this seed loose (the paper's critique).
  std::set<uint32_t> seed_set;
  for (uint32_t part : PartitionsOf(query_mbr)) {
    auto it = partitions_.find(part);
    if (it == partitions_.end()) continue;
    const size_t take =
        std::min(it->second.size(),
                 static_cast<size_t>(options_.c) * std::max<size_t>(k, 1));
    seed_set.insert(it->second.begin(), it->second.begin() + take);
  }
  double bound = 0;
  std::vector<double> seed_distances;
  for (uint32_t id : seed_set) {
    if (data_[id].tid == query.tid) continue;
    if (stats != nullptr) stats->exact_distance_computations++;
    seed_distances.push_back(
        geo::ExactDistance(measure, query.points, data_[id].points));
  }
  std::sort(seed_distances.begin(), seed_distances.end());
  if (seed_distances.empty()) {
    bound = std::max(options_.bounds.width(), options_.bounds.height());
  } else {
    bound = seed_distances[std::min(seed_distances.size() - 1, k - 1)];
  }

  // Candidate retrieval within the bound, then verification.
  geo::MBR expanded = query_mbr;
  expanded.min_x -= bound;
  expanded.min_y -= bound;
  expanded.max_x += bound;
  expanded.max_y += bound;
  std::set<uint32_t> candidate_set;
  for (uint32_t part : PartitionsOf(expanded)) {
    auto it = partitions_.find(part);
    if (it == partitions_.end()) continue;
    candidate_set.insert(it->second.begin(), it->second.end());
  }
  std::vector<uint32_t> candidates(candidate_set.begin(),
                                   candidate_set.end());
  auto results = VerifyTopK(data_, mbrs_, candidates, query, query_mbr,
                            measure, k, bound, stats);
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return results;
}

// ---------------------------------------------------------------------------
// DITA

uint32_t DITA::CellOf(double lon, double lat) const {
  const uint32_t n = 1u << options_.pivot_bits;
  auto idx = [n](double v, double lo, double hi) {
    double f = std::clamp((v - lo) / (hi - lo), 0.0, 1.0);
    uint32_t i = static_cast<uint32_t>(f * n);
    return i >= n ? n - 1 : i;
  };
  return idx(lat, options_.bounds.min_lat, options_.bounds.max_lat) * n +
         idx(lon, options_.bounds.min_lon, options_.bounds.max_lon);
}

uint64_t DITA::PivotKey(const geo::TimedPoint& first,
                        const geo::TimedPoint& last) const {
  return (static_cast<uint64_t>(CellOf(first.x, first.y)) << 32) |
         CellOf(last.x, last.y);
}

void DITA::Load(const std::vector<traj::Trajectory>& trajectories) {
  data_ = trajectories;
  mbrs_.clear();
  trie_.clear();
  for (uint32_t id = 0; id < data_.size(); id++) {
    mbrs_.push_back(data_[id].ComputeMBR());
    trie_[PivotKey(data_[id].points.front(), data_[id].points.back())]
        .push_back(id);
  }
}

std::vector<uint32_t> DITA::Probe(const traj::Trajectory& query,
                                  double bound) const {
  const uint32_t n = 1u << options_.pivot_bits;
  const double cell_w = options_.bounds.width() / n;
  const double cell_h = options_.bounds.height() / n;
  const int rx = static_cast<int>(std::ceil(bound / cell_w)) + 1;
  const int ry = static_cast<int>(std::ceil(bound / cell_h)) + 1;

  const uint32_t fc = CellOf(query.points.front().x, query.points.front().y);
  const uint32_t lc = CellOf(query.points.back().x, query.points.back().y);
  const int fx = static_cast<int>(fc % n), fy = static_cast<int>(fc / n);
  const int lx = static_cast<int>(lc % n), ly = static_cast<int>(lc / n);

  std::vector<uint32_t> candidates;
  for (int dy1 = -ry; dy1 <= ry; dy1++) {
    for (int dx1 = -rx; dx1 <= rx; dx1++) {
      const int cy1 = fy + dy1, cx1 = fx + dx1;
      if (cy1 < 0 || cx1 < 0 || cy1 >= static_cast<int>(n) ||
          cx1 >= static_cast<int>(n)) {
        continue;
      }
      for (int dy2 = -ry; dy2 <= ry; dy2++) {
        for (int dx2 = -rx; dx2 <= rx; dx2++) {
          const int cy2 = ly + dy2, cx2 = lx + dx2;
          if (cy2 < 0 || cx2 < 0 || cy2 >= static_cast<int>(n) ||
              cx2 >= static_cast<int>(n)) {
            continue;
          }
          const uint64_t key =
              (static_cast<uint64_t>(cy1 * n + cx1) << 32) |
              static_cast<uint32_t>(cy2 * n + cx2);
          auto it = trie_.find(key);
          if (it != trie_.end()) {
            candidates.insert(candidates.end(), it->second.begin(),
                              it->second.end());
          }
        }
      }
    }
  }
  return candidates;
}

namespace {

// Fréchet and DTW couplings match first-to-first and last-to-last, so a
// distance <= bound pins the candidate's endpoints within `bound` of the
// query's. Hausdorff does not align endpoints: a candidate endpoint is
// only guaranteed within bound of *some* query point, so the probe radius
// must additionally absorb the query's own extent.
double ProbeBound(const traj::Trajectory& query,
                  geo::SimilarityMeasure measure, double bound) {
  if (measure != geo::SimilarityMeasure::kHausdorff) return bound;
  const geo::MBR mbr = geo::ComputeMBR(query.points);
  return bound + std::hypot(mbr.width(), mbr.height());
}

}  // namespace

std::vector<SimilarityResult> DITA::Threshold(const traj::Trajectory& query,
                                              geo::SimilarityMeasure measure,
                                              double threshold,
                                              SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);
  auto candidates = Probe(query, ProbeBound(query, measure, threshold));
  auto results = VerifyThreshold(data_, mbrs_, candidates, query, query_mbr,
                                 measure, threshold, stats);
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return results;
}

std::vector<SimilarityResult> DITA::TopK(const traj::Trajectory& query,
                                         geo::SimilarityMeasure measure,
                                         size_t k, SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);
  double bound =
      std::max(options_.bounds.width(), options_.bounds.height()) / 256.0;
  std::vector<SimilarityResult> best;
  for (int round = 0; round < 12; round++) {
    auto candidates = Probe(query, ProbeBound(query, measure, bound));
    best = VerifyTopK(data_, mbrs_, candidates, query, query_mbr, measure, k,
                      bound, stats);
    if (best.size() >= k && best[k - 1].distance <= bound) break;
    bound *= 2;
  }
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return best;
}

// ---------------------------------------------------------------------------
// REPOSE

void REPOSE::Load(const std::vector<traj::Trajectory>& trajectories) {
  data_ = trajectories;
  mbrs_.clear();
  signatures_.clear();
  // Reference points on a regular grid over the dataset span (the paper's
  // point: a large span forces coarse references).
  references_.clear();
  const int side = static_cast<int>(
      std::round(std::sqrt(static_cast<double>(options_.num_reference_points))));
  for (int y = 0; y < side; y++) {
    for (int x = 0; x < side; x++) {
      references_.push_back(geo::Point{
          options_.bounds.min_lon +
              (x + 0.5) * options_.bounds.width() / side,
          options_.bounds.min_lat +
              (y + 0.5) * options_.bounds.height() / side});
    }
  }
  for (const traj::Trajectory& t : data_) {
    mbrs_.push_back(t.ComputeMBR());
    signatures_.push_back(SignatureOf(t));
  }
}

std::vector<int> REPOSE::SignatureOf(const traj::Trajectory& t) const {
  // Sample signature_length points evenly; each contributes its nearest
  // reference point id.
  std::vector<int> signature;
  const size_t n = t.points.size();
  for (int i = 0; i < options_.signature_length; i++) {
    const size_t idx = n <= 1 ? 0 : i * (n - 1) / (options_.signature_length - 1);
    const geo::Point p{t.points[idx].x, t.points[idx].y};
    int best = 0;
    double best_d = 1e300;
    for (size_t r = 0; r < references_.size(); r++) {
      const double d = geo::SquaredDistance(p, references_[r]);
      if (d < best_d) {
        best_d = d;
        best = static_cast<int>(r);
      }
    }
    signature.push_back(best);
  }
  return signature;
}

namespace {

// Heuristic proximity score of two signatures: the max positional
// reference distance, discounted by the cell radius. NOT a sound lower
// bound for any of the supported measures (none of them matches sample i
// to sample i), so it is used only to order verification — sound pruning
// is the MBR lower bound applied during verification.
double SignatureHeuristic(const std::vector<int>& a, const std::vector<int>& b,
                          const std::vector<geo::Point>& refs,
                          double cell_radius) {
  double score = 0;
  for (size_t i = 0; i < a.size() && i < b.size(); i++) {
    const double d = geo::Distance(refs[a[i]], refs[b[i]]);
    score = std::max(score, d - 2 * cell_radius);
  }
  return std::max(0.0, score);
}

}  // namespace

std::vector<SimilarityResult> REPOSE::Threshold(const traj::Trajectory& query,
                                                geo::SimilarityMeasure measure,
                                                double threshold,
                                                SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);
  const std::vector<int> qsig = SignatureOf(query);
  const int side = static_cast<int>(std::round(
      std::sqrt(static_cast<double>(options_.num_reference_points))));
  const double cell_radius =
      std::max(options_.bounds.width(), options_.bounds.height()) / side;

  // The signature heuristic orders verification (likely matches first);
  // actual pruning uses the sound MBR lower bound inside VerifyThreshold.
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(data_.size());
  for (uint32_t id = 0; id < data_.size(); id++) {
    ranked.emplace_back(SignatureHeuristic(qsig, signatures_[id], references_,
                                           cell_radius),
                        id);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<uint32_t> candidates;
  candidates.reserve(ranked.size());
  for (const auto& [h, id] : ranked) {
    (void)h;
    candidates.push_back(id);
  }
  auto results = VerifyThreshold(data_, mbrs_, candidates, query, query_mbr,
                                 measure, threshold, stats);
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return results;
}

std::vector<SimilarityResult> REPOSE::TopK(const traj::Trajectory& query,
                                           geo::SimilarityMeasure measure,
                                           size_t k, SimilarityStats* stats) {
  Stopwatch total;
  const geo::MBR query_mbr = geo::ComputeMBR(query.points);
  const std::vector<int> qsig = SignatureOf(query);
  const int side = static_cast<int>(std::round(
      std::sqrt(static_cast<double>(options_.num_reference_points))));
  const double cell_radius =
      std::max(options_.bounds.width(), options_.bounds.height()) / side;

  // Rank candidates by the signature heuristic and verify in that order:
  // close trajectories verify early, which tightens the k-th bound and
  // lets the sound MBR lower bound prune the tail.
  std::vector<std::pair<double, uint32_t>> ranked;
  for (uint32_t id = 0; id < data_.size(); id++) {
    ranked.emplace_back(SignatureHeuristic(qsig, signatures_[id], references_,
                                           cell_radius),
                        id);
  }
  std::sort(ranked.begin(), ranked.end());

  std::vector<SimilarityResult> best;
  for (const auto& [heuristic, id] : ranked) {
    (void)heuristic;
    if (data_[id].tid == query.tid) continue;
    const double kth = best.size() >= k ? best[k - 1].distance : 1e300;
    if (stats != nullptr) stats->candidates++;
    if (geo::MBRLowerBound(mbrs_[id], query_mbr) > kth) continue;
    if (stats != nullptr) stats->exact_distance_computations++;
    const double d =
        geo::ExactDistance(measure, query.points, data_[id].points);
    if (best.size() >= k && d >= best[k - 1].distance) continue;
    SimilarityResult r{data_[id].tid, d};
    best.insert(std::upper_bound(best.begin(), best.end(), r,
                                 [](const SimilarityResult& a,
                                    const SimilarityResult& b) {
                                   return a.distance < b.distance;
                                 }),
                r);
    if (best.size() > k) best.resize(k);
  }
  if (stats != nullptr) stats->execution_ms += total.ElapsedMillis();
  return best;
}

}  // namespace tman::baselines
