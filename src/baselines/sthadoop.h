#ifndef TMAN_BASELINES_STHADOOP_H_
#define TMAN_BASELINES_STHADOOP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tman.h"
#include "geo/geometry.h"
#include "kvstore/db.h"
#include "traj/trajectory.h"

namespace tman::baselines {

// ST-Hadoop (GeoInformatica'18) analogue. Architectural properties the
// paper's comparison rests on, reproduced here:
//  * trajectories are split into individual *points* stored in
//    time-sliced, grid-partitioned files (candidates are counted in
//    points, not trajectories);
//  * a query launches a MapReduce-style job with a fixed startup cost and
//    scans every split that intersects the query;
//  * whole trajectories must be reassembled from their points.
class STHadoop {
 public:
  struct Options {
    traj::SpatialBounds bounds;
    int64_t slice_seconds = 24 * 3600;  // temporal partition (daily)
    int grid_bits = 6;                  // 2^bits x 2^bits spatial grid
    // Simulated MapReduce job-startup latency; 0 disables the sleep.
    int64_t job_startup_micros = 25000;
    kv::Options kv;
  };

  static Status Open(const Options& options, const std::string& path,
                     std::unique_ptr<STHadoop>* out);

  Status Load(const std::vector<traj::Trajectory>& trajectories);
  Status Flush();

  // Returns distinct trajectory ids with a point matching the predicate
  // (per-point storage cannot return whole trajectories without a second
  // reassembly pass).
  Status TemporalRangeQuery(int64_t ts, int64_t te,
                            std::vector<std::string>* tids,
                            core::QueryStats* stats = nullptr);

  Status SpatialRangeQuery(const geo::MBR& rect,
                           std::vector<std::string>* tids,
                           core::QueryStats* stats = nullptr);

  Status SpatioTemporalRangeQuery(const geo::MBR& rect, int64_t ts, int64_t te,
                                  std::vector<std::string>* tids,
                                  core::QueryStats* stats = nullptr);

  uint64_t StorageBytes();

 private:
  STHadoop(const Options& options, std::string path);

  int64_t SliceOf(int64_t t) const;
  uint32_t CellOf(double lon, double lat) const;

  // Scans the slice range with optional per-point predicate.
  Status RunJob(int64_t slice_lo, int64_t slice_hi, const geo::MBR* rect,
                const int64_t* ts, const int64_t* te,
                std::vector<std::string>* tids, core::QueryStats* stats);

  Options options_;
  std::string path_;
  std::unique_ptr<kv::DB> db_;
  int64_t min_slice_ = 0;
  int64_t max_slice_ = 0;
};

}  // namespace tman::baselines

#endif  // TMAN_BASELINES_STHADOOP_H_
