#ifndef TMAN_BASELINES_TRAJMESA_H_
#define TMAN_BASELINES_TRAJMESA_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "core/options.h"
#include "core/tman.h"
#include "geo/geometry.h"
#include "index/xz2_index.h"
#include "index/xzt_index.h"
#include "traj/trajectory.h"

namespace tman::baselines {

// TrajMesa (TKDE'21): the paper's main system baseline. Key differences
// from TMan reproduced here:
//  * multi-table storage: the full trajectory row is written to an XZT
//    table, an XZ2 table, AND an IDT table (3x storage redundancy);
//  * XZT temporal index and XZ-Ordering spatial index;
//  * no push-down: all window rows are shipped to the client and filtered
//    there.
class TrajMesa {
 public:
  struct Options {
    traj::SpatialBounds bounds;
    index::XZTConfig xzt;
    index::XZ2Config xz2;
    int num_shards = 8;
    int num_servers = 5;
    size_t max_dp_features = 8;
    kv::Options kv;
  };

  static Status Open(const Options& options, const std::string& path,
                     std::unique_ptr<TrajMesa>* out);

  Status Load(const std::vector<traj::Trajectory>& trajectories);
  Status Flush();

  Status TemporalRangeQuery(int64_t ts, int64_t te,
                            std::vector<traj::Trajectory>* out,
                            core::QueryStats* stats = nullptr);

  Status SpatialRangeQuery(const geo::MBR& rect,
                           std::vector<traj::Trajectory>* out,
                           core::QueryStats* stats = nullptr);

  Status SpatioTemporalRangeQuery(const geo::MBR& rect, int64_t ts, int64_t te,
                                  std::vector<traj::Trajectory>* out,
                                  core::QueryStats* stats = nullptr);

  Status IDTemporalQuery(const std::string& oid, int64_t ts, int64_t te,
                         std::vector<traj::Trajectory>* out,
                         core::QueryStats* stats = nullptr);

  uint64_t StorageBytes();

 private:
  TrajMesa(const Options& options, const std::string& path);

  Status Init();

  Options options_;
  std::string path_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::ClusterTable* xzt_table_ = nullptr;
  cluster::ClusterTable* xz2_table_ = nullptr;
  cluster::ClusterTable* idt_table_ = nullptr;
  std::unique_ptr<index::XZTIndex> xzt_index_;
  std::unique_ptr<index::XZ2Index> xz2_index_;
};

}  // namespace tman::baselines

#endif  // TMAN_BASELINES_TRAJMESA_H_
