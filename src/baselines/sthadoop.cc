#include "baselines/sthadoop.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "common/coding.h"
#include "common/stopwatch.h"
#include "kvstore/write_batch.h"

namespace tman::baselines {

STHadoop::STHadoop(const Options& options, std::string path)
    : options_(options), path_(std::move(path)) {}

Status STHadoop::Open(const Options& options, const std::string& path,
                      std::unique_ptr<STHadoop>* out) {
  out->reset();
  std::unique_ptr<STHadoop> sth(new STHadoop(options, path));
  Status s = kv::DB::Open(options.kv, path, &sth->db_);
  if (!s.ok()) return s;
  *out = std::move(sth);
  return Status::OK();
}

int64_t STHadoop::SliceOf(int64_t t) const {
  return t / options_.slice_seconds;
}

uint32_t STHadoop::CellOf(double lon, double lat) const {
  const uint32_t n = 1u << options_.grid_bits;
  auto idx = [n](double v, double lo, double hi) {
    double f = (v - lo) / (hi - lo);
    f = std::clamp(f, 0.0, 1.0);
    uint32_t i = static_cast<uint32_t>(f * n);
    return i >= n ? n - 1 : i;
  };
  const uint32_t cx =
      idx(lon, options_.bounds.min_lon, options_.bounds.max_lon);
  const uint32_t cy =
      idx(lat, options_.bounds.min_lat, options_.bounds.max_lat);
  return cy * n + cx;  // row-major
}

namespace {

std::string PointKey(int64_t slice, uint32_t cell, const std::string& tid,
                     uint32_t seq) {
  std::string key;
  PutBigEndian64(&key, static_cast<uint64_t>(slice));
  PutBigEndian32(&key, cell);
  key.append(tid);
  PutBigEndian32(&key, seq);
  return key;
}

std::string PointValue(const geo::TimedPoint& p, const std::string& tid) {
  std::string value;
  uint64_t bits;
  memcpy(&bits, &p.x, sizeof(bits));
  PutFixed64(&value, bits);
  memcpy(&bits, &p.y, sizeof(bits));
  PutFixed64(&value, bits);
  PutFixed64(&value, static_cast<uint64_t>(p.t));
  PutLengthPrefixedSlice(&value, tid);
  return value;
}

bool ParsePointValue(const Slice& value, geo::TimedPoint* p,
                     std::string* tid) {
  if (value.size() < 24) return false;
  uint64_t bits = DecodeFixed64(value.data());
  memcpy(&p->x, &bits, sizeof(p->x));
  bits = DecodeFixed64(value.data() + 8);
  memcpy(&p->y, &bits, sizeof(p->y));
  p->t = static_cast<int64_t>(DecodeFixed64(value.data() + 16));
  Slice rest(value.data() + 24, value.size() - 24);
  Slice tid_slice;
  if (!GetLengthPrefixedSlice(&rest, &tid_slice)) return false;
  *tid = tid_slice.ToString();
  return true;
}

}  // namespace

Status STHadoop::Load(const std::vector<traj::Trajectory>& trajectories) {
  kv::WriteBatch batch;
  bool first = true;
  for (const traj::Trajectory& t : trajectories) {
    for (uint32_t i = 0; i < t.points.size(); i++) {
      const geo::TimedPoint& p = t.points[i];
      const int64_t slice = SliceOf(p.t);
      if (first || slice < min_slice_) min_slice_ = slice;
      if (first || slice > max_slice_) max_slice_ = slice;
      first = false;
      batch.Put(PointKey(slice, CellOf(p.x, p.y), t.tid, i),
                PointValue(p, t.tid));
      if (batch.ApproximateSize() > 1 << 20) {
        Status s = db_->Write(kv::WriteOptions(), &batch);
        if (!s.ok()) return s;
        batch.Clear();
      }
    }
  }
  return db_->Write(kv::WriteOptions(), &batch);
}

Status STHadoop::Flush() { return db_->Flush(); }

Status STHadoop::RunJob(int64_t slice_lo, int64_t slice_hi,
                        const geo::MBR* rect, const int64_t* ts,
                        const int64_t* te, std::vector<std::string>* tids,
                        core::QueryStats* stats) {
  Stopwatch total;
  // MapReduce job startup: task scheduling, JVM spin-up, split planning.
  if (options_.job_startup_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.job_startup_micros));
  }
  slice_lo = std::max(slice_lo, min_slice_);
  slice_hi = std::min(slice_hi, max_slice_);

  // Cell cover of the query rectangle: contiguous runs per grid row.
  struct Run {
    uint32_t lo;
    uint32_t hi;
  };
  std::vector<Run> runs;
  const uint32_t n = 1u << options_.grid_bits;
  if (rect != nullptr) {
    const uint32_t cx0 = CellOf(rect->min_x, rect->min_y) % n;
    const uint32_t cy0 = CellOf(rect->min_x, rect->min_y) / n;
    const uint32_t cx1 = CellOf(rect->max_x, rect->max_y) % n;
    const uint32_t cy1 = CellOf(rect->max_x, rect->max_y) / n;
    for (uint32_t cy = cy0; cy <= cy1; cy++) {
      runs.push_back(Run{cy * n + cx0, cy * n + cx1});
    }
  } else {
    runs.push_back(Run{0, n * n - 1});
  }

  std::set<std::string> result;
  uint64_t scanned = 0;
  uint64_t windows = 0;
  for (int64_t slice = slice_lo; slice <= slice_hi; slice++) {
    for (const Run& run : runs) {
      windows++;
      std::string start, end;
      PutBigEndian64(&start, static_cast<uint64_t>(slice));
      PutBigEndian32(&start, run.lo);
      PutBigEndian64(&end, static_cast<uint64_t>(slice));
      PutBigEndian32(&end, run.hi + 1);
      std::vector<std::pair<std::string, std::string>> rows;
      kv::ScanStats scan_stats;
      Status s = db_->Scan(kv::ReadOptions(), start, end, nullptr, 0, &rows,
                           &scan_stats);
      if (!s.ok()) return s;
      scanned += scan_stats.scanned;
      for (const auto& [key, value] : rows) {
        (void)key;
        geo::TimedPoint p;
        std::string tid;
        if (!ParsePointValue(value, &p, &tid)) continue;
        if (ts != nullptr && (p.t < *ts || p.t > *te)) continue;
        if (rect != nullptr &&
            !rect->Contains(geo::Point{p.x, p.y})) {
          continue;
        }
        result.insert(std::move(tid));
      }
    }
  }
  tids->assign(result.begin(), result.end());
  if (stats != nullptr) {
    stats->plan = "sthadoop:mapreduce";
    stats->windows += windows;
    stats->candidates += scanned;  // candidates are points
    stats->results += result.size();
    stats->execution_ms += total.ElapsedMillis();
  }
  return Status::OK();
}

Status STHadoop::TemporalRangeQuery(int64_t ts, int64_t te,
                                    std::vector<std::string>* tids,
                                    core::QueryStats* stats) {
  return RunJob(SliceOf(ts), SliceOf(te), nullptr, &ts, &te, tids, stats);
}

Status STHadoop::SpatialRangeQuery(const geo::MBR& rect,
                                   std::vector<std::string>* tids,
                                   core::QueryStats* stats) {
  return RunJob(min_slice_, max_slice_, &rect, nullptr, nullptr, tids, stats);
}

Status STHadoop::SpatioTemporalRangeQuery(const geo::MBR& rect, int64_t ts,
                                          int64_t te,
                                          std::vector<std::string>* tids,
                                          core::QueryStats* stats) {
  return RunJob(SliceOf(ts), SliceOf(te), &rect, &ts, &te, tids, stats);
}

uint64_t STHadoop::StorageBytes() {
  kv::DB::Stats db_stats = db_->GetStats();
  uint64_t total = db_stats.memtable_bytes;
  for (uint64_t b : db_stats.bytes_per_level) total += b;
  return total;
}

}  // namespace tman::baselines
