#include "baselines/trajmesa.h"

#include "common/stopwatch.h"
#include "core/filters.h"
#include "core/record.h"
#include "core/rowkey.h"

namespace tman::baselines {

using core::EncodeRecord;
using core::FilterChain;
using core::QueryStats;
using core::SpatialRangeFilter;
using core::TemporalRangeFilter;

TrajMesa::TrajMesa(const Options& options, const std::string& path)
    : options_(options), path_(path) {}

Status TrajMesa::Open(const Options& options, const std::string& path,
                      std::unique_ptr<TrajMesa>* out) {
  out->reset();
  std::unique_ptr<TrajMesa> tm(new TrajMesa(options, path));
  Status s = tm->Init();
  if (!s.ok()) return s;
  *out = std::move(tm);
  return Status::OK();
}

Status TrajMesa::Init() {
  cluster_ = std::make_unique<cluster::Cluster>(path_, options_.num_servers,
                                                options_.kv);
  Status s = cluster_->CreateTable("xzt", options_.num_shards);
  if (!s.ok()) return s;
  s = cluster_->CreateTable("xz2", options_.num_shards);
  if (!s.ok()) return s;
  s = cluster_->CreateTable("idt", options_.num_shards);
  if (!s.ok()) return s;
  xzt_table_ = cluster_->GetTable("xzt");
  xz2_table_ = cluster_->GetTable("xz2");
  idt_table_ = cluster_->GetTable("idt");
  xzt_index_ = std::make_unique<index::XZTIndex>(options_.xzt);
  xz2_index_ = std::make_unique<index::XZ2Index>(options_.xz2);
  return Status::OK();
}

Status TrajMesa::Load(const std::vector<traj::Trajectory>& trajectories) {
  std::vector<cluster::Row> xzt_rows, xz2_rows, idt_rows;
  auto flush_chunk = [&]() -> Status {
    Status s = xzt_table_->BatchPut(xzt_rows);
    if (!s.ok()) return s;
    s = xz2_table_->BatchPut(xz2_rows);
    if (!s.ok()) return s;
    s = idt_table_->BatchPut(idt_rows);
    if (!s.ok()) return s;
    xzt_rows.clear();
    xz2_rows.clear();
    idt_rows.clear();
    return Status::OK();
  };

  for (const traj::Trajectory& t : trajectories) {
    if (t.points.empty()) {
      return Status::InvalidArgument("empty trajectory " + t.tid);
    }
    std::string value;
    if (!EncodeRecord(t, options_.max_dp_features, &value)) {
      return Status::InvalidArgument("unencodable trajectory " + t.tid);
    }
    const uint64_t xzt = xzt_index_->Encode(t.start_time(), t.end_time());
    geo::MBR norm_mbr = options_.bounds.Normalize(t.ComputeMBR());
    const uint64_t xz2 = xz2_index_->Encode(norm_mbr);
    const uint8_t shard = core::ShardOfTid(t.tid, options_.num_shards);

    // The defining TrajMesa property: the full row goes to every table.
    xzt_rows.push_back(cluster::Row{core::PrimaryKey(shard, xzt, t.tid),
                                    value});
    xz2_rows.push_back(cluster::Row{core::PrimaryKey(shard, xz2, t.tid),
                                    value});
    idt_rows.push_back(cluster::Row{
        core::IDTKey(core::ShardOfOid(t.oid, options_.num_shards), t.oid, xzt,
                     t.tid),
        std::move(value)});
    if (xzt_rows.size() >= 4096) {
      Status s = flush_chunk();
      if (!s.ok()) return s;
    }
  }
  return flush_chunk();
}

Status TrajMesa::Flush() {
  Status s = xzt_table_->Flush();
  if (s.ok()) s = xz2_table_->Flush();
  if (s.ok()) s = idt_table_->Flush();
  return s;
}

namespace {

Status DecodeRows(const std::vector<cluster::Row>& rows,
                  std::vector<traj::Trajectory>* out) {
  out->reserve(out->size() + rows.size());
  for (const cluster::Row& row : rows) {
    traj::Trajectory t;
    if (!core::DecodeRecord(row.value, &t)) {
      return Status::Corruption("bad trajectory record");
    }
    out->push_back(std::move(t));
  }
  return Status::OK();
}

}  // namespace

Status TrajMesa::TemporalRangeQuery(int64_t ts, int64_t te,
                                    std::vector<traj::Trajectory>* out,
                                    QueryStats* stats) {
  Stopwatch total;
  const auto ranges = xzt_index_->QueryRanges(ts, te);
  const auto windows = core::WindowsForRanges(ranges, options_.num_shards);
  TemporalRangeFilter filter(ts, te);
  std::vector<cluster::Row> rows;
  kv::ScanStats scan_stats;
  // No push-down: every candidate row crosses the storage boundary.
  Status s =
      xzt_table_->ScanWithoutPushdown(windows, &filter, &rows, &scan_stats);
  if (!s.ok()) return s;
  s = DecodeRows(rows, out);
  if (stats != nullptr) {
    stats->plan = "trajmesa:xzt";
    stats->windows += windows.size();
    stats->candidates += scan_stats.scanned;
    stats->results += rows.size();
    stats->execution_ms += total.ElapsedMillis();
  }
  return s;
}

Status TrajMesa::SpatialRangeQuery(const geo::MBR& rect,
                                   std::vector<traj::Trajectory>* out,
                                   QueryStats* stats) {
  Stopwatch total;
  geo::MBR norm = options_.bounds.Normalize(rect);
  norm.min_x = std::clamp(norm.min_x, 0.0, 1.0);
  norm.min_y = std::clamp(norm.min_y, 0.0, 1.0);
  norm.max_x = std::clamp(norm.max_x, 0.0, 1.0);
  norm.max_y = std::clamp(norm.max_y, 0.0, 1.0);
  const auto ranges = xz2_index_->QueryRanges(norm);
  const auto windows = core::WindowsForRanges(ranges, options_.num_shards);
  SpatialRangeFilter filter(rect);
  std::vector<cluster::Row> rows;
  kv::ScanStats scan_stats;
  Status s =
      xz2_table_->ScanWithoutPushdown(windows, &filter, &rows, &scan_stats);
  if (!s.ok()) return s;
  s = DecodeRows(rows, out);
  if (stats != nullptr) {
    stats->plan = "trajmesa:xz2";
    stats->windows += windows.size();
    stats->candidates += scan_stats.scanned;
    stats->results += rows.size();
    stats->execution_ms += total.ElapsedMillis();
  }
  return s;
}

Status TrajMesa::SpatioTemporalRangeQuery(const geo::MBR& rect, int64_t ts,
                                          int64_t te,
                                          std::vector<traj::Trajectory>* out,
                                          QueryStats* stats) {
  Stopwatch total;
  // TrajMesa combines the temporal windows with a client-side spatial
  // check; its long XZT periods force it to inspect many irrelevant rows
  // for short time ranges (paper §VI-D).
  const auto ranges = xzt_index_->QueryRanges(ts, te);
  const auto windows = core::WindowsForRanges(ranges, options_.num_shards);
  FilterChain chain;
  chain.Add(std::make_unique<TemporalRangeFilter>(ts, te));
  chain.Add(std::make_unique<SpatialRangeFilter>(rect));
  std::vector<cluster::Row> rows;
  kv::ScanStats scan_stats;
  Status s =
      xzt_table_->ScanWithoutPushdown(windows, &chain, &rows, &scan_stats);
  if (!s.ok()) return s;
  s = DecodeRows(rows, out);
  if (stats != nullptr) {
    stats->plan = "trajmesa:xzt+client-spatial";
    stats->windows += windows.size();
    stats->candidates += scan_stats.scanned;
    stats->results += rows.size();
    stats->execution_ms += total.ElapsedMillis();
  }
  return s;
}

Status TrajMesa::IDTemporalQuery(const std::string& oid, int64_t ts,
                                 int64_t te,
                                 std::vector<traj::Trajectory>* out,
                                 QueryStats* stats) {
  Stopwatch total;
  const auto ranges = xzt_index_->QueryRanges(ts, te);
  const auto windows =
      core::WindowsForIDT(oid, ranges, options_.num_shards);
  TemporalRangeFilter filter(ts, te);
  std::vector<cluster::Row> rows;
  kv::ScanStats scan_stats;
  Status s =
      idt_table_->ScanWithoutPushdown(windows, &filter, &rows, &scan_stats);
  if (!s.ok()) return s;
  s = DecodeRows(rows, out);
  if (stats != nullptr) {
    stats->plan = "trajmesa:idt";
    stats->windows += windows.size();
    stats->candidates += scan_stats.scanned;
    stats->results += rows.size();
    stats->execution_ms += total.ElapsedMillis();
  }
  return s;
}

uint64_t TrajMesa::StorageBytes() {
  return xzt_table_->TotalBytes() + xz2_table_->TotalBytes() +
         idt_table_->TotalBytes();
}

}  // namespace tman::baselines
