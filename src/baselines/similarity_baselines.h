#ifndef TMAN_BASELINES_SIMILARITY_BASELINES_H_
#define TMAN_BASELINES_SIMILARITY_BASELINES_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/similarity.h"
#include "traj/trajectory.h"

namespace tman::baselines {

struct SimilarityStats {
  uint64_t candidates = 0;
  uint64_t exact_distance_computations = 0;
  double execution_ms = 0;
};

struct SimilarityResult {
  std::string tid;
  double distance;
};

// DFT (VLDB'17): distributed trajectory similarity search over segments.
// Reproduced at the algorithmic level: space is grid-partitioned; every
// trajectory is registered in each partition its segments cross. A top-k
// query samples c*k trajectories from partitions intersecting the query's
// extent to obtain a pruning threshold, then verifies candidates. As the
// paper observes, trajectories with large MBRs inflate the threshold and
// the candidate set.
class DFT {
 public:
  struct Options {
    traj::SpatialBounds bounds;
    int grid_bits = 5;  // 32x32 partitions
    int c = 2;          // threshold-seeding multiplier
  };

  explicit DFT(const Options& options) : options_(options) {}

  void Load(const std::vector<traj::Trajectory>& trajectories);

  std::vector<SimilarityResult> Threshold(const traj::Trajectory& query,
                                          geo::SimilarityMeasure measure,
                                          double threshold,
                                          SimilarityStats* stats);

  std::vector<SimilarityResult> TopK(const traj::Trajectory& query,
                                     geo::SimilarityMeasure measure, size_t k,
                                     SimilarityStats* stats);

 private:
  uint32_t PartitionOf(double lon, double lat) const;
  std::vector<uint32_t> PartitionsOf(const geo::MBR& rect) const;

  Options options_;
  std::vector<traj::Trajectory> data_;
  std::vector<geo::MBR> mbrs_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> partitions_;
};

// DITA (SIGMOD'18): in-memory trie over pivot points. Reproduced as a
// two-level pivot index over the (first, last) points of each trajectory;
// queries probe all pivot cells within the current distance bound. Large
// datasets with wide spatial spans make the trie coarse and expensive to
// probe, matching the paper's observation.
class DITA {
 public:
  struct Options {
    traj::SpatialBounds bounds;
    int pivot_bits = 6;  // pivot grid resolution
  };

  explicit DITA(const Options& options) : options_(options) {}

  void Load(const std::vector<traj::Trajectory>& trajectories);

  std::vector<SimilarityResult> Threshold(const traj::Trajectory& query,
                                          geo::SimilarityMeasure measure,
                                          double threshold,
                                          SimilarityStats* stats);

  std::vector<SimilarityResult> TopK(const traj::Trajectory& query,
                                     geo::SimilarityMeasure measure, size_t k,
                                     SimilarityStats* stats);

 private:
  uint64_t PivotKey(const geo::TimedPoint& first,
                    const geo::TimedPoint& last) const;
  uint32_t CellOf(double lon, double lat) const;
  // All trajectories whose (first, last) pivot cells are within `bound`
  // (in cells) of the query's pivot cells.
  std::vector<uint32_t> Probe(const traj::Trajectory& query,
                              double bound) const;

  Options options_;
  std::vector<traj::Trajectory> data_;
  std::vector<geo::MBR> mbrs_;
  std::map<uint64_t, std::vector<uint32_t>> trie_;
};

// REPOSE (ICDE'21): reference-point trie. Each trajectory is summarized by
// the sequence of its nearest reference points; a trie over the summaries
// drives filtering. With a large spatial span the reference set must be
// coarse, which weakens pruning (paper §VI-E).
class REPOSE {
 public:
  struct Options {
    traj::SpatialBounds bounds;
    int num_reference_points = 64;
    int signature_length = 8;
  };

  explicit REPOSE(const Options& options) : options_(options) {}

  void Load(const std::vector<traj::Trajectory>& trajectories);

  std::vector<SimilarityResult> Threshold(const traj::Trajectory& query,
                                          geo::SimilarityMeasure measure,
                                          double threshold,
                                          SimilarityStats* stats);

  std::vector<SimilarityResult> TopK(const traj::Trajectory& query,
                                     geo::SimilarityMeasure measure, size_t k,
                                     SimilarityStats* stats);

 private:
  std::vector<int> SignatureOf(const traj::Trajectory& t) const;

  Options options_;
  std::vector<geo::Point> references_;
  std::vector<traj::Trajectory> data_;
  std::vector<geo::MBR> mbrs_;
  std::vector<std::vector<int>> signatures_;
};

}  // namespace tman::baselines

#endif  // TMAN_BASELINES_SIMILARITY_BASELINES_H_
