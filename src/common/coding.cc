#include "common/coding.h"

#include <cstring>

namespace tman {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  memcpy(buf, &value, sizeof(value));
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  memcpy(buf, &value, sizeof(value));
  dst->append(buf, sizeof(buf));
}

uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

char* EncodeFixed64To(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
  return dst + sizeof(value);
}

char* EncodeVarint32To(char* dst, uint32_t value) {
  unsigned char* p = reinterpret_cast<unsigned char*>(dst);
  while (value >= 0x80) {
    *p++ = static_cast<unsigned char>(value | 0x80);
    value >>= 7;
  }
  *p++ = static_cast<unsigned char>(value);
  return reinterpret_cast<char*>(p);
}

void PutBigEndian32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value >> 24);
  buf[1] = static_cast<char>(value >> 16);
  buf[2] = static_cast<char>(value >> 8);
  buf[3] = static_cast<char>(value);
  dst->append(buf, 4);
}

void PutBigEndian64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; i++) {
    buf[i] = static_cast<char>(value >> (56 - 8 * i));
  }
  dst->append(buf, 8);
}

uint32_t DecodeBigEndian32(const char* ptr) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(ptr);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t DecodeBigEndian64(const char* ptr) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(ptr);
  uint64_t result = 0;
  for (int i = 0; i < 8; i++) {
    result = (result << 8) | p[i];
  }
  return result;
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && p < limit; shift += 7) {
    uint32_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint32Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, limit - q);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  const char* p = input->data();
  const char* limit = p + input->size();
  const char* q = GetVarint64Ptr(p, limit, value);
  if (q == nullptr) return false;
  *input = Slice(q, limit - q);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    len++;
  }
  return len;
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (GetVarint32(input, &len) && input->size() >= len) {
    *result = Slice(input->data(), len);
    input->remove_prefix(len);
    return true;
  }
  return false;
}

}  // namespace tman
