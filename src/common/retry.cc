#include "common/retry.h"

namespace tman {

bool RetryPolicy::IsRetryable(const Status& s) {
  return s.IsIOError() || s.IsBusy();
}

uint64_t RetryPolicy::BackoffMicros(int attempt) const {
  double backoff = static_cast<double>(initial_backoff_micros);
  for (int i = 0; i < attempt; i++) {
    backoff *= backoff_multiplier;
    if (backoff >= static_cast<double>(max_backoff_micros)) {
      return max_backoff_micros;
    }
  }
  const auto micros = static_cast<uint64_t>(backoff);
  return micros < max_backoff_micros ? micros : max_backoff_micros;
}

}  // namespace tman
