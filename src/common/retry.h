#ifndef TMAN_COMMON_RETRY_H_
#define TMAN_COMMON_RETRY_H_

#include <cstdint>

#include "common/status.h"

namespace tman {

// Bounded exponential backoff for re-running failed tasks whose error is
// plausibly transient (I/O hiccup, busy resource). Corruption and invalid
// arguments are never retried: re-reading a bad checksum will not fix it.
struct RetryPolicy {
  int max_retries = 0;  // 0 disables retrying entirely
  uint64_t initial_backoff_micros = 200;
  double backoff_multiplier = 2.0;
  uint64_t max_backoff_micros = 50'000;

  static bool IsRetryable(const Status& s);

  // Backoff before retry `attempt` (0-based): initial * multiplier^attempt,
  // capped at max_backoff_micros.
  uint64_t BackoffMicros(int attempt) const;

  // Whether to run retry `attempt` (0-based) after failure `s`.
  bool ShouldRetry(const Status& s, int attempt) const {
    return attempt < max_retries && IsRetryable(s);
  }
};

}  // namespace tman

#endif  // TMAN_COMMON_RETRY_H_
