#ifndef TMAN_COMMON_THREAD_POOL_H_
#define TMAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tman {

// Fixed-size thread pool. Regions of the simulated cluster execute
// pushed-down scans on this pool, which models the per-node parallelism of
// a distributed key-value store.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules fn and returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tman

#endif  // TMAN_COMMON_THREAD_POOL_H_
