#include "common/hash.h"

#include <cstring>

namespace tman {

uint32_t Hash32(const char* data, size_t n, uint32_t seed) {
  // Similar to murmur hash.
  const uint32_t m = 0xc6a4a793;
  const uint32_t r = 24;
  const char* limit = data + n;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);

  while (data + 4 <= limit) {
    uint32_t w;
    memcpy(&w, data, 4);
    data += 4;
    h += w;
    h *= m;
    h ^= (h >> 16);
  }

  switch (limit - data) {
    case 3:
      h += static_cast<unsigned char>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<unsigned char>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<unsigned char>(data[0]);
      h *= m;
      h ^= (h >> r);
      break;
  }
  return h;
}

uint64_t Hash64(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

struct Crc32cTable {
  uint32_t table[256];
  Crc32cTable() {
    const uint32_t poly = 0x82f63b78;  // reflected Castagnoli
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t crc = i;
      for (int k = 0; k < 8; k++) {
        crc = (crc >> 1) ^ ((crc & 1) ? poly : 0);
      }
      table[i] = crc;
    }
  }
};

const Crc32cTable& GetCrcTable() {
  static const Crc32cTable* table = new Crc32cTable();
  return *table;
}

}  // namespace

uint32_t Crc32c(const char* data, size_t n) {
  const Crc32cTable& t = GetCrcTable();
  uint32_t crc = 0xffffffff;
  for (size_t i = 0; i < n; i++) {
    crc = (crc >> 8) ^ t.table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff];
  }
  return crc ^ 0xffffffff;
}

}  // namespace tman
