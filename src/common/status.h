#ifndef TMAN_COMMON_STATUS_H_
#define TMAN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tman {

// Operation result used throughout the library instead of exceptions.
// A Status is either OK (the default) or carries an error code and message.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kNotSupported,
    kBusy,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Busy(std::string_view msg) { return Status(Code::kBusy, msg); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Human-readable form, e.g. "NotFound: key missing".
  std::string ToString() const;

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_;
  std::string msg_;
};

}  // namespace tman

#endif  // TMAN_COMMON_STATUS_H_
