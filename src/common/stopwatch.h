#ifndef TMAN_COMMON_STOPWATCH_H_
#define TMAN_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace tman {

// Wall-clock stopwatch for benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tman

#endif  // TMAN_COMMON_STOPWATCH_H_
