#include "common/thread_pool.h"

namespace tman {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace tman
