#ifndef TMAN_COMMON_RANDOM_H_
#define TMAN_COMMON_RANDOM_H_

#include <cstdint>

namespace tman {

// Deterministic xorshift128+ RNG. All workload generation in tests and
// benchmarks uses this so runs are reproducible across machines.
class Random {
 public:
  explicit Random(uint64_t seed) {
    s0_ = seed ? seed : 0x9e3779b97f4a7c15ULL;
    s1_ = SplitMix(&s0_);
    s0_ = SplitMix(&s1_);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tman

#endif  // TMAN_COMMON_RANDOM_H_
