#ifndef TMAN_COMMON_CODING_H_
#define TMAN_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace tman {

// Little-endian fixed-width encodings (internal storage format) and
// big-endian "key" encodings that preserve unsigned numeric order under
// bytewise comparison (used to build sorted rowkeys).

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
uint32_t DecodeFixed32(const char* ptr);
uint64_t DecodeFixed64(const char* ptr);

// Raw-buffer variants (no std::string append) for pre-sized encodes on hot
// paths. The caller guarantees room; both return the pointer past the
// encoded value.
char* EncodeFixed64To(char* dst, uint64_t value);
char* EncodeVarint32To(char* dst, uint32_t value);

// Big-endian order-preserving encodings for rowkeys.
void PutBigEndian32(std::string* dst, uint32_t value);
void PutBigEndian64(std::string* dst, uint64_t value);
uint32_t DecodeBigEndian32(const char* ptr);
uint64_t DecodeBigEndian64(const char* ptr);

// Varints (LEB128).
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
// Returns pointer past the parsed value, or nullptr on malformed input.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);
// Slice-consuming variants; return false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
int VarintLength(uint64_t v);

// Length-prefixed slices.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

// ZigZag maps signed ints to unsigned so small magnitudes stay small.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace tman

#endif  // TMAN_COMMON_CODING_H_
