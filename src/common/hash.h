#ifndef TMAN_COMMON_HASH_H_
#define TMAN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace tman {

// 32-bit MurmurHash-like hash used for bloom filters, cache sharding, and
// rowkey shard prefixes.
uint32_t Hash32(const char* data, size_t n, uint32_t seed);

// 64-bit FNV-1a for identifiers.
uint64_t Hash64(const char* data, size_t n);

// CRC32 (Castagnoli polynomial, software implementation) for WAL and
// SSTable block integrity checks.
uint32_t Crc32c(const char* data, size_t n);

}  // namespace tman

#endif  // TMAN_COMMON_HASH_H_
