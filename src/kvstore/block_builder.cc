#include "kvstore/block_builder.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"

namespace tman::kv {

BlockBuilder::BlockBuilder(int restart_interval)
    : restart_interval_(restart_interval) {
  assert(restart_interval_ >= 1);
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < restart_interval_) {
    const size_t min_length = std::min(last_key_.size(), key.size());
    while (shared < min_length && last_key_[shared] == key[shared]) {
      shared++;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

}  // namespace tman::kv
