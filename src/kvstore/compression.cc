#include "kvstore/compression.h"

#include <cstring>
#include <vector>

#include "common/coding.h"
#include "compress/byte_codec.h"
#include "compress/simple8b.h"
#include "compress/traj_codec.h"

namespace tman::kv {

namespace {

// A codec must save at least this fraction of the raw size to be kept;
// otherwise storing raw is cheaper than paying decompression on every read.
inline bool WorthKeeping(size_t raw, size_t compressed) {
  return compressed < raw - raw / 8;
}

inline uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

inline double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Parses a raw block into per-entry key metadata (shared/non_shared varints
// plus the key delta, verbatim) and point columns. Returns false unless
// every value is exactly a kPointValueSize point row.
bool SplitPointBlock(const Slice& raw, std::string* key_meta,
                     Slice* restart_tail, uint32_t* num_entries,
                     compress::PointColumns* cols) {
  if (raw.size() < sizeof(uint32_t)) return false;
  const char* data = raw.data();
  const uint32_t num_restarts = DecodeFixed32(data + raw.size() - 4);
  const uint64_t tail_bytes = (uint64_t{num_restarts} + 1) * 4;
  if (tail_bytes > raw.size()) return false;
  const size_t restart_offset = raw.size() - tail_bytes;
  *restart_tail = Slice(data + restart_offset, tail_bytes);

  const char* p = data;
  const char* limit = data + restart_offset;
  uint32_t entries = 0;
  while (p < limit) {
    const char* entry_start = p;
    uint32_t shared = 0, non_shared = 0, value_len = 0;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p == nullptr) return false;
    p = GetVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) return false;
    const char* after_key_varints = p;
    p = GetVarint32Ptr(p, limit, &value_len);
    if (p == nullptr) return false;
    if (value_len != kPointValueSize) return false;
    if (static_cast<size_t>(limit - p) < non_shared + value_len) return false;
    key_meta->append(entry_start, after_key_varints - entry_start);
    key_meta->append(p, non_shared);
    const char* value = p + non_shared;
    cols->timestamps.push_back(static_cast<int64_t>(DecodeFixed64(value)));
    cols->lons.push_back(BitsToDouble(DecodeFixed64(value + 8)));
    cols->lats.push_back(BitsToDouble(DecodeFixed64(value + 16)));
    p = value + value_len;
    entries++;
  }
  *num_entries = entries;
  return entries > 0;
}

// Column codec for one fixed64 column (timestamps or coordinate bit
// patterns): the first value is stored raw, the rest as zigzagged
// delta-of-delta packed with simple8b. All arithmetic is mod 2^64, so the
// transform is lossless for any inputs; it only *compresses* when the
// column is smooth (consecutive trajectory points), which is exactly the
// workload this codec targets. Returns false when some zigzagged dod is
// too wide for simple8b (>= 60 bits) — the caller then falls back to the
// generic byte codec.
bool DodColumnEncode(const std::vector<uint64_t>& values, std::string* out) {
  PutFixed64(out, values[0]);
  std::vector<uint64_t> packed;
  packed.reserve(values.size() - 1);
  uint64_t prev = values[0];
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < values.size(); i++) {
    const uint64_t delta = values[i] - prev;
    const uint64_t dod = delta - prev_delta;
    const int64_t s = static_cast<int64_t>(dod);
    packed.push_back((static_cast<uint64_t>(s) << 1) ^
                     static_cast<uint64_t>(s >> 63));
    prev = values[i];
    prev_delta = delta;
  }
  return compress::Simple8bEncode(packed, out);
}

bool DodColumnDecode(const char* data, size_t size, uint32_t count,
                     std::vector<uint64_t>* out) {
  if (count == 0 || size < 8) return false;
  uint64_t prev = DecodeFixed64(data);
  out->push_back(prev);
  std::vector<uint64_t> packed;
  if (!compress::Simple8bDecode(data + 8, size - 8, count - 1, &packed)) {
    return false;
  }
  uint64_t prev_delta = 0;
  for (uint64_t z : packed) {
    const uint64_t dod = (z >> 1) ^ (~(z & 1) + 1);
    const uint64_t delta = prev_delta + dod;
    prev += delta;
    out->push_back(prev);
    prev_delta = delta;
  }
  return true;
}

// kTrajPointCompression payload:
//   varint32 raw_size | varint32 num_entries |
//   varint32 key_meta_len | varint32 restart_tail_len |
//   varint32 struct_len | byte-LZ(key_meta | restart_tail) |
//   3 x (varint32 len | DodColumnEncode(ts / lon bits / lat bits))
// The key structure (shared/non_shared varints, prefix-compressed key
// deltas, restart offsets) is highly repetitive across entries, so it goes
// through the generic LZ pass; the point columns get delta-of-delta +
// zigzag + simple8b, which collapses smooth trajectories to a few bits
// per point.
bool TrajCompressBlock(const Slice& raw, std::string* out) {
  std::string key_meta;
  Slice restart_tail;
  uint32_t num_entries = 0;
  compress::PointColumns cols;
  if (!SplitPointBlock(raw, &key_meta, &restart_tail, &num_entries, &cols)) {
    return false;
  }
  std::vector<uint64_t> column(cols.timestamps.size());
  std::string columns_blob;
  std::string one;
  for (int c = 0; c < 3; c++) {
    for (size_t i = 0; i < column.size(); i++) {
      column[i] = c == 0 ? static_cast<uint64_t>(cols.timestamps[i])
                 : c == 1 ? DoubleToBits(cols.lons[i])
                          : DoubleToBits(cols.lats[i]);
    }
    one.clear();
    if (!DodColumnEncode(column, &one)) return false;
    PutVarint32(&columns_blob, static_cast<uint32_t>(one.size()));
    columns_blob.append(one);
  }
  PutVarint32(out, static_cast<uint32_t>(raw.size()));
  PutVarint32(out, num_entries);
  PutVarint32(out, static_cast<uint32_t>(key_meta.size()));
  PutVarint32(out, static_cast<uint32_t>(restart_tail.size()));
  key_meta.append(restart_tail.data(), restart_tail.size());
  std::string structure;
  compress::ByteLzEncode(key_meta.data(), key_meta.size(), &structure);
  PutVarint32(out, static_cast<uint32_t>(structure.size()));
  out->append(structure);
  out->append(columns_blob);
  return true;
}

Status TrajUncompressBlock(const char* data, size_t size, std::string* out) {
  const Status corrupt = Status::Corruption("bad trajectory-compressed block");
  const char* p = data;
  const char* limit = data + size;
  uint32_t raw_size = 0, num_entries = 0, key_meta_len = 0, tail_len = 0;
  uint32_t struct_len = 0;
  p = GetVarint32Ptr(p, limit, &raw_size);
  if (p == nullptr) return corrupt;
  p = GetVarint32Ptr(p, limit, &num_entries);
  if (p == nullptr) return corrupt;
  p = GetVarint32Ptr(p, limit, &key_meta_len);
  if (p == nullptr) return corrupt;
  p = GetVarint32Ptr(p, limit, &tail_len);
  if (p == nullptr) return corrupt;
  p = GetVarint32Ptr(p, limit, &struct_len);
  if (p == nullptr || static_cast<size_t>(limit - p) < struct_len) {
    return corrupt;
  }
  std::string structure;
  if (!compress::ByteLzDecode(p, struct_len, &structure) ||
      structure.size() != uint64_t{key_meta_len} + tail_len) {
    return corrupt;
  }
  p += struct_len;
  const char* key_meta = structure.data();
  const char* restart_tail = structure.data() + key_meta_len;

  std::vector<uint64_t> columns[3];
  for (int c = 0; c < 3; c++) {
    uint32_t len = 0;
    p = GetVarint32Ptr(p, limit, &len);
    if (p == nullptr || static_cast<size_t>(limit - p) < len) return corrupt;
    columns[c].reserve(num_entries);
    if (!DodColumnDecode(p, len, num_entries, &columns[c]) ||
        columns[c].size() != num_entries) {
      return corrupt;
    }
    p += len;
  }

  const size_t base = out->size();
  out->reserve(base + raw_size);
  const char* m = key_meta;
  const char* m_limit = key_meta + key_meta_len;
  for (uint32_t i = 0; i < num_entries; i++) {
    const char* meta_start = m;
    uint32_t shared = 0, non_shared = 0;
    m = GetVarint32Ptr(m, m_limit, &shared);
    if (m == nullptr) return corrupt;
    m = GetVarint32Ptr(m, m_limit, &non_shared);
    if (m == nullptr || static_cast<size_t>(m_limit - m) < non_shared) {
      return corrupt;
    }
    out->append(meta_start, m - meta_start);  // shared/non_shared verbatim
    PutVarint32(out, kPointValueSize);
    out->append(m, non_shared);
    m += non_shared;
    PutFixed64(out, columns[0][i]);
    PutFixed64(out, columns[1][i]);
    PutFixed64(out, columns[2][i]);
  }
  if (m != m_limit) return corrupt;
  out->append(restart_tail, tail_len);
  if (out->size() - base != raw_size) return corrupt;
  return Status::OK();
}

}  // namespace

void EncodePointValue(int64_t ts, double lon, double lat, std::string* out) {
  PutFixed64(out, static_cast<uint64_t>(ts));
  PutFixed64(out, DoubleToBits(lon));
  PutFixed64(out, DoubleToBits(lat));
}

bool DecodePointValue(const Slice& value, int64_t* ts, double* lon,
                      double* lat) {
  if (value.size() != kPointValueSize) return false;
  *ts = static_cast<int64_t>(DecodeFixed64(value.data()));
  *lon = BitsToDouble(DecodeFixed64(value.data() + 8));
  *lat = BitsToDouble(DecodeFixed64(value.data() + 16));
  return true;
}

CompressionType CompressBlock(CompressionType requested, const Slice& raw,
                              std::string* out) {
  if (requested == kNoCompression || raw.empty()) return kNoCompression;
  if (requested == kTrajPointCompression) {
    std::string traj;
    if (TrajCompressBlock(raw, &traj) && WorthKeeping(raw.size(), traj.size())) {
      out->append(traj);
      return kTrajPointCompression;
    }
  }
  std::string lz;
  compress::ByteLzEncode(raw.data(), raw.size(), &lz);
  if (WorthKeeping(raw.size(), lz.size())) {
    out->append(lz);
    return kByteCompression;
  }
  return kNoCompression;
}

Status UncompressBlock(CompressionType type, const char* data, size_t size,
                       std::string* out) {
  switch (type) {
    case kNoCompression:
      out->append(data, size);
      return Status::OK();
    case kByteCompression:
      if (!compress::ByteLzDecode(data, size, out)) {
        return Status::Corruption("bad LZ-compressed block");
      }
      return Status::OK();
    case kTrajPointCompression:
      return TrajUncompressBlock(data, size, out);
  }
  return Status::Corruption("unknown block compression type");
}

}  // namespace tman::kv
