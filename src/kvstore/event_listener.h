#ifndef TMAN_KVSTORE_EVENT_LISTENER_H_
#define TMAN_KVSTORE_EVENT_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/event_log.h"

namespace tman::kv {

// Structured maintenance-event callbacks (the RocksDB EventListener model).
// Listeners are registered through Options::listeners (borrowed pointers
// that must outlive the DB) and observe the store's background lifecycle:
// flushes, compactions, write-stall episodes, sticky background errors,
// ingests and memtable seals.
//
// Delivery contract: events are queued while the DB mutex is held at the
// point the state change commits, and delivered OUTSIDE all DB locks at the
// next public-API boundary (the completing Write/Flush/ingest call or the
// background worker's own drain). Each event is delivered exactly once to
// every listener, in queue order per draining thread. Callbacks may call
// back into the DB (e.g. GetStats) but must be fast — they run on write
// and maintenance paths — and must be thread-safe, as concurrent drains
// can overlap.

struct FlushJobInfo {
  std::string db_name;
  uint64_t file_number = 0;
  uint64_t file_size = 0;   // bytes of the new L0 table
  uint64_t entries = 0;     // memtable entries written
  uint64_t micros = 0;      // table build + install time
};

struct CompactionJobInfo {
  std::string db_name;
  int level = 0;         // input level
  int output_level = 0;  // level + 1
  uint64_t input_files = 0;
  uint64_t output_files = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t filter_dropped = 0;      // compaction-filter expiries removed
  uint64_t filter_tombstoned = 0;   // expiries rewritten as tombstones
  uint64_t micros = 0;
};

struct WriteStallInfo {
  // Why the writer was throttled (mirrors MakeRoomForWrite's branches).
  enum class Cause {
    kL0Slowdown,    // soft backpressure: 1ms slowdown sleep
    kMemtableWait,  // hard stall: previous flush not finished
    kL0Stop,        // hard stall: L0 at the stop trigger
  };
  std::string db_name;
  Cause cause = Cause::kL0Slowdown;
  uint64_t micros = 0;  // episode length; 0 in the Begin callback
};

struct BackgroundErrorInfo {
  std::string db_name;
  Status status;  // the error that just became sticky
};

struct IngestJobInfo {
  std::string db_name;
  std::string file_path;  // source path passed to IngestExternalFile
  uint64_t file_size = 0;
  uint64_t entries = 0;
  int level = 0;  // level the file landed at
};

struct MemtableSealInfo {
  std::string db_name;
  uint64_t memtable_bytes = 0;  // approximate size at seal time
  uint64_t entries = 0;
  uint64_t wal_number = 0;  // WAL retired together with this memtable
};

class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}
  virtual void OnWriteStallBegin(const WriteStallInfo& /*info*/) {}
  virtual void OnWriteStallEnd(const WriteStallInfo& /*info*/) {}
  virtual void OnBackgroundError(const BackgroundErrorInfo& /*info*/) {}
  virtual void OnIngestCompleted(const IngestJobInfo& /*info*/) {}
  virtual void OnMemtableSealed(const MemtableSealInfo& /*info*/) {}
};

// Default listener: records every callback as a structured obs::Event in a
// bounded ring — the /eventz data source. The log is borrowed and must
// outlive the DBs it is attached to.
class EventLogListener : public EventListener {
 public:
  explicit EventLogListener(obs::EventLog* log) : log_(log) {}

  void OnFlushCompleted(const FlushJobInfo& info) override;
  void OnCompactionCompleted(const CompactionJobInfo& info) override;
  void OnWriteStallBegin(const WriteStallInfo& info) override;
  void OnWriteStallEnd(const WriteStallInfo& info) override;
  void OnBackgroundError(const BackgroundErrorInfo& info) override;
  void OnIngestCompleted(const IngestJobInfo& info) override;
  void OnMemtableSealed(const MemtableSealInfo& info) override;

 private:
  obs::EventLog* log_;
};

// Human-readable stall cause ("l0_slowdown", "memtable_wait", "l0_stop").
const char* WriteStallCauseName(WriteStallInfo::Cause cause);

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_EVENT_LISTENER_H_
