#ifndef TMAN_KVSTORE_TABLE_H_
#define TMAN_KVSTORE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/block.h"
#include "kvstore/block_builder.h"
#include "kvstore/bloom.h"
#include "kvstore/cache.h"
#include "kvstore/dbformat.h"
#include "kvstore/env.h"
#include "kvstore/iterator.h"
#include "kvstore/options.h"

namespace tman::kv {

// Location of a block inside an SSTable file.
struct BlockHandle {
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  bool DecodeFrom(Slice* input);
};

// Per-block trailer sizes by table format version. v1 (legacy) blocks end
// with fixed32 crc over the block contents; v2 blocks end with one
// CompressionType byte followed by fixed32 crc over the on-disk (possibly
// compressed) payload. The footer magic selects the version, so old tables
// keep reading without a rewrite.
inline constexpr size_t kBlockTrailerSizeV1 = 4;
inline constexpr size_t kBlockTrailerSizeV2 = 5;

// SSTable file layout:
//   data block*           (each followed by a versioned trailer, see above;
//                          v2 payloads may be per-block compressed)
//   filter block          (one bloom filter over all user keys; no trailer)
//   index block           (separator key -> BlockHandle; same trailer)
//   footer                (filter handle | index handle | padding | magic)
class TableBuilder {
 public:
  TableBuilder(const Options& options, WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  // Keys are internal keys added in sorted order.
  void Add(const Slice& key, const Slice& value);

  Status Finish();

  uint64_t NumEntries() const { return num_entries_; }
  uint64_t FileSize() const { return offset_; }
  Status status() const { return status_; }

 private:
  void FlushDataBlock();
  Status WriteBlock(const Slice& contents, BlockHandle* handle);

  const Options options_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  uint64_t num_entries_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
  BloomFilterPolicy bloom_;
  std::vector<std::string> filter_keys_;  // user keys for the bloom filter
  bool closed_ = false;
};

using BlockCache = ShardedLRUCache<Block>;

// Immutable reader for one SSTable.
class Table {
 public:
  // Takes ownership of `file`. cache may be nullptr.
  static Status Open(const Options& options, uint64_t table_id,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, BlockCache* cache,
                     std::unique_ptr<Table>* table);

  ~Table() = default;

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  // Two-level iterator over internal keys.
  Iterator* NewIterator(const ReadOptions& ro) const;

  // Point lookup: positions at the first entry >= internal key `k` and, if
  // it matches, invokes handle_result(key, value). The bloom filter is
  // consulted first.
  Status InternalGet(const ReadOptions& ro, const Slice& k,
                     void* arg,
                     void (*handle_result)(void*, const Slice&, const Slice&));

  // Whether the table's bloom filter admits this user key.
  bool KeyMayMatch(const Slice& user_key) const;

  // Whether this table carries a bloom filter at all.
  bool has_filter() const { return !filter_data_.empty(); }

  // Re-reads every data block from disk (bypassing the block cache, which
  // would mask on-disk damage), verifies its CRC trailer over the on-disk
  // (compressed) bytes, and proves it decompresses cleanly. *blocks_checked
  // (may be nullptr) receives the number of blocks read. Returns the first
  // corruption found.
  Status VerifyChecksums(uint64_t* blocks_checked) const;

  // Appends the user-key portion of every index-block separator key that
  // falls inside (start, end) to *out (empty end = +infinity, both bounds
  // exclusive). Each separator stands for roughly one data block of bytes,
  // so the collected keys are an approximately size-weighted sample of the
  // table's key distribution — the input for median-split-key estimation.
  // Reads only the resident index block: no data-block I/O.
  void AppendIndexUserKeys(const Slice& start, const Slice& end,
                           std::vector<std::string>* out) const;

  // Table format version parsed from the footer magic (1 = legacy
  // crc-only trailers, 2 = compression-type + crc trailers).
  int format_version() const { return format_version_; }
  size_t trailer_size() const {
    return format_version_ >= 2 ? kBlockTrailerSizeV2 : kBlockTrailerSizeV1;
  }

 private:
  friend class TableIterator;

  Table(const Options& options, uint64_t table_id,
        std::unique_ptr<RandomAccessFile> file, BlockCache* cache)
      : options_(options),
        table_id_(table_id),
        file_(std::move(file)),
        cache_(cache),
        bloom_(options.bloom_bits_per_key > 0 ? options.bloom_bits_per_key
                                              : 10) {}

  // Verifies the trailer (located at payload + handle-size) against the
  // on-disk payload bytes and appends the uncompressed block contents to
  // *raw. `payload` must have at least payload_size + trailer_size() bytes.
  Status DecodeBlockContents(const char* payload, uint64_t payload_size,
                             std::string* raw) const;

  // Reads (or fetches from cache) the block at `handle`. Cached blocks are
  // always the uncompressed contents.
  Status ReadBlock(const BlockHandle& handle, bool fill_cache,
                   std::shared_ptr<Block>* block) const;

  // Cache-only probe for the block at `handle`; nullptr on miss or when no
  // cache is attached. Lets the iterator skip readahead bookkeeping for
  // blocks that are already resident.
  std::shared_ptr<Block> CachedBlock(const BlockHandle& handle) const;

  // Sequential readahead: reads the block at `first` plus the contiguous
  // run of blocks in `more` with a single I/O, parking the run in the block
  // cache so the iterator's subsequent InitDataBlock calls hit it. Returns
  // the first block; *cached reports how many run blocks were inserted. A
  // checksum failure in a run block just ends the run (that block has not
  // been asked for yet); a failure in `first` is a real Corruption.
  Status ReadBlockRun(const BlockHandle& first,
                      const std::vector<BlockHandle>& more, bool fill_cache,
                      std::shared_ptr<Block>* block, uint64_t* cached) const;

  const Options options_;
  const uint64_t table_id_;
  std::unique_ptr<RandomAccessFile> file_;
  BlockCache* cache_;
  BloomFilterPolicy bloom_;
  std::string filter_data_;
  std::unique_ptr<Block> index_block_;
  InternalKeyComparator icmp_;
  int format_version_ = 2;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_TABLE_H_
