#ifndef TMAN_KVSTORE_BLOCK_BUILDER_H_
#define TMAN_KVSTORE_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace tman::kv {

// Builds a sorted data block with shared-prefix key compression and restart
// points every `restart_interval` entries:
//   entry := shared varint32 | non_shared varint32 | value_len varint32
//            | key_delta | value
//   trailer := restarts fixed32[] | num_restarts fixed32
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();

  // Keys must be added in strictly increasing order.
  void Add(const Slice& key, const Slice& value);

  // Appends the trailer and returns the finished block contents. The
  // returned slice stays valid until Reset().
  Slice Finish();

  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_BLOCK_BUILDER_H_
