#ifndef TMAN_KVSTORE_OPTIONS_H_
#define TMAN_KVSTORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kvstore/compression.h"

namespace tman {
class ThreadPool;
}  // namespace tman

namespace tman::obs {
class MetricsRegistry;
}  // namespace tman::obs

namespace tman::kv {

class CompactionFilter;
class Env;
class EventListener;

struct Options {
  // Size at which the memtable is flushed to an L0 SSTable.
  size_t write_buffer_size = 4 * 1024 * 1024;

  // Target uncompressed size of SSTable data blocks.
  size_t block_size = 4 * 1024;

  // Restart-point interval inside data blocks.
  int block_restart_interval = 16;

  // Bits per key for the per-table bloom filter; 0 disables filters.
  int bloom_bits_per_key = 10;

  // Capacity of the shared block cache in bytes.
  size_t block_cache_bytes = 8 * 1024 * 1024;

  // Number of L0 files that triggers a compaction into L1.
  int l0_compaction_trigger = 4;

  // Number of L0 files at which incoming writes are throttled with short
  // sleeps so the background compactor can catch up (soft backpressure).
  int l0_slowdown_trigger = 8;

  // Number of L0 files at which writes stall completely until a compaction
  // reduces L0 (hard backpressure).
  int l0_stop_trigger = 12;

  // If true (default), memtable flushes and compactions run on a background
  // worker and the write path only pays the WAL append + memtable insert.
  // If false, both run synchronously inside the writing thread (the
  // deterministic legacy behaviour, kept as the benchmark baseline).
  bool background_flush = true;

  // Thread pool for background flushes/compactions, shared across DBs (the
  // cluster passes its maintenance pool here). nullptr means each DB owns a
  // private single worker thread. Ignored when background_flush is false.
  tman::ThreadPool* background_pool = nullptr;

  // If true (default), a group-commit leader that folded several queued
  // writers into one WAL record wakes those writers after the record lands
  // and lets each apply its own batch into the memtable in parallel
  // (CAS-based concurrent skiplist insert), instead of replaying the whole
  // group single-threaded. Sequence sub-ranges are pre-assigned so the
  // result is byte-identical to the serial apply; the leader still owns WAL
  // append + fsync ordering and publishes the group's visibility only after
  // every applier finishes. If false, the leader applies the folded batch
  // alone (the legacy single-writer memtable path).
  bool allow_concurrent_memtable_write = true;

  // Number of levels (L0..Lmax-1).
  int num_levels = 7;

  // Size budget of L1; each deeper level is 10x larger.
  uint64_t base_level_bytes = 8 * 1024 * 1024;

  // Max SSTable file size produced by compactions.
  uint64_t max_file_bytes = 2 * 1024 * 1024;

  // Per-block compression applied when tables are built (flush, compaction,
  // SstFileWriter). Stored in each block's trailer byte, so readers never
  // consult this option and a table may mix block encodings; the block
  // cache always holds uncompressed blocks, keeping zero-copy iteration
  // unchanged. kTrajPointCompression falls back per block to the generic
  // byte codec (and then to none) when values are not point rows or when a
  // codec does not actually shrink the block.
  CompressionType compression = kNoCompression;

  // When set, leveled compactions consult this filter on the newest version
  // of each surviving user key (TTL/retention). Borrowed pointer; must be
  // thread-safe and outlive the DB. See kvstore/compaction_filter.h.
  const CompactionFilter* compaction_filter = nullptr;

  // Test hook: write SSTables in the legacy v1 format (4-byte crc-only
  // block trailer, no compression, v1 footer magic) so compatibility with
  // pre-compression tables stays covered by tests.
  bool write_legacy_table_format = false;

  // Sequential block readahead budget applied by DB::MultiScan when the
  // caller's ReadOptions leave readahead_bytes at 0. Readahead only
  // triggers on a detected sequential block pattern, so point-ish window
  // batches never over-read. 0 disables it.
  size_t multiscan_readahead_bytes = 64 * 1024;

  bool create_if_missing = true;

  // If true, WAL recovery refuses to open when it hits a corrupt record in
  // the middle of the log (bad checksum, implausible length) and surfaces
  // Corruption instead. A torn tail — a truncated final record from a crash
  // mid-write — is tolerated in both modes; only the un-acknowledged tail
  // bytes are dropped and counted in DB::Stats.
  bool paranoid_checks = false;

  Env* env = nullptr;  // defaults to Env::Default()

  // Metrics registry the DB records into (tman_kv_* latency histograms and
  // event counters; see DESIGN.md "Observability"). Shared across DBs:
  // counters are live increments, so several region DBs pointed at one
  // registry aggregate naturally. nullptr disables recording entirely —
  // hot paths skip even the stopwatch reads.
  tman::obs::MetricsRegistry* metrics = nullptr;

  // Maintenance-event listeners (flush/compaction/stall/bg-error/ingest
  // callbacks; see kvstore/event_listener.h for the delivery contract).
  // Borrowed pointers shared across DBs; must be thread-safe and outlive
  // every DB they are attached to. Empty (the default) keeps the event
  // paths zero-cost.
  std::vector<EventListener*> listeners;
};

struct MultiScanPerf;

struct ReadOptions {
  // If true, data blocks read during scans are inserted into the block
  // cache (point lookups always use the cache).
  bool fill_cache = true;

  // Sequential block readahead budget in bytes. When > 0 and a table
  // iterator detects a sequential block access pattern (the next data block
  // starts where the previous one ended), it reads up to this many further
  // contiguous data blocks with one I/O and parks them in the block cache.
  // 0 disables readahead. Set by the MultiScan path (from
  // Options::multiscan_readahead_bytes); plain scans leave it 0.
  size_t readahead_bytes = 0;

  // When non-null, table iterators fold block-reuse and readahead events
  // into these counters (borrowed; must outlive every iterator created
  // with this ReadOptions). Set internally by DB::MultiScan.
  MultiScanPerf* perf = nullptr;
};

struct WriteOptions {
  // If true, the WAL write is flushed before the write is acknowledged.
  bool sync = false;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_OPTIONS_H_
