#include "kvstore/write_batch.h"

#include "common/coding.h"
#include "kvstore/dbformat.h"
#include "kvstore/memtable.h"

namespace tman::kv {

namespace {
constexpr size_t kHeader = 12;  // 8-byte sequence + 4-byte count
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

uint32_t WriteBatch::Count() const { return DecodeFixed32(rep_.data() + 8); }

namespace {
void SetCount(std::string* rep, uint32_t n) {
  char buf[4];
  memcpy(buf, &n, sizeof(n));
  rep->replace(8, 4, buf, 4);
}
}  // namespace

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(&rep_, Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

void WriteBatch::Append(const WriteBatch& other) {
  SetCount(&rep_, Count() + other.Count());
  rep_.append(other.rep_.data() + kHeader, other.rep_.size() - kHeader);
}

void WriteBatch::SetSequence(uint64_t seq) {
  char buf[8];
  memcpy(buf, &seq, sizeof(seq));
  rep_.replace(0, 8, buf, 8);
}

uint64_t WriteBatch::Sequence() const { return DecodeFixed64(rep_.data()); }

void WriteBatch::SetContentsFrom(const Slice& contents) {
  rep_.assign(contents.data(), contents.size());
}

Status WriteBatch::InsertInto(MemTable* mem) const {
  return InsertInto(mem, Sequence(), /*concurrent=*/false);
}

Status WriteBatch::InsertInto(MemTable* mem, uint64_t base_sequence,
                              bool concurrent) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  SequenceNumber seq = base_sequence;
  input.remove_prefix(kHeader);
  uint32_t found = 0;
  while (!input.empty()) {
    found++;
    char tag = input[0];
    input.remove_prefix(1);
    Slice key, value;
    switch (static_cast<ValueType>(tag)) {
      case kTypeValue:
        if (!GetLengthPrefixedSlice(&input, &key) ||
            !GetLengthPrefixedSlice(&input, &value)) {
          return Status::Corruption("bad WriteBatch Put");
        }
        mem->Add(seq, kTypeValue, key, value, concurrent);
        break;
      case kTypeDeletion:
        if (!GetLengthPrefixedSlice(&input, &key)) {
          return Status::Corruption("bad WriteBatch Delete");
        }
        mem->Add(seq, kTypeDeletion, key, Slice(), concurrent);
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
    seq++;
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

}  // namespace tman::kv
