#ifndef TMAN_KVSTORE_MEMTABLE_H_
#define TMAN_KVSTORE_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/arena.h"
#include "kvstore/dbformat.h"
#include "kvstore/iterator.h"
#include "kvstore/skiplist.h"

namespace tman::kv {

// In-memory sorted write buffer. Entries live in an arena; the table is a
// skiplist over encoded records:
//   varint32 internal_key_len | internal_key | varint32 value_len | value
//
// Concurrency: readers (Get/NewIterator/ApproximateMemoryUsage) are always
// safe against in-flight writers. Writers are either exclusive (the default
// Add, used by the group-commit leader and WAL replay) or concurrent
// (Add(..., /*concurrent=*/true), used by parallel group-commit appliers):
// concurrent adds go through the CAS-based skiplist insert and the striped
// arena, so any number may run at once — but must not overlap an exclusive
// Add.
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& cmp);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value, bool concurrent = false);

  // If the memtable holds a value for key, sets *value and returns true.
  // If it holds a deletion, sets *s to NotFound and returns true.
  bool Get(const LookupKey& key, std::string* value, Status* s);

  // Iterator over internal keys. The memtable must outlive the iterator.
  Iterator* NewIterator() const;

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }

  // Safe to read while writers insert; monotonically grows.
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }

  // Public so the iterator implementation (in the .cc) can name the table
  // type; not part of the user-facing API.
  struct KeyComparator {
    InternalKeyComparator comparator;
    int operator()(const char* a, const char* b) const;
  };

 private:
  using Table = SkipList<const char*, KeyComparator, ConcurrentArena>;

  KeyComparator comparator_;
  ConcurrentArena arena_;
  Table table_;
  std::atomic<uint64_t> num_entries_{0};
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_MEMTABLE_H_
