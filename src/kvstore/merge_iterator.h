#ifndef TMAN_KVSTORE_MERGE_ITERATOR_H_
#define TMAN_KVSTORE_MERGE_ITERATOR_H_

#include <memory>
#include <vector>

#include "kvstore/dbformat.h"
#include "kvstore/iterator.h"

namespace tman::kv {

// K-way merging iterator over internal-key iterators. Takes ownership of
// the children.
Iterator* NewMergingIterator(const InternalKeyComparator* cmp,
                             std::vector<Iterator*> children);

// An always-invalid iterator carrying `status`.
Iterator* NewErrorIterator(const Status& status);

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_MERGE_ITERATOR_H_
