#ifndef TMAN_KVSTORE_ARENA_H_
#define TMAN_KVSTORE_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace tman::kv {

// Bump allocator backing the memtable skiplist. Memory is freed only when
// the arena is destroyed (when the memtable is dropped after a flush).
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    assert(bytes > 0);
    if (bytes <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_;
      alloc_ptr_ += bytes;
      alloc_bytes_remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  // Allocation with pointer-size alignment (skiplist nodes).
  char* AllocateAligned(size_t bytes) {
    const size_t align = alignof(std::max_align_t);
    size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
    size_t slop = (current_mod == 0 ? 0 : align - current_mod);
    size_t needed = bytes + slop;
    if (needed <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_ + slop;
      alloc_ptr_ += needed;
      alloc_bytes_remaining_ -= needed;
      return result;
    }
    return AllocateFallback(bytes);  // fallback is always aligned
  }

  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block to limit waste.
      return AllocateNewBlock(bytes);
    }
    alloc_ptr_ = AllocateNewBlock(kBlockSize);
    alloc_bytes_remaining_ = kBlockSize;
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }

  char* AllocateNewBlock(size_t block_bytes) {
    blocks_.push_back(std::make_unique<char[]>(block_bytes));
    memory_usage_.fetch_add(block_bytes + sizeof(char*),
                            std::memory_order_relaxed);
    return blocks_.back().get();
  }

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_ARENA_H_
