#ifndef TMAN_KVSTORE_ARENA_H_
#define TMAN_KVSTORE_ARENA_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace tman::kv {

// Bump allocator backing the memtable skiplist. Memory is freed only when
// the arena is destroyed (when the memtable is dropped after a flush).
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes) {
    assert(bytes > 0);
    if (bytes <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_;
      alloc_ptr_ += bytes;
      alloc_bytes_remaining_ -= bytes;
      return result;
    }
    return AllocateFallback(bytes);
  }

  // Allocation with pointer-size alignment (skiplist nodes).
  char* AllocateAligned(size_t bytes) {
    const size_t align = alignof(std::max_align_t);
    size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
    size_t slop = (current_mod == 0 ? 0 : align - current_mod);
    size_t needed = bytes + slop;
    if (needed <= alloc_bytes_remaining_) {
      char* result = alloc_ptr_ + slop;
      alloc_ptr_ += needed;
      alloc_bytes_remaining_ -= needed;
      return result;
    }
    return AllocateFallback(bytes);  // fallback is always aligned
  }

  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kBlockSize = 4096;

  char* AllocateFallback(size_t bytes) {
    if (bytes > kBlockSize / 4) {
      // Large allocation gets its own block to limit waste.
      return AllocateNewBlock(bytes);
    }
    alloc_ptr_ = AllocateNewBlock(kBlockSize);
    alloc_bytes_remaining_ = kBlockSize;
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }

  char* AllocateNewBlock(size_t block_bytes) {
    blocks_.push_back(std::make_unique<char[]>(block_bytes));
    memory_usage_.fetch_add(block_bytes + sizeof(char*),
                            std::memory_order_relaxed);
    return blocks_.back().get();
  }

  char* alloc_ptr_ = nullptr;
  size_t alloc_bytes_remaining_ = 0;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

// Thread-safe bump allocator for the concurrent-insert memtable: any number
// of threads may Allocate/AllocateAligned while readers walk previously
// returned memory. Same no-free lifetime contract as Arena.
//
// Layout: allocations are striped across kNumShards shards (threads pick a
// shard by a cheap thread-local id, so concurrent writers rarely collide).
// Each shard owns the current bump block and claims space with one atomic
// fetch_add on the block's offset — the fast path takes no lock. When the
// fetch_add overshoots the block, the thread falls back to the lock-taken
// path: it takes the shard lock, re-checks (another thread may already have
// installed a fresh block), and otherwise carves a new shard block out of
// the shared backing store. Retired blocks simply keep whatever tail the
// overshooting threads could not use; blocks are never reused, so the
// lock-free path has no ABA hazard.
//
// All fast-path sizes are rounded up to 8 bytes and block bases are
// max-aligned, so every returned pointer is at least 8-byte aligned —
// sufficient for skiplist nodes (pointer + atomic pointer array).
// MemoryUsage() is a relaxed atomic read, safe from any thread.
class ConcurrentArena {
 public:
  ConcurrentArena() = default;
  ConcurrentArena(const ConcurrentArena&) = delete;
  ConcurrentArena& operator=(const ConcurrentArena&) = delete;

  char* Allocate(size_t bytes) {
    assert(bytes > 0);
    return AllocateImpl(Round8(bytes));
  }

  // 8-byte-aligned allocation (skiplist nodes). Every path already returns
  // 8-byte-aligned memory, so this is an alias kept for interface parity
  // with Arena.
  char* AllocateAligned(size_t bytes) {
    assert(bytes > 0);
    return AllocateImpl(Round8(bytes));
  }

  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kNumShards = 8;
  static constexpr size_t kShardBlockSize = 32 * 1024;

  // One bump block. `used` may overshoot `size` (failed claims on a full
  // block); the block is then retired and the remaining tail wasted.
  struct Block {
    explicit Block(size_t n) : data(new char[n]), size(n) {}
    std::unique_ptr<char[]> data;
    size_t size;
    std::atomic<size_t> used{0};
  };

  struct alignas(64) Shard {
    std::atomic<Block*> block{nullptr};
    std::mutex refill_mu;  // serializes block replacement only
  };

  static size_t Round8(size_t bytes) { return (bytes + 7) & ~size_t{7}; }

  // Cheap stable per-thread shard choice; consecutive threads spread across
  // shards round-robin.
  static size_t ShardIndex() {
    static std::atomic<size_t> next_thread{0};
    thread_local size_t id =
        next_thread.fetch_add(1, std::memory_order_relaxed);
    return id % kNumShards;
  }

  char* AllocateImpl(size_t bytes) {
    if (bytes > kShardBlockSize / 4) {
      // Large allocation: dedicated block from the backing store so shard
      // blocks are not burned on one oversized value.
      std::lock_guard<std::mutex> lock(blocks_mu_);
      Block* b = NewBlockLocked(bytes);
      b->used.store(bytes, std::memory_order_relaxed);
      return b->data.get();
    }
    Shard& shard = shards_[ShardIndex()];
    for (;;) {
      Block* b = shard.block.load(std::memory_order_acquire);
      if (b != nullptr) {
        const size_t off = b->used.fetch_add(bytes, std::memory_order_relaxed);
        if (off + bytes <= b->size) return b->data.get() + off;
        // Overshot: block is full. Fall through to install a fresh one.
      }
      std::lock_guard<std::mutex> lock(shard.refill_mu);
      if (shard.block.load(std::memory_order_acquire) == b) {
        Block* fresh;
        {
          std::lock_guard<std::mutex> blocks_lock(blocks_mu_);
          fresh = NewBlockLocked(kShardBlockSize);
        }
        shard.block.store(fresh, std::memory_order_release);
      }
      // Retry the fast path against the (possibly concurrently) installed
      // block.
    }
  }

  Block* NewBlockLocked(size_t block_bytes) {
    blocks_.push_back(std::make_unique<Block>(block_bytes));
    memory_usage_.fetch_add(block_bytes + sizeof(Block),
                            std::memory_order_relaxed);
    return blocks_.back().get();
  }

  Shard shards_[kNumShards];
  std::mutex blocks_mu_;  // guards blocks_ (block ownership list)
  std::vector<std::unique_ptr<Block>> blocks_;
  std::atomic<size_t> memory_usage_{0};
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_ARENA_H_
