#include "kvstore/version.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "kvstore/filename.h"
#include "kvstore/log.h"

namespace tman::kv {

namespace {

// Newest L0 file first (larger file number = newer data).
bool NewestFirst(const FileMetaPtr& a, const FileMetaPtr& b) {
  return a->number > b->number;
}

bool BySmallestKey(const FileMetaPtr& a, const FileMetaPtr& b) {
  InternalKeyComparator icmp;
  return icmp.Compare(a->smallest.Encode(), b->smallest.Encode()) < 0;
}

struct GetState {
  Slice user_key;
  bool found = false;
  bool deleted = false;
  std::string* value = nullptr;
};

void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  GetState* s = reinterpret_cast<GetState*>(arg);
  ParsedInternalKey parsed;
  if (!ParseInternalKey(ikey, &parsed)) return;
  if (parsed.user_key != s->user_key) return;
  s->found = true;
  if (parsed.type == kTypeDeletion) {
    s->deleted = true;
  } else {
    s->value->assign(v.data(), v.size());
  }
}

}  // namespace

namespace {

// Bloom-filter accounting for one candidate file: returns false when the
// filter proves the key absent (the table read can be skipped). Only used
// on the instrumented path; the fast path leaves the check inside
// Table::InternalGet.
bool FilterAdmits(const FileMetaPtr& f, const Slice& user_key, int level,
                  GetPerf* perf) {
  if (f->table->has_filter()) {
    perf->bloom_checks++;
    if (!f->table->KeyMayMatch(user_key)) {
      perf->bloom_useful++;
      return false;
    }
  }
  const int slot = level < GetPerf::kMaxLevels ? level : GetPerf::kMaxLevels - 1;
  perf->reads_per_level[slot]++;
  return true;
}

}  // namespace

Status Version::Get(const ReadOptions& ro, const LookupKey& key,
                    std::string* value, GetPerf* perf) {
  const Slice ikey = key.internal_key();
  const Slice user_key = key.user_key();

  GetState state;
  state.user_key = user_key;
  state.value = value;

  // L0: files may overlap; check newest first.
  for (const FileMetaPtr& f : files_[0]) {
    if (user_key.compare(f->smallest.user_key()) < 0 ||
        user_key.compare(f->largest.user_key()) > 0) {
      continue;
    }
    if (perf != nullptr && !FilterAdmits(f, user_key, 0, perf)) continue;
    Status s = f->table->InternalGet(ro, ikey, &state, SaveValue);
    if (!s.ok()) return s;
    if (state.found) {
      return state.deleted ? Status::NotFound("deleted") : Status::OK();
    }
  }

  // Deeper levels: files are disjoint and sorted by smallest key.
  for (int level = 1; level < num_levels(); level++) {
    const auto& files = files_[level];
    if (files.empty()) continue;
    // Binary search for the first file whose largest >= user_key.
    int lo = 0, hi = static_cast<int>(files.size()) - 1, idx = -1;
    while (lo <= hi) {
      int mid = (lo + hi) / 2;
      if (files[mid]->largest.user_key().compare(user_key) >= 0) {
        idx = mid;
        hi = mid - 1;
      } else {
        lo = mid + 1;
      }
    }
    if (idx < 0) continue;
    const FileMetaPtr& f = files[idx];
    if (user_key.compare(f->smallest.user_key()) < 0) continue;
    if (perf != nullptr && !FilterAdmits(f, user_key, level, perf)) continue;
    Status s = f->table->InternalGet(ro, ikey, &state, SaveValue);
    if (!s.ok()) return s;
    if (state.found) {
      return state.deleted ? Status::NotFound("deleted") : Status::OK();
    }
  }
  return Status::NotFound("key not present");
}

void Version::AddIterators(const ReadOptions& ro,
                           std::vector<Iterator*>* iters) {
  for (const auto& level : files_) {
    for (const FileMetaPtr& f : level) {
      iters->push_back(f->table->NewIterator(ro));
    }
  }
}

uint64_t Version::NumLevelBytes(int level) const {
  uint64_t total = 0;
  for (const FileMetaPtr& f : files_[level]) total += f->file_size;
  return total;
}

int Version::NumFiles(int level) const {
  return static_cast<int>(files_[level].size());
}

bool Version::IsBottommostForKey(int level, const Slice& user_key) const {
  for (int l = level + 1; l < num_levels(); l++) {
    for (const FileMetaPtr& f : files_[l]) {
      if (user_key.compare(f->smallest.user_key()) >= 0 &&
          user_key.compare(f->largest.user_key()) <= 0) {
        return false;
      }
    }
  }
  return true;
}

bool Version::OverlapsRange(int level, const Slice& smallest_user_key,
                            const Slice& largest_user_key) const {
  for (const FileMetaPtr& f : files_[level]) {
    if (largest_user_key.compare(f->smallest.user_key()) < 0) continue;
    if (smallest_user_key.compare(f->largest.user_key()) > 0) continue;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// VersionSet

VersionSet::VersionSet(std::string dbname, const Options& options, Env* env,
                       BlockCache* cache)
    : dbname_(std::move(dbname)),
      options_(options),
      env_(env),
      cache_(cache),
      current_(std::make_shared<Version>(options.num_levels)) {}

Status VersionSet::OpenTable(FileMetaData* meta) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(TableFileName(dbname_, meta->number),
                                       &file);
  if (!s.ok()) return s;
  return Table::Open(options_, meta->number, std::move(file), meta->file_size,
                     cache_, &meta->table);
}

Status VersionSet::Recover() {
  const std::string manifest = ManifestFileName(dbname_);
  if (!env_->FileExists(manifest)) {
    // Fresh database.
    return WriteSnapshot();
  }

  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(manifest, &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  if (!reader.ReadRecord(&record, &scratch)) {
    return Status::Corruption("empty or corrupt MANIFEST");
  }

  Slice input = record;
  uint64_t next_file, last_seq, wal_number;
  uint32_t num_levels;
  if (!GetVarint64(&input, &next_file) || !GetVarint64(&input, &last_seq) ||
      !GetVarint64(&input, &wal_number) || !GetVarint32(&input, &num_levels)) {
    return Status::Corruption("bad MANIFEST header");
  }
  // Sanity caps: the CRC already screens random corruption, but a valid-CRC
  // record from the wrong file (or a bug) must not drive huge allocations.
  if (num_levels > 64) {
    return Status::Corruption("bad MANIFEST level count");
  }
  next_file_number_.store(next_file, std::memory_order_relaxed);
  last_sequence_ = last_seq;
  wal_number_ = wal_number;

  auto v = std::make_shared<Version>(options_.num_levels);
  for (uint32_t level = 0; level < num_levels; level++) {
    uint32_t count;
    if (!GetVarint32(&input, &count) || count > (1u << 20)) {
      return Status::Corruption("bad MANIFEST level count");
    }
    for (uint32_t i = 0; i < count; i++) {
      auto meta = std::make_shared<FileMetaData>();
      Slice smallest, largest;
      if (!GetVarint64(&input, &meta->number) ||
          !GetVarint64(&input, &meta->file_size) ||
          !GetLengthPrefixedSlice(&input, &smallest) ||
          !GetLengthPrefixedSlice(&input, &largest)) {
        return Status::Corruption("bad MANIFEST file record");
      }
      meta->smallest.DecodeFrom(smallest);
      meta->largest.DecodeFrom(largest);
      if (!env_->FileExists(TableFileName(dbname_, meta->number))) {
        // The MANIFEST is the commit record: a referenced table that is not
        // on disk means the directory is damaged, not "empty".
        return Status::Corruption("MANIFEST references missing table file " +
                                  TableFileName(dbname_, meta->number));
      }
      s = OpenTable(meta.get());
      if (!s.ok()) return s;
      if (level < static_cast<uint32_t>(options_.num_levels)) {
        v->files_[level].push_back(std::move(meta));
      }
    }
  }
  std::sort(v->files_[0].begin(), v->files_[0].end(), NewestFirst);
  for (int level = 1; level < v->num_levels(); level++) {
    std::sort(v->files_[level].begin(), v->files_[level].end(), BySmallestKey);
  }
  current_ = std::move(v);
  return Status::OK();
}

Status VersionSet::WriteSnapshot() {
  std::string record;
  PutVarint64(&record, next_file_number_.load(std::memory_order_relaxed));
  PutVarint64(&record, last_sequence_);
  PutVarint64(&record, wal_number_);
  PutVarint32(&record, static_cast<uint32_t>(current_->num_levels()));
  for (int level = 0; level < current_->num_levels(); level++) {
    const auto& files = current_->LevelFiles(level);
    PutVarint32(&record, static_cast<uint32_t>(files.size()));
    for (const FileMetaPtr& f : files) {
      PutVarint64(&record, f->number);
      PutVarint64(&record, f->file_size);
      PutLengthPrefixedSlice(&record, f->smallest.Encode());
      PutLengthPrefixedSlice(&record, f->largest.Encode());
    }
  }

  const std::string tmp = TempManifestFileName(dbname_);
  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(tmp, &file);
  if (!s.ok()) return s;
  LogWriter writer(std::move(file));
  s = writer.AddRecord(record);
  // Sync before the rename publishes it: the renamed MANIFEST must never be
  // shorter than what its tables and WAL deletions assume.
  if (s.ok()) s = writer.file()->Sync();
  if (s.ok()) s = writer.Close();
  if (s.ok()) s = env_->RenameFile(tmp, ManifestFileName(dbname_));
  return s;
}

Status VersionSet::InstallVersion(int level, std::vector<FileMetaPtr> added,
                                  const std::vector<uint64_t>& removed_numbers,
                                  int removed_level_hint) {
  (void)removed_level_hint;
  auto v = std::make_shared<Version>(options_.num_levels);
  for (int l = 0; l < current_->num_levels(); l++) {
    for (const FileMetaPtr& f : current_->LevelFiles(l)) {
      if (std::find(removed_numbers.begin(), removed_numbers.end(),
                    f->number) == removed_numbers.end()) {
        v->files_[l].push_back(f);
      }
    }
  }
  for (FileMetaPtr& f : added) {
    v->files_[level].push_back(std::move(f));
  }
  std::sort(v->files_[0].begin(), v->files_[0].end(), NewestFirst);
  for (int l = 1; l < v->num_levels(); l++) {
    std::sort(v->files_[l].begin(), v->files_[l].end(), BySmallestKey);
  }
  current_ = std::move(v);
  return WriteSnapshot();
}

std::vector<uint64_t> VersionSet::LiveFiles() const {
  std::vector<uint64_t> live;
  for (int l = 0; l < current_->num_levels(); l++) {
    for (const FileMetaPtr& f : current_->LevelFiles(l)) {
      live.push_back(f->number);
    }
  }
  return live;
}

}  // namespace tman::kv
