#ifndef TMAN_KVSTORE_VERSION_H_
#define TMAN_KVSTORE_VERSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/dbformat.h"
#include "kvstore/iterator.h"
#include "kvstore/options.h"
#include "kvstore/table.h"

namespace tman::kv {

// One on-disk SSTable plus its open reader. The reader (and file
// descriptor) stays open for the lifetime of the metadata object, so files
// can be unlinked while old versions still read them.
struct FileMetaData {
  uint64_t number = 0;
  uint64_t file_size = 0;
  InternalKey smallest;
  InternalKey largest;
  std::unique_ptr<Table> table;
};

using FileMetaPtr = std::shared_ptr<FileMetaData>;

// Per-lookup read-path breakdown, filled by Version::Get when requested
// (allocation-free: fixed arrays, lives on the caller's stack). Levels
// deeper than kMaxLevels-1 fold into the last slot.
struct GetPerf {
  static constexpr int kMaxLevels = 8;
  uint32_t bloom_checks = 0;  // candidate files whose filter was consulted
  uint32_t bloom_useful = 0;  // files skipped entirely thanks to the filter
  uint32_t reads_per_level[kMaxLevels] = {};  // SSTable point reads by level
};

// An immutable snapshot of the LSM tree's file layout. Readers hold a
// shared_ptr<Version>; flush/compaction install a new Version.
class Version {
 public:
  explicit Version(int num_levels) : files_(num_levels) {}

  const std::vector<FileMetaPtr>& LevelFiles(int level) const {
    return files_[level];
  }
  int num_levels() const { return static_cast<int>(files_.size()); }

  // Point lookup across levels (L0 newest-first, deeper levels by range).
  // When `perf` is non-null the bloom check is hoisted out of the table so
  // filter effectiveness and per-level read counts can be recorded.
  Status Get(const ReadOptions& ro, const LookupKey& key, std::string* value,
             GetPerf* perf = nullptr);

  // Appends iterators covering all files to *iters.
  void AddIterators(const ReadOptions& ro, std::vector<Iterator*>* iters);

  uint64_t NumLevelBytes(int level) const;
  int NumFiles(int level) const;

  // True if no file in levels deeper than `level` overlaps user_key
  // (tombstones can then be dropped during compaction at `level`).
  bool IsBottommostForKey(int level, const Slice& user_key) const;

  // True if any file at `level` overlaps the closed user-key range
  // [smallest, largest] (used by external-file ingestion placement).
  bool OverlapsRange(int level, const Slice& smallest_user_key,
                     const Slice& largest_user_key) const;

 private:
  friend class VersionSet;

  std::vector<std::vector<FileMetaPtr>> files_;
};

using VersionPtr = std::shared_ptr<const Version>;

// Owns the current Version and the MANIFEST. All mutations happen under the
// DB mutex; NewFileNumber alone is lock-free so background flush/compaction
// can number output files while the mutex is released.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options& options, Env* env,
             BlockCache* cache);

  // Loads the MANIFEST (if present) and opens all referenced tables.
  Status Recover();

  VersionPtr current() const { return current_; }

  uint64_t NewFileNumber() {
    return next_file_number_.fetch_add(1, std::memory_order_relaxed);
  }
  // Next number that NewFileNumber would hand out; files numbered >= this
  // value did not exist when the call was made (numbers are monotonic).
  uint64_t PeekNextFileNumber() const {
    return next_file_number_.load(std::memory_order_relaxed);
  }
  // Raises the next file number to at least `floor`. Recovery calls this
  // with 1 + the highest numbered file found on disk so that leftovers of a
  // crashed ingest/flush (numbered but never committed to the MANIFEST)
  // fall below the GC horizon and get collected instead of colliding with
  // future allocations.
  void EnsureFileNumberFloor(uint64_t floor) {
    uint64_t cur = next_file_number_.load(std::memory_order_relaxed);
    while (cur < floor &&
           !next_file_number_.compare_exchange_weak(
               cur, floor, std::memory_order_relaxed)) {
    }
  }
  uint64_t last_sequence() const { return last_sequence_; }
  void SetLastSequence(uint64_t s) { last_sequence_ = s; }
  uint64_t wal_number() const { return wal_number_; }
  void SetWalNumber(uint64_t n) { wal_number_ = n; }

  // Installs a new version that is `current` with `added` files placed at
  // `level` and `removed` file numbers dropped, then persists the MANIFEST.
  Status InstallVersion(int level, std::vector<FileMetaPtr> added,
                        const std::vector<uint64_t>& removed_numbers,
                        int removed_level_hint);

  // Persists the MANIFEST for the current state (sequence/WAL numbers).
  Status WriteSnapshot();

  // Opens the table for `meta` (fills meta->table).
  Status OpenTable(FileMetaData* meta);

  // Returns numbers of all table files referenced by the current version.
  std::vector<uint64_t> LiveFiles() const;

 private:
  std::string dbname_;
  Options options_;
  Env* env_;
  BlockCache* cache_;
  VersionPtr current_;
  std::atomic<uint64_t> next_file_number_{1};
  uint64_t last_sequence_ = 0;
  uint64_t wal_number_ = 0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_VERSION_H_
