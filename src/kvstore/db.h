#ifndef TMAN_KVSTORE_DB_H_
#define TMAN_KVSTORE_DB_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/dbformat.h"
#include "kvstore/env.h"
#include "kvstore/iterator.h"
#include "kvstore/log.h"
#include "kvstore/memtable.h"
#include "kvstore/options.h"
#include "kvstore/scan_filter.h"
#include "kvstore/version.h"
#include "kvstore/write_batch.h"

namespace tman::kv {

// Embedded LSM key-value store: WAL + skiplist memtable + leveled SSTables.
// The public cursor API (NewIterator/Scan) exposes user keys; internal
// sequence numbers and tombstones are collapsed.
//
// Thread model: any number of concurrent readers; writers are serialized on
// an internal mutex. Flush and compaction run synchronously inside the
// writing thread, which keeps behaviour deterministic for benchmarks.
class DB {
 public:
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  Status Put(const WriteOptions& wo, const Slice& key, const Slice& value);
  Status Delete(const WriteOptions& wo, const Slice& key);
  Status Write(const WriteOptions& wo, WriteBatch* batch);
  Status Get(const ReadOptions& ro, const Slice& key, std::string* value);

  // Iterator over user keys at the current snapshot. The caller owns it.
  Iterator* NewIterator(const ReadOptions& ro);

  // Filtered range scan [start, end); the filter (may be nullptr) runs
  // inside the storage layer ("push-down"). limit==0 means unlimited.
  // Thin adapter over the sink-based overload below.
  Status Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
              const ScanFilter* filter, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out,
              ScanStats* stats);

  // Streaming scan: matching rows are delivered to `sink` as the iterator
  // produces them; the sink returning false stops the scan immediately
  // (rows past the stop are neither scanned nor counted).
  Status Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
              const ScanFilter* filter, size_t limit, RowSink* sink,
              ScanStats* stats);

  // Forces a memtable flush to L0 (no-op when empty).
  Status Flush();

  // Compacts everything down to the last occupied level.
  Status CompactAll();

  struct Stats {
    std::vector<int> files_per_level;
    std::vector<uint64_t> bytes_per_level;
    uint64_t memtable_bytes = 0;
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
  };
  Stats GetStats();

 private:
  DB(const Options& options, std::string name);

  Status Recover();
  Status ReplayWal(uint64_t wal_number);
  // Requires mu_ held.
  Status FlushMemTableLocked();
  Status WriteMemTableToLevel0Locked();
  Status MaybeCompactLocked();
  Status CompactOnceLocked(int level, const std::vector<FileMetaPtr>& inputs_n,
                           const std::vector<FileMetaPtr>& inputs_np1);
  void RemoveObsoleteFilesLocked();
  uint64_t MaxBytesForLevel(int level) const;

  // Snapshot of read state (memtable + version + sequence).
  struct ReadSnapshot {
    std::shared_ptr<MemTable> mem;
    VersionPtr version;
    SequenceNumber sequence;
  };
  ReadSnapshot AcquireReadSnapshot();

  Options options_;
  std::string name_;
  Env* env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<BlockCache> block_cache_;

  std::mutex mu_;
  std::shared_ptr<MemTable> mem_;
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_DB_H_
