#ifndef TMAN_KVSTORE_DB_H_
#define TMAN_KVSTORE_DB_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/dbformat.h"
#include "kvstore/env.h"
#include "kvstore/event_listener.h"
#include "kvstore/iterator.h"
#include "kvstore/log.h"
#include "kvstore/memtable.h"
#include "kvstore/options.h"
#include "kvstore/scan_filter.h"
#include "kvstore/version.h"
#include "kvstore/write_batch.h"
#include "obs/metrics.h"

namespace tman {
class ThreadPool;
}  // namespace tman

namespace tman::kv {

// Embedded LSM key-value store: WAL + skiplist memtable + leveled SSTables.
// The public cursor API (NewIterator/Scan) exposes user keys; internal
// sequence numbers and tombstones are collapsed.
//
// Thread model: any number of concurrent readers and writers. Concurrent
// writers group-commit: they queue their batches, the current leader folds
// the queue into one WAL record, appends (and fsyncs when any grouped write
// asked for sync), applies it to the memtable, and wakes the followers.
// With Options::allow_concurrent_memtable_write (default on), the grouped
// followers are woken as soon as the WAL record lands and apply their own
// batches into the memtable in parallel on pre-assigned sequence
// sub-ranges; the leader publishes visibility (SetLastSequence) only after
// every applier finishes, so readers never observe a partially applied
// group. When the active memtable fills it is swapped for a fresh one and the
// frozen ("immutable") memtable is flushed by a background worker, which
// also runs leveled compactions; reads are served from consistent
// {mem, imm, version} snapshots throughout. Writers are throttled with
// short sleeps once L0 grows past l0_slowdown_trigger and stall completely
// at l0_stop_trigger (see Stats). Setting Options::background_flush=false
// restores the legacy synchronous behaviour (flush/compaction inline in the
// writing thread), kept as the benchmark baseline.
class DB {
 public:
  static Status Open(const Options& options, const std::string& name,
                     std::unique_ptr<DB>* dbptr);

  ~DB();

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  // Directory this DB lives in (as passed to Open).
  const std::string& name() const { return name_; }

  // Effective options (env resolved). Lets callers build SstFileWriters
  // that match this DB's block format, compression and environment.
  const Options& options() const { return options_; }

  Status Put(const WriteOptions& wo, const Slice& key, const Slice& value);
  Status Delete(const WriteOptions& wo, const Slice& key);
  Status Write(const WriteOptions& wo, WriteBatch* batch);
  Status Get(const ReadOptions& ro, const Slice& key, std::string* value);

  // Iterator over user keys at the current snapshot. The caller owns it.
  Iterator* NewIterator(const ReadOptions& ro);

  // Filtered range scan [start, end); the filter (may be nullptr) runs
  // inside the storage layer ("push-down"). limit==0 means unlimited.
  // Thin adapter over the sink-based overload below.
  Status Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
              const ScanFilter* filter, size_t limit,
              std::vector<std::pair<std::string, std::string>>* out,
              ScanStats* stats);

  // Streaming scan: matching rows are delivered to `sink` as the iterator
  // produces them; the sink returning false stops the scan immediately
  // (rows past the stop are neither scanned nor counted).
  Status Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
              const ScanFilter* filter, size_t limit, RowSink* sink,
              ScanStats* stats);

  // Batched scan: runs every window of `windows` against ONE iterator stack
  // built over a single snapshot, in order. Results are byte-identical to
  // issuing one Scan per window back to back (same filter push-down,
  // per-window limit, and sink early-termination — except that a sink stop
  // ends the whole batch). When the windows are sorted and non-overlapping
  // the cursor advances monotonically, so a window whose start lies at or
  // past the previous window's end reuses the current position instead of
  // re-seeking every level (see MultiScanPerf::seeks_saved), and an
  // exhausted iterator proves all remaining in-order windows empty without
  // touching storage. Unsorted or overlapping batches are still correct —
  // they just fall back to a fresh Seek per window. Sequential block
  // readahead is enabled from Options::multiscan_readahead_bytes unless
  // ro.readahead_bytes is already set. `perf` (optional) receives the
  // read-path counters for this call.
  Status MultiScan(const ReadOptions& ro, const std::vector<ScanWindow>& windows,
                   const ScanFilter* filter, size_t limit, RowSink* sink,
                   ScanStats* stats, MultiScanPerf* perf = nullptr);

  struct IngestOptions {
    // Move (rename) the file into the DB directory instead of copying it.
    // The source file is consumed on success; with false it is left intact.
    bool move_file = false;
  };

  // Installs an SSTable built by kv::SstFileWriter directly into the
  // version, bypassing the WAL/memtable write path (offline backfill).
  // The file's user-key range must not overlap any live key range: a
  // non-empty memtable covering it is flushed first, and if any live
  // SSTable still overlaps the ingest is refused with InvalidArgument
  // (ingested rows carry sequence 0, so overlap would break LSM version
  // ordering). The file is copied/renamed to its allocated table number,
  // synced, and committed through the MANIFEST before the call returns —
  // the same durability order as a flush. It lands at the deepest level
  // whose files it does not overlap.
  Status IngestExternalFile(const IngestOptions& io,
                            const std::string& file_path);

  // Synchronously persists all buffered writes to L0 (and runs any pending
  // compactions). Waits for in-flight background work first, so the DB is
  // quiescent afterwards. No-op when nothing is buffered.
  Status Flush();

  // Compacts everything down to the last occupied level.
  Status CompactAll();

  // Estimates the byte-weighted median user key of [start, end) (empty end
  // = +infinity) by sampling the index-block separator keys of every
  // SSTable overlapping the range — each separator stands for ~one data
  // block, so the sample tracks bytes, not row counts. Only on-disk data is
  // consulted; callers wanting memtable rows included flush first. Returns
  // NotFound when the range holds too little data to name an interior key
  // (the returned key is always strictly inside the range). No data-block
  // I/O; runs off the pinned current version.
  Status GetApproximateMedianKey(const Slice& start, const Slice& end,
                                 std::string* median);

  // Clears a *transient* sticky background error (failed flush fsync,
  // ENOSPC, ...) by re-running the failed flush work inline against the
  // current memtable set. Returns OK once the DB is writable again (also
  // when there was no error to clear). Corruption is not transient and is
  // returned unchanged — the store needs repair, not a retry.
  Status Resume();

  // Per-file result of VerifyIntegrity.
  struct IntegrityReport {
    struct FileResult {
      int level = 0;
      uint64_t number = 0;
      uint64_t file_size = 0;
      uint64_t blocks = 0;  // data blocks checksummed
      Status status;
    };
    std::vector<FileResult> files;
    uint64_t files_checked = 0;
    uint64_t blocks_checked = 0;
    uint64_t files_corrupt = 0;
  };

  // Walks the current MANIFEST state and re-reads every data block of every
  // live SSTable, verifying its CRC trailer (bypassing the block cache).
  // Fills `report` (may be nullptr) and returns the first corruption found.
  Status VerifyIntegrity(IntegrityReport* report);

  struct Stats {
    std::vector<int> files_per_level;
    std::vector<uint64_t> bytes_per_level;
    uint64_t memtable_bytes = 0;       // active memtable
    uint64_t imm_memtable_bytes = 0;   // frozen memtable awaiting flush
    uint64_t block_cache_hits = 0;
    uint64_t block_cache_misses = 0;
    // Background-work accounting.
    uint64_t flush_count = 0;              // memtable -> L0 flushes
    uint64_t compaction_count = 0;         // merge compactions (not moves)
    uint64_t compaction_bytes_read = 0;    // input SSTable bytes
    uint64_t compaction_bytes_written = 0; // output SSTable bytes
    // Write backpressure accounting.
    uint64_t stall_count = 0;   // slowdown sleeps + hard stalls
    uint64_t stall_micros = 0;  // total time writers spent throttled
    uint64_t wal_syncs = 0;     // fsyncs issued for sync writes
    // Parallel group-commit accounting (allow_concurrent_memtable_write).
    uint64_t concurrent_apply_groups = 0;   // groups applied in parallel
    uint64_t concurrent_apply_batches = 0;  // member batches across them
    // Recovery accounting (filled by Open, bumped by Resume).
    uint64_t wal_records_recovered = 0;  // WAL records replayed at Open
    uint64_t wal_bytes_recovered = 0;    // bytes of good replayed records
    uint64_t wal_bytes_dropped = 0;      // torn/corrupt tail bytes discarded
    uint64_t wal_torn_tails = 0;         // WALs ending in a torn record
    uint64_t resume_count = 0;           // successful Resume() calls
    // Data lifecycle accounting.
    uint64_t compaction_filter_dropped = 0;     // expired entries removed
    uint64_t compaction_filter_tombstoned = 0;  // expired -> tombstone
    uint64_t files_ingested = 0;  // external SSTables installed
    uint64_t rows_ingested = 0;   // entries across those files
  };
  Stats GetStats();

  // Sticky background error (OK while healthy). Once a background flush or
  // compaction fails, writes refuse with this status until Resume() clears
  // it — the /healthz input.
  Status background_error() {
    std::lock_guard<std::mutex> lock(mu_);
    return bg_error_;
  }

 private:
  struct ApplyGroup;

  // One queued write (group commit). Writers park on `cv` until the leader
  // completes their batch; a null batch marks an exclusive maintenance
  // operation (Flush/CompactAll) holding the writer slot. When the leader
  // runs a parallel memtable apply, grouped followers are woken early
  // (`apply_ready`) to insert their own batch at `apply_seq`, then park
  // again until `done`.
  struct Writer {
    Writer(WriteBatch* b, bool s) : batch(b), sync(s) {}
    WriteBatch* batch;
    bool sync;
    bool done = false;
    bool apply_ready = false;    // parallel apply may start (guarded by mu_)
    uint64_t apply_seq = 0;      // first sequence of this batch in the group
    ApplyGroup* group = nullptr; // non-null while in a parallel apply group
    Status status;
    std::condition_variable cv;
  };

  // Shared state of one parallel memtable apply, on the leader's stack.
  // All fields are guarded by mu_ except `mem`, which is immutable for the
  // group's lifetime (the leader serializes memtable swaps).
  struct ApplyGroup {
    Writer* leader = nullptr;
    MemTable* mem = nullptr;
    int pending = 0;    // appliers (incl. leader) not yet finished
    Status status;      // first applier failure
  };

  // Inputs of one compaction round, picked against a Version snapshot.
  struct CompactionJob {
    int level = -1;
    std::vector<FileMetaPtr> inputs_n;    // files at `level`
    std::vector<FileMetaPtr> inputs_np1;  // overlapping files at level+1
  };

  DB(const Options& options, std::string name);

  // Registry handles, resolved once at construction when Options::metrics
  // is set. Invariant (asserted at construction): metrics_ is non-null iff
  // Options::metrics was non-null, and every dereference of metrics_ is
  // guarded by a null check at the use site — recording is never assumed
  // on. Read-path fast paths may additionally skip stopwatch reads when
  // metrics are off. Counters are shared across DBs pointed at the same
  // registry: increments aggregate.
  struct Metrics {
    explicit Metrics(obs::MetricsRegistry* registry);
    obs::Histogram* get_micros;
    obs::Histogram* write_micros;
    obs::Histogram* scan_micros;
    obs::Histogram* multiscan_micros;
    obs::Histogram* wal_sync_micros;
    obs::Histogram* flush_micros;
    obs::Histogram* compaction_micros;
    obs::Counter* scan_rows;
    obs::Counter* multiscan_windows;
    obs::Counter* multiscan_seeks_saved;
    obs::Counter* multiscan_block_reuse;
    obs::Counter* multiscan_blocks_readahead;
    obs::Counter* bloom_checks;
    obs::Counter* bloom_useful;
    obs::Counter* flushes;
    obs::Counter* compactions;
    obs::Counter* compaction_bytes_read;
    obs::Counter* compaction_bytes_written;
    obs::Counter* stalls;
    obs::Counter* stall_micros;
    obs::Counter* wal_syncs;
    obs::Histogram* concurrent_apply_fanout;       // batches per parallel group
    obs::Histogram* concurrent_apply_wait_micros;  // leader wait for appliers
    obs::Counter* concurrent_apply_groups;
    obs::Counter* concurrent_apply_batches;
    obs::Counter* recovery_wal_records;
    obs::Counter* recovery_wal_bytes_dropped;
    obs::Counter* recovery_torn_tails;
    obs::Counter* recovery_resumes;
    obs::Counter* compaction_filter_dropped;
    obs::Counter* compaction_filter_tombstoned;
    obs::Counter* ingest_files;
    obs::Counter* ingest_rows;
    obs::Counter* sstable_reads_per_level[GetPerf::kMaxLevels];
  };

  Status Recover();
  Status ReplayWal(uint64_t wal_number);

  // --- Write path (mu_ held unless noted) ---

  // Blocks until the active memtable has room: applies slowdown/stop
  // backpressure, freezes a full memtable into imm_ (rotating the WAL) and
  // schedules its background flush. May release and re-acquire `lock`.
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock);

  // Write() minus the latency recording (the group-commit body).
  Status WriteImpl(const WriteOptions& wo, WriteBatch* batch);

  // Folds one backpressure episode into the stall counters (mu_ held).
  void RecordStall(uint64_t micros) {
    stall_count_++;
    stall_micros_ += micros;
    if (metrics_ != nullptr) {
      metrics_->stalls->Inc();
      metrics_->stall_micros->Inc(micros);
    }
  }

  // Folds the front run of queued writers into one batch (up to a size
  // cap); *last_writer is set to the last writer included.
  WriteBatch* BuildBatchGroup(Writer** last_writer);

  // Runs `fn` (under mu_) with the writer queue held and background work
  // drained, so it has exclusive access to memtables and versions.
  Status RunExclusive(const std::function<Status()>& fn);

  // --- Flush / compaction (mu_ held on entry and exit) ---

  // Builds an L0 table from `mem` and installs it. When `lock` is non-null
  // the mutex is released during the table build (background path).
  Status WriteLevel0Table(const std::shared_ptr<MemTable>& mem,
                          std::unique_lock<std::mutex>* lock);

  // Flushes imm_ and deletes its WAL.
  Status FlushImmutable(std::unique_lock<std::mutex>* lock);

  // Flushes the active memtable inline and rotates the WAL (synchronous
  // paths: Flush/CompactAll/close and background_flush=false mode).
  Status FlushActiveLocked();

  // Picks the next compaction round against `current`; false if none.
  bool PickCompaction(const VersionPtr& current, CompactionJob* job) const;

  // Executes one compaction round. When `lock` is non-null the mutex is
  // released during the merge (background path).
  Status RunCompaction(const CompactionJob& job,
                       std::unique_lock<std::mutex>* lock);

  // Runs compaction rounds inline until the tree satisfies its invariants.
  Status CompactLoopLocked();

  // --- Background scheduling (mu_ held) ---

  bool HasBackgroundWork() const;
  void MaybeScheduleBackground();
  void BackgroundCall();  // entry point on the background pool

  // --- Event delivery (Options::listeners) ---
  //
  // State changes queue a closure under mu_ at the point they commit;
  // DrainEvents() swaps the queue out under mu_ and fires the listeners
  // with no DB lock held, at public-API boundaries and at the end of each
  // background run. Both are no-ops with no listeners registered.
  bool HasListeners() const { return !options_.listeners.empty(); }
  void QueueEvent(std::function<void(EventListener*)> fn);  // mu_ held
  void DrainEvents();                                       // mu_ NOT held
  // Stall-episode conveniences for MakeRoomForWrite (mu_ held).
  void QueueStallBegin(WriteStallInfo::Cause cause);
  void QueueStallEnd(WriteStallInfo::Cause cause, uint64_t micros);

  // Deletes on-disk files no longer referenced. Decisions are made under
  // mu_; when `lock` is non-null the I/O (scan + unlinks) runs unlocked.
  void RemoveObsoleteFilesLocked(std::unique_lock<std::mutex>* lock = nullptr);
  uint64_t MaxBytesForLevel(int level) const;

  // Snapshot of read state (memtables + version + sequence).
  struct ReadSnapshot {
    std::shared_ptr<MemTable> mem;
    std::shared_ptr<MemTable> imm;  // may be null
    VersionPtr version;
    SequenceNumber sequence;
  };
  ReadSnapshot AcquireReadSnapshot();

  Options options_;
  std::string name_;
  Env* env_;
  InternalKeyComparator icmp_;
  std::unique_ptr<BlockCache> block_cache_;
  std::unique_ptr<Metrics> metrics_;  // null when Options::metrics unset

  std::mutex mu_;
  std::condition_variable bg_cv_;  // background work finished / state change
  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<MemTable> imm_;  // frozen memtable being flushed
  std::unique_ptr<VersionSet> versions_;
  std::unique_ptr<LogWriter> wal_;
  uint64_t wal_number_ = 0;
  uint64_t imm_wal_number_ = 0;  // WAL backing imm_ (0 = none)

  // Group commit.
  std::deque<Writer*> writers_;
  WriteBatch tmp_batch_;

  // Background worker state.
  ThreadPool* bg_pool_ = nullptr;          // null in synchronous mode
  std::unique_ptr<ThreadPool> owned_pool_;  // when no shared pool was given
  bool bg_active_ = false;       // a background task is scheduled/running
  bool shutting_down_ = false;
  bool recovered_ = false;       // Recover() completed; safe to flush on close
  int exclusive_waiters_ = 0;    // RunExclusive callers draining background
  Status bg_error_;              // sticky failure from background work
  std::set<uint64_t> pending_outputs_;  // files being written, GC-protected

  // Events queued (under mu_) and not yet delivered to listeners.
  // events_pending_ mirrors !pending_events_.empty() so the write path's
  // per-op DrainEvents call is one relaxed load, not a mutex round-trip.
  std::vector<std::function<void(EventListener*)>> pending_events_;
  std::atomic<bool> events_pending_{false};

  // Counters (guarded by mu_).
  uint64_t flush_count_ = 0;
  uint64_t compaction_count_ = 0;
  uint64_t compaction_bytes_read_ = 0;
  uint64_t compaction_bytes_written_ = 0;
  uint64_t stall_count_ = 0;
  uint64_t stall_micros_ = 0;
  uint64_t wal_syncs_ = 0;
  uint64_t concurrent_apply_groups_ = 0;
  uint64_t concurrent_apply_batches_ = 0;
  uint64_t wal_records_recovered_ = 0;
  uint64_t wal_bytes_recovered_ = 0;
  uint64_t wal_bytes_dropped_ = 0;
  uint64_t wal_torn_tails_ = 0;
  uint64_t resume_count_ = 0;
  uint64_t compaction_filter_dropped_ = 0;
  uint64_t compaction_filter_tombstoned_ = 0;
  uint64_t files_ingested_ = 0;
  uint64_t rows_ingested_ = 0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_DB_H_
