#ifndef TMAN_KVSTORE_BLOOM_H_
#define TMAN_KVSTORE_BLOOM_H_

#include <string>
#include <vector>

#include "common/slice.h"

namespace tman::kv {

// Bloom filter over user keys (double-hashing scheme, as in LevelDB).
// One filter per SSTable: point lookups skip tables that cannot contain
// the key.
class BloomFilterPolicy {
 public:
  explicit BloomFilterPolicy(int bits_per_key);

  // Appends the filter for `keys` to *dst.
  void CreateFilter(const std::vector<Slice>& keys, std::string* dst) const;

  // May return false positives, never false negatives.
  bool KeyMayMatch(const Slice& key, const Slice& filter) const;

 private:
  int bits_per_key_;
  int k_;  // number of probes
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_BLOOM_H_
