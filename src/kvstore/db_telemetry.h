#ifndef TMAN_KVSTORE_DB_TELEMETRY_H_
#define TMAN_KVSTORE_DB_TELEMETRY_H_

#include <string>

#include "kvstore/db.h"

namespace tman::obs {
class TelemetryServer;
}  // namespace tman::obs

namespace tman::kv {

// Renders a DB::Stats snapshot as a JSON object (no trailing newline) —
// the /statusz building block shared by the bare-DB attach below and the
// TMan-level status page, which nests one of these per region.
std::string RenderDbStatsJson(const std::string& name,
                              const Status& background_error,
                              const DB::Stats& stats);

// Convenience overload: snapshots `db` and renders it.
std::string RenderDbStatsJson(DB* db);

// Wires a bare kv::DB into a TelemetryServer: /statusz serves the DB's
// stats snapshot and /healthz reflects its sticky background error. The
// server's metrics/event-log/trace-ring sources are left untouched, so
// callers can point those at whatever registry the DB records into. The DB
// must outlive the server (Stop it before closing the DB).
void AttachDbTelemetry(obs::TelemetryServer* server, DB* db);

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_DB_TELEMETRY_H_
