#include "kvstore/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace tman::kv {

namespace {

Status PosixError(const std::string& context, int err) {
  return Status::IOError(context + ": " + strerror(err));
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t n = data.size();
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Flush() override { return Status::OK(); }

  Status Sync() override {
    if (fd_ >= 0 && ::fdatasync(fd_) < 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) < 0) {
      fd_ = -1;
      return PosixError(fname_, errno);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixRandomAccessFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    ssize_t r = ::pread(fd_, scratch, n, static_cast<off_t>(offset));
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    if (static_cast<size_t>(r) != n) {
      return Status::Corruption("short read from " + fname_);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, Slice* result, char* scratch) override {
    ssize_t r = ::read(fd_, scratch, n);
    if (r < 0) return PosixError(fname_, errno);
    *result = Slice(scratch, static_cast<size_t>(r));
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd = ::open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = ::open(fname.c_str(), O_RDONLY);
    if (fd < 0) return PosixError(fname, errno);
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return ::access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError(dir, errno);
    struct dirent* entry;
    while ((entry = ::readdir(d)) != nullptr) {
      result->emplace_back(entry->d_name);
    }
    ::closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (::unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    if (::mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (::stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    if (::rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static Env* env = new PosixEnv();
  return env;
}

}  // namespace tman::kv
