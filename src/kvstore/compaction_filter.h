#ifndef TMAN_KVSTORE_COMPACTION_FILTER_H_
#define TMAN_KVSTORE_COMPACTION_FILTER_H_

#include "common/slice.h"

namespace tman::kv {

// Retention hook consulted by leveled compactions (Options::compaction_filter).
//
// Semantics: for each user key, the compaction already keeps only the newest
// version it sees; the filter is asked about exactly that surviving value
// entry (deletions are never filtered). If it returns true, the entry is
// expired:
//   - when no deeper level can hold an older version of the key, it is
//     dropped outright;
//   - otherwise it is rewritten as a deletion tombstone at the same
//     sequence number, so stale versions in deeper levels stay shadowed
//     until they compact away too.
// Trivial file moves are disabled while a filter is set so every entry
// eventually flows through a rewriting compaction.
//
// Implementations must be thread-safe (compactions run on background
// threads, several DBs may share one filter) and must be stable for the
// lifetime of the DB: flipping decisions between compactions is legal
// (clocks advance), but a decision must never depend on compaction order.
class CompactionFilter {
 public:
  virtual ~CompactionFilter() = default;

  virtual const char* Name() const = 0;

  // True to expire `value` (the newest surviving version of `user_key`)
  // from the table being written to `level`.
  virtual bool ShouldDrop(int level, const Slice& user_key,
                          const Slice& value) const = 0;

  // Whether the filter could currently drop anything at all. Compactions
  // consult this to re-enable trivial file moves while the filter is
  // provably a no-op (e.g. a region-ownership filter whose owned range is
  // the full keyspace and that wraps no inner filter). May change over the
  // DB's lifetime; a stale `false` only costs a rewrite, never correctness.
  virtual bool CouldDropAnything() const { return true; }
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_COMPACTION_FILTER_H_
