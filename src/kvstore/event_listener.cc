#include "kvstore/event_listener.h"

namespace tman::kv {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

}  // namespace

const char* WriteStallCauseName(WriteStallInfo::Cause cause) {
  switch (cause) {
    case WriteStallInfo::Cause::kL0Slowdown:
      return "l0_slowdown";
    case WriteStallInfo::Cause::kMemtableWait:
      return "memtable_wait";
    case WriteStallInfo::Cause::kL0Stop:
      return "l0_stop";
  }
  return "unknown";
}

void EventLogListener::OnFlushCompleted(const FlushJobInfo& info) {
  obs::Event e;
  e.type = "flush";
  e.source = info.db_name;
  e.fields = {{"file_number", U64(info.file_number)},
              {"file_size", U64(info.file_size)},
              {"entries", U64(info.entries)},
              {"micros", U64(info.micros)}};
  log_->Append(std::move(e));
}

void EventLogListener::OnCompactionCompleted(const CompactionJobInfo& info) {
  obs::Event e;
  e.type = "compaction";
  e.source = info.db_name;
  e.fields = {{"level", std::to_string(info.level)},
              {"output_level", std::to_string(info.output_level)},
              {"input_files", U64(info.input_files)},
              {"output_files", U64(info.output_files)},
              {"bytes_read", U64(info.bytes_read)},
              {"bytes_written", U64(info.bytes_written)},
              {"micros", U64(info.micros)}};
  if (info.filter_dropped > 0) {
    e.fields.emplace_back("filter_dropped", U64(info.filter_dropped));
  }
  if (info.filter_tombstoned > 0) {
    e.fields.emplace_back("filter_tombstoned", U64(info.filter_tombstoned));
  }
  log_->Append(std::move(e));
}

void EventLogListener::OnWriteStallBegin(const WriteStallInfo& info) {
  obs::Event e;
  e.type = "write_stall_begin";
  e.source = info.db_name;
  e.fields = {{"cause", WriteStallCauseName(info.cause)}};
  log_->Append(std::move(e));
}

void EventLogListener::OnWriteStallEnd(const WriteStallInfo& info) {
  obs::Event e;
  e.type = "write_stall_end";
  e.source = info.db_name;
  e.fields = {{"cause", WriteStallCauseName(info.cause)},
              {"micros", U64(info.micros)}};
  log_->Append(std::move(e));
}

void EventLogListener::OnBackgroundError(const BackgroundErrorInfo& info) {
  obs::Event e;
  e.type = "background_error";
  e.source = info.db_name;
  e.fields = {{"status", info.status.ToString()}};
  log_->Append(std::move(e));
}

void EventLogListener::OnIngestCompleted(const IngestJobInfo& info) {
  obs::Event e;
  e.type = "ingest";
  e.source = info.db_name;
  e.fields = {{"file_path", info.file_path},
              {"file_size", U64(info.file_size)},
              {"entries", U64(info.entries)},
              {"level", std::to_string(info.level)}};
  log_->Append(std::move(e));
}

void EventLogListener::OnMemtableSealed(const MemtableSealInfo& info) {
  obs::Event e;
  e.type = "memtable_seal";
  e.source = info.db_name;
  e.fields = {{"memtable_bytes", U64(info.memtable_bytes)},
              {"entries", U64(info.entries)},
              {"wal_number", U64(info.wal_number)}};
  log_->Append(std::move(e));
}

}  // namespace tman::kv
