#ifndef TMAN_KVSTORE_COMPRESSION_H_
#define TMAN_KVSTORE_COMPRESSION_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace tman::kv {

// Per-block compression negotiated at table-build time and recorded in the
// one-byte block trailer (format v2). Readers dispatch on the stored byte,
// so a table may freely mix block types: the builder picks, per block, the
// cheapest encoding that actually pays for itself.
enum CompressionType : uint8_t {
  kNoCompression = 0x0,
  // Generic byte-oriented LZ (compress::ByteLz*) — the fallback for blocks
  // holding arbitrary rows (secondary index rows, metadata, record blobs).
  kByteCompression = 0x1,
  // Columnar trajectory point codec: applies when every value in the block
  // is a fixed 24-byte point row (EncodePointValue below). Timestamps go
  // through delta-of-delta + zigzag + simple8b and coordinates through
  // Gorilla XOR via compress::EncodePoints; keys and the restart array are
  // carried verbatim so decompression is byte-identical.
  kTrajPointCompression = 0x2,
};

inline bool IsValidCompressionType(uint8_t t) {
  return t <= kTrajPointCompression;
}

// Fixed 24-byte point row value: fixed64 timestamp, fixed64 longitude bits,
// fixed64 latitude bits. The bulk-load and bench workloads write one point
// per row in this layout, which is what makes kTrajPointCompression
// applicable to whole blocks.
inline constexpr size_t kPointValueSize = 24;
void EncodePointValue(int64_t ts, double lon, double lat, std::string* out);
bool DecodePointValue(const Slice& value, int64_t* ts, double* lon,
                      double* lat);

// Compresses a raw (uncompressed) block per `requested`, appending the
// payload to *out and returning the type actually used. Falls back
// kTrajPointCompression -> kByteCompression -> kNoCompression: a codec is
// kept only if it is applicable and saves at least 1/8 of the raw size.
// When the result is kNoCompression, *out is left untouched and the caller
// writes the raw bytes.
CompressionType CompressBlock(CompressionType requested, const Slice& raw,
                              std::string* out);

// Inverse of CompressBlock for one stored block payload; appends the raw
// block bytes to *out. Returns Corruption on any malformed payload.
Status UncompressBlock(CompressionType type, const char* data, size_t size,
                       std::string* out);

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_COMPRESSION_H_
