#include "kvstore/sst_file_writer.h"

#include "kvstore/dbformat.h"

namespace tman::kv {

SstFileWriter::SstFileWriter(const Options& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

SstFileWriter::~SstFileWriter() = default;

Status SstFileWriter::Open(const std::string& file_path) {
  if (builder_ != nullptr) {
    return Status::InvalidArgument("SstFileWriter already open");
  }
  Status s = env_->NewWritableFile(file_path, &file_);
  if (!s.ok()) return s;
  file_path_ = file_path;
  builder_ = std::make_unique<TableBuilder>(options_, file_.get());
  return Status::OK();
}

Status SstFileWriter::Put(const Slice& user_key, const Slice& value) {
  if (builder_ == nullptr || finished_) {
    return Status::InvalidArgument("SstFileWriter is not open");
  }
  if (num_entries_ > 0 && user_key.compare(Slice(last_user_key_)) <= 0) {
    return Status::InvalidArgument(
        "keys must be added in strictly ascending order");
  }
  if (num_entries_ == 0) smallest_user_key_ = user_key.ToString();
  last_user_key_ = user_key.ToString();

  // Sequence 0 marks every ingested row as older than any write the target
  // DB has assigned; ingestion refuses overlapping ranges, so the rows can
  // never shadow (or be shadowed by) live versions incorrectly.
  std::string internal_key;
  AppendInternalKey(&internal_key, user_key, 0, kTypeValue);
  builder_->Add(internal_key, value);
  num_entries_++;
  return builder_->status();
}

Status SstFileWriter::Finish(ExternalSstFileInfo* info) {
  if (builder_ == nullptr || finished_) {
    return Status::InvalidArgument("SstFileWriter is not open");
  }
  finished_ = true;
  if (num_entries_ == 0) {
    file_->Close();
    return Status::InvalidArgument("cannot finish an empty sst file");
  }
  Status s = builder_->Finish();
  // The file must be durable before any MANIFEST can reference it (same
  // prefix-consistency rule as flushes): sync, then close.
  if (s.ok()) s = env_->SyncFile(file_.get());
  if (s.ok()) s = file_->Close();
  if (!s.ok()) return s;
  if (info != nullptr) {
    info->file_path = file_path_;
    info->smallest_user_key = smallest_user_key_;
    info->largest_user_key = last_user_key_;
    info->num_entries = num_entries_;
    info->file_size = builder_->FileSize();
  }
  return Status::OK();
}

}  // namespace tman::kv
