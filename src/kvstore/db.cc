#include "kvstore/db.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "common/coding.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "kvstore/compaction_filter.h"
#include "kvstore/filename.h"
#include "kvstore/merge_iterator.h"
#include "kvstore/table.h"

namespace tman::kv {

namespace {

// Group-commit size caps (LevelDB's heuristics): large groups amortize the
// WAL append, but a tiny leader batch should not wait behind a megabyte of
// follower data.
constexpr size_t kMaxGroupBytes = 1 << 20;
constexpr size_t kSmallBatchBytes = 128 << 10;

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Iterator over user keys: wraps a merging iterator over internal keys and
// collapses versions/tombstones at a snapshot sequence number. The wrapped
// state (memtables + version) is kept alive by the shared_ptrs captured
// here, so flushes and compactions never invalidate a live iterator.
//
// key()/value() are zero-copy: slices into the child iterator's current
// entry (arena for memtable rows, block storage or the block iterator's
// decode buffer for SSTable rows). They are valid only until the iterator
// moves, per the Iterator contract; the skip logic below copies into
// saved_key_ before advancing for exactly that reason.
class DBIter final : public Iterator {
 public:
  DBIter(std::shared_ptr<MemTable> mem, std::shared_ptr<MemTable> imm,
         VersionPtr version, SequenceNumber sequence, Iterator* internal_iter)
      : mem_(std::move(mem)),
        imm_(std::move(imm)),
        version_(std::move(version)),
        sequence_(sequence),
        iter_(internal_iter) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    iter_->SeekToFirst();
    skipping_ = false;
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    // ikey_buf_ is a member so repeated Seeks (one per MultiScan window)
    // reuse its capacity instead of allocating.
    ikey_buf_.clear();
    AppendInternalKey(&ikey_buf_, target, sequence_, kValueTypeForSeek);
    iter_->Seek(ikey_buf_);
    skipping_ = false;
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    // Skip the remaining (older) entries of the current user key.
    saved_key_.assign(key_.data(), key_.size());
    skipping_ = true;
    iter_->Next();
    FindNextUserEntry();
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return iter_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        iter_->Next();
        continue;
      }
      if (parsed.sequence > sequence_) {
        iter_->Next();
        continue;
      }
      if (skipping_ && parsed.user_key.compare(Slice(saved_key_)) <= 0) {
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        // Shadow all older entries of this key.
        saved_key_.assign(parsed.user_key.data(), parsed.user_key.size());
        skipping_ = true;
        iter_->Next();
        continue;
      }
      key_ = parsed.user_key;   // borrows iter_'s current entry
      value_ = iter_->value();  // stable until iter_ moves
      valid_ = true;
      return;
    }
  }

  std::shared_ptr<MemTable> mem_;
  std::shared_ptr<MemTable> imm_;
  VersionPtr version_;
  const SequenceNumber sequence_;
  std::unique_ptr<Iterator> iter_;
  bool valid_ = false;
  bool skipping_ = false;
  std::string saved_key_;
  std::string ikey_buf_;  // Seek target scratch
  Slice key_;
  Slice value_;
};

// Builds an SSTable from a memtable iterator. Pure I/O: needs no DB state
// beyond the pre-assigned file number in `meta`.
Status BuildTableFromMem(const Options& options, Env* env,
                         const std::string& dbname, MemTable* mem,
                         FileMetaData* meta) {
  const std::string fname = TableFileName(dbname, meta->number);
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  {
    TableBuilder builder(options, file.get());
    std::unique_ptr<Iterator> iter(mem->NewIterator());
    iter->SeekToFirst();
    assert(iter->Valid());  // callers flush only non-empty memtables
    meta->smallest.DecodeFrom(iter->key());
    for (; iter->Valid(); iter->Next()) {
      builder.Add(iter->key(), iter->value());
      meta->largest.DecodeFrom(iter->key());
    }
    s = builder.Finish();
    if (!s.ok()) return s;
    meta->file_size = builder.FileSize();
  }
  // The table must be durable before the MANIFEST references it and the WAL
  // covering its contents is deleted; otherwise a crash after either loses
  // acknowledged writes.
  s = file->Sync();
  if (!s.ok()) return s;
  return file->Close();
}

}  // namespace

DB::Metrics::Metrics(obs::MetricsRegistry* registry) {
  get_micros = registry->GetHistogram("tman_kv_get_micros");
  write_micros = registry->GetHistogram("tman_kv_write_micros");
  scan_micros = registry->GetHistogram("tman_kv_scan_micros");
  multiscan_micros = registry->GetHistogram("tman_kv_multiscan_micros");
  wal_sync_micros = registry->GetHistogram("tman_kv_wal_sync_micros");
  flush_micros = registry->GetHistogram("tman_kv_flush_micros");
  compaction_micros = registry->GetHistogram("tman_kv_compaction_micros");
  scan_rows = registry->GetCounter("tman_kv_scan_rows_total");
  multiscan_windows = registry->GetCounter("tman_kv_multiscan_windows_total");
  multiscan_seeks_saved =
      registry->GetCounter("tman_kv_multiscan_seeks_saved_total");
  multiscan_block_reuse =
      registry->GetCounter("tman_kv_multiscan_block_reuse_total");
  multiscan_blocks_readahead =
      registry->GetCounter("tman_kv_multiscan_blocks_readahead_total");
  bloom_checks = registry->GetCounter("tman_kv_bloom_checks_total");
  bloom_useful = registry->GetCounter("tman_kv_bloom_useful_total");
  flushes = registry->GetCounter("tman_kv_flushes_total");
  compactions = registry->GetCounter("tman_kv_compactions_total");
  compaction_bytes_read =
      registry->GetCounter("tman_kv_compaction_bytes_read_total");
  compaction_bytes_written =
      registry->GetCounter("tman_kv_compaction_bytes_written_total");
  stalls = registry->GetCounter("tman_kv_write_stalls_total");
  stall_micros = registry->GetCounter("tman_kv_stall_micros_total");
  wal_syncs = registry->GetCounter("tman_kv_wal_syncs_total");
  concurrent_apply_fanout =
      registry->GetHistogram("tman_kv_concurrent_apply_fanout");
  concurrent_apply_wait_micros =
      registry->GetHistogram("tman_kv_concurrent_apply_wait_micros");
  concurrent_apply_groups =
      registry->GetCounter("tman_kv_concurrent_apply_groups_total");
  concurrent_apply_batches =
      registry->GetCounter("tman_kv_concurrent_apply_batches_total");
  recovery_wal_records =
      registry->GetCounter("tman_kv_recovery_wal_records_total");
  recovery_wal_bytes_dropped =
      registry->GetCounter("tman_kv_recovery_wal_bytes_dropped_total");
  recovery_torn_tails =
      registry->GetCounter("tman_kv_recovery_torn_tails_total");
  recovery_resumes = registry->GetCounter("tman_kv_recovery_resumes_total");
  compaction_filter_dropped =
      registry->GetCounter("tman_kv_compaction_filter_dropped_total");
  compaction_filter_tombstoned =
      registry->GetCounter("tman_kv_compaction_filter_tombstoned_total");
  ingest_files = registry->GetCounter("tman_kv_ingest_files_total");
  ingest_rows = registry->GetCounter("tman_kv_ingest_rows_total");
  for (int l = 0; l < GetPerf::kMaxLevels; l++) {
    sstable_reads_per_level[l] = registry->GetCounter(
        "tman_kv_sstable_reads_total{level=\"" + std::to_string(l) + "\"}");
  }
}

DB::DB(const Options& options, std::string name)
    : options_(options), name_(std::move(name)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  block_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  if (options_.metrics != nullptr) {
    metrics_ = std::make_unique<Metrics>(options_.metrics);
    block_cache_->BindMetrics(
        options_.metrics->GetCounter("tman_kv_block_cache_hits_total"),
        options_.metrics->GetCounter("tman_kv_block_cache_misses_total"));
  }
  mem_ = std::make_shared<MemTable>(icmp_);
  versions_ = std::make_unique<VersionSet>(name_, options_, env_,
                                           block_cache_.get());
  // The one metrics invariant: metrics_ mirrors Options::metrics exactly,
  // and every later dereference is null-guarded at the use site.
  assert((metrics_ != nullptr) == (options_.metrics != nullptr));
}

DB::~DB() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
    while (bg_active_) bg_cv_.wait(lock);
    // Persist any buffered writes so reopen sees them without WAL replay
    // cost. Skipped when Recover() failed partway: the memtable then holds
    // a partially-replayed WAL (and wal_ was never opened) — flushing it
    // would persist exactly the state recovery refused to accept.
    if (recovered_) {
      if (imm_ != nullptr) FlushImmutable(nullptr);
      if (mem_->num_entries() > 0) FlushActiveLocked();
    }
    if (wal_ != nullptr) wal_->Close();
  }
  // Listeners outlive the DB (Options contract), so the close-time flush
  // events can still be delivered.
  DrainEvents();
  // owned_pool_ (if any) joins its idle worker during member destruction;
  // no task can still be queued because bg_active_ is false.
}

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  std::unique_ptr<DB> db(new DB(options, name));
  Status s = db->Recover();
  if (!s.ok()) return s;
  db->DrainEvents();  // flush/compaction events from WAL replay
  if (db->options_.background_flush) {
    if (db->options_.background_pool != nullptr) {
      db->bg_pool_ = db->options_.background_pool;
    } else {
      db->owned_pool_ = std::make_unique<ThreadPool>(1);
      db->bg_pool_ = db->owned_pool_.get();
    }
  }
  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!env_->FileExists(name_)) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(name_ + " does not exist");
    }
  }
  Status s = env_->CreateDirIfMissing(name_);
  if (!s.ok()) return s;

  s = versions_->Recover();
  if (!s.ok()) return s;

  // Replay all WALs present (ascending file number) — after a crash there
  // may be two: the one backing the frozen memtable and the active one.
  // Then flush so that at most one (fresh) WAL exists afterwards.
  std::vector<std::string> children;
  s = env_->GetChildren(name_, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> wals;
  uint64_t max_file_number = 0;
  for (const auto& child : children) {
    uint64_t number;
    std::string suffix;
    if (ParseFileName(child, &number, &suffix)) {
      max_file_number = std::max(max_file_number, number);
      if (suffix == "wal") wals.push_back(number);
    } else if (child.size() > 4 &&
               child.compare(child.size() - 4, 4, ".tmp") == 0) {
      // Leftover temp file from a crashed ingest build or MANIFEST swap.
      // Nothing live ever ends in .tmp at recovery time, and GC skips
      // unparseable names, so collect them here.
      env_->RemoveFile(name_ + "/" + child);
    }
  }
  // A crash can leave numbered files (e.g. a torn ingest copy or flush
  // output) above the persisted next-file counter; without this bump they
  // would sit at or above the GC horizon forever and eventually collide
  // with a fresh allocation.
  versions_->EnsureFileNumberFloor(max_file_number + 1);
  std::sort(wals.begin(), wals.end());
  for (uint64_t number : wals) {
    s = ReplayWal(number);
    if (!s.ok()) return s;
  }
  if (mem_->num_entries() > 0) {
    s = WriteLevel0Table(mem_, nullptr);
    if (!s.ok()) return s;
    mem_ = std::make_shared<MemTable>(icmp_);
  }

  // Start a fresh WAL.
  wal_number_ = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> wal_file;
  s = env_->NewWritableFile(WalFileName(name_, wal_number_), &wal_file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  versions_->SetWalNumber(wal_number_);
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  RemoveObsoleteFilesLocked();
  s = CompactLoopLocked();
  if (s.ok()) recovered_ = true;
  return s;
}

Status DB::ReplayWal(uint64_t wal_number) {
  const std::string fname = WalFileName(name_, wal_number);
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(fname, &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    WriteBatch batch;
    batch.SetContentsFrom(record);
    s = batch.InsertInto(mem_.get());
    if (!s.ok()) return s;
    uint64_t last = batch.Sequence() + batch.Count() - 1;
    if (last > versions_->last_sequence()) {
      versions_->SetLastSequence(last);
    }
  }

  switch (reader.end()) {
    case LogReader::End::kReadError:
      return reader.status();
    case LogReader::End::kBadRecord:
      // Bad checksum / implausible length mid-log: the bytes after it are
      // suspect. Paranoid mode refuses to open; otherwise drop the tail
      // (same consistent-prefix outcome as a torn tail) but account for it.
      if (options_.paranoid_checks) {
        return Status::Corruption("mid-log corruption in " + fname +
                                  " at offset " +
                                  std::to_string(reader.bytes_consumed()));
      }
      break;
    case LogReader::End::kTornTail:
      // Expected after a crash mid-write: only un-synced tail bytes are
      // affected, which were never acknowledged as durable.
      wal_torn_tails_++;
      if (metrics_ != nullptr) metrics_->recovery_torn_tails->Inc();
      break;
    case LogReader::End::kEof:
    case LogReader::End::kNone:
      break;
  }

  uint64_t file_size = 0;
  if (env_->GetFileSize(fname, &file_size).ok() &&
      file_size > reader.bytes_consumed()) {
    const uint64_t dropped = file_size - reader.bytes_consumed();
    wal_bytes_dropped_ += dropped;
    if (metrics_ != nullptr) {
      metrics_->recovery_wal_bytes_dropped->Inc(dropped);
    }
  }
  wal_records_recovered_ += reader.records_read();
  wal_bytes_recovered_ += reader.bytes_consumed();
  if (metrics_ != nullptr) {
    metrics_->recovery_wal_records->Inc(reader.records_read());
  }
  return Status::OK();
}

Status DB::Put(const WriteOptions& wo, const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(wo, &batch);
}

Status DB::Delete(const WriteOptions& wo, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(wo, &batch);
}

Status DB::Write(const WriteOptions& wo, WriteBatch* batch) {
  assert(batch != nullptr);
  if (batch->Count() == 0) return Status::OK();
  // Latency includes group-commit queue wait, as the caller experiences it.
  // The stopwatch read is noise next to the queue wait, so it is taken
  // unconditionally; only the recording is gated on metrics_.
  Stopwatch watch;
  Status s = WriteImpl(wo, batch);
  if (metrics_ != nullptr) {
    metrics_->write_micros->RecordMicros(watch.ElapsedMicros());
  }
  DrainEvents();  // stall / seal events queued while this write held mu_
  return s;
}

Status DB::WriteImpl(const WriteOptions& wo, WriteBatch* batch) {
  Writer w(batch, wo.sync);
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  while (!w.done && !w.apply_ready && &w != writers_.front()) {
    w.cv.wait(lock);
  }
  if (w.done) return w.status;  // a previous leader committed our batch

  if (w.apply_ready) {
    // Parallel follower: the leader folded this batch into a WAL record
    // that is already durable (to the group's sync level) and assigned us
    // a sequence sub-range. Apply our own records into the memtable
    // concurrently with the other group members, report into the group,
    // then park again until the leader completes the commit.
    ApplyGroup* group = w.group;
    lock.unlock();
    Status as = w.batch->InsertInto(group->mem, w.apply_seq,
                                    /*concurrent=*/true);
    lock.lock();
    if (!as.ok() && group->status.ok()) group->status = as;
    group->pending--;
    if (group->pending == 0) group->leader->cv.notify_one();
    while (!w.done) w.cv.wait(lock);
    return w.status;
  }

  // This thread is the leader: it owns the write path (WAL + active
  // memtable) until it pops itself off the queue below.
  Status s = MakeRoomForWrite(lock);
  Writer* last_writer = &w;
  if (s.ok()) {
    WriteBatch* group = BuildBatchGroup(&last_writer);
    const uint64_t seq = versions_->last_sequence() + 1;
    group->SetSequence(seq);
    const uint32_t count = group->Count();
    const bool sync = w.sync;

    // Parallel apply pays off only when the group actually folded several
    // writers; their parked threads then become the appliers. Sequence
    // sub-ranges are assigned in queue order — the exact order the batches
    // occupy inside the folded WAL record — so replay and parallel apply
    // number every entry identically.
    ApplyGroup apply_group;
    std::vector<Writer*> members;
    const bool parallel =
        options_.allow_concurrent_memtable_write && last_writer != &w;
    if (parallel) {
      apply_group.leader = &w;
      apply_group.mem = mem_.get();
      uint64_t member_seq = seq;
      for (auto it = writers_.begin();; ++it) {
        Writer* member = *it;
        members.push_back(member);
        member->group = &apply_group;
        member->apply_seq = member_seq;
        member_seq += member->batch->Count();
        apply_group.pending++;
        if (member == last_writer) break;
      }
    }

    // Append + apply without the mutex: followers are parked (or, below,
    // applying into a memtable that cannot be swapped while this leader is
    // active), readers see the pre-write snapshot until SetLastSequence
    // publishes the entries, and the skiplist supports the single-writer
    // or CAS-concurrent insert paths used here.
    lock.unlock();
    s = wal_->AddRecord(group->rep());
    if (s.ok() && sync) {
      Stopwatch sync_watch;  // one clock read; recorded only when metrics on
      s = env_->SyncFile(wal_->file());
      if (metrics_ != nullptr) {
        metrics_->wal_sync_micros->RecordMicros(sync_watch.ElapsedMicros());
        metrics_->wal_syncs->Inc();
      }
    }
    if (s.ok()) {
      if (parallel) {
        // The WAL record is durable: release the parked followers to apply
        // their own batches, insert the leader's batch alongside them, and
        // drain the group before publishing visibility.
        lock.lock();
        for (Writer* member : members) {
          if (member == &w) continue;
          member->apply_ready = true;
          member->cv.notify_one();
        }
        lock.unlock();
        Status ls = w.batch->InsertInto(apply_group.mem, w.apply_seq,
                                        /*concurrent=*/true);
        Stopwatch wait_watch;
        lock.lock();
        if (!ls.ok() && apply_group.status.ok()) apply_group.status = ls;
        apply_group.pending--;
        while (apply_group.pending > 0) w.cv.wait(lock);
        s = apply_group.status;
        concurrent_apply_groups_++;
        concurrent_apply_batches_ += members.size();
        if (metrics_ != nullptr) {
          metrics_->concurrent_apply_groups->Inc();
          metrics_->concurrent_apply_batches->Inc(members.size());
          metrics_->concurrent_apply_fanout->Record(members.size());
          metrics_->concurrent_apply_wait_micros->RecordMicros(
              wait_watch.ElapsedMicros());
        }
        lock.unlock();
      } else {
        s = group->InsertInto(mem_.get());
      }
    }
    lock.lock();
    if (sync) wal_syncs_++;
    if (s.ok()) {
      versions_->SetLastSequence(seq + count - 1);
    }
    if (group == &tmp_batch_) tmp_batch_.Clear();

    // Legacy synchronous mode: pay flush + compaction inline.
    if (s.ok() && !options_.background_flush &&
        mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
      s = FlushActiveLocked();
      if (s.ok()) s = CompactLoopLocked();
    }
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = s;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) break;
  }
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  return s;
}

WriteBatch* DB::BuildBatchGroup(Writer** last_writer) {
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  size_t size = first->batch->ApproximateSize();
  size_t max_size = kMaxGroupBytes;
  if (size <= kSmallBatchBytes) max_size = size + kSmallBatchBytes;

  *last_writer = first;
  auto iter = writers_.begin();
  for (++iter; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->batch == nullptr) break;  // exclusive maintenance marker
    if (w->sync && !first->sync) {
      break;  // grouping must not weaken a follower's sync guarantee
    }
    size += w->batch->ApproximateSize();
    if (size > max_size) break;
    if (result == first->batch) {
      // Switch to the scratch batch; the caller's batch stays untouched.
      result = &tmp_batch_;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

Status DB::MakeRoomForWrite(std::unique_lock<std::mutex>& lock) {
  if (!options_.background_flush) return bg_error_;
  bool allow_delay = true;
  while (true) {
    if (!bg_error_.ok()) return bg_error_;
    const int l0_files = versions_->current()->NumFiles(0);
    if (allow_delay && l0_files >= options_.l0_slowdown_trigger &&
        l0_files < options_.l0_stop_trigger) {
      // Soft backpressure: yield 1ms to the compactor, at most once per
      // write, so latency degrades smoothly instead of cliffing at the
      // stop trigger.
      MaybeScheduleBackground();
      QueueStallBegin(WriteStallInfo::Cause::kL0Slowdown);
      const uint64_t start = NowMicros();
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      lock.lock();
      const uint64_t stalled = NowMicros() - start;
      RecordStall(stalled);
      QueueStallEnd(WriteStallInfo::Cause::kL0Slowdown, stalled);
      allow_delay = false;
      continue;
    }
    if (mem_->ApproximateMemoryUsage() < options_.write_buffer_size ||
        mem_->num_entries() == 0) {
      // Room left; the num_entries guard keeps a tiny write_buffer_size
      // from freezing an *empty* memtable (whose arena baseline — the
      // skiplist head block — can already exceed the budget).
      return Status::OK();
    }
    if (imm_ != nullptr) {
      // The previous flush has not finished: hard stall.
      MaybeScheduleBackground();
      QueueStallBegin(WriteStallInfo::Cause::kMemtableWait);
      const uint64_t start = NowMicros();
      bg_cv_.wait(lock);
      const uint64_t stalled = NowMicros() - start;
      RecordStall(stalled);
      QueueStallEnd(WriteStallInfo::Cause::kMemtableWait, stalled);
      continue;
    }
    if (versions_->current()->NumFiles(0) >= options_.l0_stop_trigger) {
      // Too many L0 files: hard stall until a compaction retires some.
      MaybeScheduleBackground();
      QueueStallBegin(WriteStallInfo::Cause::kL0Stop);
      const uint64_t start = NowMicros();
      bg_cv_.wait(lock);
      const uint64_t stalled = NowMicros() - start;
      RecordStall(stalled);
      QueueStallEnd(WriteStallInfo::Cause::kL0Stop, stalled);
      continue;
    }

    // Freeze the full memtable and switch to a fresh one + fresh WAL. The
    // old WAL stays on disk until the flush completes, so a crash in
    // between replays both.
    //
    // Sync the outgoing WAL before retiring it: a crash would otherwise
    // truncate its un-synced tail while records in the successor WAL
    // survive, so recovery would drop writes from the *middle* of the
    // acknowledged sequence instead of a suffix (prefix-consistent
    // recovery). One fsync per memtable rotation is noise next to the
    // flush itself.
    Status s = wal_->file()->Sync();
    if (!s.ok()) return s;
    const uint64_t new_wal = versions_->NewFileNumber();
    std::unique_ptr<WritableFile> wal_file;
    s = env_->NewWritableFile(WalFileName(name_, new_wal), &wal_file);
    if (!s.ok()) return s;
    wal_->Close();
    wal_ = std::make_unique<LogWriter>(std::move(wal_file));
    imm_wal_number_ = wal_number_;
    wal_number_ = new_wal;
    versions_->SetWalNumber(new_wal);
    imm_ = mem_;
    mem_ = std::make_shared<MemTable>(icmp_);
    if (HasListeners()) {
      MemtableSealInfo info;
      info.db_name = name_;
      info.memtable_bytes = imm_->ApproximateMemoryUsage();
      info.entries = imm_->num_entries();
      info.wal_number = imm_wal_number_;
      QueueEvent([info](EventListener* l) { l->OnMemtableSealed(info); });
    }
    MaybeScheduleBackground();
    // Loop: the fresh memtable has room.
  }
}

Status DB::RunExclusive(const std::function<Status()>& fn) {
  Writer w(nullptr, false);
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  while (&w != writers_.front()) {
    w.cv.wait(lock);
  }
  // Drain in-flight background work; exclusive_waiters_ stops the worker
  // from rescheduling itself so this cannot starve.
  exclusive_waiters_++;
  while (bg_active_) bg_cv_.wait(lock);
  exclusive_waiters_--;

  Status s = bg_error_.ok() ? fn() : bg_error_;

  writers_.pop_front();
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  MaybeScheduleBackground();
  return s;
}

DB::ReadSnapshot DB::AcquireReadSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadSnapshot{mem_, imm_, versions_->current(),
                      versions_->last_sequence()};
}

Status DB::Get(const ReadOptions& ro, const Slice& key, std::string* value) {
  if (metrics_ == nullptr) {
    ReadSnapshot snap = AcquireReadSnapshot();
    LookupKey lkey(key, snap.sequence);
    Status s;
    if (snap.mem->Get(lkey, value, &s)) {
      return s;
    }
    if (snap.imm != nullptr && snap.imm->Get(lkey, value, &s)) {
      return s;
    }
    // Version::Get is const w.r.t. tree shape; needs non-const for table
    // reads.
    return const_cast<Version*>(snap.version.get())->Get(ro, lkey, value);
  }

  Stopwatch watch;
  ReadSnapshot snap = AcquireReadSnapshot();
  LookupKey lkey(key, snap.sequence);
  Status s;
  GetPerf perf;
  const bool in_mem =
      snap.mem->Get(lkey, value, &s) ||
      (snap.imm != nullptr && snap.imm->Get(lkey, value, &s));
  if (!in_mem) {
    s = const_cast<Version*>(snap.version.get())->Get(ro, lkey, value, &perf);
    if (perf.bloom_checks != 0) metrics_->bloom_checks->Inc(perf.bloom_checks);
    if (perf.bloom_useful != 0) metrics_->bloom_useful->Inc(perf.bloom_useful);
    for (int l = 0; l < GetPerf::kMaxLevels; l++) {
      if (perf.reads_per_level[l] != 0) {
        metrics_->sstable_reads_per_level[l]->Inc(perf.reads_per_level[l]);
      }
    }
  }
  metrics_->get_micros->RecordMicros(watch.ElapsedMicros());
  return s;
}

Iterator* DB::NewIterator(const ReadOptions& ro) {
  ReadSnapshot snap = AcquireReadSnapshot();
  std::vector<Iterator*> children;
  children.push_back(snap.mem->NewIterator());
  if (snap.imm != nullptr) {
    children.push_back(snap.imm->NewIterator());
  }
  const_cast<Version*>(snap.version.get())->AddIterators(ro, &children);
  Iterator* internal = NewMergingIterator(&icmp_, std::move(children));
  return new DBIter(snap.mem, snap.imm, snap.version, snap.sequence, internal);
}

namespace {

// Adapter giving the vector-returning Scan the streaming code path.
class CollectPairsSink : public RowSink {
 public:
  explicit CollectPairsSink(
      std::vector<std::pair<std::string, std::string>>* out)
      : out_(out) {}

  bool Accept(const Slice& key, const Slice& value) override {
    out_->emplace_back(key.ToString(), value.ToString());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>>* out_;
};

}  // namespace

Status DB::Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
                const ScanFilter* filter, size_t limit,
                std::vector<std::pair<std::string, std::string>>* out,
                ScanStats* stats) {
  CollectPairsSink sink(out);
  return Scan(ro, start, end, filter, limit, &sink, stats);
}

Status DB::Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
                const ScanFilter* filter, size_t limit, RowSink* sink,
                ScanStats* stats) {
  Stopwatch watch;  // read only when metrics are on
  std::unique_ptr<Iterator> iter(NewIterator(ro));
  ScanStats local;
  for (iter->Seek(start); iter->Valid(); iter->Next()) {
    if (!end.empty() && iter->key().compare(end) >= 0) break;
    local.scanned++;
    if (filter == nullptr || filter->Matches(iter->key(), iter->value())) {
      local.matched++;
      if (!sink->Accept(iter->key(), iter->value())) break;
      if (limit != 0 && local.matched >= limit) break;
    }
  }
  if (stats != nullptr) *stats += local;
  if (metrics_ != nullptr) {
    metrics_->scan_micros->RecordMicros(watch.ElapsedMicros());
    metrics_->scan_rows->Inc(local.scanned);
  }
  return iter->status();
}

Status DB::MultiScan(const ReadOptions& ro,
                     const std::vector<ScanWindow>& windows,
                     const ScanFilter* filter, size_t limit, RowSink* sink,
                     ScanStats* stats, MultiScanPerf* perf) {
  Stopwatch watch;  // read only when metrics are on
  ReadOptions opts = ro;
  if (opts.readahead_bytes == 0) {
    opts.readahead_bytes = options_.multiscan_readahead_bytes;
  }
  MultiScanPerf local_perf;
  opts.perf = &local_perf;
  std::unique_ptr<Iterator> iter(NewIterator(opts));
  ScanStats local;
  bool positioned = false;       // iter has been placed by some window
  Slice prev_end;                // previous window's end key
  bool prev_end_bounded = false; // previous window had a non-empty end
  for (const ScanWindow& w : windows) {
    local_perf.windows++;
    if (positioned) local_perf.iterator_reuse++;
    // Seek elision: with sorted non-overlapping windows the cursor sits at
    // the first key >= the previous window's end. If this window starts at
    // or past that point and the cursor is already inside it, no Seek is
    // needed; an exhausted cursor proves the window empty outright. A
    // previous window that ran to infinity (empty end) never qualifies.
    const bool in_order = positioned && prev_end_bounded &&
                          w.start.compare(prev_end) >= 0;
    if (in_order && (!iter->Valid() || iter->key().compare(w.start) >= 0)) {
      local_perf.seeks_saved++;
    } else {
      iter->Seek(w.start);
      local_perf.seeks_issued++;
    }
    positioned = true;
    prev_end = w.end;
    prev_end_bounded = !w.end.empty();
    size_t window_matched = 0;
    bool stop = false;
    for (; iter->Valid(); iter->Next()) {
      if (!w.end.empty() && iter->key().compare(w.end) >= 0) break;
      local.scanned++;
      if (filter == nullptr || filter->Matches(iter->key(), iter->value())) {
        local.matched++;
        window_matched++;
        if (!sink->Accept(iter->key(), iter->value())) {
          stop = true;
          break;
        }
        if (limit != 0 && window_matched >= limit) break;
      }
    }
    if (stop || !iter->status().ok()) break;
  }
  if (stats != nullptr) *stats += local;
  if (perf != nullptr) *perf += local_perf;
  if (metrics_ != nullptr) {
    metrics_->multiscan_micros->RecordMicros(watch.ElapsedMicros());
    metrics_->scan_rows->Inc(local.scanned);
    metrics_->multiscan_windows->Inc(local_perf.windows);
    metrics_->multiscan_seeks_saved->Inc(local_perf.seeks_saved);
    metrics_->multiscan_block_reuse->Inc(local_perf.block_reuse);
    metrics_->multiscan_blocks_readahead->Inc(local_perf.blocks_readahead);
  }
  return iter->status();
}

Status DB::Flush() {
  Status s = RunExclusive([this]() {
    if (imm_ == nullptr && mem_->num_entries() == 0) return Status::OK();
    Status fs;
    if (imm_ != nullptr) fs = FlushImmutable(nullptr);
    if (fs.ok()) fs = FlushActiveLocked();
    if (fs.ok()) fs = CompactLoopLocked();
    return fs;
  });
  DrainEvents();
  return s;
}

Status DB::CompactAll() {
  Status result = RunExclusive([this]() {
    Status s;
    if (imm_ != nullptr) s = FlushImmutable(nullptr);
    if (s.ok()) s = FlushActiveLocked();
    if (!s.ok()) return s;
    for (int level = 0; level < options_.num_levels - 1; level++) {
      VersionPtr current = versions_->current();
      CompactionJob job;
      job.level = level;
      job.inputs_n = current->LevelFiles(level);
      if (job.inputs_n.empty()) continue;
      Slice smallest = job.inputs_n[0]->smallest.user_key();
      Slice largest = job.inputs_n[0]->largest.user_key();
      for (const auto& f : job.inputs_n) {
        if (f->smallest.user_key().compare(smallest) < 0) {
          smallest = f->smallest.user_key();
        }
        if (f->largest.user_key().compare(largest) > 0) {
          largest = f->largest.user_key();
        }
      }
      for (const auto& f : current->LevelFiles(level + 1)) {
        if (f->largest.user_key().compare(smallest) >= 0 &&
            f->smallest.user_key().compare(largest) <= 0) {
          job.inputs_np1.push_back(f);
        }
      }
      s = RunCompaction(job, nullptr);
      if (!s.ok()) return s;
    }
    return Status::OK();
  });
  DrainEvents();
  return result;
}

Status DB::GetApproximateMedianKey(const Slice& start, const Slice& end,
                                   std::string* median) {
  ReadSnapshot snap = AcquireReadSnapshot();
  std::vector<std::string> samples;
  for (int level = 0; level < snap.version->num_levels(); level++) {
    for (const FileMetaPtr& f : snap.version->LevelFiles(level)) {
      if (!end.empty() && f->smallest.user_key().compare(end) >= 0) continue;
      if (f->largest.user_key().compare(start) < 0) continue;
      // Separator keys sample the file's interior; the file's own largest
      // key anchors single-block tables that contribute no separator.
      f->table->AppendIndexUserKeys(start, end, &samples);
      const Slice largest = f->largest.user_key();
      if (largest.compare(start) > 0 &&
          (end.empty() || largest.compare(end) < 0)) {
        samples.push_back(largest.ToString());
      }
    }
  }
  if (samples.size() < 2) {
    return Status::NotFound("not enough keys in range to estimate a median");
  }
  std::sort(samples.begin(), samples.end());
  samples.erase(std::unique(samples.begin(), samples.end()), samples.end());
  if (samples.size() < 2) {
    return Status::NotFound("range holds a single sampled key");
  }
  // Never return the first sample: a split at the range's smallest sampled
  // key would leave an empty lower half.
  *median = samples[std::max<size_t>(1, samples.size() / 2)];
  return Status::OK();
}

Status DB::IngestExternalFile(const IngestOptions& io,
                              const std::string& file_path) {
  // Validate the external file and learn its key range before taking the
  // writer slot: open it as a table and walk every entry. The walk doubles
  // as a structural check (sorted keys, sequence 0, valid blocks) — a bad
  // file is rejected without ever touching DB state.
  uint64_t ext_size = 0;
  Status s = env_->GetFileSize(file_path, &ext_size);
  if (!s.ok()) return s;
  std::unique_ptr<RandomAccessFile> ext_raf;
  s = env_->NewRandomAccessFile(file_path, &ext_raf);
  if (!s.ok()) return s;
  std::unique_ptr<Table> ext_table;
  s = Table::Open(options_, /*table_id=*/0, std::move(ext_raf), ext_size,
                  /*cache=*/nullptr, &ext_table);
  if (!s.ok()) return s;

  std::string smallest_user_key, largest_user_key;
  uint64_t num_entries = 0;
  {
    ReadOptions ro;
    ro.fill_cache = false;
    std::unique_ptr<Iterator> it(ext_table->NewIterator(ro));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(it->key(), &parsed) ||
          parsed.sequence != 0 || parsed.type != kTypeValue) {
        return Status::InvalidArgument(
            "external file was not built by SstFileWriter");
      }
      if (num_entries == 0) {
        smallest_user_key = parsed.user_key.ToString();
      }
      largest_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
      num_entries++;
    }
    if (!it->status().ok()) return it->status();
  }
  ext_table.reset();
  if (num_entries == 0) {
    return Status::InvalidArgument("external file is empty");
  }

  s = RunExclusive([&]() {
    // Buffered writes may cover the ingest range with *newer* sequence
    // numbers; flushing them first makes every live key visible to the
    // overlap check below.
    Status es;
    if (imm_ != nullptr) es = FlushImmutable(nullptr);
    if (es.ok() && mem_->num_entries() > 0) es = FlushActiveLocked();
    if (!es.ok()) return es;

    VersionPtr current = versions_->current();
    for (int level = 0; level < current->num_levels(); level++) {
      if (current->OverlapsRange(level, Slice(smallest_user_key),
                                 Slice(largest_user_key))) {
        return Status::InvalidArgument(
            "external file overlaps live key range [" + smallest_user_key +
            ", " + largest_user_key + "] at level " + std::to_string(level));
      }
    }
    // Sequence-0 rows are older than everything: the deepest level is the
    // only placement that keeps LSM age ordering without renumbering.
    const int target_level = current->num_levels() - 1;

    auto meta = std::make_shared<FileMetaData>();
    meta->number = versions_->NewFileNumber();
    pending_outputs_.insert(meta->number);
    const std::string table_name = TableFileName(name_, meta->number);

    if (io.move_file) {
      es = env_->RenameFile(file_path, table_name);
    } else {
      // Copy + sync: the installed file must be durable before the
      // MANIFEST references it (prefix-consistency, as in flushes).
      std::unique_ptr<SequentialFile> src;
      es = env_->NewSequentialFile(file_path, &src);
      std::unique_ptr<WritableFile> dst;
      if (es.ok()) es = env_->NewWritableFile(table_name, &dst);
      if (es.ok()) {
        constexpr size_t kCopyChunk = 64 * 1024;
        std::string scratch(kCopyChunk, '\0');
        uint64_t copied = 0;
        while (es.ok() && copied < ext_size) {
          Slice chunk;
          es = src->Read(kCopyChunk, &chunk, scratch.data());
          if (es.ok() && chunk.empty()) {
            es = Status::IOError("external file shrank during ingest");
          }
          if (es.ok()) {
            es = dst->Append(chunk);
            copied += chunk.size();
          }
        }
        if (es.ok()) es = env_->SyncFile(dst.get());
        if (es.ok()) es = dst->Close();
      }
    }

    if (es.ok()) {
      meta->file_size = ext_size;
      meta->smallest.Set(Slice(smallest_user_key), 0, kTypeValue);
      meta->largest.Set(Slice(largest_user_key), 0, kTypeValue);
      es = versions_->OpenTable(meta.get());
    }
    if (es.ok()) {
      es = versions_->InstallVersion(target_level, {meta}, {}, -1);
    }
    pending_outputs_.erase(meta->number);
    if (!es.ok()) {
      env_->RemoveFile(table_name);
      return es;
    }
    files_ingested_++;
    rows_ingested_ += num_entries;
    if (metrics_ != nullptr) {
      metrics_->ingest_files->Inc();
      metrics_->ingest_rows->Inc(num_entries);
    }
    if (HasListeners()) {
      IngestJobInfo info;
      info.db_name = name_;
      info.file_path = file_path;
      info.file_size = ext_size;
      info.entries = num_entries;
      info.level = target_level;
      QueueEvent([info](EventListener* l) { l->OnIngestCompleted(info); });
    }
    return Status::OK();
  });
  DrainEvents();  // ingest event + any flush queued while making room
  return s;
}

Status DB::Resume() {
  // Same exclusive dance as RunExclusive, but inline: RunExclusive itself
  // short-circuits on a sticky bg_error, which is exactly what Resume needs
  // to clear.
  Writer w(nullptr, false);
  std::unique_lock<std::mutex> lock(mu_);
  writers_.push_back(&w);
  while (&w != writers_.front()) {
    w.cv.wait(lock);
  }
  exclusive_waiters_++;
  while (bg_active_) bg_cv_.wait(lock);
  exclusive_waiters_--;

  Status s;
  if (!bg_error_.ok()) {
    if (bg_error_.IsCorruption()) {
      // Not transient: retrying the flush cannot repair bad on-disk data.
      s = bg_error_;
    } else {
      bg_error_ = Status::OK();
      if (imm_ != nullptr) s = FlushImmutable(nullptr);
      if (s.ok()) s = CompactLoopLocked();
      if (s.ok()) {
        resume_count_++;
        if (metrics_ != nullptr) metrics_->recovery_resumes->Inc();
      } else {
        bg_error_ = s;  // still failing: stay bricked
        if (HasListeners()) {
          BackgroundErrorInfo info;
          info.db_name = name_;
          info.status = s;
          QueueEvent([info](EventListener* l) { l->OnBackgroundError(info); });
        }
      }
    }
  }

  writers_.pop_front();
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  MaybeScheduleBackground();
  lock.unlock();
  DrainEvents();
  return s;
}

Status DB::WriteLevel0Table(const std::shared_ptr<MemTable>& mem,
                            std::unique_lock<std::mutex>* lock) {
  auto meta = std::make_shared<FileMetaData>();
  meta->number = versions_->NewFileNumber();
  pending_outputs_.insert(meta->number);

  Stopwatch watch;
  if (lock != nullptr) lock->unlock();
  Status s = BuildTableFromMem(options_, env_, name_, mem.get(), meta.get());
  if (s.ok()) s = versions_->OpenTable(meta.get());
  if (lock != nullptr) lock->lock();

  pending_outputs_.erase(meta->number);
  if (!s.ok()) {
    env_->RemoveFile(TableFileName(name_, meta->number));
    return s;
  }
  flush_count_++;
  if (metrics_ != nullptr) {
    metrics_->flushes->Inc();
    metrics_->flush_micros->RecordMicros(watch.ElapsedMicros());
  }
  const uint64_t file_number = meta->number;
  const uint64_t file_size = meta->file_size;
  s = versions_->InstallVersion(0, {std::move(meta)}, {}, -1);
  if (s.ok() && HasListeners()) {
    FlushJobInfo info;
    info.db_name = name_;
    info.file_number = file_number;
    info.file_size = file_size;
    info.entries = mem->num_entries();
    info.micros = static_cast<uint64_t>(watch.ElapsedMicros());
    QueueEvent([info](EventListener* l) { l->OnFlushCompleted(info); });
  }
  return s;
}

Status DB::FlushImmutable(std::unique_lock<std::mutex>* lock) {
  assert(imm_ != nullptr);
  std::shared_ptr<MemTable> imm = imm_;
  Status s = WriteLevel0Table(imm, lock);
  if (!s.ok()) return s;
  imm_ = nullptr;
  const uint64_t old_wal = imm_wal_number_;
  imm_wal_number_ = 0;
  // InstallVersion persisted the MANIFEST, so the frozen WAL is droppable.
  if (old_wal != 0) env_->RemoveFile(WalFileName(name_, old_wal));
  RemoveObsoleteFilesLocked(lock);
  return Status::OK();
}

Status DB::FlushActiveLocked() {
  if (mem_->num_entries() == 0) return Status::OK();
  Status s = WriteLevel0Table(mem_, nullptr);
  if (!s.ok()) return s;
  if (HasListeners()) {
    // Explicit flushes retire the active memtable without an imm_ handoff;
    // still a seal for listeners — every memtable retirement emits one.
    MemtableSealInfo info;
    info.db_name = name_;
    info.memtable_bytes = mem_->ApproximateMemoryUsage();
    info.entries = mem_->num_entries();
    info.wal_number = wal_number_;
    QueueEvent([info](EventListener* l) { l->OnMemtableSealed(info); });
  }
  mem_ = std::make_shared<MemTable>(icmp_);

  // Rotate the WAL: flushed entries are durable in the SSTable.
  const uint64_t old_wal = wal_number_;
  wal_number_ = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> wal_file;
  s = env_->NewWritableFile(WalFileName(name_, wal_number_), &wal_file);
  if (!s.ok()) return s;
  wal_->Close();
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  versions_->SetWalNumber(wal_number_);
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  env_->RemoveFile(WalFileName(name_, old_wal));
  return Status::OK();
}

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t result = options_.base_level_bytes;
  for (int i = 1; i < level; i++) result *= 10;
  return result;
}

bool DB::PickCompaction(const VersionPtr& current, CompactionJob* job) const {
  // L0 pressure first.
  if (current->NumFiles(0) >= options_.l0_compaction_trigger) {
    job->level = 0;
    job->inputs_n = current->LevelFiles(0);
    // Compute the union user-key range of L0.
    Slice smallest = job->inputs_n[0]->smallest.user_key();
    Slice largest = job->inputs_n[0]->largest.user_key();
    for (const auto& f : job->inputs_n) {
      if (f->smallest.user_key().compare(smallest) < 0) {
        smallest = f->smallest.user_key();
      }
      if (f->largest.user_key().compare(largest) > 0) {
        largest = f->largest.user_key();
      }
    }
    for (const auto& f : current->LevelFiles(1)) {
      if (f->largest.user_key().compare(smallest) >= 0 &&
          f->smallest.user_key().compare(largest) <= 0) {
        job->inputs_np1.push_back(f);
      }
    }
    return true;
  }

  // Size pressure on deeper levels.
  int level = -1;
  for (int l = 1; l < options_.num_levels - 1; l++) {
    if (current->NumLevelBytes(l) > MaxBytesForLevel(l)) {
      level = l;
      break;
    }
  }
  if (level < 0) return false;

  const auto& files = current->LevelFiles(level);
  job->level = level;
  job->inputs_n = {files[0]};
  for (const auto& f : current->LevelFiles(level + 1)) {
    if (f->largest.user_key().compare(files[0]->smallest.user_key()) >= 0 &&
        f->smallest.user_key().compare(files[0]->largest.user_key()) <= 0) {
      job->inputs_np1.push_back(f);
    }
  }
  return true;
}

Status DB::RunCompaction(const CompactionJob& job,
                         std::unique_lock<std::mutex>* lock) {
  const int level = job.level;
  const int output_level = level + 1;
  VersionPtr current = versions_->current();

  std::vector<uint64_t> removed;
  uint64_t bytes_read = 0;
  for (const auto& f : job.inputs_n) {
    removed.push_back(f->number);
    bytes_read += f->file_size;
  }
  for (const auto& f : job.inputs_np1) {
    removed.push_back(f->number);
    bytes_read += f->file_size;
  }

  // Trivial move: a single deeper-level input with nothing to merge into
  // simply changes level (no rewrite, as in RocksDB's trivial move).
  // Disabled while a compaction filter is set: retention only applies when
  // entries flow through a rewriting merge, and a moved file could
  // otherwise carry expired rows to the bottom level forever.
  if (job.inputs_n.size() == 1 && job.inputs_np1.empty() && level > 0 &&
      (options_.compaction_filter == nullptr ||
       !options_.compaction_filter->CouldDropAnything())) {
    return versions_->InstallVersion(output_level, {job.inputs_n[0]}, removed,
                                     level);
  }

  // The merge itself needs no DB state: inputs are pinned by the captured
  // FileMetaPtrs and `current`; output numbers come from the atomic
  // counter. Release the mutex so readers and writers proceed.
  Stopwatch watch;
  if (lock != nullptr) lock->unlock();

  ReadOptions ro;
  ro.fill_cache = false;
  std::vector<Iterator*> children;
  for (const auto& f : job.inputs_n) {
    children.push_back(f->table->NewIterator(ro));
  }
  for (const auto& f : job.inputs_np1) {
    children.push_back(f->table->NewIterator(ro));
  }
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(&icmp_, std::move(children)));

  std::vector<FileMetaPtr> outputs;
  std::vector<uint64_t> output_numbers;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  FileMetaPtr out_meta;
  Status s;

  auto register_output = [&](uint64_t number) {
    if (lock != nullptr) {
      lock->lock();
      pending_outputs_.insert(number);
      lock->unlock();
    } else {
      pending_outputs_.insert(number);
    }
    output_numbers.push_back(number);
  };

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    out_meta->file_size = builder->FileSize();
    builder.reset();
    // Durable before the MANIFEST references it (see BuildTableFromMem).
    fs = out_file->Sync();
    if (!fs.ok()) return fs;
    fs = out_file->Close();
    out_file.reset();
    if (!fs.ok()) return fs;
    fs = versions_->OpenTable(out_meta.get());
    if (!fs.ok()) return fs;
    outputs.push_back(std::move(out_meta));
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;
  uint64_t filter_dropped = 0;
  uint64_t filter_tombstoned = 0;

  for (iter->SeekToFirst(); s.ok() && iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      s = Status::Corruption("bad internal key during compaction");
      break;
    }
    if (has_current_user_key &&
        parsed.user_key.compare(Slice(current_user_key)) == 0) {
      continue;  // older version of a key we already emitted/dropped
    }
    current_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
    has_current_user_key = true;

    if (parsed.type == kTypeDeletion &&
        current->IsBottommostForKey(output_level, parsed.user_key)) {
      continue;  // tombstone no longer shadows anything
    }

    // Retention: the filter sees only the newest surviving version of each
    // user key (exactly what readers would see), never tombstones.
    Slice emit_key = iter->key();
    Slice emit_value = iter->value();
    std::string rewritten_key;
    if (options_.compaction_filter != nullptr && parsed.type == kTypeValue &&
        options_.compaction_filter->ShouldDrop(output_level, parsed.user_key,
                                               emit_value)) {
      if (current->IsBottommostForKey(output_level, parsed.user_key)) {
        filter_dropped++;
        continue;  // expired, and no deeper level can resurrect it
      }
      // Expired, but an older version may live deeper: rewrite as a
      // deletion tombstone at the same sequence so it stays shadowed
      // until the deeper copy compacts away too.
      filter_tombstoned++;
      AppendInternalKey(&rewritten_key, parsed.user_key, parsed.sequence,
                        kTypeDeletion);
      emit_key = Slice(rewritten_key);
      emit_value = Slice();
    }

    if (builder == nullptr) {
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = versions_->NewFileNumber();
      register_output(out_meta->number);
      s = env_->NewWritableFile(TableFileName(name_, out_meta->number),
                                &out_file);
      if (!s.ok()) break;
      builder = std::make_unique<TableBuilder>(options_, out_file.get());
      out_meta->smallest.DecodeFrom(emit_key);
    }
    builder->Add(emit_key, emit_value);
    out_meta->largest.DecodeFrom(emit_key);

    if (builder->FileSize() >= options_.max_file_bytes) {
      s = finish_output();
    }
  }
  if (s.ok()) s = iter->status();
  if (s.ok()) s = finish_output();

  if (lock != nullptr) lock->lock();
  for (uint64_t number : output_numbers) pending_outputs_.erase(number);
  if (!s.ok()) {
    for (uint64_t number : output_numbers) {
      env_->RemoveFile(TableFileName(name_, number));
    }
    return s;
  }

  uint64_t bytes_written = 0;
  for (const auto& f : outputs) bytes_written += f->file_size;
  compaction_count_++;
  compaction_bytes_read_ += bytes_read;
  compaction_bytes_written_ += bytes_written;
  compaction_filter_dropped_ += filter_dropped;
  compaction_filter_tombstoned_ += filter_tombstoned;
  if (metrics_ != nullptr) {
    metrics_->compactions->Inc();
    metrics_->compaction_micros->RecordMicros(watch.ElapsedMicros());
    metrics_->compaction_bytes_read->Inc(bytes_read);
    metrics_->compaction_bytes_written->Inc(bytes_written);
    if (filter_dropped > 0) {
      metrics_->compaction_filter_dropped->Inc(filter_dropped);
    }
    if (filter_tombstoned > 0) {
      metrics_->compaction_filter_tombstoned->Inc(filter_tombstoned);
    }
  }

  const uint64_t output_files = outputs.size();
  s = versions_->InstallVersion(output_level, std::move(outputs), removed,
                                level);
  if (!s.ok()) return s;
  if (HasListeners()) {
    CompactionJobInfo info;
    info.db_name = name_;
    info.level = level;
    info.output_level = output_level;
    info.input_files = job.inputs_n.size() + job.inputs_np1.size();
    info.output_files = output_files;
    info.bytes_read = bytes_read;
    info.bytes_written = bytes_written;
    info.filter_dropped = filter_dropped;
    info.filter_tombstoned = filter_tombstoned;
    info.micros = static_cast<uint64_t>(watch.ElapsedMicros());
    QueueEvent([info](EventListener* l) { l->OnCompactionCompleted(info); });
  }
  RemoveObsoleteFilesLocked(lock);
  return Status::OK();
}

Status DB::CompactLoopLocked() {
  for (int round = 0; round < 16; round++) {
    CompactionJob job;
    if (!PickCompaction(versions_->current(), &job)) return Status::OK();
    Status s = RunCompaction(job, nullptr);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

bool DB::HasBackgroundWork() const {
  if (imm_ != nullptr) return true;
  CompactionJob job;
  return PickCompaction(versions_->current(), &job);
}

void DB::MaybeScheduleBackground() {
  if (bg_pool_ == nullptr) return;
  if (bg_active_ || shutting_down_ || exclusive_waiters_ > 0) return;
  if (!bg_error_.ok()) return;
  if (!HasBackgroundWork()) return;
  bg_active_ = true;
  bg_pool_->Submit([this] { BackgroundCall(); });
}

void DB::BackgroundCall() {
  std::unique_lock<std::mutex> lock(mu_);
  assert(bg_active_);
  if (!shutting_down_ && bg_error_.ok()) {
    Status s;
    if (imm_ != nullptr) {
      s = FlushImmutable(&lock);
    } else {
      CompactionJob job;
      if (PickCompaction(versions_->current(), &job)) {
        s = RunCompaction(job, &lock);
      }
    }
    if (!s.ok()) {
      bg_error_ = s;
      if (HasListeners()) {
        BackgroundErrorInfo info;
        info.db_name = name_;
        info.status = s;
        QueueEvent([info](EventListener* l) { l->OnBackgroundError(info); });
      }
    }
  }
  // Run one unit per call, then resubmit while work remains so DBs sharing
  // a pool interleave fairly; yield to exclusive (Flush/CompactAll/close)
  // waiters, who finish the work inline.
  if (!shutting_down_ && bg_error_.ok() && exclusive_waiters_ == 0 &&
      HasBackgroundWork()) {
    bg_pool_->Submit([this] { BackgroundCall(); });
  } else {
    bg_active_ = false;
  }
  bg_cv_.notify_all();
  lock.unlock();
  DrainEvents();  // deliver this run's flush/compaction/error events
}

void DB::QueueEvent(std::function<void(EventListener*)> fn) {
  pending_events_.push_back(std::move(fn));
  events_pending_.store(true, std::memory_order_release);
}

void DB::DrainEvents() {
  if (!HasListeners()) return;
  // Common case (nothing queued) must stay off the DB mutex: Write calls
  // this once per operation.
  if (!events_pending_.load(std::memory_order_acquire)) return;
  std::vector<std::function<void(EventListener*)>> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_events_.empty()) return;
    events.swap(pending_events_);
    events_pending_.store(false, std::memory_order_release);
  }
  for (const auto& fn : events) {
    for (EventListener* listener : options_.listeners) fn(listener);
  }
}

void DB::QueueStallBegin(WriteStallInfo::Cause cause) {
  if (!HasListeners()) return;
  WriteStallInfo info;
  info.db_name = name_;
  info.cause = cause;
  QueueEvent([info](EventListener* l) { l->OnWriteStallBegin(info); });
}

void DB::QueueStallEnd(WriteStallInfo::Cause cause, uint64_t micros) {
  if (!HasListeners()) return;
  WriteStallInfo info;
  info.db_name = name_;
  info.cause = cause;
  info.micros = micros;
  QueueEvent([info](EventListener* l) { l->OnWriteStallEnd(info); });
}

void DB::RemoveObsoleteFilesLocked(std::unique_lock<std::mutex>* lock) {
  // Deciding what is obsolete needs mu_ (live set, pending outputs, WAL
  // numbers); the directory scan and unlinks are pure I/O and run with the
  // mutex released on the background path so writers are not blocked.
  std::vector<uint64_t> live = versions_->LiveFiles();
  const std::set<uint64_t> pending = pending_outputs_;
  const uint64_t active_wal = wal_number_;
  const uint64_t frozen_wal = imm_wal_number_;
  // Files numbered >= horizon were created after this snapshot (e.g. a WAL
  // rotated by a concurrent writer once the mutex is released) and must
  // not be judged by the stale keep-set.
  const uint64_t horizon = versions_->PeekNextFileNumber();

  if (lock != nullptr) lock->unlock();
  std::vector<std::string> children;
  if (env_->GetChildren(name_, &children).ok()) {
    for (const auto& child : children) {
      uint64_t number;
      std::string suffix;
      if (!ParseFileName(child, &number, &suffix)) continue;
      if (number >= horizon) continue;
      bool keep = true;
      if (suffix == "sst") {
        keep = pending.count(number) > 0 ||
               std::find(live.begin(), live.end(), number) != live.end();
      } else if (suffix == "wal") {
        keep = (number == active_wal) ||
               (frozen_wal != 0 && number == frozen_wal);
      }
      if (!keep) {
        env_->RemoveFile(name_ + "/" + child);
      }
    }
  }
  if (lock != nullptr) lock->lock();
}

DB::Stats DB::GetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  VersionPtr current = versions_->current();
  for (int l = 0; l < current->num_levels(); l++) {
    stats.files_per_level.push_back(current->NumFiles(l));
    stats.bytes_per_level.push_back(current->NumLevelBytes(l));
  }
  stats.memtable_bytes = mem_->ApproximateMemoryUsage();
  stats.imm_memtable_bytes =
      imm_ != nullptr ? imm_->ApproximateMemoryUsage() : 0;
  stats.block_cache_hits = block_cache_->hits();
  stats.block_cache_misses = block_cache_->misses();
  stats.flush_count = flush_count_;
  stats.compaction_count = compaction_count_;
  stats.compaction_bytes_read = compaction_bytes_read_;
  stats.compaction_bytes_written = compaction_bytes_written_;
  stats.stall_count = stall_count_;
  stats.stall_micros = stall_micros_;
  stats.wal_syncs = wal_syncs_;
  stats.concurrent_apply_groups = concurrent_apply_groups_;
  stats.concurrent_apply_batches = concurrent_apply_batches_;
  stats.wal_records_recovered = wal_records_recovered_;
  stats.wal_bytes_recovered = wal_bytes_recovered_;
  stats.wal_bytes_dropped = wal_bytes_dropped_;
  stats.wal_torn_tails = wal_torn_tails_;
  stats.resume_count = resume_count_;
  stats.compaction_filter_dropped = compaction_filter_dropped_;
  stats.compaction_filter_tombstoned = compaction_filter_tombstoned_;
  stats.files_ingested = files_ingested_;
  stats.rows_ingested = rows_ingested_;
  return stats;
}

Status DB::VerifyIntegrity(IntegrityReport* report) {
  // A consistent snapshot is enough: files are immutable once installed and
  // the shared_ptrs keep them alive even if a concurrent compaction drops
  // them from the tree.
  ReadSnapshot snap = AcquireReadSnapshot();
  IntegrityReport local;
  IntegrityReport* rep = report != nullptr ? report : &local;
  *rep = IntegrityReport{};

  Status first_error;
  for (int level = 0; level < snap.version->num_levels(); level++) {
    for (const auto& f : snap.version->LevelFiles(level)) {
      IntegrityReport::FileResult result;
      result.level = level;
      result.number = f->number;
      result.file_size = f->file_size;
      if (f->table != nullptr) {
        result.status = f->table->VerifyChecksums(&result.blocks);
      } else {
        result.status = Status::Corruption("table not open");
      }
      rep->files_checked++;
      rep->blocks_checked += result.blocks;
      if (!result.status.ok()) {
        rep->files_corrupt++;
        if (first_error.ok()) first_error = result.status;
      }
      rep->files.push_back(std::move(result));
    }
  }
  return first_error;
}

}  // namespace tman::kv
