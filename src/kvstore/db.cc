#include "kvstore/db.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "kvstore/filename.h"
#include "kvstore/merge_iterator.h"
#include "kvstore/table.h"

namespace tman::kv {

namespace {

// Iterator over user keys: wraps a merging iterator over internal keys and
// collapses versions/tombstones at a snapshot sequence number. The wrapped
// state (memtable + version) is kept alive by the shared_ptrs captured here.
class DBIter final : public Iterator {
 public:
  DBIter(std::shared_ptr<MemTable> mem, VersionPtr version,
         SequenceNumber sequence, Iterator* internal_iter)
      : mem_(std::move(mem)),
        version_(std::move(version)),
        sequence_(sequence),
        iter_(internal_iter) {}

  bool Valid() const override { return valid_; }

  void SeekToFirst() override {
    iter_->SeekToFirst();
    skipping_ = false;
    FindNextUserEntry();
  }

  void Seek(const Slice& target) override {
    std::string ikey;
    AppendInternalKey(&ikey, target, sequence_, kValueTypeForSeek);
    iter_->Seek(ikey);
    skipping_ = false;
    FindNextUserEntry();
  }

  void Next() override {
    assert(valid_);
    // Skip the remaining (older) entries of the current user key.
    saved_key_.assign(key_.data(), key_.size());
    skipping_ = true;
    iter_->Next();
    FindNextUserEntry();
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return iter_->status(); }

 private:
  void FindNextUserEntry() {
    valid_ = false;
    while (iter_->Valid()) {
      ParsedInternalKey parsed;
      if (!ParseInternalKey(iter_->key(), &parsed)) {
        iter_->Next();
        continue;
      }
      if (parsed.sequence > sequence_) {
        iter_->Next();
        continue;
      }
      if (skipping_ && parsed.user_key.compare(Slice(saved_key_)) <= 0) {
        iter_->Next();
        continue;
      }
      if (parsed.type == kTypeDeletion) {
        // Shadow all older entries of this key.
        saved_key_.assign(parsed.user_key.data(), parsed.user_key.size());
        skipping_ = true;
        iter_->Next();
        continue;
      }
      key_.assign(parsed.user_key.data(), parsed.user_key.size());
      Slice v = iter_->value();
      value_.assign(v.data(), v.size());
      valid_ = true;
      return;
    }
  }

  std::shared_ptr<MemTable> mem_;
  VersionPtr version_;
  const SequenceNumber sequence_;
  std::unique_ptr<Iterator> iter_;
  bool valid_ = false;
  bool skipping_ = false;
  std::string saved_key_;
  std::string key_;
  std::string value_;
};

}  // namespace

DB::DB(const Options& options, std::string name)
    : options_(options), name_(std::move(name)) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  options_.env = env_;
  block_cache_ = std::make_unique<BlockCache>(options_.block_cache_bytes);
  mem_ = std::make_shared<MemTable>(icmp_);
  versions_ = std::make_unique<VersionSet>(name_, options_, env_,
                                           block_cache_.get());
}

DB::~DB() {
  std::lock_guard<std::mutex> lock(mu_);
  // Persist any buffered writes so reopen sees them without WAL replay cost.
  if (mem_->num_entries() > 0) {
    FlushMemTableLocked();
  }
  if (wal_ != nullptr) wal_->Close();
}

Status DB::Open(const Options& options, const std::string& name,
                std::unique_ptr<DB>* dbptr) {
  dbptr->reset();
  std::unique_ptr<DB> db(new DB(options, name));
  Status s = db->Recover();
  if (!s.ok()) return s;
  *dbptr = std::move(db);
  return Status::OK();
}

Status DB::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!env_->FileExists(name_)) {
    if (!options_.create_if_missing) {
      return Status::InvalidArgument(name_ + " does not exist");
    }
  }
  Status s = env_->CreateDirIfMissing(name_);
  if (!s.ok()) return s;

  s = versions_->Recover();
  if (!s.ok()) return s;

  // Replay all WALs present (ascending file number), then flush so that at
  // most one (fresh) WAL exists afterwards.
  std::vector<std::string> children;
  s = env_->GetChildren(name_, &children);
  if (!s.ok()) return s;
  std::vector<uint64_t> wals;
  for (const auto& child : children) {
    uint64_t number;
    std::string suffix;
    if (ParseFileName(child, &number, &suffix) && suffix == "wal") {
      wals.push_back(number);
    }
  }
  std::sort(wals.begin(), wals.end());
  for (uint64_t number : wals) {
    s = ReplayWal(number);
    if (!s.ok()) return s;
  }
  if (mem_->num_entries() > 0) {
    s = WriteMemTableToLevel0Locked();
    if (!s.ok()) return s;
    mem_ = std::make_shared<MemTable>(icmp_);
  }

  // Start a fresh WAL.
  wal_number_ = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> wal_file;
  s = env_->NewWritableFile(WalFileName(name_, wal_number_), &wal_file);
  if (!s.ok()) return s;
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  versions_->SetWalNumber(wal_number_);
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  RemoveObsoleteFilesLocked();
  return MaybeCompactLocked();
}

Status DB::ReplayWal(uint64_t wal_number) {
  std::unique_ptr<SequentialFile> file;
  Status s = env_->NewSequentialFile(WalFileName(name_, wal_number), &file);
  if (!s.ok()) return s;
  LogReader reader(std::move(file));
  Slice record;
  std::string scratch;
  while (reader.ReadRecord(&record, &scratch)) {
    WriteBatch batch;
    batch.SetContentsFrom(record);
    s = batch.InsertInto(mem_.get());
    if (!s.ok()) return s;
    uint64_t last = batch.Sequence() + batch.Count() - 1;
    if (last > versions_->last_sequence()) {
      versions_->SetLastSequence(last);
    }
  }
  return Status::OK();
}

Status DB::Put(const WriteOptions& wo, const Slice& key, const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(wo, &batch);
}

Status DB::Delete(const WriteOptions& wo, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(wo, &batch);
}

Status DB::Write(const WriteOptions& wo, WriteBatch* batch) {
  (void)wo;
  if (batch->Count() == 0) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t seq = versions_->last_sequence() + 1;
  batch->SetSequence(seq);
  Status s = wal_->AddRecord(batch->rep());
  if (!s.ok()) return s;
  s = batch->InsertInto(mem_.get());
  if (!s.ok()) return s;
  versions_->SetLastSequence(seq + batch->Count() - 1);
  if (mem_->ApproximateMemoryUsage() >= options_.write_buffer_size) {
    s = FlushMemTableLocked();
  }
  return s;
}

DB::ReadSnapshot DB::AcquireReadSnapshot() {
  std::lock_guard<std::mutex> lock(mu_);
  return ReadSnapshot{mem_, versions_->current(), versions_->last_sequence()};
}

Status DB::Get(const ReadOptions& ro, const Slice& key, std::string* value) {
  ReadSnapshot snap = AcquireReadSnapshot();
  LookupKey lkey(key, snap.sequence);
  Status s;
  if (snap.mem->Get(lkey, value, &s)) {
    return s;
  }
  // Version::Get is const w.r.t. tree shape; needs non-const for table reads.
  return const_cast<Version*>(snap.version.get())->Get(ro, lkey, value);
}

Iterator* DB::NewIterator(const ReadOptions& ro) {
  ReadSnapshot snap = AcquireReadSnapshot();
  std::vector<Iterator*> children;
  children.push_back(snap.mem->NewIterator());
  const_cast<Version*>(snap.version.get())->AddIterators(ro, &children);
  Iterator* internal = NewMergingIterator(&icmp_, std::move(children));
  return new DBIter(snap.mem, snap.version, snap.sequence, internal);
}

namespace {

// Adapter giving the vector-returning Scan the streaming code path.
class CollectPairsSink : public RowSink {
 public:
  explicit CollectPairsSink(
      std::vector<std::pair<std::string, std::string>>* out)
      : out_(out) {}

  bool Accept(const Slice& key, const Slice& value) override {
    out_->emplace_back(key.ToString(), value.ToString());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>>* out_;
};

}  // namespace

Status DB::Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
                const ScanFilter* filter, size_t limit,
                std::vector<std::pair<std::string, std::string>>* out,
                ScanStats* stats) {
  CollectPairsSink sink(out);
  return Scan(ro, start, end, filter, limit, &sink, stats);
}

Status DB::Scan(const ReadOptions& ro, const Slice& start, const Slice& end,
                const ScanFilter* filter, size_t limit, RowSink* sink,
                ScanStats* stats) {
  std::unique_ptr<Iterator> iter(NewIterator(ro));
  ScanStats local;
  for (iter->Seek(start); iter->Valid(); iter->Next()) {
    if (!end.empty() && iter->key().compare(end) >= 0) break;
    local.scanned++;
    if (filter == nullptr || filter->Matches(iter->key(), iter->value())) {
      local.matched++;
      if (!sink->Accept(iter->key(), iter->value())) break;
      if (limit != 0 && local.matched >= limit) break;
    }
  }
  if (stats != nullptr) *stats += local;
  return iter->status();
}

Status DB::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushMemTableLocked();
}

Status DB::FlushMemTableLocked() {
  if (mem_->num_entries() == 0) return Status::OK();
  Status s = WriteMemTableToLevel0Locked();
  if (!s.ok()) return s;
  mem_ = std::make_shared<MemTable>(icmp_);

  // Rotate the WAL: flushed entries are durable in the SSTable.
  const uint64_t old_wal = wal_number_;
  wal_number_ = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> wal_file;
  s = env_->NewWritableFile(WalFileName(name_, wal_number_), &wal_file);
  if (!s.ok()) return s;
  wal_->Close();
  wal_ = std::make_unique<LogWriter>(std::move(wal_file));
  versions_->SetWalNumber(wal_number_);
  s = versions_->WriteSnapshot();
  if (!s.ok()) return s;
  env_->RemoveFile(WalFileName(name_, old_wal));
  return MaybeCompactLocked();
}

Status DB::WriteMemTableToLevel0Locked() {
  auto meta = std::make_shared<FileMetaData>();
  meta->number = versions_->NewFileNumber();
  const std::string fname = TableFileName(name_, meta->number);

  std::unique_ptr<WritableFile> file;
  Status s = env_->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  {
    TableBuilder builder(options_, file.get());
    std::unique_ptr<Iterator> iter(mem_->NewIterator());
    iter->SeekToFirst();
    if (!iter->Valid()) return Status::OK();
    meta->smallest.DecodeFrom(iter->key());
    Slice last;
    for (; iter->Valid(); iter->Next()) {
      builder.Add(iter->key(), iter->value());
      last = iter->key();
      meta->largest.DecodeFrom(last);
    }
    s = builder.Finish();
    if (!s.ok()) return s;
    meta->file_size = builder.FileSize();
  }
  s = file->Close();
  if (!s.ok()) return s;

  s = versions_->OpenTable(meta.get());
  if (!s.ok()) return s;
  return versions_->InstallVersion(0, {std::move(meta)}, {}, -1);
}

uint64_t DB::MaxBytesForLevel(int level) const {
  uint64_t result = options_.base_level_bytes;
  for (int i = 1; i < level; i++) result *= 10;
  return result;
}

Status DB::MaybeCompactLocked() {
  for (int round = 0; round < 16; round++) {
    VersionPtr current = versions_->current();
    // L0 pressure first.
    if (current->NumFiles(0) >= options_.l0_compaction_trigger) {
      std::vector<FileMetaPtr> inputs_n = current->LevelFiles(0);
      // Compute the union user-key range of L0.
      Slice smallest = inputs_n[0]->smallest.user_key();
      Slice largest = inputs_n[0]->largest.user_key();
      for (const auto& f : inputs_n) {
        if (f->smallest.user_key().compare(smallest) < 0) {
          smallest = f->smallest.user_key();
        }
        if (f->largest.user_key().compare(largest) > 0) {
          largest = f->largest.user_key();
        }
      }
      std::vector<FileMetaPtr> inputs_np1;
      for (const auto& f : current->LevelFiles(1)) {
        if (f->largest.user_key().compare(smallest) >= 0 &&
            f->smallest.user_key().compare(largest) <= 0) {
          inputs_np1.push_back(f);
        }
      }
      Status s = CompactOnceLocked(0, inputs_n, inputs_np1);
      if (!s.ok()) return s;
      continue;
    }

    // Size pressure on deeper levels.
    int level = -1;
    for (int l = 1; l < options_.num_levels - 1; l++) {
      if (current->NumLevelBytes(l) > MaxBytesForLevel(l)) {
        level = l;
        break;
      }
    }
    if (level < 0) return Status::OK();

    const auto& files = current->LevelFiles(level);
    std::vector<FileMetaPtr> inputs_n = {files[0]};
    std::vector<FileMetaPtr> inputs_np1;
    for (const auto& f : current->LevelFiles(level + 1)) {
      if (f->largest.user_key().compare(inputs_n[0]->smallest.user_key()) >=
              0 &&
          f->smallest.user_key().compare(inputs_n[0]->largest.user_key()) <=
              0) {
        inputs_np1.push_back(f);
      }
    }
    Status s = CompactOnceLocked(level, inputs_n, inputs_np1);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status DB::CompactOnceLocked(int level,
                             const std::vector<FileMetaPtr>& inputs_n,
                             const std::vector<FileMetaPtr>& inputs_np1) {
  const int output_level = level + 1;
  VersionPtr current = versions_->current();

  std::vector<uint64_t> removed;
  for (const auto& f : inputs_n) removed.push_back(f->number);
  for (const auto& f : inputs_np1) removed.push_back(f->number);

  // Trivial move: a single deeper-level input with nothing to merge into
  // simply changes level (no rewrite, as in RocksDB's trivial move).
  if (inputs_n.size() == 1 && inputs_np1.empty() && level > 0) {
    return versions_->InstallVersion(output_level, {inputs_n[0]}, removed,
                                     level);
  }

  ReadOptions ro;
  ro.fill_cache = false;
  std::vector<Iterator*> children;
  for (const auto& f : inputs_n) children.push_back(f->table->NewIterator(ro));
  for (const auto& f : inputs_np1) {
    children.push_back(f->table->NewIterator(ro));
  }
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(&icmp_, std::move(children)));

  std::vector<FileMetaPtr> outputs;
  std::unique_ptr<WritableFile> out_file;
  std::unique_ptr<TableBuilder> builder;
  FileMetaPtr out_meta;
  Status s;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr) return Status::OK();
    Status fs = builder->Finish();
    if (!fs.ok()) return fs;
    out_meta->file_size = builder->FileSize();
    builder.reset();
    fs = out_file->Close();
    out_file.reset();
    if (!fs.ok()) return fs;
    fs = versions_->OpenTable(out_meta.get());
    if (!fs.ok()) return fs;
    outputs.push_back(std::move(out_meta));
    return Status::OK();
  };

  std::string current_user_key;
  bool has_current_user_key = false;

  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(iter->key(), &parsed)) {
      return Status::Corruption("bad internal key during compaction");
    }
    if (has_current_user_key &&
        parsed.user_key.compare(Slice(current_user_key)) == 0) {
      continue;  // older version of a key we already emitted/dropped
    }
    current_user_key.assign(parsed.user_key.data(), parsed.user_key.size());
    has_current_user_key = true;

    if (parsed.type == kTypeDeletion &&
        current->IsBottommostForKey(output_level, parsed.user_key)) {
      continue;  // tombstone no longer shadows anything
    }

    if (builder == nullptr) {
      out_meta = std::make_shared<FileMetaData>();
      out_meta->number = versions_->NewFileNumber();
      s = env_->NewWritableFile(TableFileName(name_, out_meta->number),
                                &out_file);
      if (!s.ok()) return s;
      builder = std::make_unique<TableBuilder>(options_, out_file.get());
      out_meta->smallest.DecodeFrom(iter->key());
    }
    builder->Add(iter->key(), iter->value());
    out_meta->largest.DecodeFrom(iter->key());

    if (builder->FileSize() >= options_.max_file_bytes) {
      s = finish_output();
      if (!s.ok()) return s;
    }
  }
  if (!iter->status().ok()) return iter->status();
  s = finish_output();
  if (!s.ok()) return s;

  s = versions_->InstallVersion(output_level, std::move(outputs), removed,
                                level);
  if (!s.ok()) return s;
  RemoveObsoleteFilesLocked();
  return Status::OK();
}

void DB::RemoveObsoleteFilesLocked() {
  std::vector<std::string> children;
  if (!env_->GetChildren(name_, &children).ok()) return;
  std::vector<uint64_t> live = versions_->LiveFiles();
  for (const auto& child : children) {
    uint64_t number;
    std::string suffix;
    if (!ParseFileName(child, &number, &suffix)) continue;
    bool keep = true;
    if (suffix == "sst") {
      keep = std::find(live.begin(), live.end(), number) != live.end();
    } else if (suffix == "wal") {
      keep = (number == wal_number_);
    }
    if (!keep) {
      env_->RemoveFile(name_ + "/" + child);
    }
  }
}

Status DB::CompactAll() {
  std::lock_guard<std::mutex> lock(mu_);
  Status s = FlushMemTableLocked();
  if (!s.ok()) return s;
  for (int level = 0; level < options_.num_levels - 1; level++) {
    VersionPtr current = versions_->current();
    std::vector<FileMetaPtr> inputs_n = current->LevelFiles(level);
    if (inputs_n.empty()) continue;
    Slice smallest = inputs_n[0]->smallest.user_key();
    Slice largest = inputs_n[0]->largest.user_key();
    for (const auto& f : inputs_n) {
      if (f->smallest.user_key().compare(smallest) < 0) {
        smallest = f->smallest.user_key();
      }
      if (f->largest.user_key().compare(largest) > 0) {
        largest = f->largest.user_key();
      }
    }
    std::vector<FileMetaPtr> inputs_np1;
    for (const auto& f : current->LevelFiles(level + 1)) {
      if (f->largest.user_key().compare(smallest) >= 0 &&
          f->smallest.user_key().compare(largest) <= 0) {
        inputs_np1.push_back(f);
      }
    }
    s = CompactOnceLocked(level, inputs_n, inputs_np1);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

DB::Stats DB::GetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  VersionPtr current = versions_->current();
  for (int l = 0; l < current->num_levels(); l++) {
    stats.files_per_level.push_back(current->NumFiles(l));
    stats.bytes_per_level.push_back(current->NumLevelBytes(l));
  }
  stats.memtable_bytes = mem_->ApproximateMemoryUsage();
  stats.block_cache_hits = block_cache_->hits();
  stats.block_cache_misses = block_cache_->misses();
  return stats;
}

}  // namespace tman::kv
