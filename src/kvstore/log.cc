#include "kvstore/log.h"

#include "common/coding.h"
#include "common/hash.h"

namespace tman::kv {

Status LogWriter::AddRecord(const Slice& payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload.data(), payload.size()));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  Status s = dest_->Append(header);
  if (s.ok()) s = dest_->Append(payload);
  if (s.ok()) s = dest_->Flush();
  return s;
}

bool LogReader::ReadRecord(Slice* record, std::string* scratch) {
  if (end_ != End::kNone) return false;

  char header[8];
  Slice h;
  Status s = src_->Read(8, &h, header);
  if (!s.ok()) {
    end_ = End::kReadError;
    status_ = s;
    return false;
  }
  if (h.size() == 0) {
    end_ = End::kEof;
    return false;
  }
  if (h.size() < 8) {
    end_ = End::kTornTail;  // crash mid-header
    return false;
  }

  const uint32_t expected_crc = DecodeFixed32(h.data());
  const uint32_t length = DecodeFixed32(h.data() + 4);
  // Sanity cap: a single batch never exceeds 1 GiB; larger means corruption.
  if (length > (1u << 30)) {
    end_ = End::kBadRecord;
    return false;
  }

  scratch->resize(length);
  Slice payload;
  s = src_->Read(length, &payload, scratch->data());
  if (!s.ok()) {
    end_ = End::kReadError;
    status_ = s;
    return false;
  }
  if (payload.size() < length) {
    end_ = End::kTornTail;  // crash mid-payload
    return false;
  }

  if (Crc32c(payload.data(), payload.size()) != expected_crc) {
    end_ = End::kBadRecord;
    return false;
  }

  bytes_consumed_ += 8 + length;
  records_read_++;
  *record = Slice(scratch->data(), length);
  return true;
}

}  // namespace tman::kv
