#include "kvstore/log.h"

#include "common/coding.h"
#include "common/hash.h"

namespace tman::kv {

Status LogWriter::AddRecord(const Slice& payload) {
  std::string header;
  PutFixed32(&header, Crc32c(payload.data(), payload.size()));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  Status s = dest_->Append(header);
  if (s.ok()) s = dest_->Append(payload);
  if (s.ok()) s = dest_->Flush();
  return s;
}

bool LogReader::ReadRecord(Slice* record, std::string* scratch) {
  char header[8];
  Slice h;
  Status s = src_->Read(8, &h, header);
  if (!s.ok() || h.size() < 8) return false;

  const uint32_t expected_crc = DecodeFixed32(h.data());
  const uint32_t length = DecodeFixed32(h.data() + 4);
  // Sanity cap: a single batch never exceeds 1 GiB; larger means corruption.
  if (length > (1u << 30)) return false;

  scratch->resize(length);
  Slice payload;
  s = src_->Read(length, &payload, scratch->data());
  if (!s.ok() || payload.size() < length) return false;

  if (Crc32c(payload.data(), payload.size()) != expected_crc) return false;

  *record = Slice(scratch->data(), length);
  return true;
}

}  // namespace tman::kv
