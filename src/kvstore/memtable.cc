#include "kvstore/memtable.h"

#include "common/coding.h"

namespace tman::kv {

namespace {

// Decodes a length-prefixed slice stored at `data`.
Slice GetLengthPrefixed(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

}  // namespace

int MemTable::KeyComparator::operator()(const char* a, const char* b) const {
  Slice ka = GetLengthPrefixed(a);
  Slice kb = GetLengthPrefixed(b);
  return comparator.Compare(ka, kb);
}

MemTable::MemTable(const InternalKeyComparator& cmp)
    : comparator_{cmp}, table_(comparator_, &arena_) {}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value, bool concurrent) {
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);

  // Encode in place; the record becomes visible only once the skiplist
  // insert publishes `buf`.
  char* p = EncodeVarint32To(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  p = EncodeFixed64To(p, PackSequenceAndType(seq, type));
  p = EncodeVarint32To(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);

  if (concurrent) {
    table_.InsertConcurrently(buf);
  } else {
    table_.Insert(buf);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (!iter.Valid()) return false;

  // The skiplist positions us at the first entry >= (user_key, seq). Check
  // whether it belongs to the same user key.
  const char* entry = iter.key();
  uint32_t key_length;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
  if (Slice(key_ptr, key_length - 8) != key.user_key()) return false;

  const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
  switch (static_cast<ValueType>(tag & 0xff)) {
    case kTypeValue: {
      Slice v = GetLengthPrefixed(key_ptr + key_length);
      value->assign(v.data(), v.size());
      *s = Status::OK();
      return true;
    }
    case kTypeDeletion:
      *s = Status::NotFound("deleted");
      return true;
  }
  return false;
}

namespace {

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(
      const SkipList<const char*, MemTable::KeyComparator, ConcurrentArena>*
          table)
      : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }

  void SeekToFirst() override { iter_.SeekToFirst(); }

  void Seek(const Slice& target) override {
    // Encode target as a memtable key (length-prefixed internal key).
    tmp_.clear();
    PutVarint32(&tmp_, static_cast<uint32_t>(target.size()));
    tmp_.append(target.data(), target.size());
    iter_.Seek(tmp_.data());
  }

  void Next() override { iter_.Next(); }

  Slice key() const override { return GetLengthPrefixed(iter_.key()); }

  Slice value() const override {
    Slice k = GetLengthPrefixed(iter_.key());
    return GetLengthPrefixed(k.data() + k.size());
  }

  Status status() const override { return Status::OK(); }

 private:
  SkipList<const char*, MemTable::KeyComparator, ConcurrentArena>::Iterator
      iter_;
  std::string tmp_;
};

}  // namespace

Iterator* MemTable::NewIterator() const {
  return new MemTableIterator(&table_);
}

}  // namespace tman::kv
