#ifndef TMAN_KVSTORE_ITERATOR_H_
#define TMAN_KVSTORE_ITERATOR_H_

#include "common/slice.h"
#include "common/status.h"

namespace tman::kv {

// Abstract ordered cursor over key-value pairs. Depending on the producer
// the keys are internal keys (memtable/table iterators) or user keys
// (DB::NewIterator).
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;

  // Require: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;

  virtual Status status() const = 0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_ITERATOR_H_
