#include "kvstore/bloom.h"

#include "common/hash.h"

namespace tman::kv {

namespace {
uint32_t BloomHash(const Slice& key) {
  return Hash32(key.data(), key.size(), 0xbc9f1d34);
}
}  // namespace

BloomFilterPolicy::BloomFilterPolicy(int bits_per_key)
    : bits_per_key_(bits_per_key) {
  // k = bits_per_key * ln(2), clamped.
  k_ = static_cast<int>(bits_per_key * 0.69);
  if (k_ < 1) k_ = 1;
  if (k_ > 30) k_ = 30;
}

void BloomFilterPolicy::CreateFilter(const std::vector<Slice>& keys,
                                     std::string* dst) const {
  size_t bits = keys.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  const size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  const size_t init_size = dst->size();
  dst->resize(init_size + bytes, 0);
  dst->push_back(static_cast<char>(k_));
  char* array = dst->data() + init_size;
  for (const Slice& key : keys) {
    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);  // rotate right 17 bits
    for (int j = 0; j < k_; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
}

bool BloomFilterPolicy::KeyMayMatch(const Slice& key,
                                    const Slice& filter) const {
  const size_t len = filter.size();
  if (len < 2) return false;

  const char* array = filter.data();
  const size_t bits = (len - 1) * 8;
  const int k = filter[len - 1];
  if (k > 30) return true;  // reserved for future encodings: do not filter

  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

}  // namespace tman::kv
