#ifndef TMAN_KVSTORE_SST_FILE_WRITER_H_
#define TMAN_KVSTORE_SST_FILE_WRITER_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/env.h"
#include "kvstore/options.h"
#include "kvstore/table.h"

namespace tman::kv {

// Summary of a finished external SSTable, consumed by
// DB::IngestExternalFile for overlap checks and version installation.
struct ExternalSstFileInfo {
  std::string file_path;
  std::string smallest_user_key;
  std::string largest_user_key;
  uint64_t num_entries = 0;
  uint64_t file_size = 0;
};

// Builds a sorted SSTable outside any DB (offline backfill). Rows are added
// in strictly ascending user-key order and land at sequence number 0 — by
// LSM rules "older than every write the target DB has ever accepted" — so
// ingestion only has to check that the file's key range does not overlap
// live data (DB::IngestExternalFile enforces this). The file uses the same
// v2 block format as flushes and compactions, including per-block
// compression per Options::compression.
//
// Usage:
//   SstFileWriter writer(options);
//   writer.Open(path);
//   for (...) writer.Put(user_key, value);   // ascending user keys
//   writer.Finish(&info);                    // syncs before returning
class SstFileWriter {
 public:
  explicit SstFileWriter(const Options& options);
  ~SstFileWriter();

  SstFileWriter(const SstFileWriter&) = delete;
  SstFileWriter& operator=(const SstFileWriter&) = delete;

  // Creates (truncates) the output file.
  Status Open(const std::string& file_path);

  // Adds one row. User keys must be strictly ascending; duplicates or
  // out-of-order keys return InvalidArgument.
  Status Put(const Slice& user_key, const Slice& value);

  // Finishes the table, syncs it to stable storage and closes the file.
  // A writer with zero rows returns InvalidArgument (an empty SSTable
  // cannot be ingested). On success fills *info (may be nullptr).
  Status Finish(ExternalSstFileInfo* info);

  uint64_t num_entries() const { return num_entries_; }

 private:
  Options options_;
  Env* env_;
  std::string file_path_;
  std::unique_ptr<WritableFile> file_;
  std::unique_ptr<TableBuilder> builder_;
  std::string smallest_user_key_;
  std::string last_user_key_;
  uint64_t num_entries_ = 0;
  bool finished_ = false;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SST_FILE_WRITER_H_
