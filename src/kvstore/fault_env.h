#ifndef TMAN_KVSTORE_FAULT_ENV_H_
#define TMAN_KVSTORE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "kvstore/env.h"

namespace tman::kv {

// An Env wrapper that injects storage faults deterministically, for
// crash-recovery and degraded-mode testing.
//
// Two fault families:
//
//  * Scripted fault points: "fail the next n appends to files whose path
//    contains <substr>" and friends. Counted triggers, disarmed at zero;
//    n < 0 means fire forever until ClearFaults().
//  * Seeded-random faults: every matching read fails (or bit-flips) with a
//    fixed probability drawn from a seeded tman::Random, so a given seed
//    replays the exact same fault schedule.
//
// Crash simulation models power loss in three steps:
//
//   1. Crash()               — every subsequent mutating operation fails
//                              with IOError("simulated crash"). Reads still
//                              work so the dying process can limp along.
//   2. <destroy the DB>      — its destructor flush attempts fail harmlessly.
//   3. DropUnsyncedAndReset() — truncates every tracked file back to its
//                              last-synced length (optionally keeping a
//                              seeded-random prefix of the un-synced bytes,
//                              which is what a torn sector write looks like),
//                              then clears the crash flag so the store can be
//                              reopened against the surviving state.
//
// Per-file sync state is tracked by path in the env (not in the file
// object), so it survives the file handle being closed or destroyed.
// Metadata operations (create/rename/remove) are modeled as durable once
// they return — a simplification that matches rename-based publication of
// the MANIFEST.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base, uint64_t seed = 0);
  ~FaultInjectionEnv() override = default;

  FaultInjectionEnv(const FaultInjectionEnv&) = delete;
  FaultInjectionEnv& operator=(const FaultInjectionEnv&) = delete;

  // Env interface.
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;
  Status SyncFile(WritableFile* file) override;

  // -- Crash simulation ------------------------------------------------

  void Crash();
  bool crashed() const;
  // Restores the on-disk state a real power loss would have left behind and
  // re-enables the env. Only call once the store using it is destroyed.
  Status DropUnsyncedAndReset();
  // Whether DropUnsyncedAndReset keeps a random prefix of un-synced bytes
  // (a torn tail) instead of cutting exactly at the synced length. On.
  void set_torn_tail_on_crash(bool v);

  // -- Scripted fault points -------------------------------------------
  // `substr` matches any path containing it; empty matches everything.

  void FailSyncs(int n);
  void FailAppends(const std::string& substr, int n);
  // ENOSPC-flavoured append failures ("No space left on device").
  void NoSpaceAppends(const std::string& substr, int n);
  // Writes a prefix of the data, then fails: a torn append.
  void TornAppends(const std::string& substr, int n);
  void FailReads(const std::string& substr, int n);
  // Reads succeed but one bit of the result is flipped (caught by CRCs).
  void CorruptReads(const std::string& substr, int n);
  void FailRenames(int n);
  // Every matching read fails with probability p (seeded-deterministic).
  void RandomReadFaults(const std::string& substr, double p);
  void ClearFaults();

  uint64_t faults_injected() const;

  // -- Per-file sync-state tracking ------------------------------------

  struct FileState {
    uint64_t appended = 0;  // bytes written since the file was (re)created
    uint64_t synced = 0;    // prefix guaranteed to survive a crash
  };
  // Snapshot of the tracked write state, keyed by path.
  std::map<std::string, FileState> TrackedFiles() const;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;
  friend class FaultSequentialFile;

  struct CountedFault {
    std::string substr;
    int remaining = 0;  // < 0: unbounded
    bool Matches(const std::string& fname) const;
    // Consumes one trigger if armed and matching.
    bool Fire(const std::string& fname);
  };

  // Called by the file wrappers (all take mu_).
  Status RegisterAppend(const std::string& fname, uint64_t len,
                        uint64_t* allowed_prefix);
  void NoteAppended(const std::string& fname, uint64_t len);
  Status RegisterSync(const std::string& fname);
  void MarkSynced(const std::string& fname);
  Status CheckRead(const std::string& fname, bool* flip_bit);
  void FlipBit(Slice* result);

  Env* const base_;
  mutable std::mutex mu_;
  bool crashed_ = false;
  bool torn_tail_on_crash_ = true;
  Random rng_;
  uint64_t faults_injected_ = 0;
  std::map<std::string, FileState> files_;

  CountedFault fail_appends_;
  CountedFault nospace_appends_;
  CountedFault torn_appends_;
  CountedFault fail_reads_;
  CountedFault corrupt_reads_;
  CountedFault fail_syncs_;
  CountedFault fail_renames_;
  std::string random_read_substr_;
  double random_read_prob_ = 0.0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_FAULT_ENV_H_
