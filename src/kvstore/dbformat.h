#ifndef TMAN_KVSTORE_DBFORMAT_H_
#define TMAN_KVSTORE_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"

namespace tman::kv {

// Entries carry a sequence number and a type so that overwrites and deletes
// shadow older values until compaction drops them (LevelDB-style internal
// key: user_key | fixed64(sequence << 8 | type)).

using SequenceNumber = uint64_t;

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

// kValueTypeForSeek is the highest type value so that a seek for
// (user_key, seq) positions at the newest entry <= seq.
static constexpr ValueType kValueTypeForSeek = kTypeValue;
static constexpr SequenceNumber kMaxSequenceNumber = (1ULL << 56) - 1;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
};

inline void AppendInternalKey(std::string* result, const Slice& user_key,
                              SequenceNumber seq, ValueType t) {
  result->append(user_key.data(), user_key.size());
  PutFixed64(result, PackSequenceAndType(seq, t));
}

inline bool ParseInternalKey(const Slice& internal_key,
                             ParsedInternalKey* result) {
  if (internal_key.size() < 8) return false;
  uint64_t num = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t c = num & 0xff;
  result->sequence = num >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  return c <= kTypeValue;
}

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

// Orders internal keys by increasing user key, then decreasing sequence,
// then decreasing type, so the newest version of a key comes first.
class InternalKeyComparator {
 public:
  int Compare(const Slice& a, const Slice& b) const {
    int r = ExtractUserKey(a).compare(ExtractUserKey(b));
    if (r == 0) {
      const uint64_t anum = DecodeFixed64(a.data() + a.size() - 8);
      const uint64_t bnum = DecodeFixed64(b.data() + b.size() - 8);
      if (anum > bnum) {
        r = -1;
      } else if (anum < bnum) {
        r = +1;
      }
    }
    return r;
  }
};

// Convenience owner of an encoded internal key.
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, user_key, s, t);
  }

  void Set(const Slice& user_key, SequenceNumber s, ValueType t) {
    rep_.clear();
    AppendInternalKey(&rep_, user_key, s, t);
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }

 private:
  std::string rep_;
};

// A "lookup key" for memtable Get: varint32 length-prefixed internal key.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence) {
    PutVarint32(&rep_, static_cast<uint32_t>(user_key.size() + 8));
    AppendInternalKey(&rep_, user_key, sequence, kValueTypeForSeek);
  }

  // Key formatted for the memtable (length-prefixed internal key).
  Slice memtable_key() const { return rep_; }

  // The internal key (without length prefix).
  Slice internal_key() const {
    Slice s(rep_);
    uint32_t len;
    GetVarint32(&s, &len);
    return s;
  }

  Slice user_key() const {
    Slice ik = internal_key();
    return Slice(ik.data(), ik.size() - 8);
  }

 private:
  std::string rep_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_DBFORMAT_H_
