#ifndef TMAN_KVSTORE_ENV_H_
#define TMAN_KVSTORE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace tman::kv {

// Minimal file-system abstraction (POSIX-backed) so the store can be tested
// against a real disk layout: WALs, SSTables and MANIFEST are ordinary files.

class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  virtual Status Flush() = 0;
  // Forces the data down to stable storage (fdatasync). The default is a
  // no-op so in-memory test files stay cheap.
  virtual Status Sync() { return Status::OK(); }
  virtual Status Close() = 0;
};

class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  // Reads n bytes at offset into *result; scratch must have room for n.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
};

class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
};

class Env {
 public:
  static Env* Default();

  virtual ~Env() = default;

  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;

  // Syncs `file` to stable storage. The DB routes WAL syncs through this
  // hook (instead of calling file->Sync() directly) so test environments
  // can observe and count them.
  virtual Status SyncFile(WritableFile* file) { return file->Sync(); }
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_ENV_H_
