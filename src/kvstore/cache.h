#ifndef TMAN_KVSTORE_CACHE_H_
#define TMAN_KVSTORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/slice.h"
#include "obs/metrics.h"

namespace tman::kv {

// Sharded LRU cache mapping string keys to shared_ptr<T> with byte-charge
// accounting. Used as the SSTable block cache.
template <typename T>
class ShardedLRUCache {
 public:
  explicit ShardedLRUCache(size_t capacity_bytes)
      : per_shard_capacity_(capacity_bytes / kNumShards + 1) {
    for (auto& shard : shards_) shard.capacity = per_shard_capacity_;
  }

  void Insert(const std::string& key, std::shared_ptr<T> value,
              size_t charge) {
    Shard(key).Insert(key, std::move(value), charge);
  }

  std::shared_ptr<T> Lookup(const std::string& key) {
    std::shared_ptr<T> value = Shard(key).Lookup(key);
    if (value != nullptr) {
      if (ext_hits_ != nullptr) ext_hits_->Inc();
    } else {
      if (ext_misses_ != nullptr) ext_misses_->Inc();
    }
    return value;
  }

  void Erase(const std::string& key) { Shard(key).Erase(key); }

  // Mirrors hit/miss events into registry counters (in addition to the
  // internal per-shard counters behind hits()/misses()). Call before the
  // cache sees traffic; either pointer may be null.
  void BindMetrics(obs::Counter* hits, obs::Counter* misses) {
    ext_hits_ = hits;
    ext_misses_ = misses;
  }

  uint64_t hits() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.hits_.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t misses() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.misses_.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr int kNumShards = 16;

  struct LRUShard {
    struct Entry {
      std::string key;
      std::shared_ptr<T> value;
      size_t charge;
    };

    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, typename std::list<Entry>::iterator> map;
    size_t usage = 0;
    size_t capacity = 0;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};

    void Insert(const std::string& key, std::shared_ptr<T> value,
                size_t charge) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = map.find(key);
      if (it != map.end()) {
        usage -= it->second->charge;
        lru.erase(it->second);
        map.erase(it);
      }
      lru.push_front(Entry{key, std::move(value), charge});
      map[key] = lru.begin();
      usage += charge;
      while (usage > capacity && !lru.empty()) {
        const Entry& victim = lru.back();
        usage -= victim.charge;
        map.erase(victim.key);
        lru.pop_back();
      }
    }

    std::shared_ptr<T> Lookup(const std::string& key) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = map.find(key);
      if (it == map.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru.splice(lru.begin(), lru, it->second);
      return it->second->value;
    }

    void Erase(const std::string& key) {
      std::lock_guard<std::mutex> lock(mu);
      auto it = map.find(key);
      if (it == map.end()) return;
      usage -= it->second->charge;
      lru.erase(it->second);
      map.erase(it);
    }
  };

  LRUShard& Shard(const std::string& key) {
    uint32_t h = Hash32(key.data(), key.size(), 0);
    return shards_[h % kNumShards];
  }

  size_t per_shard_capacity_;
  LRUShard shards_[kNumShards];
  obs::Counter* ext_hits_ = nullptr;
  obs::Counter* ext_misses_ = nullptr;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_CACHE_H_
