#include "kvstore/block.h"

#include <cassert>

#include "common/coding.h"

namespace tman::kv {

Block::Block(std::string contents) : data_(std::move(contents)) {
  if (data_.size() < sizeof(uint32_t)) {
    malformed_ = true;
    return;
  }
  const uint32_t num_restarts = NumRestarts();
  const size_t trailer = (1 + num_restarts) * sizeof(uint32_t);
  if (trailer > data_.size()) {
    malformed_ = true;
    return;
  }
  restart_offset_ = static_cast<uint32_t>(data_.size() - trailer);
}

uint32_t Block::NumRestarts() const {
  return DecodeFixed32(data_.data() + data_.size() - sizeof(uint32_t));
}

namespace {

// Decodes the entry header at p. Returns pointer to the key delta, or
// nullptr on malformed data.
const char* DecodeEntry(const char* p, const char* limit, uint32_t* shared,
                        uint32_t* non_shared, uint32_t* value_length) {
  if ((p = GetVarint32Ptr(p, limit, shared)) == nullptr) return nullptr;
  if ((p = GetVarint32Ptr(p, limit, non_shared)) == nullptr) return nullptr;
  if ((p = GetVarint32Ptr(p, limit, value_length)) == nullptr) return nullptr;
  if (static_cast<uint64_t>(limit - p) < *non_shared + *value_length) {
    return nullptr;
  }
  return p;
}

}  // namespace

class BlockIter final : public Iterator {
 public:
  BlockIter(const Block* block, const InternalKeyComparator* cmp)
      : block_(block),
        cmp_(cmp),
        num_restarts_(block->malformed_ ? 0 : block->NumRestarts()),
        current_(block->restart_offset_) {}

  bool Valid() const override { return current_ < block_->restart_offset_; }

  void SeekToFirst() override {
    if (num_restarts_ == 0) {
      MarkInvalid();
      return;
    }
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void Seek(const Slice& target) override {
    if (num_restarts_ == 0) {
      MarkInvalid();
      return;
    }
    // Binary search over restart points for the last restart with a key
    // < target, then scan linearly.
    uint32_t left = 0;
    uint32_t right = num_restarts_ - 1;
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      uint32_t region_offset = GetRestartPoint(mid);
      if (region_offset >= block_->restart_offset_) {
        // Malformed restart array: the offset points at or past the restart
        // trailer. Surface corruption instead of forming an out-of-bounds
        // pointer below.
        Corrupt();
        return;
      }
      uint32_t shared, non_shared, value_length;
      const char* key_ptr = DecodeEntry(
          block_->data_.data() + region_offset,
          block_->data_.data() + block_->restart_offset_, &shared, &non_shared,
          &value_length);
      if (key_ptr == nullptr || shared != 0) {
        Corrupt();
        return;
      }
      Slice mid_key(key_ptr, non_shared);
      if (cmp_->Compare(mid_key, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    for (;;) {
      if (!ParseNextKey()) return;
      if (cmp_->Compare(key_, target) >= 0) return;
    }
  }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

 private:
  void MarkInvalid() { current_ = block_->restart_offset_; }

  void Corrupt() {
    status_ = Status::Corruption("bad block entry");
    MarkInvalid();
  }

  uint32_t GetRestartPoint(uint32_t index) const {
    return DecodeFixed32(block_->data_.data() + block_->restart_offset_ +
                         index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_ = Slice();
    key_pinned_ = true;  // nothing to copy out of the scratch buffer
    next_entry_offset_ = GetRestartPoint(index);
  }

  bool ParseNextKey() {
    current_ = next_entry_offset_;
    if (current_ >= block_->restart_offset_) {
      MarkInvalid();
      return false;
    }
    const char* p = block_->data_.data() + current_;
    const char* limit = block_->data_.data() + block_->restart_offset_;
    uint32_t shared, non_shared, value_length;
    p = DecodeEntry(p, limit, &shared, &non_shared, &value_length);
    if (p == nullptr || key_.size() < shared) {
      Corrupt();
      return false;
    }
    if (shared == 0) {
      // Restart entry: the full key lives contiguously in the block, so the
      // iterator hands out a pinned slice without touching the scratch
      // buffer (zero copy).
      key_ = Slice(p, non_shared);
      key_pinned_ = true;
    } else {
      // Prefix-compressed entry: materialize into the reusable scratch
      // buffer. No allocation once the buffer has grown to the largest key
      // in the block.
      if (key_pinned_) {
        buf_.assign(key_.data(), shared);
      } else {
        buf_.resize(shared);
      }
      buf_.append(p, non_shared);
      key_ = Slice(buf_);
      key_pinned_ = false;
    }
    value_ = Slice(p + non_shared, value_length);
    next_entry_offset_ =
        static_cast<uint32_t>((p + non_shared + value_length) -
                              block_->data_.data());
    return true;
  }

  const Block* block_;
  const InternalKeyComparator* cmp_;
  uint32_t num_restarts_;
  uint32_t current_;             // offset of current entry
  uint32_t next_entry_offset_ = 0;
  Slice key_;          // pinned into block data or pointing at buf_
  bool key_pinned_ = true;
  std::string buf_;    // reusable prefix-decode scratch
  Slice value_;
  Status status_;
};

Iterator* Block::NewIterator(const InternalKeyComparator* cmp) const {
  return new BlockIter(this, cmp);
}

}  // namespace tman::kv
