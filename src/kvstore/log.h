#ifndef TMAN_KVSTORE_LOG_H_
#define TMAN_KVSTORE_LOG_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/env.h"

namespace tman::kv {

// Write-ahead log. Each record is
//   crc32c(payload) fixed32 | payload_length fixed32 | payload
// A torn final record (crash mid-write) is detected via the checksum and
// treated as end-of-log during recovery.

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> dest)
      : dest_(std::move(dest)) {}

  Status AddRecord(const Slice& payload);
  Status Close() { return dest_->Close(); }

  // Underlying file, for Env::SyncFile (group commit fsync).
  WritableFile* file() { return dest_.get(); }

 private:
  std::unique_ptr<WritableFile> dest_;
};

class LogReader {
 public:
  // Why ReadRecord stopped returning records. A torn tail (truncated header
  // or payload, i.e. a crash mid-write) is expected and tolerated; a bad
  // record (checksum mismatch, implausible length) in the middle of the log
  // means the data after it is suspect and recovery may want to refuse.
  enum class End {
    kNone,       // still reading records
    kEof,        // clean end of log
    kTornTail,   // truncated final record
    kBadRecord,  // CRC mismatch or implausible length: corruption
    kReadError,  // the underlying file read failed (see status())
  };

  explicit LogReader(std::unique_ptr<SequentialFile> src)
      : src_(std::move(src)) {}

  // Reads the next record into *record (backed by *scratch). Returns false
  // once the log ends for any reason; end() reports which.
  bool ReadRecord(Slice* record, std::string* scratch);

  End end() const { return end_; }
  // Only meaningful for kReadError.
  Status status() const { return status_; }
  // Offset just past the last good record: everything before it was
  // returned, everything at or after it was dropped.
  uint64_t bytes_consumed() const { return bytes_consumed_; }
  uint64_t records_read() const { return records_read_; }

 private:
  std::unique_ptr<SequentialFile> src_;
  End end_ = End::kNone;
  Status status_;
  uint64_t bytes_consumed_ = 0;
  uint64_t records_read_ = 0;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_LOG_H_
