#ifndef TMAN_KVSTORE_LOG_H_
#define TMAN_KVSTORE_LOG_H_

#include <memory>
#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "kvstore/env.h"

namespace tman::kv {

// Write-ahead log. Each record is
//   crc32c(payload) fixed32 | payload_length fixed32 | payload
// A torn final record (crash mid-write) is detected via the checksum and
// treated as end-of-log during recovery.

class LogWriter {
 public:
  explicit LogWriter(std::unique_ptr<WritableFile> dest)
      : dest_(std::move(dest)) {}

  Status AddRecord(const Slice& payload);
  Status Close() { return dest_->Close(); }

  // Underlying file, for Env::SyncFile (group commit fsync).
  WritableFile* file() { return dest_.get(); }

 private:
  std::unique_ptr<WritableFile> dest_;
};

class LogReader {
 public:
  explicit LogReader(std::unique_ptr<SequentialFile> src)
      : src_(std::move(src)) {}

  // Reads the next record into *record (backed by *scratch). Returns false
  // at end-of-log or on a torn/corrupt tail record.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  std::unique_ptr<SequentialFile> src_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_LOG_H_
