#include "kvstore/merge_iterator.h"

#include <cassert>

namespace tman::kv {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* cmp,
                  std::vector<Iterator*> children)
      : cmp_(cmp), current_(nullptr) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) child->SeekToFirst();
    FindSmallest();
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) child->Seek(target);
    FindSmallest();
  }

  void Next() override {
    assert(Valid());
    current_->Next();
    FindSmallest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

 private:
  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (!child->Valid()) continue;
      if (smallest == nullptr ||
          cmp_->Compare(child->key(), smallest->key()) < 0) {
        smallest = child.get();
      }
    }
    current_ = smallest;
  }

  const InternalKeyComparator* cmp_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
};

class ErrorIterator final : public Iterator {
 public:
  explicit ErrorIterator(Status s) : status_(std::move(s)) {}
  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewMergingIterator(const InternalKeyComparator* cmp,
                             std::vector<Iterator*> children) {
  return new MergingIterator(cmp, std::move(children));
}

Iterator* NewErrorIterator(const Status& status) {
  return new ErrorIterator(status);
}

}  // namespace tman::kv
