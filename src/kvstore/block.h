#ifndef TMAN_KVSTORE_BLOCK_H_
#define TMAN_KVSTORE_BLOCK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/slice.h"
#include "kvstore/dbformat.h"
#include "kvstore/iterator.h"

namespace tman::kv {

// Immutable, parsed data block. Owns its contents.
class Block {
 public:
  explicit Block(std::string contents);

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return data_.size(); }

  // Iterator over internal keys stored in the block.
  Iterator* NewIterator(const InternalKeyComparator* cmp) const;

 private:
  friend class BlockIter;

  uint32_t NumRestarts() const;

  std::string data_;
  uint32_t restart_offset_ = 0;  // offset of the restart array
  bool malformed_ = false;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_BLOCK_H_
