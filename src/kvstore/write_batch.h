#ifndef TMAN_KVSTORE_WRITE_BATCH_H_
#define TMAN_KVSTORE_WRITE_BATCH_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace tman::kv {

class MemTable;

// Atomic group of updates. Serialized form (also the WAL payload):
//   sequence fixed64 | count fixed32 | records...
// record := kTypeValue  varstring key varstring value
//         | kTypeDeletion varstring key
class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  // Appends all of `other`'s updates to this batch (group commit: the
  // write leader folds follower batches into one WAL record).
  void Append(const WriteBatch& other);

  // Number of updates in the batch.
  uint32_t Count() const;

  // Applies all updates to the memtable, numbering entries starting at the
  // batch's sequence number.
  Status InsertInto(MemTable* mem) const;

  // Sequence-offset view: applies all updates numbering entries from
  // `base_sequence` instead of the batch's own header. Parallel group
  // commit uses this so each writer applies its own batch with the
  // sub-range the leader assigned inside the folded WAL record (the
  // batch's header sequence is never written). With `concurrent` set the
  // memtable inserts go through the CAS-based concurrent path, so several
  // appliers may run at once.
  Status InsertInto(MemTable* mem, uint64_t base_sequence,
                    bool concurrent) const;

  // Internal plumbing between DB and WAL.
  void SetSequence(uint64_t seq);
  uint64_t Sequence() const;
  const std::string& rep() const { return rep_; }
  void SetContentsFrom(const Slice& contents);

  size_t ApproximateSize() const { return rep_.size(); }

 private:
  std::string rep_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_WRITE_BATCH_H_
