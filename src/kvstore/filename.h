#ifndef TMAN_KVSTORE_FILENAME_H_
#define TMAN_KVSTORE_FILENAME_H_

#include <cstdint>
#include <string>

namespace tman::kv {

inline std::string TableFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.sst",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

inline std::string WalFileName(const std::string& dbname, uint64_t number) {
  char buf[32];
  snprintf(buf, sizeof(buf), "/%06llu.wal",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

inline std::string ManifestFileName(const std::string& dbname) {
  return dbname + "/MANIFEST";
}

inline std::string TempManifestFileName(const std::string& dbname) {
  return dbname + "/MANIFEST.tmp";
}

// Parses "NNNNNN.sst" / "NNNNNN.wal". Returns true and sets *number/*suffix
// on success.
inline bool ParseFileName(const std::string& name, uint64_t* number,
                          std::string* suffix) {
  size_t dot = name.find('.');
  if (dot == std::string::npos || dot == 0) return false;
  for (size_t i = 0; i < dot; i++) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  *number = strtoull(name.substr(0, dot).c_str(), nullptr, 10);
  *suffix = name.substr(dot + 1);
  return true;
}

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_FILENAME_H_
