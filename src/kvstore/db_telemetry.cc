#include "kvstore/db_telemetry.h"

#include <string>

#include "kvstore/db.h"
#include "obs/event_log.h"
#include "obs/telemetry_server.h"

namespace tman::kv {

namespace {

void AppendField(std::string* out, const char* key, uint64_t value,
                 bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"");
  out->append(key);
  out->append("\":");
  out->append(std::to_string(value));
}

}  // namespace

std::string RenderDbStatsJson(const std::string& name,
                              const Status& background_error,
                              const DB::Stats& stats) {
  std::string out = "{";
  bool first = true;

  out.append("\"name\":\"");
  out.append(obs::JsonEscape(name));
  out.append("\"");
  first = false;

  const Status& bg = background_error;
  out.append(",\"healthy\":");
  out.append(bg.ok() ? "true" : "false");
  if (!bg.ok()) {
    out.append(",\"background_error\":\"");
    out.append(obs::JsonEscape(bg.ToString()));
    out.append("\"");
  }

  out.append(",\"files_per_level\":[");
  for (size_t i = 0; i < stats.files_per_level.size(); ++i) {
    if (i > 0) out.append(",");
    out.append(std::to_string(stats.files_per_level[i]));
  }
  out.append("],\"bytes_per_level\":[");
  for (size_t i = 0; i < stats.bytes_per_level.size(); ++i) {
    if (i > 0) out.append(",");
    out.append(std::to_string(stats.bytes_per_level[i]));
  }
  out.append("]");

  AppendField(&out, "memtable_bytes", stats.memtable_bytes, &first);
  AppendField(&out, "imm_memtable_bytes", stats.imm_memtable_bytes, &first);
  AppendField(&out, "block_cache_hits", stats.block_cache_hits, &first);
  AppendField(&out, "block_cache_misses", stats.block_cache_misses, &first);
  AppendField(&out, "flush_count", stats.flush_count, &first);
  AppendField(&out, "compaction_count", stats.compaction_count, &first);
  AppendField(&out, "compaction_bytes_read", stats.compaction_bytes_read,
              &first);
  AppendField(&out, "compaction_bytes_written", stats.compaction_bytes_written,
              &first);
  AppendField(&out, "stall_count", stats.stall_count, &first);
  AppendField(&out, "stall_micros", stats.stall_micros, &first);
  AppendField(&out, "wal_syncs", stats.wal_syncs, &first);
  AppendField(&out, "concurrent_apply_groups", stats.concurrent_apply_groups,
              &first);
  AppendField(&out, "concurrent_apply_batches", stats.concurrent_apply_batches,
              &first);
  AppendField(&out, "wal_records_recovered", stats.wal_records_recovered,
              &first);
  AppendField(&out, "wal_bytes_recovered", stats.wal_bytes_recovered, &first);
  AppendField(&out, "wal_bytes_dropped", stats.wal_bytes_dropped, &first);
  AppendField(&out, "wal_torn_tails", stats.wal_torn_tails, &first);
  AppendField(&out, "resume_count", stats.resume_count, &first);
  AppendField(&out, "compaction_filter_dropped", stats.compaction_filter_dropped,
              &first);
  AppendField(&out, "compaction_filter_tombstoned",
              stats.compaction_filter_tombstoned, &first);
  AppendField(&out, "files_ingested", stats.files_ingested, &first);
  AppendField(&out, "rows_ingested", stats.rows_ingested, &first);

  out.append("}");
  return out;
}

std::string RenderDbStatsJson(DB* db) {
  return RenderDbStatsJson(db->name(), db->background_error(), db->GetStats());
}

void AttachDbTelemetry(obs::TelemetryServer* server, DB* db) {
  server->set_status_source(
      [db]() { return RenderDbStatsJson(db) + "\n"; });
  server->set_health_source([db](std::string* detail) {
    const Status bg = db->background_error();
    if (bg.ok()) return true;
    *detail = "background_error: " + bg.ToString();
    return false;
  });
}

}  // namespace tman::kv
