#include "kvstore/fault_env.h"

#include <algorithm>
#include <cstring>

namespace tman::kv {

namespace {

Status CrashError() { return Status::IOError("simulated crash"); }

}  // namespace

bool FaultInjectionEnv::CountedFault::Matches(const std::string& fname) const {
  return substr.empty() || fname.find(substr) != std::string::npos;
}

bool FaultInjectionEnv::CountedFault::Fire(const std::string& fname) {
  if (remaining == 0 || !Matches(fname)) return false;
  if (remaining > 0) remaining--;
  return true;
}

// ---------------------------------------------------------------------------
// File wrappers. All fault decisions and state updates go through the env so
// they are serialized under one mutex and keyed by path, not by handle.
// ---------------------------------------------------------------------------

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string fname,
                    std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    uint64_t allowed = data.size();
    Status s = env_->RegisterAppend(fname_, data.size(), &allowed);
    if (!s.ok()) {
      if (allowed > 0) {
        // Torn append: the prefix made it to the file before the failure.
        base_->Append(Slice(data.data(), allowed));
        base_->Flush();
      }
      return s;
    }
    Status bs = base_->Append(data);
    if (bs.ok()) env_->NoteAppended(fname_, data.size());
    return bs;
  }

  Status Flush() override {
    if (env_->crashed()) return CrashError();
    return base_->Flush();
  }

  Status Sync() override {
    Status s = env_->RegisterSync(fname_);
    if (!s.ok()) return s;
    s = base_->Sync();
    if (s.ok()) env_->MarkSynced(fname_);
    return s;
  }

  // Close is not a durability point: buffered OS data may still be lost.
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectionEnv* env, std::string fname,
                        std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    bool flip = false;
    Status s = env_->CheckRead(fname_, &flip);
    if (!s.ok()) return s;
    s = base_->Read(offset, n, result, scratch);
    if (s.ok() && flip) env_->FlipBit(result);
    return s;
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

class FaultSequentialFile : public SequentialFile {
 public:
  FaultSequentialFile(FaultInjectionEnv* env, std::string fname,
                      std::unique_ptr<SequentialFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    bool flip = false;
    Status s = env_->CheckRead(fname_, &flip);
    if (!s.ok()) return s;
    s = base_->Read(n, result, scratch);
    if (s.ok() && flip) env_->FlipBit(result);
    return s;
  }

 private:
  FaultInjectionEnv* const env_;
  const std::string fname_;
  std::unique_ptr<SequentialFile> base_;
};

// ---------------------------------------------------------------------------
// Env interface
// ---------------------------------------------------------------------------

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed ? seed : 0xfa17) {}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashError();
  }
  std::unique_ptr<WritableFile> base_file;
  Status s = base_->NewWritableFile(fname, &base_file);
  if (!s.ok()) return s;
  {
    // Created-or-truncated: tracked write state starts from zero.
    std::lock_guard<std::mutex> lock(mu_);
    files_[fname] = FileState{};
  }
  *result = std::make_unique<FaultWritableFile>(this, fname,
                                                std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> base_file;
  Status s = base_->NewRandomAccessFile(fname, &base_file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultRandomAccessFile>(this, fname,
                                                    std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> base_file;
  Status s = base_->NewSequentialFile(fname, &base_file);
  if (!s.ok()) return s;
  *result = std::make_unique<FaultSequentialFile>(this, fname,
                                                  std::move(base_file));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  return base_->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashError();
  }
  Status s = base_->RemoveFile(fname);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(fname);
  }
  return s;
}

Status FaultInjectionEnv::CreateDirIfMissing(const std::string& dirname) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashError();
  }
  return base_->CreateDirIfMissing(dirname);
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) return CrashError();
    if (fail_renames_.Fire(src)) {
      faults_injected_++;
      return Status::IOError("injected rename failure");
    }
  }
  Status s = base_->RenameFile(src, target);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it != files_.end()) {
      files_[target] = it->second;
      files_.erase(it);
    }
  }
  return s;
}

Status FaultInjectionEnv::SyncFile(WritableFile* file) {
  // The wrapper's Sync applies fault checks and sync-state tracking.
  return file->Sync();
}

// ---------------------------------------------------------------------------
// Crash simulation
// ---------------------------------------------------------------------------

void FaultInjectionEnv::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void FaultInjectionEnv::set_torn_tail_on_crash(bool v) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_tail_on_crash_ = v;
}

Status FaultInjectionEnv::DropUnsyncedAndReset() {
  std::map<std::string, FileState> files;
  bool torn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    files.swap(files_);
    crashed_ = false;
    torn = torn_tail_on_crash_;
  }
  for (const auto& [fname, st] : files) {
    if (!base_->FileExists(fname)) continue;  // unlinked pre-crash: gone
    uint64_t actual = 0;
    Status s = base_->GetFileSize(fname, &actual);
    if (!s.ok()) return s;
    uint64_t keep = std::min(st.synced, actual);
    if (torn && actual > keep) {
      // Some un-synced bytes may have hit the platter anyway; keeping a
      // random prefix of them is exactly what a torn tail looks like.
      std::lock_guard<std::mutex> lock(mu_);
      keep += rng_.Uniform(actual - keep + 1);
    }
    if (keep == actual) continue;

    std::string data;
    data.resize(keep);
    if (keep > 0) {
      std::unique_ptr<SequentialFile> in;
      s = base_->NewSequentialFile(fname, &in);
      if (!s.ok()) return s;
      uint64_t off = 0;
      while (off < keep) {
        Slice chunk;
        s = in->Read(keep - off, &chunk, data.data() + off);
        if (!s.ok()) return s;
        if (chunk.empty()) break;
        if (chunk.data() != data.data() + off) {
          std::memmove(data.data() + off, chunk.data(), chunk.size());
        }
        off += chunk.size();
      }
      data.resize(off);
    }

    std::unique_ptr<WritableFile> out;
    s = base_->NewWritableFile(fname, &out);  // truncates
    if (!s.ok()) return s;
    if (!data.empty()) s = out->Append(data);
    if (s.ok()) s = out->Flush();
    if (s.ok()) s = out->Sync();
    if (s.ok()) s = out->Close();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Scripted fault points
// ---------------------------------------------------------------------------

void FaultInjectionEnv::FailSyncs(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_syncs_ = {"", n};
}

void FaultInjectionEnv::FailAppends(const std::string& substr, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_appends_ = {substr, n};
}

void FaultInjectionEnv::NoSpaceAppends(const std::string& substr, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  nospace_appends_ = {substr, n};
}

void FaultInjectionEnv::TornAppends(const std::string& substr, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_appends_ = {substr, n};
}

void FaultInjectionEnv::FailReads(const std::string& substr, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_reads_ = {substr, n};
}

void FaultInjectionEnv::CorruptReads(const std::string& substr, int n) {
  std::lock_guard<std::mutex> lock(mu_);
  corrupt_reads_ = {substr, n};
}

void FaultInjectionEnv::FailRenames(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_renames_ = {"", n};
}

void FaultInjectionEnv::RandomReadFaults(const std::string& substr, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  random_read_substr_ = substr;
  random_read_prob_ = p;
}

void FaultInjectionEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_appends_ = {};
  nospace_appends_ = {};
  torn_appends_ = {};
  fail_reads_ = {};
  corrupt_reads_ = {};
  fail_syncs_ = {};
  fail_renames_ = {};
  random_read_substr_.clear();
  random_read_prob_ = 0.0;
}

uint64_t FaultInjectionEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_injected_;
}

std::map<std::string, FaultInjectionEnv::FileState>
FaultInjectionEnv::TrackedFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_;
}

// ---------------------------------------------------------------------------
// Wrapper callbacks
// ---------------------------------------------------------------------------

Status FaultInjectionEnv::RegisterAppend(const std::string& fname,
                                         uint64_t len,
                                         uint64_t* allowed_prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    *allowed_prefix = 0;
    return CrashError();
  }
  if (nospace_appends_.Fire(fname)) {
    faults_injected_++;
    *allowed_prefix = 0;
    return Status::IOError("No space left on device (injected)");
  }
  if (fail_appends_.Fire(fname)) {
    faults_injected_++;
    *allowed_prefix = 0;
    return Status::IOError("injected append failure");
  }
  if (len > 0 && torn_appends_.Fire(fname)) {
    faults_injected_++;
    *allowed_prefix = rng_.Uniform(len);  // strictly shorter than len
    files_[fname].appended += *allowed_prefix;
    return Status::IOError("injected torn append");
  }
  return Status::OK();
}

void FaultInjectionEnv::NoteAppended(const std::string& fname, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  files_[fname].appended += len;
}

void FaultInjectionEnv::MarkSynced(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  FileState& st = files_[fname];
  st.synced = st.appended;
}

Status FaultInjectionEnv::RegisterSync(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashError();
  if (fail_syncs_.Fire(fname)) {
    faults_injected_++;
    return Status::IOError("injected fsync failure");
  }
  return Status::OK();
}

Status FaultInjectionEnv::CheckRead(const std::string& fname, bool* flip_bit) {
  std::lock_guard<std::mutex> lock(mu_);
  *flip_bit = false;
  if (fail_reads_.Fire(fname)) {
    faults_injected_++;
    return Status::IOError("injected read error");
  }
  if (random_read_prob_ > 0.0 &&
      (random_read_substr_.empty() ||
       fname.find(random_read_substr_) != std::string::npos) &&
      rng_.Bernoulli(random_read_prob_)) {
    faults_injected_++;
    return Status::IOError("injected read error (random)");
  }
  if (corrupt_reads_.Fire(fname)) {
    faults_injected_++;
    *flip_bit = true;
  }
  return Status::OK();
}

void FaultInjectionEnv::FlipBit(Slice* result) {
  if (result->empty()) return;
  uint64_t pos;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pos = rng_.Uniform(result->size());
  }
  // The slice points into the caller-provided scratch buffer, which this
  // wrapper owns for the duration of the read.
  const_cast<char*>(result->data())[pos] ^= 0x40;
}

}  // namespace tman::kv
