#ifndef TMAN_KVSTORE_SCAN_FILTER_H_
#define TMAN_KVSTORE_SCAN_FILTER_H_

#include <cstdint>

#include "common/slice.h"

namespace tman::kv {

// Server-side predicate evaluated inside the storage layer during scans
// (the analogue of an HBase filter/coprocessor). Push-down means only rows
// for which Matches() returns true are materialized and returned to the
// caller, so filtered-out rows never cross the storage boundary.
class ScanFilter {
 public:
  virtual ~ScanFilter() = default;

  // True if the row passes the filter. Must be thread-safe: regions
  // evaluate filters concurrently.
  virtual bool Matches(const Slice& key, const Slice& value) const = 0;
};

// Streaming consumer of scan results. Rows matching the pushed-down filter
// are delivered one at a time instead of being materialized into a vector,
// so multi-stage pipelines (scan -> merge -> decode -> accumulate) compose
// without intermediate copies. Accept returning false terminates the scan
// (early termination: global limits, top-k cutoffs). The slices are only
// valid for the duration of the call.
//
// Thread model: DB::Scan invokes a sink from the scanning thread only;
// cluster-level parallel scans serialize deliveries before reaching a
// caller-provided sink, so implementations need no internal locking.
class RowSink {
 public:
  virtual ~RowSink() = default;

  // Consumes one matching row. Returns false to stop the scan.
  virtual bool Accept(const Slice& key, const Slice& value) = 0;
};

// Counters reported by a filtered scan; "scanned" is the number of rows the
// storage layer touched (the paper's "candidates"), "matched" the number
// returned to the caller.
struct ScanStats {
  uint64_t scanned = 0;
  uint64_t matched = 0;

  ScanStats& operator+=(const ScanStats& other) {
    scanned += other.scanned;
    matched += other.matched;
    return *this;
  }
};

// One key window of a batched scan: half-open [start, end); an empty end
// means "to infinity". The slices borrow the caller's key storage for the
// duration of the MultiScan call.
struct ScanWindow {
  Slice start;
  Slice end;
};

// Read-path accounting of one MultiScan (or an aggregate of several).
// Plain counters: a MultiScan runs on one thread per region; cross-region
// aggregation happens after the parallel join.
struct MultiScanPerf {
  uint64_t windows = 0;           // windows executed
  uint64_t seeks_issued = 0;      // windows that needed a fresh Seek
  uint64_t seeks_saved = 0;       // windows served from the current position
  uint64_t iterator_reuse = 0;    // windows after the first on the same stack
  uint64_t block_reuse = 0;       // table seeks landing in the loaded block
  uint64_t blocks_readahead = 0;  // data blocks loaded by sequential readahead

  MultiScanPerf& operator+=(const MultiScanPerf& other) {
    windows += other.windows;
    seeks_issued += other.seeks_issued;
    seeks_saved += other.seeks_saved;
    iterator_reuse += other.iterator_reuse;
    block_reuse += other.block_reuse;
    blocks_readahead += other.blocks_readahead;
    return *this;
  }
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SCAN_FILTER_H_
