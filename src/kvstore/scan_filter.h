#ifndef TMAN_KVSTORE_SCAN_FILTER_H_
#define TMAN_KVSTORE_SCAN_FILTER_H_

#include <cstdint>

#include "common/slice.h"

namespace tman::kv {

// Server-side predicate evaluated inside the storage layer during scans
// (the analogue of an HBase filter/coprocessor). Push-down means only rows
// for which Matches() returns true are materialized and returned to the
// caller, so filtered-out rows never cross the storage boundary.
class ScanFilter {
 public:
  virtual ~ScanFilter() = default;

  // True if the row passes the filter. Must be thread-safe: regions
  // evaluate filters concurrently.
  virtual bool Matches(const Slice& key, const Slice& value) const = 0;
};

// Streaming consumer of scan results. Rows matching the pushed-down filter
// are delivered one at a time instead of being materialized into a vector,
// so multi-stage pipelines (scan -> merge -> decode -> accumulate) compose
// without intermediate copies. Accept returning false terminates the scan
// (early termination: global limits, top-k cutoffs). The slices are only
// valid for the duration of the call.
//
// Thread model: DB::Scan invokes a sink from the scanning thread only;
// cluster-level parallel scans serialize deliveries before reaching a
// caller-provided sink, so implementations need no internal locking.
class RowSink {
 public:
  virtual ~RowSink() = default;

  // Consumes one matching row. Returns false to stop the scan.
  virtual bool Accept(const Slice& key, const Slice& value) = 0;
};

// Counters reported by a filtered scan; "scanned" is the number of rows the
// storage layer touched (the paper's "candidates"), "matched" the number
// returned to the caller.
struct ScanStats {
  uint64_t scanned = 0;
  uint64_t matched = 0;

  ScanStats& operator+=(const ScanStats& other) {
    scanned += other.scanned;
    matched += other.matched;
    return *this;
  }
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SCAN_FILTER_H_
