#ifndef TMAN_KVSTORE_SCAN_FILTER_H_
#define TMAN_KVSTORE_SCAN_FILTER_H_

#include <cstdint>

#include "common/slice.h"

namespace tman::kv {

// Server-side predicate evaluated inside the storage layer during scans
// (the analogue of an HBase filter/coprocessor). Push-down means only rows
// for which Matches() returns true are materialized and returned to the
// caller, so filtered-out rows never cross the storage boundary.
class ScanFilter {
 public:
  virtual ~ScanFilter() = default;

  // True if the row passes the filter. Must be thread-safe: regions
  // evaluate filters concurrently.
  virtual bool Matches(const Slice& key, const Slice& value) const = 0;
};

// Counters reported by a filtered scan; "scanned" is the number of rows the
// storage layer touched (the paper's "candidates"), "matched" the number
// returned to the caller.
struct ScanStats {
  uint64_t scanned = 0;
  uint64_t matched = 0;

  ScanStats& operator+=(const ScanStats& other) {
    scanned += other.scanned;
    matched += other.matched;
    return *this;
  }
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SCAN_FILTER_H_
