#ifndef TMAN_KVSTORE_SKIPLIST_H_
#define TMAN_KVSTORE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "common/random.h"
#include "kvstore/arena.h"

namespace tman::kv {

// Lock-free-read skiplist (LevelDB design). Writes require external
// synchronization; reads only require that the skiplist outlive them.
//
// Key is a trivially copyable handle (here: const char* into the arena).
// Comparator is a functor: int operator()(const Key&, const Key&) const.
template <typename Key, class Comparator>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, Arena* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0 /* any key */, kMaxHeight)),
        max_height_(1),
        rnd_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Requires: nothing that compares equal to key is already in the list.
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) {
        prev[i] = head_;
      }
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, x);
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) {
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrierNext(int n) {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }

   private:
    // Array length equals node height; extends past the struct.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  int RandomHeight() {
    int height = 1;
    while (height < kMaxHeight && rnd_.Uniform(kBranching) == 0) {
      height++;
    }
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return n != nullptr && compare_(n->key, key) < 0;
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (KeyIsAfterNode(key, next)) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Comparator const compare_;
  Arena* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  Random rnd_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SKIPLIST_H_
