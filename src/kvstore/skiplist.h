#ifndef TMAN_KVSTORE_SKIPLIST_H_
#define TMAN_KVSTORE_SKIPLIST_H_

#include <atomic>
#include <cassert>
#include <cstdlib>

#include "kvstore/arena.h"

namespace tman::kv {

// Lock-free-read skiplist (LevelDB design, with a RocksDB
// InlineSkipList-style concurrent insert path).
//
// Writers choose between two entry points:
//  - Insert: requires external synchronization (at most one writer);
//  - InsertConcurrently: any number of concurrent writers, each splice
//    link is published with a per-level compare-exchange and retried
//    against the fresh neighbourhood on failure.
// Both may run against concurrent readers; reads only require that the
// skiplist outlive them. Insert and InsertConcurrently must not be mixed
// concurrently (the single-writer path links levels without CAS).
//
// Key is a trivially copyable handle (here: const char* into the arena).
// Comparator is a functor: int operator()(const Key&, const Key&) const.
// ArenaT is Arena (single writer) or ConcurrentArena (concurrent inserts).
template <typename Key, class Comparator, class ArenaT = Arena>
class SkipList {
 private:
  struct Node;

 public:
  SkipList(Comparator cmp, ArenaT* arena)
      : compare_(cmp),
        arena_(arena),
        head_(NewNode(0 /* any key */, kMaxHeight)),
        max_height_(1),
        rand_state_(0xdeadbeef) {
    for (int i = 0; i < kMaxHeight; i++) {
      head_->SetNext(i, nullptr);
    }
  }

  SkipList(const SkipList&) = delete;
  SkipList& operator=(const SkipList&) = delete;

  // Requires: nothing that compares equal to key is already in the list,
  // and no other writer is active (single-writer fast path).
  void Insert(const Key& key) {
    Node* prev[kMaxHeight];
    Node* x = FindGreaterOrEqual(key, prev);
    assert(x == nullptr || !Equal(key, x->key));

    int height = RandomHeight();
    if (height > GetMaxHeight()) {
      for (int i = GetMaxHeight(); i < height; i++) {
        prev[i] = head_;
      }
      max_height_.store(height, std::memory_order_relaxed);
    }

    x = NewNode(key, height);
    for (int i = 0; i < height; i++) {
      x->NoBarrierSetNext(i, prev[i]->NoBarrierNext(i));
      prev[i]->SetNext(i, x);
    }
  }

  // Concurrent insert: safe against other InsertConcurrently callers and
  // any number of readers. Requires: nothing that compares equal to key is
  // in the list or being inserted (internal keys carry unique sequence
  // numbers, so the memtable satisfies this by construction).
  void InsertConcurrently(const Key& key) {
    const int height = RandomHeight();

    // Raise the list height first so the splice search below sees a
    // search depth >= our height. Losing the CAS to a taller insert is
    // fine — we only require max_height_ >= height afterwards.
    int max_h = max_height_.load(std::memory_order_relaxed);
    while (height > max_h &&
           !max_height_.compare_exchange_weak(max_h, height,
                                              std::memory_order_relaxed)) {
    }

    Node* x = NewNode(key, height);
    Node* prev[kMaxHeight];
    Node* next[kMaxHeight];

    // Compute the full splice top-down. Levels above `height` only steer
    // the descent and are not recorded.
    Node* before = head_;
    for (int i = GetMaxHeight() - 1; i >= 0; i--) {
      Node* p;
      Node* n;
      FindSpliceForLevel(key, before, i, &p, &n);
      if (i < height) {
        prev[i] = p;
        next[i] = n;
      }
      before = p;
    }

    // Link bottom-up. Level 0 makes the node reachable; higher levels are
    // an index and may appear later. Each level is published with a CAS on
    // the predecessor; on failure the splice for that level is recomputed
    // from the last known predecessor (which can only have moved forward).
    for (int i = 0; i < height; i++) {
      for (;;) {
        x->NoBarrierSetNext(i, next[i]);
        if (prev[i]->CasNext(i, next[i], x)) break;
        FindSpliceForLevel(key, prev[i], i, &prev[i], &next[i]);
      }
    }
  }

  bool Contains(const Key& key) const {
    Node* x = FindGreaterOrEqual(key, nullptr);
    return x != nullptr && Equal(key, x->key);
  }

  class Iterator {
   public:
    explicit Iterator(const SkipList* list) : list_(list), node_(nullptr) {}

    bool Valid() const { return node_ != nullptr; }

    const Key& key() const {
      assert(Valid());
      return node_->key;
    }

    void Next() {
      assert(Valid());
      node_ = node_->Next(0);
    }

    void Prev() {
      assert(Valid());
      node_ = list_->FindLessThan(node_->key);
      if (node_ == list_->head_) node_ = nullptr;
    }

    void Seek(const Key& target) {
      node_ = list_->FindGreaterOrEqual(target, nullptr);
    }

    void SeekToFirst() { node_ = list_->head_->Next(0); }

    void SeekToLast() {
      node_ = list_->FindLast();
      if (node_ == list_->head_) node_ = nullptr;
    }

   private:
    const SkipList* list_;
    Node* node_;
  };

 private:
  static constexpr int kMaxHeight = 12;
  static constexpr int kBranching = 4;

  struct Node {
    explicit Node(const Key& k) : key(k) {}

    const Key key;

    Node* Next(int n) {
      return next_[n].load(std::memory_order_acquire);
    }
    void SetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_release);
    }
    Node* NoBarrierNext(int n) {
      return next_[n].load(std::memory_order_relaxed);
    }
    void NoBarrierSetNext(int n, Node* x) {
      next_[n].store(x, std::memory_order_relaxed);
    }
    // Publishes x as the level-n successor iff the link still points at
    // `expected`. Release order so the new node's contents (key bytes and
    // lower-level links) are visible to readers that acquire-load it.
    bool CasNext(int n, Node* expected, Node* x) {
      return next_[n].compare_exchange_strong(expected, x,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
    }

   private:
    // Array length equals node height; extends past the struct.
    std::atomic<Node*> next_[1];
  };

  Node* NewNode(const Key& key, int height) {
    char* mem = arena_->AllocateAligned(
        sizeof(Node) + sizeof(std::atomic<Node*>) * (height - 1));
    return new (mem) Node(key);
  }

  int GetMaxHeight() const {
    return max_height_.load(std::memory_order_relaxed);
  }

  // Thread-safe height generator: each call draws a fresh splitmix64 value
  // from an atomic counter, then spends 2 bits per level (kBranching == 4).
  // Deterministic across runs for a fixed call order, like the old Random.
  int RandomHeight() {
    uint64_t z = rand_state_.fetch_add(0x9e3779b97f4a7c15ULL,
                                       std::memory_order_relaxed) +
                 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    int height = 1;
    while (height < kMaxHeight && (z & (kBranching - 1)) == 0) {
      height++;
      z >>= 2;
    }
    return height;
  }

  bool Equal(const Key& a, const Key& b) const { return compare_(a, b) == 0; }

  bool KeyIsAfterNode(const Key& key, Node* n) const {
    return n != nullptr && compare_(n->key, key) < 0;
  }

  // Walks level `level` from `before` (whose key must be < key) and returns
  // the adjacent pair prev/next with prev->key < key <= next->key.
  void FindSpliceForLevel(const Key& key, Node* before, int level,
                          Node** out_prev, Node** out_next) const {
    for (;;) {
      Node* n = before->Next(level);
      if (!KeyIsAfterNode(key, n)) {
        *out_prev = before;
        *out_next = n;
        return;
      }
      before = n;
    }
  }

  Node* FindGreaterOrEqual(const Key& key, Node** prev) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (KeyIsAfterNode(key, next)) {
        x = next;
      } else {
        if (prev != nullptr) prev[level] = x;
        if (level == 0) return next;
        level--;
      }
    }
  }

  Node* FindLessThan(const Key& key) const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr || compare_(next->key, key) >= 0) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Node* FindLast() const {
    Node* x = head_;
    int level = GetMaxHeight() - 1;
    for (;;) {
      Node* next = x->Next(level);
      if (next == nullptr) {
        if (level == 0) return x;
        level--;
      } else {
        x = next;
      }
    }
  }

  Comparator const compare_;
  ArenaT* const arena_;
  Node* const head_;
  std::atomic<int> max_height_;
  std::atomic<uint64_t> rand_state_;
};

}  // namespace tman::kv

#endif  // TMAN_KVSTORE_SKIPLIST_H_
