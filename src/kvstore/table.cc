#include "kvstore/table.h"

#include "kvstore/scan_filter.h"

#include <algorithm>
#include <cassert>

#include "common/coding.h"
#include "common/hash.h"

namespace tman::kv {

namespace {
constexpr uint64_t kTableMagicV1 = 0x7472616a6d616e21ULL;  // "trajman!"
constexpr uint64_t kTableMagicV2 = 0x7472616a6d616e32ULL;  // "trajman2"
constexpr size_t kFooterSize = 48;  // two handles (<=40) + magic
}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

bool BlockHandle::DecodeFrom(Slice* input) {
  return GetVarint64(input, &offset) && GetVarint64(input, &size);
}

// ---------------------------------------------------------------------------
// TableBuilder

TableBuilder::TableBuilder(const Options& options, WritableFile* file)
    : options_(options),
      file_(file),
      data_block_(options.block_restart_interval),
      index_block_(1),
      bloom_(options.bloom_bits_per_key > 0 ? options.bloom_bits_per_key : 10) {
}

TableBuilder::~TableBuilder() = default;

void TableBuilder::Add(const Slice& key, const Slice& value) {
  if (!status_.ok() || closed_) return;

  if (pending_index_entry_) {
    // last_key_ is the final key of the completed block; it is a valid
    // separator because keys are added in sorted order.
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }

  if (options_.bloom_bits_per_key > 0) {
    filter_keys_.emplace_back(ExtractUserKey(key).ToString());
  }

  last_key_.assign(key.data(), key.size());
  data_block_.Add(key, value);
  num_entries_++;

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushDataBlock();
  }
}

void TableBuilder::FlushDataBlock() {
  if (data_block_.empty() || !status_.ok()) return;
  Slice contents = data_block_.Finish();
  status_ = WriteBlock(contents, &pending_handle_);
  data_block_.Reset();
  pending_index_entry_ = true;
}

Status TableBuilder::WriteBlock(const Slice& contents, BlockHandle* handle) {
  handle->offset = offset_;
  Slice payload = contents;
  std::string compressed;
  CompressionType type = kNoCompression;
  if (!options_.write_legacy_table_format) {
    type = CompressBlock(options_.compression, contents, &compressed);
    if (type != kNoCompression) payload = Slice(compressed);
  }
  handle->size = payload.size();
  Status s = file_->Append(payload);
  if (s.ok()) {
    // The crc covers the on-disk bytes, so integrity checks never need to
    // decompress. v2 trailers lead with the compression type byte.
    std::string trailer;
    if (!options_.write_legacy_table_format) {
      trailer.push_back(static_cast<char>(type));
    }
    PutFixed32(&trailer, Crc32c(payload.data(), payload.size()));
    s = file_->Append(trailer);
    if (s.ok()) offset_ += payload.size() + trailer.size();
  }
  return s;
}

Status TableBuilder::Finish() {
  if (closed_) return status_;
  closed_ = true;
  FlushDataBlock();
  if (pending_index_entry_) {
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }
  if (!status_.ok()) return status_;

  // Filter block (raw bloom bytes, no restart structure, no trailer).
  BlockHandle filter_handle;
  filter_handle.offset = offset_;
  std::string filter_contents;
  if (options_.bloom_bits_per_key > 0) {
    std::vector<Slice> key_slices;
    key_slices.reserve(filter_keys_.size());
    for (const auto& k : filter_keys_) key_slices.emplace_back(k);
    bloom_.CreateFilter(key_slices, &filter_contents);
  }
  filter_handle.size = filter_contents.size();
  status_ = file_->Append(filter_contents);
  if (!status_.ok()) return status_;
  offset_ += filter_contents.size();

  // Index block.
  BlockHandle index_handle;
  status_ = WriteBlock(index_block_.Finish(), &index_handle);
  if (!status_.ok()) return status_;

  // Footer.
  std::string footer;
  filter_handle.EncodeTo(&footer);
  index_handle.EncodeTo(&footer);
  footer.resize(kFooterSize - 8);
  PutFixed64(&footer, options_.write_legacy_table_format ? kTableMagicV1
                                                         : kTableMagicV2);
  status_ = file_->Append(footer);
  if (status_.ok()) offset_ += kFooterSize;
  if (status_.ok()) status_ = file_->Flush();
  return status_;
}

// ---------------------------------------------------------------------------
// Table

Status Table::Open(const Options& options, uint64_t table_id,
                   std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                   BlockCache* cache, std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < kFooterSize) {
    return Status::Corruption("file is too short to be an sstable");
  }

  char footer_space[kFooterSize];
  Slice footer_input;
  Status s = file->Read(file_size - kFooterSize, kFooterSize, &footer_input,
                        footer_space);
  if (!s.ok()) return s;

  const uint64_t magic = DecodeFixed64(footer_input.data() + kFooterSize - 8);
  int format_version;
  if (magic == kTableMagicV2) {
    format_version = 2;
  } else if (magic == kTableMagicV1) {
    format_version = 1;
  } else {
    return Status::Corruption("bad sstable magic number");
  }
  Slice handles(footer_input.data(), kFooterSize - 8);
  BlockHandle filter_handle, index_handle;
  if (!filter_handle.DecodeFrom(&handles) ||
      !index_handle.DecodeFrom(&handles)) {
    return Status::Corruption("bad footer handles");
  }

  auto t = std::unique_ptr<Table>(
      new Table(options, table_id, std::move(file), cache));
  t->format_version_ = format_version;

  // Load the bloom filter (small; kept pinned in memory).
  if (filter_handle.size > 0) {
    t->filter_data_.resize(filter_handle.size);
    Slice filter_input;
    s = t->file_->Read(filter_handle.offset, filter_handle.size, &filter_input,
                       t->filter_data_.data());
    if (!s.ok()) return s;
  }

  // Load and pin the index block.
  std::string index_buffer(index_handle.size + t->trailer_size(), '\0');
  Slice index_input;
  s = t->file_->Read(index_handle.offset, index_buffer.size(), &index_input,
                     index_buffer.data());
  if (!s.ok()) return s;
  if (index_input.size() < index_buffer.size()) {
    return Status::Corruption("truncated index block read");
  }
  std::string index_contents;
  s = t->DecodeBlockContents(index_input.data(), index_handle.size,
                             &index_contents);
  if (!s.ok()) {
    return Status::Corruption("index block checksum mismatch");
  }
  t->index_block_ = std::make_unique<Block>(std::move(index_contents));

  *table = std::move(t);
  return Status::OK();
}

bool Table::KeyMayMatch(const Slice& user_key) const {
  if (filter_data_.empty()) return true;
  return bloom_.KeyMayMatch(user_key, filter_data_);
}

namespace {

std::string BlockCacheKey(uint64_t table_id, uint64_t offset) {
  std::string key;
  PutFixed64(&key, table_id);
  PutFixed64(&key, offset);
  return key;
}

}  // namespace

Status Table::DecodeBlockContents(const char* payload, uint64_t payload_size,
                                  std::string* raw) const {
  uint8_t type = kNoCompression;
  uint32_t stored_crc;
  if (format_version_ >= 2) {
    type = static_cast<uint8_t>(payload[payload_size]);
    stored_crc = DecodeFixed32(payload + payload_size + 1);
  } else {
    stored_crc = DecodeFixed32(payload + payload_size);
  }
  if (stored_crc != Crc32c(payload, payload_size)) {
    return Status::Corruption("data block checksum mismatch");
  }
  if (!IsValidCompressionType(type)) {
    return Status::Corruption("unknown block compression type");
  }
  if (type == kNoCompression) {
    raw->append(payload, payload_size);
    return Status::OK();
  }
  return UncompressBlock(static_cast<CompressionType>(type), payload,
                         payload_size, raw);
}

Status Table::ReadBlock(const BlockHandle& handle, bool fill_cache,
                        std::shared_ptr<Block>* block) const {
  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = BlockCacheKey(table_id_, handle.offset);
    std::shared_ptr<Block> cached = cache_->Lookup(cache_key);
    if (cached != nullptr) {
      *block = std::move(cached);
      return Status::OK();
    }
  }

  std::string buffer(handle.size + trailer_size(), '\0');
  Slice input;
  Status s = file_->Read(handle.offset, buffer.size(), &input, buffer.data());
  if (!s.ok()) return s;
  if (input.size() < buffer.size()) {
    return Status::Corruption("truncated data block read");
  }
  std::string contents;
  s = DecodeBlockContents(input.data(), handle.size, &contents);
  if (!s.ok()) return s;

  auto b = std::make_shared<Block>(std::move(contents));
  if (cache_ != nullptr && fill_cache) {
    cache_->Insert(cache_key, b, b->size());
  }
  *block = std::move(b);
  return Status::OK();
}

Status Table::VerifyChecksums(uint64_t* blocks_checked) const {
  uint64_t checked = 0;
  Status result;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Slice handle_value = index_iter->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value)) {
      result = Status::Corruption("bad block handle in index block");
      break;
    }
    // Direct read, never through the cache: a cached copy proves nothing
    // about the bytes on disk. The crc covers the on-disk (compressed)
    // payload; decoding additionally proves the block decompresses.
    std::string buffer(handle.size + trailer_size(), '\0');
    Slice input;
    Status s =
        file_->Read(handle.offset, buffer.size(), &input, buffer.data());
    if (s.ok() && input.size() < buffer.size()) {
      s = Status::Corruption("truncated data block read at offset " +
                             std::to_string(handle.offset));
    }
    if (s.ok()) {
      std::string contents;
      s = DecodeBlockContents(input.data(), handle.size, &contents);
      if (!s.ok()) {
        s = Status::Corruption(std::string(s.message()) + " at offset " +
                               std::to_string(handle.offset));
      }
    }
    if (!s.ok()) {
      result = s;
      break;
    }
    checked++;
  }
  if (result.ok()) result = index_iter->status();
  if (blocks_checked != nullptr) *blocks_checked = checked;
  return result;
}

std::shared_ptr<Block> Table::CachedBlock(const BlockHandle& handle) const {
  if (cache_ == nullptr) return nullptr;
  return cache_->Lookup(BlockCacheKey(table_id_, handle.offset));
}

Status Table::ReadBlockRun(const BlockHandle& first,
                           const std::vector<BlockHandle>& more,
                           bool fill_cache, std::shared_ptr<Block>* block,
                           uint64_t* cached) const {
  *cached = 0;
  // Readahead pays off only when later blocks can be parked somewhere; with
  // no cache fall back to the single-block read.
  if (cache_ == nullptr || !fill_cache || more.empty()) {
    return ReadBlock(first, fill_cache, block);
  }
  const std::string first_key = BlockCacheKey(table_id_, first.offset);
  std::shared_ptr<Block> hit = cache_->Lookup(first_key);
  if (hit != nullptr) {
    // The run was read ahead earlier (or the block is simply hot); one
    // lookup replaces the whole I/O.
    *block = std::move(hit);
    return Status::OK();
  }

  const BlockHandle& last = more.back();
  const uint64_t total =
      last.offset + last.size + trailer_size() - first.offset;
  std::string buffer(total, '\0');
  Slice input;
  Status s = file_->Read(first.offset, total, &input, buffer.data());
  if (!s.ok()) return s;
  if (input.size() < total) {
    // Short read (run handles disagree with the file); take the safe path.
    return ReadBlock(first, fill_cache, block);
  }

  auto slice_block = [&](const BlockHandle& h,
                         std::shared_ptr<Block>* out) -> bool {
    const char* base = input.data() + (h.offset - first.offset);
    std::string contents;
    if (!DecodeBlockContents(base, h.size, &contents).ok()) return false;
    *out = std::make_shared<Block>(std::move(contents));
    return true;
  };

  std::shared_ptr<Block> b;
  if (!slice_block(first, &b)) {
    return Status::Corruption("data block checksum mismatch");
  }
  cache_->Insert(first_key, b, b->size());
  for (const BlockHandle& h : more) {
    std::shared_ptr<Block> ahead;
    if (!slice_block(h, &ahead)) break;  // unneeded so far; end the run
    cache_->Insert(BlockCacheKey(table_id_, h.offset), ahead, ahead->size());
    (*cached)++;
  }
  *block = std::move(b);
  return Status::OK();
}

// Two-level iterator: walks the index block; for each index entry opens the
// pointed-to data block.
class TableIterator final : public Iterator {
 public:
  TableIterator(const Table* table, const ReadOptions& ro)
      : table_(table),
        ro_(ro),
        index_iter_(table->index_block_->NewIterator(&table->icmp_)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    SkipEmptyDataBlocksForward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) data_iter_->Seek(target);
    SkipEmptyDataBlocksForward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  Slice key() const override { return data_iter_->key(); }
  Slice value() const override { return data_iter_->value(); }

  Status status() const override {
    if (!status_.ok()) return status_;
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return index_iter_->status();
  }

 private:
  static constexpr uint64_t kNoBlock = ~0ull;

  void InitDataBlock() {
    if (!status_.ok() || !index_iter_->Valid()) {
      data_iter_.reset();
      data_block_.reset();
      cur_block_offset_ = kNoBlock;
      return;
    }
    Slice handle_value = index_iter_->value();
    BlockHandle handle;
    if (!handle.DecodeFrom(&handle_value)) {
      status_ = Status::Corruption("bad index entry");
      data_iter_.reset();
      cur_block_offset_ = kNoBlock;
      return;
    }
    if (data_iter_ != nullptr && handle.offset == cur_block_offset_) {
      // Batched-scan fast path: the new position lands in the block that is
      // already loaded (common when sorted windows advance monotonically).
      // Keep the block and its iterator; the caller re-positions it.
      if (ro_.perf != nullptr) ro_.perf->block_reuse++;
      return;
    }
    std::shared_ptr<Block> block;
    Status s;
    const bool sequential = handle.offset == next_sequential_offset_;
    seq_advances_ = sequential ? seq_advances_ + 1 : 0;
    if (!sequential) ramp_bytes_ = 0;
    if (ro_.readahead_bytes > 0 && sequential &&
        (block = table_->CachedBlock(handle)) != nullptr) {
      // The block is already resident (read ahead earlier, or simply hot):
      // skip the run-handle index walk entirely.
    } else if (ro_.readahead_bytes > 0 && sequential && seq_advances_ >= 2) {
      // Sequential pattern confirmed (two consecutive blocks starting
      // exactly where the previous one ended): pull the contiguous run
      // behind this block in one I/O. The budget ramps up per run so short
      // window scans do not pay for 16 decoded-but-unused blocks.
      ramp_bytes_ = ramp_bytes_ == 0
                        ? std::min<size_t>(16 * 1024, ro_.readahead_bytes)
                        : std::min<size_t>(ramp_bytes_ * 2,
                                           ro_.readahead_bytes);
      uint64_t cached = 0;
      s = table_->ReadBlockRun(handle, CollectRunHandles(handle, ramp_bytes_),
                               ro_.fill_cache, &block, &cached);
      if (ro_.perf != nullptr) ro_.perf->blocks_readahead += cached;
    } else {
      s = table_->ReadBlock(handle, ro_.fill_cache, &block);
    }
    if (!s.ok()) {
      // Sticky: a checksum failure must surface to the caller, never be
      // silently skipped (that would present lost rows as absent keys).
      status_ = s;
      data_iter_.reset();
      cur_block_offset_ = kNoBlock;
      return;
    }
    cur_block_offset_ = handle.offset;
    next_sequential_offset_ =
        handle.offset + handle.size + table_->trailer_size();
    data_block_ = std::move(block);
    data_iter_.reset(data_block_->NewIterator(&table_->icmp_));
  }

  // Handles of the data blocks immediately following `first` (contiguous in
  // the file), up to the readahead byte budget. Walks a private index-block
  // iterator so index_iter_'s position is untouched.
  std::vector<BlockHandle> CollectRunHandles(const BlockHandle& first,
                                             size_t budget) const {
    std::vector<BlockHandle> run;
    const size_t trailer = table_->trailer_size();
    uint64_t expected = first.offset + first.size + trailer;
    std::unique_ptr<Iterator> peek(
        table_->index_block_->NewIterator(&table_->icmp_));
    peek->Seek(index_iter_->key());
    if (!peek->Valid()) return run;
    for (peek->Next(); peek->Valid(); peek->Next()) {
      Slice hv = peek->value();
      BlockHandle h;
      if (!h.DecodeFrom(&hv)) break;
      if (h.offset != expected) break;  // not contiguous; stop the run
      if (h.size + trailer > budget) break;
      budget -= static_cast<size_t>(h.size) + trailer;
      expected = h.offset + h.size + trailer;
      run.push_back(h);
    }
    return run;
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!status_.ok() || !index_iter_->Valid()) {
        data_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) data_iter_->SeekToFirst();
    }
  }

  const Table* table_;
  const ReadOptions ro_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> data_block_;  // keeps block alive for data_iter_
  std::unique_ptr<Iterator> data_iter_;
  uint64_t cur_block_offset_ = kNoBlock;        // offset of data_block_
  uint64_t next_sequential_offset_ = kNoBlock;  // end of the last block read
  uint32_t seq_advances_ = 0;  // consecutive exactly-sequential block loads
  size_t ramp_bytes_ = 0;      // current readahead budget (doubles per run)
  Status status_;
};

Iterator* Table::NewIterator(const ReadOptions& ro) const {
  return new TableIterator(this, ro);
}

void Table::AppendIndexUserKeys(const Slice& start, const Slice& end,
                                std::vector<std::string>* out) const {
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    const Slice user_key = ExtractUserKey(index_iter->key());
    if (user_key.compare(start) <= 0) continue;
    if (!end.empty() && user_key.compare(end) >= 0) break;
    out->push_back(user_key.ToString());
  }
}

Status Table::InternalGet(const ReadOptions& ro, const Slice& k, void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) {
  if (!KeyMayMatch(ExtractUserKey(k))) return Status::OK();
  TableIterator iter(this, ro);
  iter.Seek(k);
  if (iter.Valid()) {
    handle_result(arg, iter.key(), iter.value());
  }
  return iter.status();
}

}  // namespace tman::kv
