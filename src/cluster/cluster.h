#ifndef TMAN_CLUSTER_CLUSTER_H_
#define TMAN_CLUSTER_CLUSTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "kvstore/compaction_filter.h"
#include "kvstore/db.h"
#include "kvstore/options.h"
#include "kvstore/scan_filter.h"
#include "kvstore/write_batch.h"
#include "obs/event_log.h"
#include "obs/metrics.h"

namespace tman::cluster {

struct Row {
  std::string key;
  std::string value;
};

// Half-open rowkey interval [start, end); empty end means "to infinity".
struct KeyRange {
  std::string start;
  std::string end;
};

// Whether `key` falls inside the half-open range.
bool RangeContains(const KeyRange& range, const Slice& key);

// Whether [a.start, a.end) and [b.start, b.end) share at least one key.
bool RangesIntersect(const KeyRange& a, const KeyRange& b);

// The thread-safe mutable key range a region currently owns. Shared between
// the Region and its RegionOwnershipFilter: topology changes move the
// boundary here, and the next rewriting compaction reclaims any rows that
// migrated out (lazy reclamation — no stop-the-world copy on the write
// path).
class OwnedRange {
 public:
  explicit OwnedRange(KeyRange range) : range_(std::move(range)) {}

  KeyRange get() const {
    std::lock_guard<std::mutex> lock(mu_);
    return range_;
  }
  void set(KeyRange range) {
    std::lock_guard<std::mutex> lock(mu_);
    range_ = std::move(range);
  }
  bool Contains(const Slice& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return RangeContains(range_, key);
  }
  bool IsFullKeyspace() const {
    std::lock_guard<std::mutex> lock(mu_);
    return range_.start.empty() && range_.end.empty();
  }

 private:
  mutable std::mutex mu_;
  KeyRange range_;
};

// Compaction filter installed on every region store: drops rows the region
// no longer owns (they migrated to a sibling during a split/merge) and
// delegates everything else to the table's inner filter (e.g. TTL
// retention). While the owned range is the full keyspace and there is no
// inner filter, CouldDropAnything() is false so trivial file moves stay
// enabled — a never-split region compacts exactly as before.
class RegionOwnershipFilter : public kv::CompactionFilter {
 public:
  RegionOwnershipFilter(std::shared_ptr<OwnedRange> owned,
                        const kv::CompactionFilter* inner)
      : owned_(std::move(owned)), inner_(inner) {}

  const char* Name() const override { return "region-ownership"; }

  bool ShouldDrop(int level, const Slice& user_key,
                  const Slice& value) const override {
    if (!owned_->Contains(user_key)) return true;
    return inner_ != nullptr && inner_->ShouldDrop(level, user_key, value);
  }

  bool CouldDropAnything() const override {
    if (inner_ != nullptr && inner_->CouldDropAnything()) return true;
    return !owned_->IsFullKeyspace();
  }

 private:
  std::shared_ptr<OwnedRange> owned_;
  const kv::CompactionFilter* inner_;
};

// A region hosts one contiguous rowkey range of a table, backed by its own
// LSM store (the HBase region analogue). The owned range is dynamic: splits
// shrink it, merges grow it, and the ownership compaction filter lazily
// reclaims rows left behind by a boundary move.
class Region {
 public:
  Region(int id, std::string dir, std::shared_ptr<OwnedRange> owned,
         std::unique_ptr<RegionOwnershipFilter> filter,
         std::unique_ptr<kv::DB> db)
      : id_(id),
        dir_(std::move(dir)),
        owned_(std::move(owned)),
        filter_(std::move(filter)),
        db_(std::move(db)) {}

  // Closes the store; a retired region also removes its directory.
  ~Region();

  // Stable region id, unique within the table across its whole lifetime
  // (splits allocate fresh ids). Doubles as the "shard" label in metrics
  // and scan breakdowns.
  int id() const { return id_; }
  kv::DB* db() { return db_.get(); }
  const std::string& dir() const { return dir_; }

  KeyRange owned_range() const { return owned_->get(); }
  void set_owned_range(KeyRange range) { owned_->set(std::move(range)); }

  // Marks the backing directory for deletion when the last routing snapshot
  // referencing this region is released (merge retires the absorbed side).
  void Retire() { retired_.store(true, std::memory_order_relaxed); }

  // Write/scan accounting, always on (the balancer's load signal even when
  // no metrics registry is attached). The obs counters, when present, carry
  // the same series into the windowed telemetry plane.
  void NoteWrites(uint64_t n);
  void NoteRowsScanned(uint64_t n);
  uint64_t writes_total() const {
    return writes_total_.load(std::memory_order_relaxed);
  }
  uint64_t rows_scanned_total() const {
    return rows_scanned_total_.load(std::memory_order_relaxed);
  }
  void AttachCounters(obs::Counter* writes, obs::Counter* rows_scanned) {
    writes_counter_ = writes;
    rows_scanned_counter_ = rows_scanned;
  }

  // Executes a filtered scan inside the region (push-down execution).
  Status Scan(const KeyRange& range, const kv::ScanFilter* filter,
              size_t limit, std::vector<Row>* out, kv::ScanStats* stats);

  // Streaming variant: matching rows are delivered to `sink` as the region
  // iterator produces them; the sink returning false stops the scan.
  Status Scan(const KeyRange& range, const kv::ScanFilter* filter,
              size_t limit, kv::RowSink* sink, kv::ScanStats* stats);

  // Batched scan: all windows run against one iterator stack inside the
  // region store (see kv::DB::MultiScan). Sorted windows advance the
  // cursor monotonically instead of re-seeking per window.
  Status MultiScan(const std::vector<kv::ScanWindow>& windows,
                   const kv::ScanFilter* filter, size_t limit,
                   kv::RowSink* sink, kv::ScanStats* stats,
                   kv::MultiScanPerf* perf);

 private:
  int id_;
  std::string dir_;
  std::shared_ptr<OwnedRange> owned_;
  // The filter must outlive the DB (Options::compaction_filter borrows it):
  // declaration order destroys db_ first.
  std::unique_ptr<RegionOwnershipFilter> filter_;
  std::unique_ptr<kv::DB> db_;
  std::atomic<bool> retired_{false};
  std::atomic<uint64_t> writes_total_{0};
  std::atomic<uint64_t> rows_scanned_total_{0};
  obs::Counter* writes_counter_ = nullptr;
  obs::Counter* rows_scanned_counter_ = nullptr;
};

// One row of the routing table: the key range an entry covered when the
// snapshot was built, plus the region serving it. The range is a copy (not
// a live view of Region::owned_range) so an in-flight scan keeps clamping
// against the boundaries it started with even while a split commits.
struct RoutingEntry {
  KeyRange range;
  std::shared_ptr<Region> region;
};

// Immutable sorted routing table. The entries fully partition the keyspace:
// entries[0].range.start == "", entries[last].range.end == "", and each
// entry's end equals the next entry's start. Readers grab a shared_ptr
// snapshot from the table's atomic slot (copy-on-write: splits/merges build
// a new table and swap); no locks on the read or write data path.
class RoutingTable {
 public:
  RoutingTable(uint64_t generation, std::vector<RoutingEntry> entries)
      : generation_(generation), entries_(std::move(entries)) {}

  uint64_t generation() const { return generation_; }
  const std::vector<RoutingEntry>& entries() const { return entries_; }

  // The unique entry whose range contains `key`.
  const RoutingEntry& Find(const Slice& key) const;

  // Entries whose range intersects [range.start, range.end), in key order.
  std::vector<const RoutingEntry*> Intersecting(const KeyRange& range) const;

 private:
  uint64_t generation_;
  std::vector<RoutingEntry> entries_;
};

// Per-region failure accounting for one fan-out scan. Every region task is
// attempted (and retried per the table's RetryPolicy) regardless of other
// regions' failures; the scan's return status is still the first final
// error, so callers that ignore the outcome keep strict semantics.
struct ScanOutcome {
  uint64_t regions_attempted = 0;
  uint64_t regions_failed = 0;  // still failing after retries
  uint64_t retries = 0;         // re-runs across all region tasks
  std::vector<std::pair<int, Status>> region_errors;  // region id -> error
};

// A distributed sorted table: a dynamic set of regions, each owning one
// contiguous rowkey range, spread over the cluster's region servers. Writes
// route through the routing-table snapshot; scans fan out to every region
// whose range intersects the query window and run in parallel on the
// cluster thread pool. SplitRegion/MergeRegions change the topology online:
// concurrent reads keep their snapshot, concurrent writes are teed into the
// moving range's new home, and the routing swap is atomic.
class ClusterTable {
 public:
  // Opens (or creates) the table under `dir`. A ROUTING manifest in the
  // directory restores a previously split/merged topology; without one,
  // `initial_shards` regions are created with the legacy one-byte ranges
  // ["", \x01), [\x01, \x02), ..., [\xNN, "") that reproduce the historical
  // shard-byte placement, and the manifest is written. `base_options` is
  // used for every region store; a caller-set compaction_filter becomes the
  // inner filter behind each region's ownership filter.
  static Status Open(std::string name, std::string dir,
                     kv::Options base_options, int initial_shards,
                     ThreadPool* pool, obs::MetricsRegistry* metrics,
                     std::unique_ptr<ClusterTable>* out);

  ~ClusterTable();

  // Per-region slice of one ParallelScan (trace / EXPLAIN ANALYZE input).
  struct RegionScanStat {
    int shard = 0;          // region id
    uint64_t scanned = 0;   // rows the region iterator visited
    uint64_t matched = 0;   // rows that passed the filter into the sink
    double wait_ms = 0;     // queue wait before a pool thread picked it up
    double scan_ms = 0;     // time inside the region scan itself
  };

  const std::string& name() const { return name_; }
  // Live region count (dynamic once the balancer splits/merges).
  int num_shards() const;
  // Monotone routing-table version; bumps on every split/merge.
  uint64_t routing_generation() const;

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);

  // Groups the batch rows by owning region and writes one batch per region,
  // in parallel on the cluster thread pool (each region owns its own LSM
  // store, so cross-region writes never contend). With background flushes
  // enabled each write only pays WAL append + memtable insert; flush and
  // compaction latency moves off this path onto the maintenance pool.
  Status BatchPut(const std::vector<Row>& rows);

  // As above, with caller-chosen write options (e.g. wo.sync=true to fsync
  // each region's WAL append before the batch is acknowledged — the
  // durability level a crash-safe online backfill needs).
  Status BatchPut(const std::vector<Row>& rows, const kv::WriteOptions& wo);

  // Offline backfill: groups `rows` by owning region, sorts each group,
  // builds one SSTable per region with kv::SstFileWriter and installs it
  // directly into the region store via DB::IngestExternalFile (move, not
  // copy) — no WAL, no memtable, no compaction debt. Regions load in
  // parallel on the cluster pool. Constraints inherited from ingestion: row
  // keys must be unique and each region group's key range must not overlap
  // live keys in that region (backfill disjoint ranges, e.g. historical
  // days). On a per-region failure the remaining regions still load; the
  // first error is returned.
  Status BulkLoad(const std::vector<Row>& rows);

  // Scans all `ranges` in parallel with the filter pushed down to the
  // regions. Results are concatenated (callers needing global key order
  // sort afterwards). limit==0 means unlimited; a non-zero limit applies
  // per range. Thin adapter over the sink-based overload below.
  Status ParallelScan(const std::vector<KeyRange>& ranges,
                      const kv::ScanFilter* filter, size_t limit,
                      std::vector<Row>* out, kv::ScanStats* stats);

  // Streaming variant: rows from all regions are serialized into `sink` as
  // they are produced (arrival order across regions is unspecified). The
  // sink returning false broadcasts early termination to every in-flight
  // region scan, so rows past the stop are not scanned. The sink needs no
  // internal locking; deliveries are serialized here. When `breakdown` is
  // non-null it receives one entry per region task, appended after all
  // tasks have joined (never mutated concurrently).
  Status ParallelScan(const std::vector<KeyRange>& ranges,
                      const kv::ScanFilter* filter, size_t limit,
                      kv::RowSink* sink, kv::ScanStats* stats,
                      std::vector<RegionScanStat>* breakdown = nullptr,
                      ScanOutcome* outcome = nullptr);

  // Batched variant of the streaming ParallelScan: windows are grouped by
  // region and each region runs ONE pool task executing its whole batch
  // over a single iterator stack (kv::DB::MultiScan), instead of one task
  // (and one fresh iterator) per (region, window). Semantics match
  // ParallelScan row for row; `perf` (optional) aggregates the read-path
  // counters across regions after all tasks have joined. Windows arriving
  // sorted by start key (the planner's contract) keep their order within
  // each region group, which is what enables seek elision downstream.
  Status MultiScan(const std::vector<KeyRange>& ranges,
                   const kv::ScanFilter* filter, size_t limit,
                   kv::RowSink* sink, kv::ScanStats* stats,
                   std::vector<RegionScanStat>* breakdown = nullptr,
                   kv::MultiScanPerf* perf = nullptr,
                   ScanOutcome* outcome = nullptr);

  // Same windows, but without push-down: all rows in the ranges are
  // shipped back and the filter is applied caller-side. Models systems that
  // cannot execute filters in the storage layer; stats count every shipped
  // row as scanned.
  Status ScanWithoutPushdown(const std::vector<KeyRange>& ranges,
                             const kv::ScanFilter* filter,
                             std::vector<Row>* out, kv::ScanStats* stats);

  // Splits the region at its approximate byte-weighted median key (sampled
  // from the store's SSTable indexes after a flush). See SplitRegionAt.
  Status SplitRegion(int region_id);

  // Splits region `region_id` = [a, c) at `split_key` (must be strictly
  // inside) into [a, split_key) staying put and [split_key, c) moving to a
  // fresh region store. Online: concurrent writes to the moving half are
  // teed and replayed, concurrent scans keep their routing snapshot (the
  // source region still holds the moved rows until lazy reclamation), and
  // the routing swap + ROUTING manifest commit are atomic. The write path
  // is only gated for the two brief tee install/drain windows, never for
  // the copy itself.
  Status SplitRegionAt(int region_id, const std::string& split_key);

  // Merges two adjacent regions: the right range is copied into the left
  // region's store (after compacting away any stale out-of-range rows the
  // left store still held), the left region's range grows to cover both,
  // and the right region is retired — its directory is deleted once the
  // last in-flight scan snapshot releases it. Argument order is free;
  // adjacency is required.
  Status MergeRegions(int region_id_a, int region_id_b);

  // Compacts one region's store (the balancer's post-split lazy-reclaim
  // hook: the ownership filter drops migrated rows during the rewrite).
  Status CompactRegion(int region_id);

  // Region-task retry policy for ParallelScan/MultiScan. With the default
  // (max_retries == 0) failed tasks are never re-run and the scan path is
  // byte-identical to the no-retry build. A retried task that already
  // delivered rows resumes after the last delivered key, so no row is
  // streamed twice.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Split/merge lifecycle events ("region_split", "region_merge") are
  // appended here when set (the /eventz ring). Borrowed; must outlive the
  // table.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  Status Flush();
  Status CompactAll();

  // Total SSTable bytes across regions (storage-cost accounting).
  uint64_t TotalBytes();

  // Element-wise aggregate of the per-region storage-engine stats (level
  // file counts/bytes, flush/compaction work, write-stall time).
  kv::DB::Stats GetStorageStats();

  // One entry per region, in key order: region id (the `shard` label), its
  // owned key range, the store's directory, cumulative write/scan activity
  // (the balancer's load signal) and the full DB::Stats snapshot plus
  // sticky background error (the /statusz per-region breakdown).
  struct RegionStats {
    int shard = 0;  // region id
    KeyRange range;
    std::string db_name;
    uint64_t writes_total = 0;
    uint64_t rows_scanned_total = 0;
    uint64_t sstable_bytes = 0;
    Status background_error;
    kv::DB::Stats stats;
  };
  std::vector<RegionStats> GetPerRegionStats();

  // Topology-change counters (also exported as
  // tman_cluster_region_{splits,merges}_total when metrics are attached).
  uint64_t splits_performed() const {
    return splits_performed_.load(std::memory_order_relaxed);
  }
  uint64_t merges_performed() const {
    return merges_performed_.load(std::memory_order_relaxed);
  }

 private:
  ClusterTable(std::string name, std::string dir, kv::Options base_options,
               ThreadPool* pool, obs::MetricsRegistry* metrics);

  // Writes teed while a key range migrates between regions (split: upper
  // half to the new store; merge: right range into the left store). The
  // tee lock also linearizes same-range DB writes with their tee append so
  // replay order matches commit order.
  struct MigrationTee {
    KeyRange range;
    kv::DB* target = nullptr;
    std::mutex mu;
    kv::WriteBatch deltas;
    uint64_t rows = 0;
  };

  std::shared_ptr<const RoutingTable> Routing() const {
    std::lock_guard<std::mutex> lock(routing_mu_);
    return routing_;
  }

  void StoreRouting(std::shared_ptr<const RoutingTable> table) {
    std::lock_guard<std::mutex> lock(routing_mu_);
    routing_ = std::move(table);
  }

  // Builds a region (owned-range state, ownership filter chained over the
  // table's inner filter, store open, metric handles) rooted at `dir_/dir`.
  Status NewRegion(int id, const std::string& dir, KeyRange range,
                   std::shared_ptr<Region>* out);

  // Restores the topology from the ROUTING manifest, or creates the
  // initial `initial_shards` one-byte-range layout and persists it. Sweeps
  // region directories the manifest does not reference (torn splits).
  Status LoadOrInit(int initial_shards);

  // Atomically persists `table` as the ROUTING manifest (tmp + sync +
  // rename) — the commit point a reopen recovers from.
  Status PersistRouting(const RoutingTable& table);

  // Write-path helper: routes one mutation through the snapshot, applies
  // it, and tees it when it falls into a migrating range.
  Status RoutedWrite(const Slice& key, const Slice& value, bool is_delete);

  void EmitTopologyEvent(const char* type,
                         std::vector<std::pair<std::string, std::string>>
                             fields);

  kv::Env* env() const;

  std::string name_;
  std::string dir_;
  kv::Options base_options_;  // per-region store options (sans ownership filter)
  ThreadPool* pool_;
  obs::MetricsRegistry* metrics_;
  obs::EventLog* event_log_ = nullptr;
  RetryPolicy retry_;
  std::atomic<uint64_t> bulk_seq_{0};  // unique names for bulk-load temps

  // The live routing snapshot (copy-on-write). Readers copy the
  // shared_ptr under routing_mu_ (held only for the copy — an
  // uncontended lock, unlike std::atomic<shared_ptr>, is TSan-visible
  // on every toolchain); split/merge build a new table and publish it
  // under admin_mu_.
  mutable std::mutex routing_mu_;
  std::shared_ptr<const RoutingTable> routing_;

  // Shared by every writer (Put/Delete/BatchPut/BulkLoad), unique for the
  // brief tee install/drain windows of a split/merge. migration_ is only
  // written under the unique gate and only read under the shared gate.
  std::shared_mutex write_gate_;
  std::shared_ptr<MigrationTee> migration_;

  // Serializes topology changes (one split/merge at a time per table).
  std::mutex admin_mu_;
  int next_region_id_ = 0;

  std::atomic<uint64_t> splits_performed_{0};
  std::atomic<uint64_t> merges_performed_{0};

  // Registry handles (all null = metrics off).
  obs::Counter* scans_ = nullptr;
  obs::Counter* region_retries_ = nullptr;
  obs::Counter* region_failures_ = nullptr;
  obs::Counter* rows_streamed_ = nullptr;
  obs::Counter* region_splits_ = nullptr;
  obs::Counter* region_merges_ = nullptr;
  obs::Histogram* fanout_regions_ = nullptr;
  obs::Histogram* scan_micros_ = nullptr;
  obs::Histogram* wait_micros_ = nullptr;
};

// A simulated cluster: `num_servers` logical region servers sharing a
// thread pool with one thread per server. Tables are created with a shard
// count; shard i is hosted by server (i % num_servers). A second pool of
// the same size runs background memtable flushes and compactions for all
// region stores (the HBase flusher/compactor threads analogue); it is kept
// separate from the request pool so maintenance work queued behind writer
// tasks can never deadlock a BatchPut that is stalled on backpressure.
class Cluster {
 public:
  // base_dir is created if missing; each table gets a subdirectory.
  Cluster(std::string base_dir, int num_servers, kv::Options options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates a table of `num_shards` regions. `options_override` (borrowed
  // for the call) replaces the cluster-wide kv::Options for this table's
  // region stores — e.g. a per-table compaction filter or compression
  // choice; the cluster's maintenance pool is still wired in when the
  // override leaves background_pool unset.
  Status CreateTable(const std::string& name, int num_shards,
                     const kv::Options* options_override = nullptr);
  Status DropTable(const std::string& name);
  ClusterTable* GetTable(const std::string& name);
  std::vector<std::string> TableNames();

  int num_servers() const { return num_servers_; }
  ThreadPool* pool() { return &pool_; }

 private:
  std::string base_dir_;
  int num_servers_;
  kv::Options options_;
  ThreadPool pool_;     // request execution (scans, batched writes)
  ThreadPool bg_pool_;  // flush/compaction; outlives tables_ (decl. order)
  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ClusterTable>> tables_;
};

}  // namespace tman::cluster

#endif  // TMAN_CLUSTER_CLUSTER_H_
