#ifndef TMAN_CLUSTER_CLUSTER_H_
#define TMAN_CLUSTER_CLUSTER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "kvstore/db.h"
#include "kvstore/options.h"
#include "kvstore/scan_filter.h"
#include "obs/metrics.h"

namespace tman::cluster {

struct Row {
  std::string key;
  std::string value;
};

// Half-open rowkey interval [start, end); empty end means "to infinity".
struct KeyRange {
  std::string start;
  std::string end;
};

// A region hosts one contiguous rowkey range of a table, backed by its own
// LSM store (the HBase region analogue). TMan rowkeys start with a one-byte
// shard prefix, and each shard value maps to exactly one region, so region
// routing is the first key byte.
class Region {
 public:
  Region(uint8_t shard, std::unique_ptr<kv::DB> db)
      : shard_(shard), db_(std::move(db)) {}

  uint8_t shard() const { return shard_; }
  kv::DB* db() { return db_.get(); }

  // Executes a filtered scan inside the region (push-down execution).
  Status Scan(const KeyRange& range, const kv::ScanFilter* filter,
              size_t limit, std::vector<Row>* out, kv::ScanStats* stats);

  // Streaming variant: matching rows are delivered to `sink` as the region
  // iterator produces them; the sink returning false stops the scan.
  Status Scan(const KeyRange& range, const kv::ScanFilter* filter,
              size_t limit, kv::RowSink* sink, kv::ScanStats* stats);

  // Batched scan: all windows run against one iterator stack inside the
  // region store (see kv::DB::MultiScan). Sorted windows advance the
  // cursor monotonically instead of re-seeking per window.
  Status MultiScan(const std::vector<kv::ScanWindow>& windows,
                   const kv::ScanFilter* filter, size_t limit,
                   kv::RowSink* sink, kv::ScanStats* stats,
                   kv::MultiScanPerf* perf);

 private:
  uint8_t shard_;
  std::unique_ptr<kv::DB> db_;
};

// Per-region failure accounting for one fan-out scan. Every region task is
// attempted (and retried per the table's RetryPolicy) regardless of other
// regions' failures; the scan's return status is still the first final
// error, so callers that ignore the outcome keep strict semantics.
struct ScanOutcome {
  uint64_t regions_attempted = 0;
  uint64_t regions_failed = 0;  // still failing after retries
  uint64_t retries = 0;         // re-runs across all region tasks
  std::vector<std::pair<int, Status>> region_errors;  // shard -> final error
};

// A distributed sorted table: `num_shards` regions spread over the cluster's
// region servers. Writes route by the shard byte; scans fan out to every
// region whose range intersects the query window and run in parallel on the
// cluster thread pool.
class ClusterTable {
 public:
  // When `metrics` is set, scan fan-out, per-region queue wait, scan wall
  // time and rows streamed are published under tman_cluster_*.
  ClusterTable(std::string name, std::vector<std::unique_ptr<Region>> regions,
               ThreadPool* pool, obs::MetricsRegistry* metrics = nullptr);

  // Per-region slice of one ParallelScan (trace / EXPLAIN ANALYZE input).
  struct RegionScanStat {
    int shard = 0;
    uint64_t scanned = 0;   // rows the region iterator visited
    uint64_t matched = 0;   // rows that passed the filter into the sink
    double wait_ms = 0;     // queue wait before a pool thread picked it up
    double scan_ms = 0;     // time inside the region scan itself
  };

  const std::string& name() const { return name_; }
  int num_shards() const { return static_cast<int>(regions_.size()); }

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);

  // Groups the batch rows by shard and writes one batch per region, in
  // parallel on the cluster thread pool (each region owns its own LSM
  // store, so cross-region writes never contend). With background flushes
  // enabled each write only pays WAL append + memtable insert; flush and
  // compaction latency moves off this path onto the maintenance pool.
  Status BatchPut(const std::vector<Row>& rows);

  // As above, with caller-chosen write options (e.g. wo.sync=true to fsync
  // each region's WAL append before the batch is acknowledged — the
  // durability level a crash-safe online backfill needs).
  Status BatchPut(const std::vector<Row>& rows, const kv::WriteOptions& wo);

  // Offline backfill: groups `rows` by shard, sorts each group, builds one
  // SSTable per region with kv::SstFileWriter and installs it directly into
  // the region store via DB::IngestExternalFile (move, not copy) — no WAL,
  // no memtable, no compaction debt. Regions load in parallel on the
  // cluster pool. Constraints inherited from ingestion: row keys must be
  // unique and each region group's key range must not overlap live keys in
  // that region (backfill disjoint ranges, e.g. historical days). On a
  // per-region failure the remaining regions still load; the first error is
  // returned.
  Status BulkLoad(const std::vector<Row>& rows);

  // Scans all `ranges` in parallel with the filter pushed down to the
  // regions. Results are concatenated (callers needing global key order
  // sort afterwards). limit==0 means unlimited; a non-zero limit applies
  // per range. Thin adapter over the sink-based overload below.
  Status ParallelScan(const std::vector<KeyRange>& ranges,
                      const kv::ScanFilter* filter, size_t limit,
                      std::vector<Row>* out, kv::ScanStats* stats);

  // Streaming variant: rows from all regions are serialized into `sink` as
  // they are produced (arrival order across regions is unspecified). The
  // sink returning false broadcasts early termination to every in-flight
  // region scan, so rows past the stop are not scanned. The sink needs no
  // internal locking; deliveries are serialized here. When `breakdown` is
  // non-null it receives one entry per region task, appended after all
  // tasks have joined (never mutated concurrently).
  Status ParallelScan(const std::vector<KeyRange>& ranges,
                      const kv::ScanFilter* filter, size_t limit,
                      kv::RowSink* sink, kv::ScanStats* stats,
                      std::vector<RegionScanStat>* breakdown = nullptr,
                      ScanOutcome* outcome = nullptr);

  // Batched variant of the streaming ParallelScan: windows are grouped by
  // region and each region runs ONE pool task executing its whole batch
  // over a single iterator stack (kv::DB::MultiScan), instead of one task
  // (and one fresh iterator) per (region, window). Semantics match
  // ParallelScan row for row; `perf` (optional) aggregates the read-path
  // counters across regions after all tasks have joined. Windows arriving
  // sorted by start key (the planner's contract) keep their order within
  // each region group, which is what enables seek elision downstream.
  Status MultiScan(const std::vector<KeyRange>& ranges,
                   const kv::ScanFilter* filter, size_t limit,
                   kv::RowSink* sink, kv::ScanStats* stats,
                   std::vector<RegionScanStat>* breakdown = nullptr,
                   kv::MultiScanPerf* perf = nullptr,
                   ScanOutcome* outcome = nullptr);

  // Same windows, but without push-down: all rows in the ranges are
  // shipped back and the filter is applied caller-side. Models systems that
  // cannot execute filters in the storage layer; stats count every shipped
  // row as scanned.
  Status ScanWithoutPushdown(const std::vector<KeyRange>& ranges,
                             const kv::ScanFilter* filter,
                             std::vector<Row>* out, kv::ScanStats* stats);

  // Region-task retry policy for ParallelScan/MultiScan. With the default
  // (max_retries == 0) failed tasks are never re-run and the scan path is
  // byte-identical to the no-retry build. A retried task that already
  // delivered rows resumes after the last delivered key, so no row is
  // streamed twice.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  Status Flush();
  Status CompactAll();

  // Total SSTable bytes across regions (storage-cost accounting).
  uint64_t TotalBytes();

  // Element-wise aggregate of the per-region storage-engine stats (level
  // file counts/bytes, flush/compaction work, write-stall time).
  kv::DB::Stats GetStorageStats();

  // One entry per region: shard id, the region store's directory and its
  // full DB::Stats snapshot plus sticky background error (the /statusz
  // per-region breakdown).
  struct RegionStats {
    int shard = 0;
    std::string db_name;
    Status background_error;
    kv::DB::Stats stats;
  };
  std::vector<RegionStats> GetPerRegionStats();

 private:
  // Regions whose shard range intersects [range.start, range.end).
  std::vector<Region*> RoutingRegions(const KeyRange& range);

  std::string name_;
  std::vector<std::unique_ptr<Region>> regions_;
  ThreadPool* pool_;
  RetryPolicy retry_;
  std::atomic<uint64_t> bulk_seq_{0};  // unique names for bulk-load temps

  // Registry handles (all null = metrics off).
  obs::Counter* scans_ = nullptr;
  obs::Counter* region_retries_ = nullptr;
  obs::Counter* region_failures_ = nullptr;
  obs::Counter* rows_streamed_ = nullptr;
  obs::Histogram* fanout_regions_ = nullptr;
  obs::Histogram* scan_micros_ = nullptr;
  obs::Histogram* wait_micros_ = nullptr;
  // Per-region activity, indexed by shard; labels carry table + shard so a
  // windowed view of the registry yields last-minute per-region scan/write
  // rates (the hot-region signal). Empty when metrics are off.
  std::vector<obs::Counter*> region_rows_scanned_;
  std::vector<obs::Counter*> region_writes_;
};

// A simulated cluster: `num_servers` logical region servers sharing a
// thread pool with one thread per server. Tables are created with a shard
// count; shard i is hosted by server (i % num_servers). A second pool of
// the same size runs background memtable flushes and compactions for all
// region stores (the HBase flusher/compactor threads analogue); it is kept
// separate from the request pool so maintenance work queued behind writer
// tasks can never deadlock a BatchPut that is stalled on backpressure.
class Cluster {
 public:
  // base_dir is created if missing; each table gets a subdirectory.
  Cluster(std::string base_dir, int num_servers, kv::Options options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Creates a table of `num_shards` regions. `options_override` (borrowed
  // for the call) replaces the cluster-wide kv::Options for this table's
  // region stores — e.g. a per-table compaction filter or compression
  // choice; the cluster's maintenance pool is still wired in when the
  // override leaves background_pool unset.
  Status CreateTable(const std::string& name, int num_shards,
                     const kv::Options* options_override = nullptr);
  Status DropTable(const std::string& name);
  ClusterTable* GetTable(const std::string& name);

  int num_servers() const { return num_servers_; }
  ThreadPool* pool() { return &pool_; }

 private:
  std::string base_dir_;
  int num_servers_;
  kv::Options options_;
  ThreadPool pool_;     // request execution (scans, batched writes)
  ThreadPool bg_pool_;  // flush/compaction; outlives tables_ (decl. order)
  std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<ClusterTable>> tables_;
};

}  // namespace tman::cluster

#endif  // TMAN_CLUSTER_CLUSTER_H_
