#include "cluster/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"
#include "kvstore/sst_file_writer.h"
#include "kvstore/write_batch.h"

namespace tman::cluster {

// ---------------------------------------------------------------------------
// Region

namespace {

// Adapter collecting streamed rows into the vector-returning APIs.
class CollectRowsSink : public kv::RowSink {
 public:
  explicit CollectRowsSink(std::vector<Row>* out) : out_(out) {}

  bool Accept(const Slice& key, const Slice& value) override {
    out_->push_back(Row{key.ToString(), value.ToString()});
    return true;
  }

 private:
  std::vector<Row>* out_;
};

}  // namespace

Status Region::Scan(const KeyRange& range, const kv::ScanFilter* filter,
                    size_t limit, std::vector<Row>* out,
                    kv::ScanStats* stats) {
  CollectRowsSink sink(out);
  return Scan(range, filter, limit, &sink, stats);
}

Status Region::Scan(const KeyRange& range, const kv::ScanFilter* filter,
                    size_t limit, kv::RowSink* sink, kv::ScanStats* stats) {
  return db_->Scan(kv::ReadOptions(), range.start, range.end, filter, limit,
                   sink, stats);
}

Status Region::MultiScan(const std::vector<kv::ScanWindow>& windows,
                         const kv::ScanFilter* filter, size_t limit,
                         kv::RowSink* sink, kv::ScanStats* stats,
                         kv::MultiScanPerf* perf) {
  return db_->MultiScan(kv::ReadOptions(), windows, filter, limit, sink,
                        stats, perf);
}

// ---------------------------------------------------------------------------
// ClusterTable

ClusterTable::ClusterTable(std::string name,
                           std::vector<std::unique_ptr<Region>> regions,
                           ThreadPool* pool, obs::MetricsRegistry* metrics)
    : name_(std::move(name)), regions_(std::move(regions)), pool_(pool) {
  if (metrics != nullptr) {
    scans_ = metrics->GetCounter("tman_cluster_scans_total");
    region_retries_ = metrics->GetCounter("tman_cluster_region_retries_total");
    region_failures_ =
        metrics->GetCounter("tman_cluster_region_failures_total");
    rows_streamed_ = metrics->GetCounter("tman_cluster_rows_streamed_total");
    fanout_regions_ =
        metrics->GetHistogram("tman_cluster_scan_fanout_regions");
    scan_micros_ = metrics->GetHistogram("tman_cluster_scan_micros");
    wait_micros_ = metrics->GetHistogram("tman_cluster_scan_wait_micros");
    region_rows_scanned_.reserve(regions_.size());
    region_writes_.reserve(regions_.size());
    for (const auto& region : regions_) {
      const std::string labels = "{table=\"" + name_ + "\",shard=\"" +
                                 std::to_string(region->shard()) + "\"}";
      region_rows_scanned_.push_back(metrics->GetCounter(
          "tman_cluster_region_rows_scanned_total" + labels));
      region_writes_.push_back(
          metrics->GetCounter("tman_cluster_region_writes_total" + labels));
    }
  }
}

namespace {

// Shard byte of a rowkey; keys are always at least one byte in TMan tables.
uint8_t ShardOf(const Slice& key) {
  return key.empty() ? 0 : static_cast<uint8_t>(key[0]);
}

}  // namespace

Status ClusterTable::Put(const Slice& key, const Slice& value) {
  const int shard = ShardOf(key) % num_shards();
  Status s = regions_[shard]->db()->Put(kv::WriteOptions(), key, value);
  if (s.ok() && !region_writes_.empty()) region_writes_[shard]->Inc();
  return s;
}

Status ClusterTable::Delete(const Slice& key) {
  const int shard = ShardOf(key) % num_shards();
  Status s = regions_[shard]->db()->Delete(kv::WriteOptions(), key);
  if (s.ok() && !region_writes_.empty()) region_writes_[shard]->Inc();
  return s;
}

Status ClusterTable::Get(const Slice& key, std::string* value) {
  const int shard = ShardOf(key) % num_shards();
  return regions_[shard]->db()->Get(kv::ReadOptions(), key, value);
}

Status ClusterTable::BatchPut(const std::vector<Row>& rows) {
  return BatchPut(rows, kv::WriteOptions());
}

Status ClusterTable::BatchPut(const std::vector<Row>& rows,
                              const kv::WriteOptions& wo) {
  std::vector<kv::WriteBatch> batches(regions_.size());
  for (const Row& row : rows) {
    batches[ShardOf(row.key) % num_shards()].Put(row.key, row.value);
  }
  std::vector<std::future<Status>> futures;
  for (size_t i = 0; i < regions_.size(); i++) {
    if (batches[i].Count() == 0) continue;
    futures.push_back(pool_->Submit([this, i, wo, &batches] {
      Status s = regions_[i]->db()->Write(wo, &batches[i]);
      if (s.ok() && !region_writes_.empty()) {
        region_writes_[i]->Inc(batches[i].Count());
      }
      return s;
    }));
  }
  Status result;
  for (auto& f : futures) {
    Status s = f.get();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Status ClusterTable::BulkLoad(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  std::vector<std::vector<const Row*>> by_region(regions_.size());
  for (const Row& row : rows) {
    by_region[ShardOf(row.key) % num_shards()].push_back(&row);
  }
  std::vector<std::future<Status>> futures;
  for (size_t i = 0; i < regions_.size(); i++) {
    if (by_region[i].empty()) continue;
    futures.push_back(pool_->Submit([this, i, &by_region] {
      std::vector<const Row*>& group = by_region[i];
      std::sort(group.begin(), group.end(), [](const Row* a, const Row* b) {
        return a->key < b->key;
      });
      kv::DB* db = regions_[i]->db();
      // Build inside the region directory under a .tmp name: invisible to
      // the store's GC while live, swept by Recover after a crash.
      const std::string path =
          db->name() + "/bulk-" +
          std::to_string(bulk_seq_.fetch_add(1, std::memory_order_relaxed)) +
          ".tmp";
      kv::SstFileWriter writer(db->options());
      Status s = writer.Open(path);
      for (size_t j = 0; s.ok() && j < group.size(); j++) {
        s = writer.Put(group[j]->key, group[j]->value);
      }
      kv::ExternalSstFileInfo info;
      if (s.ok()) s = writer.Finish(&info);
      if (s.ok()) {
        kv::DB::IngestOptions io;
        io.move_file = true;
        s = db->IngestExternalFile(io, path);
        if (s.ok() && !region_writes_.empty()) {
          region_writes_[i]->Inc(group.size());
        }
      }
      if (!s.ok() && db->options().env != nullptr) {
        db->options().env->RemoveFile(path);  // best effort
      }
      return s;
    }));
  }
  Status result;
  for (auto& f : futures) {
    Status s = f.get();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

std::vector<Region*> ClusterTable::RoutingRegions(const KeyRange& range) {
  // The shard byte is the routing dimension: a range [start, end) touches
  // every key byte in [start[0], end[0]] (end[0] exclusive only when the
  // end key has no further bytes), and byte b lives in region b % shards.
  // Empty start means byte 0; empty end means byte 255.
  const unsigned first_byte =
      range.start.empty() ? 0u : static_cast<uint8_t>(range.start[0]);
  unsigned last_byte =
      range.end.empty() ? 255u : static_cast<uint8_t>(range.end[0]);
  if (!range.end.empty() && range.end.size() == 1 && last_byte > 0) {
    last_byte--;  // end is exclusive and has no further bytes
  }
  std::vector<Region*> result;
  std::vector<bool> seen(regions_.size(), false);
  for (unsigned b = first_byte;
       b <= last_byte && result.size() < regions_.size(); b++) {
    const unsigned shard = b % static_cast<unsigned>(num_shards());
    if (!seen[shard]) {
      seen[shard] = true;
      result.push_back(regions_[shard].get());
    }
  }
  return result;
}

Status ClusterTable::ParallelScan(const std::vector<KeyRange>& ranges,
                                  const kv::ScanFilter* filter, size_t limit,
                                  std::vector<Row>* out,
                                  kv::ScanStats* stats) {
  CollectRowsSink sink(out);
  return ParallelScan(ranges, filter, limit, &sink, stats);
}

namespace {

// Serializes concurrent region deliveries into one caller sink and
// broadcasts early termination: once the inner sink declines a row, every
// in-flight region scan observes the stop flag and ends.
class SerializedSink : public kv::RowSink {
 public:
  explicit SerializedSink(kv::RowSink* inner) : inner_(inner) {}

  bool Accept(const Slice& key, const Slice& value) override {
    if (stopped_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_.load(std::memory_order_relaxed)) return false;
    if (!inner_->Accept(key, value)) {
      stopped_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

 private:
  kv::RowSink* inner_;
  std::mutex mu_;
  std::atomic<bool> stopped_{false};
};

// Tracks delivery progress of one region task so a retry can resume after
// the last delivered key instead of streaming rows twice.
class ProgressSink : public kv::RowSink {
 public:
  explicit ProgressSink(kv::RowSink* inner) : inner_(inner) {}

  bool Accept(const Slice& key, const Slice& value) override {
    if (!inner_->Accept(key, value)) return false;
    rows_++;
    last_key_.assign(key.data(), key.size());
    return true;
  }

  uint64_t rows() const { return rows_; }
  const std::string& last_key() const { return last_key_; }

 private:
  kv::RowSink* inner_;
  uint64_t rows_ = 0;
  std::string last_key_;
};

void BackoffSleep(const RetryPolicy& retry, int attempt) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(retry.BackoffMicros(attempt)));
}

// Whether a mid-stream resume can be expressed by trimming windows: needs
// sorted, non-overlapping windows (the planner's contract). Unsorted
// batches only retry from scratch when nothing was delivered yet.
bool WindowsSortedDisjoint(const std::vector<kv::ScanWindow>& windows) {
  for (size_t i = 1; i < windows.size(); i++) {
    const Slice& prev_end = windows[i - 1].end;
    if (prev_end.empty()) return false;  // previous extends to +inf
    if (prev_end.compare(windows[i].start) > 0) return false;
  }
  return true;
}

}  // namespace

Status ClusterTable::ParallelScan(const std::vector<KeyRange>& ranges,
                                  const kv::ScanFilter* filter, size_t limit,
                                  kv::RowSink* sink, kv::ScanStats* stats,
                                  std::vector<RegionScanStat>* breakdown,
                                  ScanOutcome* outcome) {
  struct Task {
    Region* region;
    const KeyRange* range;
    kv::ScanStats stats;
    Status status;
    int retries = 0;
    uint64_t wait_micros = 0;  // submit -> pool thread pickup
    uint64_t scan_micros = 0;  // inside the region scan
  };
  std::vector<Task> tasks;
  for (const KeyRange& range : ranges) {
    for (Region* region : RoutingRegions(range)) {
      tasks.push_back(Task{region, &range, {}, Status::OK(), 0, 0, 0});
    }
  }

  Stopwatch total;  // read only when metrics are on
  const bool timed = scans_ != nullptr || breakdown != nullptr;
  const RetryPolicy retry = retry_;
  SerializedSink shared(sink);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (Task& task : tasks) {
    Stopwatch queued;  // captured by value: starts counting at submit time
    futures.push_back(
        pool_->Submit([&task, &shared, filter, limit, timed, queued, retry] {
          Stopwatch run;
          if (timed) task.wait_micros = queued.ElapsedMicros();
          if (retry.max_retries == 0) {
            task.status = task.region->Scan(*task.range, filter, limit,
                                            &shared, &task.stats);
          } else {
            ProgressSink progress(&shared);
            task.status = task.region->Scan(*task.range, filter, limit,
                                            &progress, &task.stats);
            std::string resume_start;
            // With a per-range limit, a mid-stream retry cannot know how
            // many of the delivered rows counted against it, so only
            // zero-delivery failures retry in that case.
            while (!task.status.ok() &&
                   retry.ShouldRetry(task.status, task.retries) &&
                   (limit == 0 || progress.rows() == 0)) {
              BackoffSleep(retry, task.retries);
              task.retries++;
              KeyRange resumed = *task.range;
              if (progress.rows() > 0) {
                resume_start = progress.last_key() + '\0';  // key successor
                resumed.start = resume_start;
              }
              task.status = task.region->Scan(resumed, filter, limit,
                                              &progress, &task.stats);
            }
          }
          if (timed) task.scan_micros = run.ElapsedMicros();
        }));
  }
  for (auto& f : futures) f.get();

  Status result;
  uint64_t matched = 0;
  uint64_t failed = 0;
  uint64_t retries_total = 0;
  for (Task& task : tasks) {
    retries_total += task.retries;
    if (!task.status.ok()) {
      failed++;
      if (result.ok()) result = task.status;
      if (outcome != nullptr) {
        outcome->region_errors.emplace_back(task.region->shard(), task.status);
      }
    }
    if (stats != nullptr) *stats += task.stats;
    matched += task.stats.matched;
    if (breakdown != nullptr) {
      breakdown->push_back(RegionScanStat{
          task.region->shard(), task.stats.scanned, task.stats.matched,
          static_cast<double>(task.wait_micros) / 1000.0,
          static_cast<double>(task.scan_micros) / 1000.0});
    }
    if (wait_micros_ != nullptr) wait_micros_->Record(task.wait_micros);
    if (!region_rows_scanned_.empty() && task.stats.scanned > 0) {
      region_rows_scanned_[task.region->shard() % num_shards()]->Inc(
          task.stats.scanned);
    }
  }
  if (outcome != nullptr) {
    outcome->regions_attempted += tasks.size();
    outcome->regions_failed += failed;
    outcome->retries += retries_total;
  }
  if (region_failures_ != nullptr && failed > 0) region_failures_->Inc(failed);
  if (region_retries_ != nullptr && retries_total > 0) {
    region_retries_->Inc(retries_total);
  }
  if (scans_ != nullptr) {
    scans_->Inc();
    rows_streamed_->Inc(matched);
    fanout_regions_->Record(tasks.size());
    scan_micros_->RecordMicros(total.ElapsedMicros());
  }
  return result;
}

Status ClusterTable::MultiScan(const std::vector<KeyRange>& ranges,
                               const kv::ScanFilter* filter, size_t limit,
                               kv::RowSink* sink, kv::ScanStats* stats,
                               std::vector<RegionScanStat>* breakdown,
                               kv::MultiScanPerf* perf,
                               ScanOutcome* outcome) {
  // Group windows by region: one task (and one iterator stack) per region
  // instead of one per (region, window). The window slices borrow the
  // KeyRange strings in `ranges`, which outlive the parallel join.
  std::vector<std::vector<kv::ScanWindow>> grouped(regions_.size());
  for (const KeyRange& range : ranges) {
    for (Region* region : RoutingRegions(range)) {
      grouped[region->shard() % num_shards()].push_back(
          kv::ScanWindow{Slice(range.start), Slice(range.end)});
    }
  }

  struct Task {
    Region* region;
    const std::vector<kv::ScanWindow>* windows;
    kv::ScanStats stats;
    kv::MultiScanPerf perf;
    Status status;
    int retries = 0;
    uint64_t wait_micros = 0;  // submit -> pool thread pickup
    uint64_t scan_micros = 0;  // inside the region batch
  };
  std::vector<Task> tasks;
  for (size_t shard = 0; shard < grouped.size(); shard++) {
    if (grouped[shard].empty()) continue;
    tasks.push_back(Task{regions_[shard].get(), &grouped[shard], {}, {},
                         Status::OK(), 0, 0, 0});
  }

  Stopwatch total;  // read only when metrics are on
  const bool timed = scans_ != nullptr || breakdown != nullptr;
  const RetryPolicy retry = retry_;
  SerializedSink shared(sink);
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (Task& task : tasks) {
    Stopwatch queued;  // captured by value: starts counting at submit time
    futures.push_back(
        pool_->Submit([&task, &shared, filter, limit, timed, queued, retry] {
          Stopwatch run;
          if (timed) task.wait_micros = queued.ElapsedMicros();
          if (retry.max_retries == 0) {
            task.status = task.region->MultiScan(*task.windows, filter, limit,
                                                 &shared, &task.stats,
                                                 &task.perf);
          } else {
            ProgressSink progress(&shared);
            task.status = task.region->MultiScan(*task.windows, filter, limit,
                                                 &progress, &task.stats,
                                                 &task.perf);
            const bool resumable = WindowsSortedDisjoint(*task.windows);
            std::string resume_start;
            std::vector<kv::ScanWindow> resumed;
            while (!task.status.ok() &&
                   retry.ShouldRetry(task.status, task.retries) &&
                   (limit == 0 || progress.rows() == 0) &&
                   (resumable || progress.rows() == 0)) {
              BackoffSleep(retry, task.retries);
              task.retries++;
              const std::vector<kv::ScanWindow>* windows = task.windows;
              if (progress.rows() > 0) {
                // Sorted windows: every window ending at or before the last
                // delivered key's successor is fully streamed; the one
                // containing it resumes just past it.
                resume_start = progress.last_key() + '\0';  // key successor
                const Slice resume(resume_start);
                resumed.clear();
                for (const kv::ScanWindow& w : *task.windows) {
                  if (!w.end.empty() && w.end.compare(resume) <= 0) continue;
                  kv::ScanWindow trimmed = w;
                  if (trimmed.start.compare(resume) < 0) trimmed.start = resume;
                  resumed.push_back(trimmed);
                }
                windows = &resumed;
              }
              task.status = task.region->MultiScan(*windows, filter, limit,
                                                   &progress, &task.stats,
                                                   &task.perf);
            }
          }
          if (timed) task.scan_micros = run.ElapsedMicros();
        }));
  }
  for (auto& f : futures) f.get();

  Status result;
  uint64_t matched = 0;
  uint64_t failed = 0;
  uint64_t retries_total = 0;
  for (Task& task : tasks) {
    retries_total += task.retries;
    if (!task.status.ok()) {
      failed++;
      if (result.ok()) result = task.status;
      if (outcome != nullptr) {
        outcome->region_errors.emplace_back(task.region->shard(), task.status);
      }
    }
    if (stats != nullptr) *stats += task.stats;
    if (perf != nullptr) *perf += task.perf;
    matched += task.stats.matched;
    if (breakdown != nullptr) {
      breakdown->push_back(RegionScanStat{
          task.region->shard(), task.stats.scanned, task.stats.matched,
          static_cast<double>(task.wait_micros) / 1000.0,
          static_cast<double>(task.scan_micros) / 1000.0});
    }
    if (wait_micros_ != nullptr) wait_micros_->Record(task.wait_micros);
    if (!region_rows_scanned_.empty() && task.stats.scanned > 0) {
      region_rows_scanned_[task.region->shard() % num_shards()]->Inc(
          task.stats.scanned);
    }
  }
  if (outcome != nullptr) {
    outcome->regions_attempted += tasks.size();
    outcome->regions_failed += failed;
    outcome->retries += retries_total;
  }
  if (region_failures_ != nullptr && failed > 0) region_failures_->Inc(failed);
  if (region_retries_ != nullptr && retries_total > 0) {
    region_retries_->Inc(retries_total);
  }
  if (scans_ != nullptr) {
    scans_->Inc();
    rows_streamed_->Inc(matched);
    fanout_regions_->Record(tasks.size());
    scan_micros_->RecordMicros(total.ElapsedMicros());
  }
  return result;
}

Status ClusterTable::ScanWithoutPushdown(const std::vector<KeyRange>& ranges,
                                         const kv::ScanFilter* filter,
                                         std::vector<Row>* out,
                                         kv::ScanStats* stats) {
  // Ship every row in the windows to the "client", then filter there.
  std::vector<Row> shipped;
  kv::ScanStats shipping_stats;
  Status s = ParallelScan(ranges, nullptr, 0, &shipped, &shipping_stats);
  if (!s.ok()) return s;
  if (stats != nullptr) {
    stats->scanned += shipping_stats.scanned;
  }
  for (Row& row : shipped) {
    if (filter == nullptr || filter->Matches(row.key, row.value)) {
      if (stats != nullptr) stats->matched++;
      out->push_back(std::move(row));
    }
  }
  return Status::OK();
}

namespace {

// Rebuilds `s` with the same code and an annotated message (Status carries
// no public re-message constructor).
Status AnnotateRegionError(const Status& s, size_t succeeded, size_t total) {
  const std::string msg = s.message() + " (" + std::to_string(succeeded) +
                          " of " + std::to_string(total) +
                          " regions succeeded)";
  switch (s.code()) {
    case Status::Code::kNotFound:
      return Status::NotFound(msg);
    case Status::Code::kCorruption:
      return Status::Corruption(msg);
    case Status::Code::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case Status::Code::kNotSupported:
      return Status::NotSupported(msg);
    case Status::Code::kBusy:
      return Status::Busy(msg);
    case Status::Code::kIOError:
    default:
      return Status::IOError(msg);
  }
}

}  // namespace

Status ClusterTable::Flush() {
  // Attempt every region: one failing store must not leave the others with
  // unflushed memtables.
  size_t succeeded = 0;
  Status first;
  for (auto& region : regions_) {
    Status s = region->db()->Flush();
    if (s.ok()) {
      succeeded++;
    } else if (first.ok()) {
      first = s;
    }
  }
  if (first.ok()) return first;
  return AnnotateRegionError(first, succeeded, regions_.size());
}

Status ClusterTable::CompactAll() {
  size_t succeeded = 0;
  Status first;
  for (auto& region : regions_) {
    Status s = region->db()->CompactAll();
    if (s.ok()) {
      succeeded++;
    } else if (first.ok()) {
      first = s;
    }
  }
  if (first.ok()) return first;
  return AnnotateRegionError(first, succeeded, regions_.size());
}

kv::DB::Stats ClusterTable::GetStorageStats() {
  kv::DB::Stats total;
  for (auto& region : regions_) {
    kv::DB::Stats s = region->db()->GetStats();
    if (total.files_per_level.size() < s.files_per_level.size()) {
      total.files_per_level.resize(s.files_per_level.size(), 0);
      total.bytes_per_level.resize(s.bytes_per_level.size(), 0);
    }
    for (size_t l = 0; l < s.files_per_level.size(); l++) {
      total.files_per_level[l] += s.files_per_level[l];
      total.bytes_per_level[l] += s.bytes_per_level[l];
    }
    total.memtable_bytes += s.memtable_bytes;
    total.imm_memtable_bytes += s.imm_memtable_bytes;
    total.block_cache_hits += s.block_cache_hits;
    total.block_cache_misses += s.block_cache_misses;
    total.flush_count += s.flush_count;
    total.compaction_count += s.compaction_count;
    total.compaction_bytes_read += s.compaction_bytes_read;
    total.compaction_bytes_written += s.compaction_bytes_written;
    total.stall_count += s.stall_count;
    total.stall_micros += s.stall_micros;
    total.wal_syncs += s.wal_syncs;
    total.compaction_filter_dropped += s.compaction_filter_dropped;
    total.compaction_filter_tombstoned += s.compaction_filter_tombstoned;
    total.files_ingested += s.files_ingested;
    total.rows_ingested += s.rows_ingested;
  }
  return total;
}

std::vector<ClusterTable::RegionStats> ClusterTable::GetPerRegionStats() {
  std::vector<RegionStats> out;
  out.reserve(regions_.size());
  for (auto& region : regions_) {
    RegionStats rs;
    rs.shard = region->shard();
    rs.db_name = region->db()->name();
    rs.background_error = region->db()->background_error();
    rs.stats = region->db()->GetStats();
    out.push_back(std::move(rs));
  }
  return out;
}

uint64_t ClusterTable::TotalBytes() {
  uint64_t total = 0;
  for (auto& region : regions_) {
    kv::DB::Stats stats = region->db()->GetStats();
    for (uint64_t b : stats.bytes_per_level) total += b;
    total += stats.memtable_bytes;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Cluster

Cluster::Cluster(std::string base_dir, int num_servers, kv::Options options)
    : base_dir_(std::move(base_dir)),
      num_servers_(num_servers),
      options_(options),
      pool_(static_cast<size_t>(num_servers)),
      bg_pool_(static_cast<size_t>(num_servers)) {
  // All region stores share the cluster's maintenance pool unless the
  // caller wired a specific one (or disabled background work entirely).
  if (options_.background_flush && options_.background_pool == nullptr) {
    options_.background_pool = &bg_pool_;
  }
  std::filesystem::create_directories(base_dir_);
}

Status Cluster::CreateTable(const std::string& name, int num_shards,
                            const kv::Options* options_override) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::InvalidArgument("table exists: " + name);
  }
  kv::Options opt = options_override != nullptr ? *options_override : options_;
  if (opt.background_flush && opt.background_pool == nullptr) {
    opt.background_pool = &bg_pool_;  // same wiring as the cluster defaults
  }
  const std::string table_dir = base_dir_ + "/" + name;
  std::filesystem::create_directories(table_dir);
  std::vector<std::unique_ptr<Region>> regions;
  regions.reserve(num_shards);
  for (int i = 0; i < num_shards; i++) {
    std::unique_ptr<kv::DB> db;
    Status s = kv::DB::Open(opt, table_dir + "/shard" + std::to_string(i),
                            &db);
    if (!s.ok()) return s;
    regions.push_back(
        std::make_unique<Region>(static_cast<uint8_t>(i), std::move(db)));
  }
  tables_[name] = std::make_unique<ClusterTable>(name, std::move(regions),
                                                 &pool_, opt.metrics);
  return Status::OK();
}

Status Cluster::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  tables_.erase(it);
  std::filesystem::remove_all(base_dir_ + "/" + name);
  return Status::OK();
}

ClusterTable* Cluster::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace tman::cluster
